#!/usr/bin/env sh
# Gate a fresh bench run against the committed baseline.
#
#   scripts/bench_gate.sh [baseline.json] [BENCH_results.json]
#
# Two regression checks per section, against bench/baseline.json:
#   - wall time   : fail when current > baseline * DS_GATE_WALL_SLACK
#                   (default 1.15) and the excess is > 50 ms — sub-50ms
#                   sections are scheduling noise, not signal;
#   - minor words : fail when current > baseline * DS_GATE_ALLOC_SLACK
#                   (default 1.10) and the excess is > 1 Mw. Allocation
#                   counts are near-deterministic, so this is the gate
#                   with real teeth; wall time carries wider slack.
#
# Plus the parallel-transparency economics: for each Exec head-to-head
# (refit, year_sim, risk tail, sweep, portfolio, fleet) the parallel leg must
# not be slower than the sequential one (10% slack) — skipped with an
# explicit notice when the run's own recorded nproc is < 2, where a
# speedup is impossible by construction.
#
# A per-section delta table is appended to $GITHUB_STEP_SUMMARY when
# set (stdout otherwise). Exit 1 on any failed gate.
#
# Refresh the baseline by re-running the bench with the CI settings and
# committing the result:
#   DS_BENCH_BUDGET=quick DS_BENCH_SKIP_SLOW=1 DS_BENCH_SAMPLES=2000 \
#     dune exec bench/main.exe && cp BENCH_results.json bench/baseline.json
set -eu

baseline=${1:-bench/baseline.json}
results=${2:-BENCH_results.json}
wall_slack=${DS_GATE_WALL_SLACK:-1.15}
alloc_slack=${DS_GATE_ALLOC_SLACK:-1.10}
summary=${GITHUB_STEP_SUMMARY:-/dev/stdout}
flags=$(mktemp)
table=$(mktemp)
trap 'rm -f "$flags" "$table"' EXIT

for f in "$baseline" "$results"; do
  if [ ! -f "$f" ]; then
    echo "bench_gate: $f not found" >&2
    exit 1
  fi
done

nproc_run=$(jq -r '.nproc // 1' "$results")
budget=$(jq -r '.budget // "default"' "$results")
fail=0
failures=""

note() {
  failures="${failures}$1
"
  fail=1
}

{
  echo "### Bench gate (budget: ${budget}, nproc: ${nproc_run})"
  echo ""
  echo "| section | wall s | base s | wall delta | minor Mw | base Mw | alloc delta |"
  echo "|---|---:|---:|---:|---:|---:|---:|"
} >> "$table"

# The pipeline body runs in a subshell (and $summary may be
# /dev/stdout, which the redirect below captures), so table rows and
# gate failures land in temp files and are folded in afterwards.
jq -r '.sections[].name' "$baseline" | while IFS= read -r name; do
  base_s=$(jq -r --arg n "$name" \
    '[.sections[] | select(.name==$n) | .seconds][0] // empty' "$baseline")
  base_mw=$(jq -r --arg n "$name" \
    '[.sections[] | select(.name==$n) | .minor_words][0] // empty' "$baseline")
  cur_s=$(jq -r --arg n "$name" \
    '[.sections[] | select(.name==$n) | .seconds][0] // empty' "$results")
  cur_mw=$(jq -r --arg n "$name" \
    '[.sections[] | select(.name==$n) | .minor_words][0] // empty' "$results")
  if [ -z "$cur_s" ]; then
    echo "| $name | missing | $base_s | - | missing | - | - |" >> "$table"
    echo "MISSING $name"
    continue
  fi
  wall_flag=$(awk -v c="$cur_s" -v b="$base_s" -v k="$wall_slack" \
    'BEGIN { print (c > b * k && c - b > 0.05) ? "FAIL" : "ok" }')
  alloc_flag=$(awk -v c="$cur_mw" -v b="$base_mw" -v k="$alloc_slack" \
    'BEGIN { print (c > b * k && c - b > 1e6) ? "FAIL" : "ok" }')
  wall_delta=$(awk -v c="$cur_s" -v b="$base_s" 'BEGIN {
    if (b > 0) printf "%+.0f%%", (c / b - 1) * 100; else printf "n/a" }')
  alloc_delta=$(awk -v c="$cur_mw" -v b="$base_mw" 'BEGIN {
    if (b > 0) printf "%+.0f%%", (c / b - 1) * 100; else printf "n/a" }')
  wall_mark=""
  alloc_mark=""
  if [ "$wall_flag" = FAIL ]; then
    wall_mark=" (FAIL)"
    echo "WALL $name: ${cur_s}s vs baseline ${base_s}s"
  fi
  if [ "$alloc_flag" = FAIL ]; then
    alloc_mark=" (FAIL)"
    echo "ALLOC $name: ${cur_mw} minor words vs baseline ${base_mw}"
  fi
  printf '| %s | %.3f | %.3f | %s%s | %.1f | %.1f | %s%s |\n' \
    "$name" "$cur_s" "$base_s" "$wall_delta" "$wall_mark" \
    "$(awk -v w="$cur_mw" 'BEGIN { printf "%.1f", w / 1e6 }')" \
    "$(awk -v w="$base_mw" 'BEGIN { printf "%.1f", w / 1e6 }')" \
    "$alloc_delta" "$alloc_mark" >> "$table"
done > "$flags"

cat "$table" >> "$summary"

while IFS= read -r line; do
  if [ -z "$line" ]; then continue; fi
  case "$line" in
    MISSING*) note "section '${line#MISSING }' missing from $results" ;;
    WALL*) note "wall-time regression: ${line#WALL }" ;;
    ALLOC*) note "minor-allocation regression: ${line#ALLOC }" ;;
  esac
done < "$flags"

echo "" >> "$summary"

# Parallel economics: on a multi-core runner the 4-domain leg must not
# lose to the sequential one. On a single-core runner the comparison is
# meaningless — skipped loudly, never silently.
if [ "$nproc_run" -lt 2 ]; then
  echo "_Parallel <= sequential gates skipped: runner has ${nproc_run} core(s); a parallel speedup is impossible by construction._" >> "$summary"
  echo "bench_gate: skipping parallel gates (nproc=${nproc_run} < 2)"
else
  for pair in refit year_sim "risk tail" sweep portfolio fleet; do
    seq_s=$(jq -r --arg n "$pair sequential" \
      '[.sections[] | select(.name==$n) | .seconds][0] // empty' "$results")
    par_s=$(jq -r --arg n "$pair parallel" \
      '[.sections[] | select(.name==$n) | .seconds][0] // empty' "$results")
    if [ -z "$seq_s" ] || [ -z "$par_s" ]; then
      note "parallel gate: '$pair' sections missing from $results"
      continue
    fi
    if awk -v s="$seq_s" -v p="$par_s" 'BEGIN { exit !(p <= s * 1.10) }'; then
      echo "_${pair}: parallel ${par_s}s <= sequential ${seq_s}s: ok_" >> "$summary"
    else
      echo "_${pair}: parallel ${par_s}s > sequential ${seq_s}s: FAIL_" >> "$summary"
      note "parallel gate: $pair parallel (${par_s}s) slower than sequential (${seq_s}s)"
    fi
  done
fi

# Server economics: a warm request runs against the resident
# configuration cache, so it must not lose to the cold one. The bench
# binary already fatals when warm >= cold; this re-checks the recorded
# numbers so a stale or hand-edited results file cannot sneak through.
serve_cold=$(jq -r '[.sections[] | select(.name=="serve cold solve") | .seconds][0] // empty' "$results")
serve_warm=$(jq -r '[.sections[] | select(.name=="serve warm solve") | .seconds][0] // empty' "$results")
if [ -z "$serve_cold" ] || [ -z "$serve_warm" ]; then
  note "serve gate: 'serve cold solve'/'serve warm solve' sections missing from $results"
elif awk -v c="$serve_cold" -v w="$serve_warm" 'BEGIN { exit !(w <= c) }'; then
  echo "_serve: warm ${serve_warm}s <= cold ${serve_cold}s: ok_" >> "$summary"
else
  echo "_serve: warm ${serve_warm}s > cold ${serve_cold}s: FAIL_" >> "$summary"
  note "serve gate: warm request (${serve_warm}s) slower than cold (${serve_cold}s)"
fi

if [ "$fail" -ne 0 ]; then
  {
    echo ""
    echo "**Bench gate failed:**"
    echo ""
    printf '%s' "$failures" | sed 's/^/- /'
  } >> "$summary"
  echo "bench_gate: FAILED" >&2
  printf '%s' "$failures" | sed 's/^/  - /' >&2
  exit 1
fi
echo "bench_gate: all gates passed"
