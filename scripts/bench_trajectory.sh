#!/usr/bin/env sh
# Append one bench run to the rolling trajectory record.
#
#   scripts/bench_trajectory.sh <prev-trajectory.json> <BENCH_results.json> \
#     <out-trajectory.json> [commit-sha]
#
# The previous trajectory may be missing (first run, or the artifact
# expired) — the output then starts a fresh record. Each entry carries
# the commit, timestamp, run metadata (nproc, OCaml version, budget)
# and every section's wall time + Gc deltas, so the artifact plots the
# repo's perf history across main-branch runs without any external
# storage.
set -eu

prev=${1:?previous trajectory path}
results=${2:?bench results path}
out=${3:?output path}
commit=${4:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}

entry=$(jq --arg commit "$commit" \
  --arg date "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
  '{commit: $commit,
    date: $date,
    nproc: (.nproc // null),
    ocaml: (.ocaml // null),
    budget: (.budget // "default"),
    total_seconds: .total_seconds,
    sections: [.sections[]
      | {name, seconds, minor_words, major_words,
         minor_collections, major_collections}]}' "$results")

if [ -f "$prev" ] && jq -e '.runs' "$prev" > /dev/null 2>&1; then
  jq --argjson e "$entry" '.runs += [$e]' "$prev" > "$out"
else
  jq -n --argjson e "$entry" \
    '{schema: "ds-bench-trajectory/1", runs: [$e]}' > "$out"
fi
echo "trajectory: $(jq '.runs | length' "$out") run(s) recorded in $out"
