(* dstool: command-line front end for the dependable-storage design tool.

   Subcommands mirror the paper's workflow: print the catalogs, solve an
   environment, compare heuristics, sample the solution space, and run
   the scalability / sensitivity sweeps. *)

open Dependable_storage
open Cmdliner
module E = Experiments
module Likelihood = Failure.Likelihood
module Design_solver = Solver.Design_solver
module Candidate = Solver.Candidate

let fmt = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Shared options                                                      *)
(* ------------------------------------------------------------------ *)

let env_conv =
  let parse = function
    | "peer" -> Ok `Peer
    | "quad" -> Ok `Quad
    | s -> Error (`Msg (Printf.sprintf "unknown environment %S (peer|quad)" s))
  in
  let print ppf = function
    | `Peer -> Format.pp_print_string ppf "peer"
    | `Quad -> Format.pp_print_string ppf "quad"
  in
  Arg.conv (parse, print)

let env_term =
  Arg.(value & opt env_conv `Peer
       & info [ "env" ] ~docv:"ENV"
           ~doc:"Environment: $(b,peer) (two peer sites, Section 4.3) or \
                 $(b,quad) (four fully connected sites, Sections 4.4-4.5).")

let apps_term =
  Arg.(value & opt (some int) None
       & info [ "apps" ] ~docv:"N"
           ~doc:"Number of applications (cycling through the Table 1 \
                 classes). Defaults to 8 for peer, 16 for quad.")

let seed_term =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* Observability: --trace/--metrics/--progress build an Obs capability;
   instrumentation is off (the noop sink) unless asked for, and never
   changes results. *)

let trace_term =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON of the run to FILE (load \
                 it in chrome://tracing or ui.perfetto.dev) and print the \
                 aggregated span tree.")

let metrics_term =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Collect counters, gauges and duration histograms across \
                 the search and simulation stack and print them at the end.")

let progress_term =
  Arg.(value & opt (some string) None
       & info [ "progress" ] ~docv:"FILE"
           ~doc:"Write the solver-convergence stream (incumbent cost vs \
                 evaluations, stage transitions, refit accept/reject) to \
                 FILE as CSV.")

let profile_term =
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~docv:"FILE"
           ~doc:"Write a structured profiling report (ds-prof/1 JSON: \
                 per-stage wall/allocation breakdown, domain-pool \
                 utilization, lock-wait totals, histogram percentiles) to \
                 FILE and print it. Forces metrics and trace collection \
                 on; results are unchanged (instrumentation never draws \
                 from the RNG).")

let obs_terms = Term.(const (fun t m p prof -> (t, m, p, prof))
                      $ trace_term $ metrics_term $ progress_term
                      $ profile_term)

(* The configuration-solver memo cache is result-transparent (same seed,
   byte-identical design), so it is on by default; the escape hatch
   exists for debugging and for timing the uncached solver. *)
let no_cache_term =
  Arg.(value & flag
       & info [ "no-config-cache" ]
           ~doc:"Disable the configuration-solver memo cache. The cache \
                 never changes results (a fixed seed yields the identical \
                 design either way); disabling it only makes the search \
                 slower. Useful for debugging and perf comparisons.")

let apply_cache no_cache (budget : E.Budgets.t) =
  if no_cache then
    { budget with
      E.Budgets.solver =
        { budget.E.Budgets.solver with Design_solver.config_cache_size = 0 } }
  else budget

(* Like the memo cache, the Exec pool is result-transparent: every
   consumer pre-splits RNG streams in task order and merges results in
   task order, so the domain count only changes wall time (DESIGN.md
   §10). *)
let domains_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ ->
      Error
        (`Msg (Printf.sprintf "expected a positive domain count, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let domains_term =
  Arg.(value & opt domains_conv 1
       & info [ "domains" ] ~docv:"N"
           ~doc:"Run the command's parallelizable work — refit probe \
                 walks, simulated years, experiment sweep points — on N \
                 OCaml domains (default 1, sequential). Deterministic: a \
                 fixed seed yields byte-identical output whatever N is; \
                 only wall time changes. Counts above the task count are \
                 clamped to it.")

let apply_domains = Fun.flip E.Budgets.with_domains

(* Portfolio knobs (solve and compare): --restarts turns the run into a
   multi-start portfolio (Search.run); --race and --budget-evals shape
   it. Like --domains, --race never changes the returned winner. *)
let restarts_term =
  Arg.(value & opt domains_conv 1
       & info [ "restarts" ] ~docv:"N"
           ~doc:"Run N independent design-solver restarts from pre-split \
                 RNG streams (a portfolio; default 1 = a single run) and \
                 keep the cheapest design. Restart 0 replays the plain \
                 fixed-seed run, so more restarts never return a costlier \
                 design. Deterministic: the winner is byte-identical \
                 whatever $(b,--domains) is.")

let race_term =
  Arg.(value & flag
       & info [ "race" ]
           ~doc:"Let portfolio restarts abandon refit rounds they can no \
                 longer win (lower bound: current cost minus the largest \
                 improvement observed so far, against the best cost \
                 already published). The returned winner is identical \
                 with racing on or off; raced restarts just stop \
                 sooner.")

let budget_evals_term =
  Arg.(value & opt (some int) None
       & info [ "budget-evals" ] ~docv:"N"
           ~doc:"Anytime budget for the portfolio: stop admitting \
                 restarts once the committed configuration-solver calls \
                 reach N and return the best design so far. The first \
                 restart always runs.")

let portfolio_terms =
  Term.(const (fun restarts race evals -> (restarts, race, evals))
        $ restarts_term $ race_term $ budget_evals_term)

let apply_portfolio (restarts, race, evals) budget =
  if restarts = 1 && (not race) && evals = None then budget
  else E.Budgets.with_portfolio ~race ?max_evaluations:evals budget restarts

let obs_of (trace, metrics, progress, profile) =
  (* --profile needs both the registry (pool/lock accounting) and the
     span collector (stage breakdown), whatever else was asked for. *)
  let metrics = metrics || profile <> None in
  let trace = trace <> None || profile <> None in
  if (not trace) && (not metrics) && progress = None then Obs.noop
  else Obs.create ~metrics ~trace ~progress:(progress <> None) ()

(* Emit whatever sinks were requested; shared by solve/compare/risk.
   A bad path must not discard the run that produced the data — the
   search result already printed — but it must not exit 0 either, or CI
   silently loses the artifact it asked for: failures surface as a
   nonzero exit through the returned [Error]. *)
let report_obs (trace, metrics, progress, profile) obs =
  let errors = ref [] in
  let write path contents =
    match Obs.write_file path contents with
    | Ok () -> true
    | Error reason ->
      errors := reason :: !errors;
      false
  in
  (match trace, Obs.trace obs with
   | Some path, Some collector ->
     if write path (Obs.Trace.to_chrome_json collector) then
       Format.fprintf fmt "@.span tree (%d spans; trace written to %s):@.%a"
         (Obs.Trace.span_count collector) path Obs.Trace.pp_tree collector
   | _ -> ());
  (match progress, Obs.progress obs with
   | Some path, Some stream ->
     if write path (Obs.Progress.to_csv stream) then begin
       Format.fprintf fmt
         "@.progress: %d refit rounds accepted, %d rejected%s; CSV written \
          to %s@."
         (Obs.Progress.accepted_count stream)
         (Obs.Progress.rejected_count stream)
         (match Obs.Progress.best stream with
          | Some best -> Printf.sprintf ", best $%.0f" best
          | None -> "")
         path;
       (* Portfolio runs interleave incumbent-improvement events from
          the meta-solver; surface them as one line each (absent on
          single runs). *)
       List.iter
         (fun (e : Obs.Progress.entry) ->
            match e.Obs.Progress.event with
            | Obs.Progress.Portfolio { restart; cost } ->
              Format.fprintf fmt
                "  restart %d improved the incumbent to $%.0f (%d \
                 evaluations in)@."
                restart cost e.Obs.Progress.evaluations
            | _ -> ())
         (Obs.Progress.entries stream)
     end
   | _ -> ());
  (match Obs.metrics obs with
   | Some registry when metrics ->
     Format.fprintf fmt "@.metrics:@.%a" Obs.Metrics.pp registry
   | _ -> ());
  (match profile with
   | None -> ()
   | Some path ->
     let report =
       Obs.Prof.capture ~label:"dstool"
         ?registry:(Obs.metrics obs) ?trace:(Obs.trace obs) ()
     in
     if write path (Obs.Prof.to_json report) then
       Format.fprintf fmt "@.%a@.profile written to %s@." Obs.Prof.pp report
         path);
  match List.rev !errors with
  | [] -> Ok ()
  | errors -> Error (String.concat "; " errors)

let budget_conv =
  let parse = function
    | "quick" -> Ok E.Budgets.quick
    | "default" -> Ok E.Budgets.default
    | s -> Error (`Msg (Printf.sprintf "unknown budget %S (quick|default)" s))
  in
  Arg.conv (parse, fun ppf _ -> Format.pp_print_string ppf "<budget>")

let budget_term =
  Arg.(value & opt budget_conv E.Budgets.default
       & info [ "budget" ] ~docv:"BUDGET"
           ~doc:"Iteration budget: $(b,quick) or $(b,default).")

let rate_term name doc =
  Arg.(value & opt (some float) None & info [ name ] ~docv:"PER_YEAR" ~doc)

let likelihood_term =
  let combine obj arr site =
    let d = Likelihood.default in
    Likelihood.v
      ~data_object_per_year:
        (Option.value ~default:d.Likelihood.data_object_per_year obj)
      ~array_per_year:(Option.value ~default:d.Likelihood.array_per_year arr)
      ~site_per_year:(Option.value ~default:d.Likelihood.site_per_year site)
  in
  Term.(const combine
        $ rate_term "object-rate" "Data-object failures per year (default 1/3)."
        $ rate_term "array-rate" "Disk-array failures per year (default 1/3)."
        $ rate_term "site-rate" "Site disasters per year (default 1/5).")

let resolve_env env apps =
  match env with
  | `Peer ->
    let workloads =
      match apps with
      | None -> E.Envs.peer_apps ()
      | Some n -> Workload.Workload_catalog.mix ~count:n
    in
    (E.Envs.peer_sites (), workloads)
  | `Quad ->
    let n = Option.value ~default:16 apps in
    (E.Envs.quad_sites (), Workload.Workload_catalog.mix ~count:n)

(* ------------------------------------------------------------------ *)
(* catalogs                                                            *)
(* ------------------------------------------------------------------ *)

let catalogs_cmd =
  let run () =
    E.Report.table1 fmt ();
    Format.fprintf fmt "@.";
    E.Report.table2 fmt ();
    Format.fprintf fmt "@.";
    E.Report.table3 fmt ()
  in
  Cmd.v (Cmd.info "catalogs" ~doc:"Print the Table 1-3 catalogs.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

let print_solution (candidate : Candidate.t) =
  E.Report.table4 fmt (E.Case_study.rows_of_candidate candidate);
  Format.fprintf fmt "@.%a@." Cost.Summary.pp (Candidate.summary candidate);
  Format.fprintf fmt "@.annual outlay breakdown:@.";
  List.iter
    (fun (name, m) ->
       Format.fprintf fmt "  %-16s %s@." name (Units.Money.to_string m))
    (Cost.Outlay.breakdown candidate.Candidate.eval.Cost.Evaluate.provision);
  Format.fprintf fmt "@.expected annual penalties per application:@.";
  List.iter
    (fun (p : Cost.Penalty.per_app) ->
       Format.fprintf fmt "  %-12s outage %10s  loss %10s@."
         p.Cost.Penalty.app.Workload.App.name
         (Units.Money.to_string p.Cost.Penalty.outage)
         (Units.Money.to_string p.Cost.Penalty.loss))
    candidate.Candidate.eval.Cost.Evaluate.penalty.Cost.Penalty.by_app

let output_term =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the chosen design to FILE (re-read it with \
                 $(b,dstool audit --design)).")

let solve_cmd =
  let run env apps seed budget likelihood output no_cache domains portfolio
      obs_flags =
    let env, workloads = resolve_env env apps in
    let budget =
      apply_portfolio portfolio
        (apply_domains domains
           (apply_cache no_cache (E.Budgets.with_seed budget seed)))
    in
    let obs = obs_of obs_flags in
    (* A single restart runs the design solver directly; more run the
       portfolio meta-solver on a pool [--domains] wide (restart 0
       replays the direct run, so the result can only get cheaper). *)
    let solved =
      if budget.E.Budgets.restarts = 1 then
        Design_solver.solve ~params:budget.E.Budgets.solver ~obs env workloads
          likelihood
        |> Option.map (fun o -> (o, None))
      else
        let pool = Exec.auto_width (Exec.create ~domains ()) in
        Search.run ~restarts:budget.E.Budgets.restarts
          ~race:budget.E.Budgets.race
          ?max_evaluations:budget.E.Budgets.portfolio_evaluations
          ~params:budget.E.Budgets.solver ~pool ~obs env workloads likelihood
        |> Option.map (fun r -> (r.Search.outcome, Some r))
    in
    match solved with
    | Some (outcome, portfolio_result) ->
      let best =
        match portfolio_result with
        | None -> outcome.Design_solver.best
        | Some r -> r.Search.best
      in
      print_solution best;
      Format.fprintf fmt "@.service levels achieved:@.%a" Cost.Slo_report.pp
        (Cost.Slo_report.of_evaluation best.Candidate.eval);
      (match portfolio_result with
       | None ->
         Format.fprintf fmt
           "@.search: %d configuration-solver calls, %d refit rounds, refit \
            %s@."
           outcome.Design_solver.evaluations
           outcome.Design_solver.refit_rounds_run
           (if outcome.Design_solver.improved_by_refit then
              "improved the greedy design"
            else "kept the greedy design")
       | Some r ->
         Format.fprintf fmt
           "@.portfolio: winner restart %d of %d run (%d raced off), %d \
            configuration-solver calls total@."
           r.Search.winner r.Search.restarts_run r.Search.raced_off
           r.Search.total_evaluations);
      let obs_status = report_obs obs_flags obs in
      let output_status =
        match output with
        | None -> Ok ()
        | Some path ->
          (match Design.Design_io.write_file path best.Candidate.design with
           | Ok () ->
             Format.fprintf fmt "design written to %s@." path;
             Ok ()
           | Error msg -> Error msg)
      in
      (match obs_status, output_status with
       | Ok (), Ok () -> `Ok ()
       | Error msg, _ | _, Error msg -> `Error (false, msg))
    | None -> `Error (false, "no feasible design found")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Run the automated design tool on an environment and print the \
             chosen data protection design.")
    Term.(ret (const run $ env_term $ apps_term $ seed_term $ budget_term
               $ likelihood_term $ output_term $ no_cache_term $ domains_term
               $ portfolio_terms $ obs_terms))

(* ------------------------------------------------------------------ *)
(* audit                                                               *)
(* ------------------------------------------------------------------ *)

let audit_cmd =
  let design_term =
    Arg.(required & opt (some string) None
         & info [ "design" ] ~docv:"FILE"
             ~doc:"Design file written by $(b,dstool solve --output).")
  in
  let run env apps likelihood path =
    let env, workloads = resolve_env env apps in
    match Design.Design_io.read_file env workloads path with
    | Error msg -> `Error (false, msg)
    | Ok design ->
      (match Cost.Evaluate.design design likelihood with
       | Error e ->
         `Error
           (false,
            Format.asprintf "design is infeasible: %a"
              Design.Provision.pp_infeasibility e)
       | Ok eval ->
         Format.fprintf fmt "%a@.@." Cost.Summary.pp eval.Cost.Evaluate.summary;
         Format.fprintf fmt "lint:@.%a@." Design.Lint.pp
           (Design.Lint.check design);
         Format.fprintf fmt "service levels achieved:@.%a@." Cost.Slo_report.pp
           (Cost.Slo_report.of_evaluation eval);
         Format.fprintf fmt "per-scenario recovery:@.";
         List.iter
           (fun ((scen : Failure.Scenario.t), outcomes) ->
              if outcomes <> [] then begin
                Format.fprintf fmt "  %a:@." Failure.Scenario.pp scen;
                List.iter
                  (fun o -> Format.fprintf fmt "    %a@." Recovery.Outcome.pp o)
                  outcomes
              end)
           eval.Cost.Evaluate.penalty.Cost.Penalty.details;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Evaluate a saved design: cost, achieved RTO/RPO per \
             application, and the per-scenario recovery log.")
    Term.(ret (const run $ env_term $ apps_term $ likelihood_term $ design_term))

(* ------------------------------------------------------------------ *)
(* risk                                                                *)
(* ------------------------------------------------------------------ *)

let risk_cmd =
  let design_term =
    Arg.(value & opt (some string) None
         & info [ "design" ] ~docv:"FILE"
             ~doc:"Saved design to analyze (default: solve first).")
  in
  let years_term =
    Arg.(value & opt int 10_000
         & info [ "years" ] ~docv:"N" ~doc:"Simulated years.")
  in
  (* Rare-event tail engine (Risk.Tail_sim): --sla turns it on and
     certifies; --tilt/--strata shape the importance sampling. Like
     every Exec consumer the engine is deterministic in --domains. *)
  let sla_term =
    Arg.(value & opt (some float) None
         & info [ "sla" ] ~docv:"A"
             ~doc:"Certify the design against an availability SLA (e.g. \
                   $(b,0.99999999999) for eleven nines): run the \
                   variance-reduced rare-event engine over $(b,--years) \
                   simulated years and report pass/fail/inconclusive with \
                   the confidence bound that decided it.")
  in
  let tilt_term =
    Arg.(value & opt float 8.
         & info [ "tilt" ] ~docv:"T"
             ~doc:"Importance-sampling rate tilt: tilted strata inflate \
                   their scenario class's failure rates by T (exact \
                   likelihood-ratio reweighting keeps every estimate \
                   unbiased under the nominal rates). Default 8.")
  in
  let strata_conv =
    let parse = function
      | "scope" -> Ok Risk.Tail_sim.By_scope
      | "none" -> Ok Risk.Tail_sim.Nominal_only
      | s -> Error (`Msg (Printf.sprintf "unknown strata %S (scope|none)" s))
    in
    let print ppf = function
      | Risk.Tail_sim.By_scope -> Format.pp_print_string ppf "scope"
      | Risk.Tail_sim.Nominal_only -> Format.pp_print_string ppf "none"
    in
    Arg.conv (parse, print)
  in
  let strata_term =
    Arg.(value & opt strata_conv Risk.Tail_sim.By_scope
         & info [ "strata" ] ~docv:"STRATA"
             ~doc:"Stratification of the tail engine: $(b,scope) (one \
                   tilted stratum per failure-scope class — object, \
                   array, site — plus an untilted nominal stratum; \
                   default) or $(b,none) (a single untilted stratum, \
                   plain Monte Carlo with unit weights).")
  in
  let run env apps seed budget likelihood design years sla tilt strategy
      no_cache domains obs_flags =
    let env, workloads = resolve_env env apps in
    let obs = obs_of obs_flags in
    let provision =
      match design with
      | Some path ->
        (match Design.Design_io.read_file env workloads path with
         | Error msg -> Error msg
         | Ok design ->
           (match Design.Provision.minimum design with
            | Ok prov -> Ok prov
            | Error e ->
              Error
                (Format.asprintf "design is infeasible: %a"
                   Design.Provision.pp_infeasibility e)))
      | None ->
        let budget =
          apply_domains domains
            (apply_cache no_cache (E.Budgets.with_seed budget seed))
        in
        (match
           Design_solver.solve ~params:budget.E.Budgets.solver ~obs env
             workloads likelihood
         with
         | Some outcome ->
           Ok outcome.Design_solver.best.Candidate.eval.Cost.Evaluate.provision
         | None -> Error "no feasible design found")
    in
    match provision with
    | Error msg -> `Error (false, msg)
    | Ok prov ->
      let rng = Prng.Rng.of_int seed in
      let pool = Exec.auto_width (Exec.create ~domains ()) in
      let sim = Risk.Year_sim.simulate ~years ~obs ~pool rng prov likelihood in
      Format.fprintf fmt "%a@." Risk.Year_sim.pp sim;
      let analytic = Cost.Penalty.expected_annual prov likelihood in
      Format.fprintf fmt "analytic expectation: %s@."
        (Units.Money.to_string
           (Units.Money.add analytic.Cost.Penalty.outage_total
              analytic.Cost.Penalty.loss_total));
      let tail_status =
        match sla with
        | None -> Ok ()
        | Some availability when availability <= 0. || availability >= 1. ->
          Error
            (Printf.sprintf "--sla %g: availability must be in (0, 1)"
               availability)
        | Some availability ->
          (* The tail stream splits off the year_sim generator after the
             naive run: Year_sim pre-splits one stream per chunk, so the
             parent has advanced by a fixed (years-dependent,
             pool-independent) amount and the tail sample stays
             byte-identical at every --domains. *)
          (match
             Risk.Tail_sim.simulate ~years ~tilt ~strategy ~obs ~pool
               (Prng.Rng.split rng) prov likelihood
           with
           | exception Invalid_argument msg -> Error msg
           | tail ->
             Format.fprintf fmt "@.%a@." Risk.Tail_sim.pp tail;
             let cert = Risk.Tail_sim.certify tail ~availability in
             Format.fprintf fmt "@.%a@." Risk.Tail_sim.pp_certification cert;
             Ok ())
      in
      (match tail_status, report_obs obs_flags obs with
       | Ok (), Ok () -> `Ok ()
       | Error msg, _ | _, Error msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "risk"
       ~doc:"Monte Carlo distribution of annual penalty cost for a design \
             (tail risk beyond the expected-value objective), plus an \
             importance-sampled rare-event engine that certifies the \
             design against deep availability SLAs ($(b,--sla)).")
    Term.(ret (const run $ env_term $ apps_term $ seed_term $ budget_term
               $ likelihood_term $ design_term $ years_term $ sla_term
               $ tilt_term $ strata_term $ no_cache_term $ domains_term
               $ obs_terms))

(* ------------------------------------------------------------------ *)
(* ablate                                                              *)
(* ------------------------------------------------------------------ *)

let ablate_cmd =
  let which_conv =
    let parse = function
      | "stages" -> Ok `Stages
      | "config" -> Ok `Config
      | "vault" -> Ok `Vault
      | "scheduling" -> Ok `Scheduling
      | "all" -> Ok `All
      | s ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown ablation %S (stages|config|vault|scheduling|all)" s))
    in
    Arg.conv (parse, fun ppf _ -> Format.pp_print_string ppf "<ablation>")
  in
  let which_term =
    Arg.(value & pos 0 which_conv `All
         & info [] ~docv:"WHICH" ~doc:"stages, config, vault, scheduling or all.")
  in
  let run seed budget which domains =
    let budgets = apply_domains domains (E.Budgets.with_seed budget seed) in
    let sections =
      [ (`Stages, "Design-solver stages (peer sites)",
         fun () -> E.Ablation.solver_stages ~budgets ());
        (`Stages, "Refit search shape: breadth x depth (peer sites)",
         fun () -> E.Ablation.search_shape ~budgets ());
        (`Config, "Configuration-solver features (peer sites)",
         fun () -> E.Ablation.config_features ~budgets ());
        (`Vault, "Vault staleness semantics (peer sites)",
         fun () -> E.Ablation.vault_modes ~budgets ());
        (`Scheduling, "Recovery scheduling policies (fixed design)",
         fun () -> E.Ablation.scheduling_policies ~budgets ()) ]
    in
    List.iter
      (fun (tag, title, f) ->
         if which = `All || which = tag then begin
           E.Ablation.pp fmt ~title (f ());
           Format.fprintf fmt "@."
         end)
      sections
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:"Ablation studies of the tool's own design choices.")
    Term.(const run $ seed_term $ budget_term $ which_term $ domains_term)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_cmd =
  let metaheuristics_term =
    Arg.(value & flag
         & info [ "metaheuristics" ]
             ~doc:"Also run the simulated-annealing and tabu-search \
                   baselines (related-work comparisons, not in the paper).")
  in
  let run env apps seed budget likelihood metaheuristics no_cache domains
      portfolio obs_flags =
    let env, workloads = resolve_env env apps in
    let budget =
      apply_portfolio portfolio
        (apply_domains domains
           (apply_cache no_cache (E.Budgets.with_seed budget seed)))
    in
    let obs = obs_of obs_flags in
    let entries =
      E.Compare.run ~budgets:budget ~metaheuristics ~obs env workloads
        likelihood
    in
    E.Report.figure3 fmt entries;
    match report_obs obs_flags obs with
    | Ok () -> `Ok ()
    | Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare the design tool with the human and random heuristics \
             (Figure 3).")
    Term.(ret (const run $ env_term $ apps_term $ seed_term $ budget_term
               $ likelihood_term $ metaheuristics_term $ no_cache_term
               $ domains_term $ portfolio_terms $ obs_terms))

(* ------------------------------------------------------------------ *)
(* sample                                                              *)
(* ------------------------------------------------------------------ *)

let sample_cmd =
  let samples_term =
    Arg.(value & opt int 20_000
         & info [ "samples" ] ~docv:"N" ~doc:"Number of random designs.")
  in
  let bins_term =
    Arg.(value & opt int 14
         & info [ "bins" ] ~docv:"B" ~doc:"Histogram buckets.")
  in
  let run env apps seed samples bins likelihood =
    let env, workloads = resolve_env env apps in
    let stats = E.Space_sampler.sample ~seed ~samples env workloads likelihood in
    E.Report.figure2 fmt stats ~bins ~marks:[]
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Sample the solution space and print the cost distribution \
             (Figure 2).")
    Term.(const run $ env_term $ apps_term $ seed_term $ samples_term
          $ bins_term $ likelihood_term)

(* ------------------------------------------------------------------ *)
(* scale                                                               *)
(* ------------------------------------------------------------------ *)

let scale_cmd =
  let rounds_term =
    Arg.(value & opt (list int) [ 1; 2; 3; 4; 5 ]
         & info [ "rounds" ] ~docv:"R1,R2,..."
             ~doc:"Scaling rounds (4 applications each).")
  in
  let fleet_pods_term =
    Arg.(value & opt (some (list int)) None
         & info [ "fleet-pods" ] ~docv:"P1,P2,..."
             ~doc:"Switch the sweep to the sharded fleet coordinator: one \
                   cold fleet solve per pod count (each pod is 4 fully \
                   connected sites holding $(b,--apps-per-pod) \
                   applications) instead of the Figure 4 rounds. \
                   $(b,--fleet-pods 128) reaches 1,024 applications.")
  in
  let apps_per_pod_term =
    Arg.(value & opt int 8
         & info [ "apps-per-pod" ] ~docv:"N"
             ~doc:"Applications per pod on the fleet axis (default 8; \
                   ignored without $(b,--fleet-pods)).")
  in
  let run seed budget rounds domains fleet_pods apps_per_pod =
    let budget = apply_domains domains (E.Budgets.with_seed budget seed) in
    match fleet_pods with
    | Some pods ->
      let points =
        E.Scalability.run_fleet ~budgets:budget ~apps_per_pod ~pods ()
      in
      E.Report.fleet_scale fmt points
    | None ->
      let points = E.Scalability.run ~budgets:budget ~rounds () in
      E.Report.figure4 fmt points
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:"Scalability experiment: Figure 4 rounds on four fully \
             connected sites, or (with $(b,--fleet-pods)) the sharded \
             fleet coordinator past 1,000 applications.")
    Term.(const run $ seed_term $ budget_term $ rounds_term $ domains_term
          $ fleet_pods_term $ apps_per_pod_term)

(* ------------------------------------------------------------------ *)
(* fleet                                                               *)
(* ------------------------------------------------------------------ *)

let fleet_cmd =
  let pods_term =
    Arg.(value & opt int 16
         & info [ "pods" ] ~docv:"N"
             ~doc:"Four-site pods in the fleet environment (fleet size = \
                   pods x $(b,--apps-per-pod)).")
  in
  let apps_per_pod_term =
    Arg.(value & opt int 8
         & info [ "apps-per-pod" ] ~docv:"N"
             ~doc:"Applications per pod (default 8).")
  in
  let shards_term =
    Arg.(value & opt (some int) None
         & info [ "shards" ] ~docv:"N"
             ~doc:"Shard count (default: one shard per failure domain, \
                   i.e. one per pod). More shards than domains makes \
                   shards contend for sites and exercises the reconcile \
                   pass.")
  in
  let drift_term =
    Arg.(value & opt (some int) None
         & info [ "drift" ] ~docv:"APP_ID"
             ~doc:"After the cold solve, scale application APP_ID's \
                   penalty and update rates by $(b,--drift-factor) and \
                   warm re-solve the fleet: only the dirty app's shard \
                   re-enters the solver, every other shard is reused \
                   byte-for-byte.")
  in
  let drift_factor_term =
    Arg.(value & opt float 2.
         & info [ "drift-factor" ] ~docv:"X"
             ~doc:"Multiplier applied by $(b,--drift) (default 2).")
  in
  let shard_mode (r : Fleet.shard_result) =
    if r.Fleet.reused then "reused"
    else
      match r.Fleet.outcome with
      | Some _ -> "solved"
      | None -> "infeasible"
  in
  let print_fleet label started (result : Fleet.t) =
    let seconds = Obs.Metrics.now_s () -. started in
    let napps = List.length result.Fleet.apps in
    Format.fprintf fmt
      "%s: cost %s, %d evaluations, %d conflicts, %d reconcile passes, %d \
       unplaced, %.2fs (%.1f apps/s)@."
      label
      (Units.Money.to_string result.Fleet.cost)
      result.Fleet.evaluations result.Fleet.conflicts
      result.Fleet.reconcile_passes
      (List.length result.Fleet.unplaced)
      seconds
      (if seconds > 0. then float_of_int napps /. seconds else 0.)
  in
  let print_shards (result : Fleet.t) =
    Format.fprintf fmt "%-6s %6s %-20s %12s %8s %s@." "shard" "apps" "sites"
      "cost" "evals" "mode";
    List.iter
      (fun (r : Fleet.shard_result) ->
         let sites =
           String.concat ","
             (List.map (Printf.sprintf "P%d") r.Fleet.shard.Fleet.sites)
         in
         let cost, evals =
           match r.Fleet.outcome with
           | Some o ->
             (Units.Money.to_string
                (Cost.Summary.total
                   (Candidate.summary o.Design_solver.best)),
              string_of_int o.Design_solver.evaluations)
           | None -> ("-", "-")
         in
         Format.fprintf fmt "%-6d %6d %-20s %12s %8s %s@."
           r.Fleet.shard.Fleet.index
           (List.length r.Fleet.shard.Fleet.apps)
           sites cost evals (shard_mode r))
      result.Fleet.shard_results
  in
  let run pods apps_per_pod shards drift drift_factor seed budget domains
      likelihood obs_flags =
    let budget = apply_domains domains (E.Budgets.with_seed budget seed) in
    let params =
      { budget.E.Budgets.solver with
        Design_solver.domains = max 1 budget.E.Budgets.domains }
    in
    let env = E.Envs.fleet_sites ~pods () in
    let apps = E.Envs.fleet_apps ~pods ~apps_per_pod in
    let obs = obs_of obs_flags in
    Format.fprintf fmt "fleet: %d applications over %d pods (%d sites)@."
      (List.length apps) pods (List.length (Resources.Env.site_ids env));
    let started = Obs.Metrics.now_s () in
    let cold = Fleet.solve ~params ?shards ~obs env apps likelihood in
    print_fleet "cold solve" started cold;
    if List.length cold.Fleet.shard_results <= 32 then print_shards cold;
    let drift_status =
      match drift with
      | None -> Ok ()
      | Some app_id when not (List.exists (fun a -> a.Workload.App.id = app_id) apps) ->
        Error (Printf.sprintf "--drift: no application with id %d (fleet ids \
                               are 1..%d)" app_id (List.length apps))
      | Some app_id ->
        let apps' =
          List.map
            (fun a ->
               if a.Workload.App.id = app_id then
                 Workload.App.drift ~factor:drift_factor a
               else a)
            apps
        in
        let started = Obs.Metrics.now_s () in
        let warm = Fleet.resolve ~params ~obs ~incumbent:cold env apps' likelihood in
        Format.fprintf fmt
          "@.drifted app %d by x%g; %d of %d shards reused byte-for-byte@."
          app_id drift_factor
          (List.length
             (List.filter (fun r -> r.Fleet.reused) warm.Fleet.shard_results))
          (List.length warm.Fleet.shard_results);
        print_fleet "warm re-solve" started warm;
        Format.fprintf fmt
          "warm used %d evaluations vs %d cold (%.1fx fewer)@."
          warm.Fleet.evaluations cold.Fleet.evaluations
          (if warm.Fleet.evaluations > 0 then
             float_of_int cold.Fleet.evaluations
             /. float_of_int warm.Fleet.evaluations
           else Float.infinity);
        Ok ()
    in
    let obs_status = report_obs obs_flags obs in
    match drift_status, obs_status with
    | Ok (), Ok () -> `Ok ()
    | Error msg, _ | _, Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Solve a pod-structured fleet with the sharded coordinator: \
             per-failure-domain shard solves in parallel, index-order \
             merge, bounded reconcile. With $(b,--drift), demonstrate the \
             warm incremental re-solve.")
    Term.(ret (const run $ pods_term $ apps_per_pod_term $ shards_term
               $ drift_term $ drift_factor_term $ seed_term $ budget_term
               $ domains_term $ likelihood_term $ obs_terms))

(* ------------------------------------------------------------------ *)
(* sensitivity                                                         *)
(* ------------------------------------------------------------------ *)

let sensitivity_cmd =
  let axis_conv =
    let parse = function
      | "object" -> Ok E.Sensitivity.Object_failure
      | "array" -> Ok E.Sensitivity.Array_failure
      | "site" -> Ok E.Sensitivity.Site_failure
      | s ->
        Error (`Msg (Printf.sprintf "unknown axis %S (object|array|site)" s))
    in
    Arg.conv
      (parse, fun ppf a -> Format.pp_print_string ppf (E.Sensitivity.axis_name a))
  in
  let axis_term =
    Arg.(required & pos 0 (some axis_conv) None
         & info [] ~docv:"AXIS" ~doc:"Swept axis: object, array or site.")
  in
  let apps_count_term =
    Arg.(value & opt int 16 & info [ "apps" ] ~docv:"N" ~doc:"Applications.")
  in
  let run seed budget axis apps domains =
    let budget = apply_domains domains (E.Budgets.with_seed budget seed) in
    let points = E.Sensitivity.run ~budgets:budget ~apps axis in
    E.Report.sensitivity fmt axis points
  in
  Cmd.v
    (Cmd.info "sensitivity"
       ~doc:"Failure-likelihood sensitivity sweeps (Figures 5-7).")
    Term.(const run $ seed_term $ budget_term $ axis_term $ apps_count_term
          $ domains_term)

(* ------------------------------------------------------------------ *)
(* diff                                                                *)
(* ------------------------------------------------------------------ *)

let diff_cmd =
  let file_term idx name =
    Arg.(required & pos idx (some string) None
         & info [] ~docv:name ~doc:(name ^ " design file."))
  in
  let run env apps before_path after_path =
    let env, workloads = resolve_env env apps in
    match
      Design.Design_io.read_file env workloads before_path,
      Design.Design_io.read_file env workloads after_path
    with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok before, Ok after ->
      (match Design.Design_io.diff before after with
       | [] -> Format.fprintf fmt "designs are identical@."; `Ok ()
       | changes ->
         List.iter
           (fun c -> Format.fprintf fmt "%a@." Design.Design_io.pp_change c)
           changes;
         `Ok ())
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Compare two saved designs application by application.")
    Term.(ret (const run $ env_term $ apps_term $ file_term 0 "BEFORE"
               $ file_term 1 "AFTER"))

(* ------------------------------------------------------------------ *)
(* frontier                                                            *)
(* ------------------------------------------------------------------ *)

let frontier_cmd =
  let multipliers_term =
    Arg.(value & opt (list float) E.Frontier.default_multipliers
         & info [ "multipliers" ] ~docv:"M1,M2,..."
             ~doc:"Risk-aversion multipliers applied to the penalty rates.")
  in
  let run env apps seed budget likelihood multipliers domains =
    let env, workloads = resolve_env env apps in
    let budget = apply_domains domains (E.Budgets.with_seed budget seed) in
    let points =
      E.Frontier.run ~budgets:budget ~multipliers env workloads likelihood
    in
    Format.fprintf fmt "Outlay / penalty trade-off frontier:@.";
    E.Frontier.pp fmt points
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:"Sweep a risk-aversion multiplier and trace the outlay vs \
             expected-penalty trade-off frontier.")
    Term.(const run $ env_term $ apps_term $ seed_term $ budget_term
          $ likelihood_term $ multipliers_term $ domains_term)

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

(* A fixed menu of workloads worth profiling, run under a fully
   instrumented capability (metrics + trace) and rendered as a ds-prof/1
   report. [refit] reproduces the bench harness's parallel-refit shape —
   the workload whose parallel leg is slower than sequential on the
   checked-in bench — so the report attributes exactly that regression:
   worker busy/idle, memo lock waits, spawn/join overhead, Gc deltas. *)
let profile_cmd =
  let workload_conv =
    let parse = function
      | "refit" -> Ok `Refit
      | "solve" -> Ok `Solve
      | "year_sim" -> Ok `Year_sim
      | "portfolio" -> Ok `Portfolio
      | s ->
        Error
          (`Msg
             (Printf.sprintf
                "unknown workload %S (refit|solve|year_sim|portfolio)" s))
    in
    let print ppf w =
      Format.pp_print_string ppf
        (match w with
         | `Refit -> "refit"
         | `Solve -> "solve"
         | `Year_sim -> "year_sim"
         | `Portfolio -> "portfolio")
    in
    Arg.conv (parse, print)
  in
  let workload_term =
    Arg.(value & pos 0 workload_conv `Refit
         & info [] ~docv:"WORKLOAD"
             ~doc:"What to profile: $(b,refit) (the bench harness's \
                   refit-heavy solve, default), $(b,solve) (a budgeted \
                   solve), $(b,year_sim) (solve + Monte Carlo year \
                   simulation) or $(b,portfolio) (4 multi-start \
                   restarts).")
  in
  let out_term =
    Arg.(value & opt string "profile.json"
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Where to write the ds-prof/1 JSON report.")
  in
  let trace_out_term =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Also write the Chrome trace-event JSON (one lane per \
                   worker domain) to FILE.")
  in
  let years_term =
    Arg.(value & opt int 10_000
         & info [ "years" ] ~docv:"N"
             ~doc:"Simulated years for the year_sim workload.")
  in
  let run env apps seed budget likelihood workload out trace_out domains
      years =
    let env, workloads = resolve_env env apps in
    let budget = apply_domains domains (E.Budgets.with_seed budget seed) in
    let obs = Obs.create ~metrics:true ~trace:true () in
    let solve_with params =
      Design_solver.solve ~params ~obs env workloads likelihood
    in
    let label, ran =
      match workload with
      | `Refit ->
        (* The bench harness's parallel-refit shape (bench/main.ml):
           refit dominates, polish off, so the report is almost pure
           probe-map behavior. *)
        let params =
          { budget.E.Budgets.solver with
            Design_solver.breadth = 4;
            depth = 4;
            refit_rounds = 12;
            patience = 13;
            polish = None }
        in
        ("refit", solve_with params <> None)
      | `Solve -> ("solve", solve_with budget.E.Budgets.solver <> None)
      | `Year_sim ->
        ( "year_sim",
          match solve_with budget.E.Budgets.solver with
          | None -> false
          | Some outcome ->
            let pool = Exec.auto_width (Exec.create ~domains ()) in
            let prov =
              outcome.Design_solver.best.Candidate.eval
                .Cost.Evaluate.provision
            in
            ignore
              (Risk.Year_sim.simulate ~years ~obs ~pool
                 (Prng.Rng.of_int seed) prov likelihood);
            true )
      | `Portfolio ->
        let pool = Exec.auto_width (Exec.create ~domains ()) in
        ( "portfolio",
          Search.run ~restarts:4 ~params:budget.E.Budgets.solver ~pool ~obs
            env workloads likelihood
          <> None )
    in
    if not ran then `Error (false, "no feasible design found")
    else begin
      let report =
        Obs.Prof.capture ~label ?registry:(Obs.metrics obs)
          ?trace:(Obs.trace obs) ()
      in
      Format.fprintf fmt "%a" Obs.Prof.pp report;
      let trace_status =
        match (trace_out, Obs.trace obs) with
        | Some path, Some collector ->
          Obs.write_file path (Obs.Trace.to_chrome_json collector)
        | _ -> Ok ()
      in
      match (Obs.write_file out (Obs.Prof.to_json report), trace_status) with
      | Ok (), Ok () ->
        Format.fprintf fmt "@.profile written to %s%s@." out
          (match trace_out with
           | Some p -> Printf.sprintf ", trace to %s" p
           | None -> "");
        `Ok ()
      | Error msg, _ | _, Error msg -> `Error (false, msg)
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a representative workload fully instrumented and write a \
             structured profiling report: per-stage wall/allocation \
             breakdown, domain-pool utilization (worker busy/idle, \
             spawn/join), lock-wait totals and histogram percentiles, \
             plus an optional per-domain-lane Chrome trace.")
    Term.(ret (const run $ env_term $ apps_term $ seed_term $ budget_term
               $ likelihood_term $ workload_term $ out_term $ trace_out_term
               $ domains_term $ years_term))

(* ------------------------------------------------------------------ *)
(* trace                                                               *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let float_opt name default doc =
    Arg.(value & opt float default & info [ name ] ~docv:"X" ~doc)
  in
  let run seed iops writes skew hours scale =
    let profile =
      { Trace.Synth.default with
        Trace.Synth.mean_iops = iops;
        write_fraction = writes;
        zipf_skew = skew;
        duration = Units.Time.hours hours }
    in
    match Trace.Synth.validate profile with
    | Error msg -> `Error (false, msg)
    | Ok () ->
      let trace = Trace.Synth.generate (Prng.Rng.of_int seed) profile in
      let c = Trace.Characterize.analyze trace in
      Format.fprintf fmt "%a@." Trace.Trace.pp trace;
      Format.fprintf fmt "%a@." Trace.Characterize.pp c;
      let app =
        Trace.Characterize.to_app ~id:1 ~name:"traced" ~class_tag:"T"
          ~outage_per_hour:(Units.Money.k 100.)
          ~loss_per_hour:(Units.Money.k 100.) ~scale c
      in
      Format.fprintf fmt "as a Table 1 row (at $100K/hr penalties):@.%a@."
        Workload.App.pp_row app;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Generate a synthetic cello-like I/O trace and derive the \
             workload characteristics the design tool consumes.")
    Term.(ret (const run $ seed_term
               $ float_opt "iops" 120. "Mean request rate (1/s)."
               $ float_opt "writes" 0.4 "Write fraction in [0,1]."
               $ float_opt "skew" 0.8 "Zipf popularity skew."
               $ float_opt "hours" 2. "Trace duration in hours."
               $ float_opt "scale" 1. "Scale factor for the derived app."))

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

let port_term =
  Arg.(value & opt int Server.Daemon.default_config.Server.Daemon.port
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port (default 7411; 0 picks an ephemeral port).")

let host_term =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"HOST" ~doc:"Bind / connect address.")

let serve_cmd =
  let concurrency_term =
    Arg.(value & opt int 2
         & info [ "concurrency" ] ~docv:"N"
             ~doc:"Worker threads serving heavy requests (solve, \
                   resolve, fleet, risk) concurrently.")
  in
  let queue_term =
    Arg.(value & opt int 16
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission-queue depth: heavy requests beyond N \
                   waiting are rejected with the $(i,overloaded) error \
                   instead of queuing unboundedly.")
  in
  let cache_size_term =
    Arg.(value & opt int 4096
         & info [ "cache-size" ] ~docv:"N"
             ~doc:"Resident configuration-cache capacity, shared across \
                   requests (resizable at runtime via the \
                   $(i,cache_resize) method).")
  in
  let run host port concurrency queue budget_evals domains cache_size =
    let config =
      { Server.Daemon.host; port; concurrency; queue_depth = queue;
        budget_evals; cache_capacity = cache_size; domains }
    in
    match Server.Daemon.create config with
    | exception Unix.Unix_error (e, _, _) ->
      `Error
        (false,
         Printf.sprintf "cannot listen on %s:%d: %s" host port
           (Unix.error_message e))
    | exception Invalid_argument msg -> `Error (false, msg)
    | daemon ->
      (* Flushed before serving so scripts (CI smoke, tests) can wait
         for the line and read the ephemeral port out of it. *)
      Format.fprintf fmt "dstool server listening on %s:%d@." host
        (Server.Daemon.port daemon);
      Server.Daemon.run daemon;
      Format.fprintf fmt "dstool server drained, exiting@.";
      `Ok ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the design tool as a long-running JSON-RPC service: a \
             resident solver pool and configuration cache serve solve / \
             resolve / risk / fleet / metrics requests over \
             newline-delimited JSON-RPC 2.0 on TCP until a shutdown \
             request drains it.")
    Term.(ret (const run $ host_term $ port_term $ concurrency_term
               $ queue_term $ budget_evals_term $ domains_term
               $ cache_size_term))

let client_cmd =
  let method_term =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"METHOD"
             ~doc:"RPC method: solve, resolve, fleet, risk, metrics, \
                   health, cache_resize or shutdown.")
  in
  let params_term =
    Arg.(value & pos 1 string "{}"
         & info [] ~docv:"PARAMS"
             ~doc:"Request parameters as a JSON object (default {}).")
  in
  let run host port method_ params =
    match Server.Json.of_string params with
    | Error msg -> `Error (false, "PARAMS: " ^ msg)
    | Ok params ->
      (match Server.Client.connect ~host ~port () with
       | exception Unix.Unix_error (e, _, _) ->
         `Error
           (false,
            Printf.sprintf "cannot connect to %s:%d: %s" host port
              (Unix.error_message e))
       | client ->
         let result =
           Server.Client.call
             ~on_note:(fun ~method_ params ->
               Format.fprintf fmt "note %s: %s@." method_
                 (Server.Json.to_string params))
             client ~method_ params
         in
         Server.Client.close client;
         (match result with
          | Ok v ->
            Format.fprintf fmt "%s@." (Server.Json.to_string v);
            `Ok ()
          | Error msg -> `Error (false, msg)))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one JSON-RPC request to a running $(b,dstool serve) \
             and print the result (progress notifications stream to \
             stdout as they arrive).")
    Term.(ret (const run $ host_term $ port_term $ method_term
               $ params_term))

(* ------------------------------------------------------------------ *)

let main =
  let doc = "automated design of dependable storage solutions (DSN'06)" in
  Cmd.group
    (Cmd.info "dstool" ~version:"1.0.0" ~doc)
    [ catalogs_cmd; solve_cmd; audit_cmd; compare_cmd; sample_cmd; scale_cmd;
      fleet_cmd; sensitivity_cmd; ablate_cmd; risk_cmd; frontier_cmd;
      profile_cmd; trace_cmd; diff_cmd; serve_cmd; client_cmd ]

let () = exit (Cmd.eval main)
