(** The peer-sites case study solution (Table 4): which technique and
    which devices the design tool picks for each of the eight
    applications. *)

module App = Ds_workload.App
module Site = Ds_resources.Site
module Candidate = Ds_solver.Candidate

type row = {
  app : App.t;
  technique : string;  (** Paper-style name, e.g. "Async mirror (F) with backup". *)
  primary_site : Site.id;
  array_sites : Site.id list;  (** Sites where the app occupies an array. *)
  tape_sites : Site.id list;  (** Sites whose tape library it uses. *)
  uses_network : bool;
}

val rows_of_candidate : Candidate.t -> row list

val run : ?budgets:Budgets.t -> unit -> Candidate.t option
(** Solve the peer-sites case study with the design tool. *)
