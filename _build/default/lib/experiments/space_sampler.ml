module Env = Ds_resources.Env
module App = Ds_workload.App
module Likelihood = Ds_failure.Likelihood
module Money = Ds_units.Money
module Evaluate = Ds_cost.Evaluate
module Rng = Ds_prng.Rng
module Random_search = Ds_heuristics.Random_search

type stats = {
  costs : float array;
  infeasible : int;
}

let sample ?(seed = 7) ~samples env apps likelihood =
  let rng = Rng.of_int seed in
  let costs = ref [] in
  let infeasible = ref 0 in
  for _ = 1 to samples do
    match Random_search.sample_design rng env apps with
    | None -> incr infeasible
    | Some design ->
      (match Evaluate.design design likelihood with
       | Ok eval ->
         costs := Money.to_dollars (Evaluate.total eval) :: !costs
       | Error _ -> incr infeasible)
  done;
  let costs = Array.of_list !costs in
  Array.sort Float.compare costs;
  { costs; infeasible = !infeasible }

type histogram = {
  bucket_lo : float array;
  bucket_hi : float array;
  counts : int array;
}

let histogram ~bins stats =
  if bins < 1 then invalid_arg "Space_sampler.histogram: bins < 1";
  let n = Array.length stats.costs in
  if n = 0 then invalid_arg "Space_sampler.histogram: no feasible samples";
  let lo = stats.costs.(0) and hi = stats.costs.(n - 1) in
  let lo = Float.max lo 1. in
  let hi = Float.max hi (lo *. 1.0001) in
  let log_lo = log lo and log_hi = log hi in
  let width = (log_hi -. log_lo) /. float_of_int bins in
  let bucket_lo = Array.init bins (fun i -> exp (log_lo +. width *. float_of_int i)) in
  let bucket_hi =
    Array.init bins (fun i -> exp (log_lo +. width *. float_of_int (i + 1)))
  in
  let counts = Array.make bins 0 in
  Array.iter
    (fun cost ->
       let idx =
         if cost <= lo then 0
         else
           let raw = int_of_float ((log cost -. log_lo) /. width) in
           min (bins - 1) (max 0 raw)
       in
       counts.(idx) <- counts.(idx) + 1)
    stats.costs;
  { bucket_lo; bucket_hi; counts }

let percentile_of stats cost =
  let n = Array.length stats.costs in
  if n = 0 then 0.
  else begin
    (* costs is sorted: binary search for the first element >= cost. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if stats.costs.(mid) < cost then search (mid + 1) hi else search lo mid
    in
    float_of_int (search 0 n) /. float_of_int n
  end

let spread stats =
  let n = Array.length stats.costs in
  if n = 0 || stats.costs.(0) <= 0. then None
  else Some (stats.costs.(n - 1) /. stats.costs.(0))
