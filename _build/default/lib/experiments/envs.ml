module Env = Ds_resources.Env
module Catalog = Ds_resources.Device_catalog
module App = Ds_workload.App
module W = Ds_workload.Workload_catalog

let peer_sites () =
  Env.fully_connected ~name:"peer-sites" ~site_count:2 ~bays_per_site:2
    ~array_models:Catalog.array_models ~tape_models:Catalog.tape_models
    ~link_model:Catalog.link_high ~max_link_units:32 ~compute_slots_per_site:8 ()

let table4_order = [ W.central_banking; W.consumer_banking; W.web_service; W.student_accounts ]

let peer_apps () =
  List.init 8 (fun i ->
      W.instantiate (List.nth table4_order (i mod 4)) ~id:(i + 1))

let quad_sites () =
  Env.fully_connected ~name:"quad-sites" ~site_count:4 ~bays_per_site:2
    ~array_models:Catalog.array_models ~tape_models:Catalog.tape_models
    ~link_model:Catalog.link_high ~max_link_units:16 ~compute_slots_per_site:8 ()

let scaled_apps ~rounds = W.balanced_rounds ~rounds
