module Money = Ds_units.Money
module Likelihood = Ds_failure.Likelihood
module Recovery_params = Ds_recovery.Recovery_params
module Engine = Ds_sim.Engine
module Evaluate = Ds_cost.Evaluate
module Candidate = Ds_solver.Candidate
module Config_solver = Ds_solver.Config_solver
module Design_solver = Ds_solver.Design_solver
module Reconfigure = Ds_solver.Reconfigure
module Rng = Ds_prng.Rng

type row = {
  label : string;
  total : Money.t option;
  detail : string;
}

let likelihood = Likelihood.default

let of_candidate label detail = function
  | Some c -> { label; total = Some (Candidate.cost c); detail }
  | None -> { label; total = None; detail }

let solver_stages ?(budgets = Budgets.default) () =
  let env = Envs.peer_sites () in
  let apps = Envs.peer_apps () in
  let params = budgets.Budgets.solver in
  let rng = Rng.of_int params.Design_solver.seed in
  let state =
    Reconfigure.state ~options:params.Design_solver.options ~rng likelihood
  in
  let greedy = Design_solver.greedy state params env apps in
  let refit =
    Option.map (fun start -> fst (Design_solver.refit state params start)) greedy
  in
  let full =
    Design_solver.solve ~params env apps likelihood
    |> Option.map (fun o -> o.Design_solver.best)
  in
  [ of_candidate "greedy only" "stage 1, search-grade configuration" greedy;
    of_candidate "greedy + refit" "stages 1-2, search-grade configuration" refit;
    of_candidate "full (with polish)" "stages 1-2 + full configuration polish"
      full ]

(* Breadth x depth shapes with comparable per-round work (b x (1 + d x b)
   nodes): deep-and-narrow, the paper's 3 x 5, and shallow-and-wide. *)
let search_shape ?(budgets = Budgets.default) () =
  let env = Envs.peer_sites () in
  let apps = Envs.peer_apps () in
  List.map
    (fun (breadth, depth) ->
       let params =
         { budgets.Budgets.solver with
           Design_solver.breadth; depth }
       in
       let label = Printf.sprintf "b=%d, d=%d" breadth depth in
       match Design_solver.solve ~params env apps likelihood with
       | Some outcome ->
         { label;
           total = Some (Candidate.cost outcome.Design_solver.best);
           detail =
             Printf.sprintf "%d configuration-solver calls"
               outcome.Design_solver.evaluations }
       | None -> { label; total = None; detail = "" })
    [ (1, 12); (3, 5); (5, 3); (8, 1) ]

let config_features ?(budgets = Budgets.default) () =
  let env = Envs.peer_sites () in
  let apps = Envs.peer_apps () in
  let solve options label detail =
    let params = { budgets.Budgets.solver with Design_solver.options } in
    Design_solver.solve ~params env apps likelihood
    |> Option.map (fun o -> o.Design_solver.best)
    |> of_candidate label detail
  in
  let base = Config_solver.search_options in
  [ solve { base with Config_solver.window_scope = Config_solver.Skip;
                      max_growth_steps = 0 }
      "minimum provisioning" "no window search, no resource growth";
    solve { base with Config_solver.window_scope = Config_solver.Skip }
      "growth only" "no window search";
    solve { base with Config_solver.max_growth_steps = 0 }
      "windows only" "no resource growth";
    solve base "windows + growth" "the full configuration solver" ]

(* A fixed all-tape design: every peer-sites app protected by tape backup
   alone, primaries split across the sites. After a site disaster these
   apps can only recover from the vault, so the two staleness semantics
   produce visibly different loss penalties. *)
let all_tape_design () =
  let env = Envs.peer_sites () in
  let slot site = Ds_resources.Slot.Array_slot.v ~site ~bay:0 in
  let tape site = Ds_resources.Slot.Tape_slot.v ~site in
  List.fold_left
    (fun design (app : Ds_workload.App.t) ->
       let site = 1 + (app.Ds_workload.App.id mod 2) in
       let asg =
         Ds_design.Assignment.v ~app
           ~technique:Ds_protection.Technique_catalog.tape_backup
           ~primary:(slot site) ~backup:(tape site) ()
       in
       match
         Ds_design.Design.add design asg
           ~primary_model:Ds_resources.Device_catalog.xp1200
           ~tape_model:Ds_resources.Device_catalog.tape_high ()
       with
       | Ok design -> design
       | Error msg -> invalid_arg msg)
    (Ds_design.Design.empty env)
    (Envs.peer_apps ())

let vault_modes ?budgets:_ () =
  let design = all_tape_design () in
  List.map
    (fun (mode, label, detail) ->
       let params =
         { Recovery_params.default with Recovery_params.vault_mode = mode }
       in
       match Evaluate.design ~params design likelihood with
       | Ok eval -> { label; total = Some (Evaluate.total eval); detail }
       | Error _ -> { label; total = None; detail })
    [ (Recovery_params.Cycle, "vault: cycle",
       "staleness includes the 28-day vault cycle (faithful Table 2)");
      (Recovery_params.Continuous, "vault: continuous",
       "every tape full couriered within a day") ]

let scheduling_policies ?budgets:_ () =
  (* Fix the all-tape design: after an array failure or site disaster,
     the four co-located applications (distinct priorities, distinct
     dataset sizes) restore one after another from the shared tape
     library, so the serialization order directly moves the outage
     penalties. *)
  let design = all_tape_design () in
  List.map
    (fun (policy, label, detail) ->
       let params =
         { Recovery_params.default with Recovery_params.scheduling = policy }
       in
       match Evaluate.design ~params design likelihood with
       | Ok eval -> { label; total = Some (Evaluate.total eval); detail }
       | Error _ -> { label; total = None; detail })
    [ (Engine.Priority, "priority (paper)",
       "serialized by penalty-rate priority");
      (Engine.Fifo, "fifo", "submission order");
      (Engine.Smallest_first, "smallest first",
       "least total recovery work first") ]

let pp ppf ~title rows =
  Format.fprintf ppf "%s@." title;
  List.iter
    (fun row ->
       match row.total with
       | Some m ->
         Format.fprintf ppf "  %-24s %12s  %s@." row.label (Money.to_string m)
           row.detail
       | None ->
         Format.fprintf ppf "  %-24s %12s  %s@." row.label "infeasible"
           row.detail)
    rows
