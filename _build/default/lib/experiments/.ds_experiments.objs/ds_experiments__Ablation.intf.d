lib/experiments/ablation.mli: Budgets Ds_units Format
