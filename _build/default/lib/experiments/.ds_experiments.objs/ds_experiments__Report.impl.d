lib/experiments/report.ml: Array Case_study Compare Ds_cost Ds_protection Ds_resources Ds_units Ds_workload Format List Printf Scalability Sensitivity Space_sampler String
