lib/experiments/ablation.ml: Budgets Ds_cost Ds_design Ds_failure Ds_prng Ds_protection Ds_recovery Ds_resources Ds_sim Ds_solver Ds_units Ds_workload Envs Format List Option Printf
