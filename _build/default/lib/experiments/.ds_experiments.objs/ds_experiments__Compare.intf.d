lib/experiments/compare.mli: Budgets Ds_cost Ds_failure Ds_resources Ds_workload
