lib/experiments/frontier.ml: Budgets Ds_cost Ds_design Ds_failure Ds_resources Ds_solver Ds_units Ds_workload Envs Format List
