lib/experiments/case_study.mli: Budgets Ds_resources Ds_solver Ds_workload
