lib/experiments/envs.mli: Ds_resources Ds_workload
