lib/experiments/case_study.ml: Budgets Ds_design Ds_failure Ds_protection Ds_resources Ds_solver Ds_workload Envs Int List Option
