lib/experiments/budgets.ml: Ds_solver
