lib/experiments/space_sampler.ml: Array Ds_cost Ds_failure Ds_heuristics Ds_prng Ds_resources Ds_units Ds_workload Float
