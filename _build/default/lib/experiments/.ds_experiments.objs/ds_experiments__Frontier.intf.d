lib/experiments/frontier.mli: Budgets Ds_failure Ds_resources Ds_units Ds_workload Format
