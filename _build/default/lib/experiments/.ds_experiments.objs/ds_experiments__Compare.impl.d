lib/experiments/compare.ml: Budgets Ds_cost Ds_failure Ds_heuristics Ds_resources Ds_solver Ds_units Ds_workload Envs Fun List Option String
