lib/experiments/budgets.mli: Ds_solver
