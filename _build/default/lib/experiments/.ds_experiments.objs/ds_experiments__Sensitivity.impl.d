lib/experiments/sensitivity.ml: Budgets Ds_cost Ds_failure Ds_solver Ds_units Envs List Option
