lib/experiments/scalability.ml: Budgets Compare Ds_cost Ds_failure Ds_units Envs List Option String
