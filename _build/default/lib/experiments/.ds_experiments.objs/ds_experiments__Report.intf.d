lib/experiments/report.mli: Case_study Compare Format Scalability Sensitivity Space_sampler
