lib/experiments/sensitivity.mli: Budgets Ds_cost Ds_failure Ds_units
