lib/experiments/envs.ml: Ds_resources Ds_workload List
