lib/experiments/scalability.mli: Budgets Ds_units
