lib/experiments/space_sampler.mli: Ds_failure Ds_resources Ds_workload
