module Money = Ds_units.Money
module Likelihood = Ds_failure.Likelihood
module Summary = Ds_cost.Summary

type point = {
  apps : int;
  design_tool : Money.t option;
  random : Money.t option;
  human : Money.t option;
}

let total entry =
  Option.map Summary.total entry.Compare.summary

let find entries label =
  List.find_opt (fun (e : Compare.entry) -> String.equal e.Compare.label label)
    entries

let run ?(budgets = Budgets.default) ?(rounds = [ 1; 2; 3; 4; 5 ]) () =
  let env = Envs.quad_sites () in
  List.map
    (fun round ->
       let apps = Envs.scaled_apps ~rounds:round in
       let entries = Compare.run ~budgets env apps Likelihood.default in
       { apps = List.length apps;
         design_tool = Option.bind (find entries "design tool") total;
         random = Option.bind (find entries "random") total;
         human = Option.bind (find entries "human") total })
    rounds
