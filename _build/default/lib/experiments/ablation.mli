(** Ablation studies on the design choices of the tool itself.

    Not in the paper's evaluation, but each one isolates a mechanism the
    paper argues for (or explicitly simplifies):

    - {!solver_stages}: what the stage-2 refit search and the final
      configuration polish buy over greedy best-fit alone (Section 3.1's
      two-stage argument);
    - {!config_features}: what the configuration solver's window search
      and add-resources loop contribute (Section 3.2);
    - {!vault_modes}: the two readings of Table 2's vault row (DESIGN.md);
    - {!scheduling_policies}: the paper's priority serialization vs FIFO
      and smallest-first recovery scheduling (the Section 3.2.2
      simplification), evaluated on a fixed design. *)

module Money = Ds_units.Money

type row = {
  label : string;
  total : Money.t option;  (** [None] when infeasible. *)
  detail : string;
}

val solver_stages : ?budgets:Budgets.t -> unit -> row list

val search_shape : ?budgets:Budgets.t -> unit -> row list
(** Sweep the refit search's breadth x depth (the paper's b = 3, d = 5
    against narrower and wider shapes) at a matched budget of
    roughly-constant evaluations; reports cost and configuration-solver
    calls. Tests the paper's claim that exploring "a much larger space at
    each local region" is what makes the unstructured design space
    tractable. *)

val config_features : ?budgets:Budgets.t -> unit -> row list
val vault_modes : ?budgets:Budgets.t -> unit -> row list
val scheduling_policies : ?budgets:Budgets.t -> unit -> row list

val pp : Format.formatter -> title:string -> row list -> unit
