(** Iteration budgets for the experiment harness.

    The paper runs every heuristic for thirty minutes of 2006-era CPU; we
    replace wall-clock budgets with deterministic iteration budgets so
    results are reproducible and machine-independent (see DESIGN.md).
    [default] aims at paper-comparable quality; [quick] keeps the full
    benchmark suite fast. *)

type t = {
  solver : Ds_solver.Design_solver.params;
  human_attempts : int;
  random_attempts : int;
  space_samples : int;  (** Random designs for the Figure 2 histogram. *)
}

val default : t
val quick : t
val with_seed : t -> int -> t
