module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Site = Ds_resources.Site
module Slot = Ds_resources.Slot
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment
module Likelihood = Ds_failure.Likelihood
module Candidate = Ds_solver.Candidate
module Design_solver = Ds_solver.Design_solver

type row = {
  app : App.t;
  technique : string;
  primary_site : Site.id;
  array_sites : Site.id list;
  tape_sites : Site.id list;
  uses_network : bool;
}

let row_of_assignment (asg : Assignment.t) =
  let array_sites =
    asg.primary.Slot.Array_slot.site
    :: (match asg.mirror with
        | Some m -> [ m.Slot.Array_slot.site ]
        | None -> [])
    |> List.sort_uniq Int.compare
  in
  let tape_sites =
    match asg.backup with Some b -> [ b.Slot.Tape_slot.site ] | None -> []
  in
  { app = asg.app;
    technique = Technique.describe asg.technique;
    primary_site = asg.primary.Slot.Array_slot.site;
    array_sites;
    tape_sites;
    uses_network =
      Option.is_some (Assignment.mirror_pair asg)
      || Option.is_some (Assignment.backup_pair asg) }

let rows_of_candidate (c : Candidate.t) =
  List.map row_of_assignment (Design.assignments c.Candidate.design)

let run ?(budgets = Budgets.default) () =
  Design_solver.solve ~params:budgets.Budgets.solver (Envs.peer_sites ())
    (Envs.peer_apps ()) Likelihood.default
  |> Option.map (fun o -> o.Design_solver.best)
