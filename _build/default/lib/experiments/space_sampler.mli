(** Solution-space sampling (Figure 2): the empirical distribution of
    random solution costs.

    The optimum is intractable, so the paper estimates solution quality by
    randomly sampling a large collection of designs and placing the
    heuristics' solutions within the empirical cost distribution. The
    paper samples ~10^8 designs; the sample count here is configurable
    (DESIGN.md documents the reduction) — the distribution's shape
    (multi-modal, an order of magnitude of spread) is already stable at
    tens of thousands of samples. *)

module Env = Ds_resources.Env
module App = Ds_workload.App
module Likelihood = Ds_failure.Likelihood

type stats = {
  costs : float array;  (** Feasible solution costs, dollars, sorted. *)
  infeasible : int;  (** Sampled designs that violated constraints. *)
}

val sample :
  ?seed:int -> samples:int -> Env.t -> App.t list -> Likelihood.t -> stats
(** Uniform random designs evaluated at minimum provisioning (no resource
    growth — raw points of the space, as in the paper's sampling). *)

type histogram = {
  bucket_lo : float array;  (** Left edge of each (log-spaced) bucket. *)
  bucket_hi : float array;
  counts : int array;
}

val histogram : bins:int -> stats -> histogram
(** Log-spaced histogram of the feasible costs.
    @raise Invalid_argument when there are no feasible samples or
    [bins < 1]. *)

val percentile_of : stats -> float -> float
(** [percentile_of stats cost] is the fraction of sampled solutions
    cheaper than [cost] (0 = cheapest percentile). *)

val spread : stats -> float option
(** max/min cost ratio across the feasible samples. *)
