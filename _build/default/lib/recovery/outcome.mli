(** Per-application result of recovering from one failure scenario. *)

module Time = Ds_units.Time
module App = Ds_workload.App

type mode =
  | Failed_over  (** Computation moved to the mirror site. *)
  | Restored of Copy_source.kind  (** Data copied back from that copy. *)
  | Unrecoverable
      (** No usable secondary copy: manual reconstruction, full recent-data
          loss exposure. *)

type t = {
  app : App.t;
  mode : mode;
  recovery_time : Time.t;  (** Data outage: failure to application resumption. *)
  loss_time : Time.t;  (** Recent data loss: age of the recovered data. *)
}

val mode_to_string : mode -> string
val pp : Format.formatter -> t -> unit
