(** Fixed timing parameters of the recovery model.

    The paper inherits per-task recovery timings from the framework of
    Keeton & Merchant (DSN'04); the exact constants are not printed, so
    DESIGN.md documents the 2006-era values chosen here. All are
    overridable for sensitivity studies. *)

module Time = Ds_units.Time

type vault_staleness_mode =
  | Cycle
      (** Faithful Table 2 reading: a vault copy is made every vault
          accumulation window (28 days) and takes the propagation window
          (1 day) to arrive — worst-case staleness adds both. *)
  | Continuous
      (** Alternative reading: every tape full is couriered offsite within
          the propagation window, so only the 1 day transit adds to
          staleness; the 28-day cycle only governs cartridge retention. *)

type t = {
  detection : Time.t;
      (** Failure detection and recovery-decision delay (every scenario). *)
  failover : Time.t;
      (** Application restart at the mirror site when failing over. *)
  array_repair : Time.t;
      (** Replacing/repairing a failed disk array before data restoration. *)
  site_rebuild : Time.t;
      (** Restoring a destroyed site to operation after a disaster
          (needed when recovery must restore onto the failed site, e.g.
          from the vault). *)
  site_reconfig : Time.t;
      (** Procuring compute and reconfiguring an application to run at the
          surviving mirror site after a disaster, when no failover standby
          was provisioned (recovery "at a secondary site", Section 2.1). *)
  mirror_promote : Time.t;
      (** Consistency-checking and promoting a mirror copy to primary. *)
  vault_fetch : Time.t;
      (** Courier time to bring vaulted cartridges back. *)
  manual_rebuild : Time.t;
      (** Reconstructing an application by hand when no usable secondary
          copy survived. *)
  loss_horizon : Time.t;
      (** Data-loss exposure charged when no copy survived: one year of
          updates (the annual-costing window). *)
  vault_mode : vault_staleness_mode;
  scheduling : Ds_sim.Engine.policy;
      (** How competing recovery operations are ordered on shared devices.
          The paper serializes by priority (the sum of penalty rates);
          FIFO and smallest-first are provided for the scheduling ablation
          ("scheduling recovery of failed applications is itself a complex
          problem", Section 3.2.2). *)
}

val default : t
(** 5 min detection, 10 min failover, 12 h array repair, 7 day site
    rebuild, 24 h secondary-site reconfiguration, 2 h mirror promotion,
    1 day vault fetch, 48 h manual rebuild, 1 year horizon,
    [Cycle] vault staleness. *)

val pp : Format.formatter -> t -> unit
