module Time = Ds_units.Time
module App = Ds_workload.App

type mode =
  | Failed_over
  | Restored of Copy_source.kind
  | Unrecoverable

type t = {
  app : App.t;
  mode : mode;
  recovery_time : Time.t;
  loss_time : Time.t;
}

let mode_to_string = function
  | Failed_over -> "failover"
  | Restored kind -> "restore from " ^ Copy_source.kind_to_string kind
  | Unrecoverable -> "unrecoverable"

let pp ppf t =
  Format.fprintf ppf "%a: %s, outage %a, loss %a" App.pp t.app
    (mode_to_string t.mode) Time.pp t.recovery_time Time.pp t.loss_time
