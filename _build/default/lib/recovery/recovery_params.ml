module Time = Ds_units.Time

type vault_staleness_mode = Cycle | Continuous

type t = {
  detection : Time.t;
  failover : Time.t;
  array_repair : Time.t;
  site_rebuild : Time.t;
  site_reconfig : Time.t;
  mirror_promote : Time.t;
  vault_fetch : Time.t;
  manual_rebuild : Time.t;
  loss_horizon : Time.t;
  vault_mode : vault_staleness_mode;
  scheduling : Ds_sim.Engine.policy;
}

let default =
  { detection = Time.minutes 5.;
    failover = Time.minutes 10.;
    array_repair = Time.hours 12.;
    site_rebuild = Time.days 7.;
    site_reconfig = Time.hours 24.;
    mirror_promote = Time.hours 2.;
    vault_fetch = Time.days 1.;
    manual_rebuild = Time.hours 48.;
    loss_horizon = Time.years 1.;
    vault_mode = Cycle;
    scheduling = Ds_sim.Engine.Priority }

let pp ppf t =
  Format.fprintf ppf
    "detect %a, failover %a, array repair %a, site rebuild %a, vault fetch %a"
    Time.pp t.detection Time.pp t.failover Time.pp t.array_repair
    Time.pp t.site_rebuild Time.pp t.vault_fetch
