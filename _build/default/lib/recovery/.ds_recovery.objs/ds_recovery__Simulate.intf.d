lib/recovery/simulate.mli: Ds_design Ds_failure Ds_units Outcome Recovery_params
