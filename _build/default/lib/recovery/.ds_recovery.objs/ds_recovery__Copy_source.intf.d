lib/recovery/copy_source.mli: Ds_design Ds_failure Ds_units Format Recovery_params
