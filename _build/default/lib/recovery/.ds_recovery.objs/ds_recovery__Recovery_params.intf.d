lib/recovery/recovery_params.mli: Ds_sim Ds_units Format
