lib/recovery/recovery_params.ml: Ds_sim Ds_units Format
