lib/recovery/outcome.ml: Copy_source Ds_units Ds_workload Format
