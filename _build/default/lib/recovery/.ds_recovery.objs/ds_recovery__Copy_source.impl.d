lib/recovery/copy_source.ml: Ds_design Ds_failure Ds_protection Ds_units Format List Recovery_params
