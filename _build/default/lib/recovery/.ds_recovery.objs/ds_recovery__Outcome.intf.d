lib/recovery/outcome.mli: Copy_source Ds_units Ds_workload Format
