lib/recovery/simulate.ml: Copy_source Ds_design Ds_failure Ds_protection Ds_resources Ds_sim Ds_units Ds_workload Format List Option Outcome Recovery_params
