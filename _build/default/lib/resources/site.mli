(** Data center sites. *)

type id = int

type t = {
  id : id;
  name : string;
  location : (float * float) option;
      (** Optional planar coordinates in kilometres, for distance-bounded
          techniques (synchronous mirroring degrades with latency, so real
          deployments cap its distance). [None] = distance unknown, no
          constraint applies. *)
}

val v : ?location:float * float -> id:id -> name:string -> unit -> t

val distance_km : t -> t -> float option
(** Euclidean distance when both sites have locations. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Id_map : Map.S with type key = id
module Id_set : Set.S with type elt = id
