type t = High | Med | Low

let all = [ High; Med; Low ]
let rank = function High -> 0 | Med -> 1 | Low -> 2
let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b
let to_string = function High -> "high" | Med -> "med" | Low -> "low"
let pp ppf t = Format.pp_print_string ppf (to_string t)
