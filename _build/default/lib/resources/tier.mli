(** Device capability classes (the "Class" column of Table 3). *)

type t = High | Med | Low

val all : t list
val rank : t -> int
(** High = 0, Med = 1, Low = 2. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
