(** Tape library models (Table 3).

    A library has a fixed robot/enclosure cost, up to [max_drives] tape
    drives (the bandwidth units, 120 MB/s each) and up to [max_cartridges]
    cartridge slots (the capacity units, 60 GB each). Following DESIGN.md,
    the incremental Table 3 cost is charged per drive; cartridges carry a
    small media cost. *)

module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money

type t = {
  name : string;
  tier : Tier.t;
  fixed_cost : Money.t;
  drive_cost : Money.t;
  max_drives : int;
  drive_bw : Rate.t;
  cartridge_cost : Money.t;
  max_cartridges : int;
  cartridge_capacity : Size.t;
}

val bw_of_drives : t -> int -> Rate.t
val drives_for_bw : t -> Rate.t -> int
(** Minimum drives for the demand; [max_drives + 1] when infeasible. *)

val cartridges_for_capacity : t -> Size.t -> int
val purchase_cost : t -> drives:int -> cartridges:int -> Money.t
val total_capacity : t -> Size.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
