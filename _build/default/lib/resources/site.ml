type id = int

type t = {
  id : id;
  name : string;
  location : (float * float) option;
}

let v ?location ~id ~name () = { id; name; location }

let distance_km a b =
  match a.location, b.location with
  | Some (ax, ay), Some (bx, by) ->
    Some (Float.hypot (ax -. bx) (ay -. by))
  | _ -> None

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp ppf t = Format.pp_print_string ppf t.name

module Id_map = Map.Make (Int)
module Id_set = Set.Make (Int)
