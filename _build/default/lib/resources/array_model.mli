(** Disk array models (Table 3).

    An array has a fixed enclosure cost and is populated with discrete
    capacity units (143 GB disks). Each disk contributes bandwidth up to
    the array-wide controller limit: [n] disks deliver
    [min (n * unit_bw) max_bw]. *)

module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money

type t = {
  name : string;
  tier : Tier.t;
  fixed_cost : Money.t;
  max_bw : Rate.t;  (** Controller (array-wide) bandwidth ceiling. *)
  unit_cost : Money.t;  (** Price of one capacity unit (disk). *)
  max_units : int;
  unit_capacity : Size.t;
  unit_bw : Rate.t;  (** Bandwidth each populated unit contributes. *)
}

val bw_of_units : t -> int -> Rate.t
(** Deliverable bandwidth with [n] units populated. *)

val units_for_capacity : t -> Size.t -> int
(** Minimum units to hold the given capacity (not clamped to [max_units]). *)

val units_for_bw : t -> Rate.t -> int
(** Minimum units to deliver the given bandwidth; [max_units + 1] if the
    demand exceeds even the controller ceiling (i.e. infeasible). *)

val purchase_cost : t -> units:int -> Money.t
(** Fixed cost + units. *)

val total_capacity : t -> Size.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
