lib/resources/link_model.ml: Ds_units Float Format String Tier
