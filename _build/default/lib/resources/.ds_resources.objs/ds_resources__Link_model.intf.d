lib/resources/link_model.mli: Ds_units Format Tier
