lib/resources/tape_model.ml: Ds_units Float Format String Tier
