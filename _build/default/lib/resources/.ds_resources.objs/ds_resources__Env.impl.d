lib/resources/env.ml: Array_model Format Link_model List Printf Site Slot Tape_model
