lib/resources/site.mli: Format Map Set
