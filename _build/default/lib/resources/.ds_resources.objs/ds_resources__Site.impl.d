lib/resources/site.ml: Float Format Int Map Set
