lib/resources/env.mli: Array_model Format Link_model Site Slot Tape_model
