lib/resources/slot.mli: Format Map Set Site
