lib/resources/tier.mli: Format
