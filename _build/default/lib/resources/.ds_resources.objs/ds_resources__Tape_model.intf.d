lib/resources/tape_model.mli: Ds_units Format Tier
