lib/resources/tier.ml: Format Int
