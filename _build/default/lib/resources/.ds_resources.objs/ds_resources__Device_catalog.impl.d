lib/resources/device_catalog.ml: Array_model Ds_units Format Link_model List String Tape_model Tier
