lib/resources/array_model.mli: Ds_units Format Tier
