lib/resources/slot.ml: Format Int Map Set Site
