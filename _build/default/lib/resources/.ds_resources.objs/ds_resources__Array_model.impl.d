lib/resources/array_model.ml: Ds_units Float Format String Tier
