lib/resources/device_catalog.mli: Array_model Ds_units Format Link_model Tape_model
