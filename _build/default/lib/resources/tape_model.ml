module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money

type t = {
  name : string;
  tier : Tier.t;
  fixed_cost : Money.t;
  drive_cost : Money.t;
  max_drives : int;
  drive_bw : Rate.t;
  cartridge_cost : Money.t;
  max_cartridges : int;
  cartridge_capacity : Size.t;
}

let bw_of_drives t n =
  if n <= 0 then Rate.zero else Rate.scale (float_of_int n) t.drive_bw

let drives_for_bw t demand =
  if Rate.is_zero demand then 0
  else
    let per_drive = Rate.to_bytes_per_sec t.drive_bw in
    let n = int_of_float (Float.ceil (Rate.to_bytes_per_sec demand /. per_drive)) in
    if n > t.max_drives then t.max_drives + 1 else max 1 n

let cartridges_for_capacity t size =
  Size.units_needed size ~per_unit:t.cartridge_capacity

let purchase_cost t ~drives ~cartridges =
  if drives < 0 || cartridges < 0 then
    invalid_arg "Tape_model.purchase_cost: negative units";
  Money.sum
    [ t.fixed_cost;
      Money.scale (float_of_int drives) t.drive_cost;
      Money.scale (float_of_int cartridges) t.cartridge_cost ]

let total_capacity t =
  Size.scale (float_of_int t.max_cartridges) t.cartridge_capacity

let equal a b = String.equal a.name b.name

let pp ppf t =
  Format.fprintf ppf "%s(%a, %d drives x %a, %d slots x %a)"
    t.name Tier.pp t.tier t.max_drives Rate.pp t.drive_bw
    t.max_cartridges Size.pp t.cartridge_capacity
