module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money

let xp1200 : Array_model.t =
  { name = "XP1200";
    tier = Tier.High;
    fixed_cost = Money.k 375.;
    max_bw = Rate.mb_per_sec 512.;
    unit_cost = Money.dollars 8723.;
    max_units = 1024;
    unit_capacity = Size.gb 143.;
    unit_bw = Rate.mb_per_sec 25. }

let eva8000 : Array_model.t =
  { name = "EVA800";
    tier = Tier.Med;
    fixed_cost = Money.k 123.;
    max_bw = Rate.mb_per_sec 256.;
    unit_cost = Money.dollars 3720.;
    max_units = 512;
    unit_capacity = Size.gb 143.;
    unit_bw = Rate.mb_per_sec 10. }

let msa1500 : Array_model.t =
  { name = "MSA1500";
    tier = Tier.Low;
    fixed_cost = Money.k 123.;
    max_bw = Rate.mb_per_sec 128.;
    unit_cost = Money.dollars 3720.;
    max_units = 128;
    unit_capacity = Size.gb 143.;
    unit_bw = Rate.mb_per_sec 8. }

let array_models = [ xp1200; eva8000; msa1500 ]

let tape_high : Tape_model.t =
  { name = "TapeLib-H";
    tier = Tier.High;
    fixed_cost = Money.k 141.;
    drive_cost = Money.dollars 18_400.;
    max_drives = 24;
    drive_bw = Rate.mb_per_sec 120.;
    cartridge_cost = Money.dollars 50.;
    max_cartridges = 720;
    cartridge_capacity = Size.gb 60. }

let tape_med : Tape_model.t =
  { name = "TapeLib-M";
    tier = Tier.Med;
    fixed_cost = Money.k 76.;
    drive_cost = Money.dollars 10_400.;
    max_drives = 4;
    drive_bw = Rate.mb_per_sec 120.;
    cartridge_cost = Money.dollars 50.;
    max_cartridges = 120;
    cartridge_capacity = Size.gb 60. }

let tape_models = [ tape_high; tape_med ]

let link_high : Link_model.t =
  { name = "Net-H";
    tier = Tier.High;
    unit_cost = Money.k 500.;
    max_units = 32;
    unit_bw = Rate.mb_per_sec 20. }

let link_med : Link_model.t =
  { name = "Net-M";
    tier = Tier.Med;
    unit_cost = Money.k 200.;
    max_units = 16;
    unit_bw = Rate.mb_per_sec 10. }

let link_models = [ link_high; link_med ]

let compute_cost = Money.k 125.

let site_cost = Money.m 1.

let device_lifetime_years = 3.

let array_model_of_name name =
  List.find_opt (fun (m : Array_model.t) -> String.equal m.name name) array_models

let tape_model_of_name name =
  List.find_opt (fun (m : Tape_model.t) -> String.equal m.name name) tape_models

let pp_table ppf () =
  Format.fprintf ppf "%-10s %-5s %10s %10s %8s %10s %10s@."
    "model" "class" "fixed" "unit-cost" "units" "unit-cap" "unit-bw";
  List.iter (fun (m : Array_model.t) ->
      Format.fprintf ppf "%-10s %-5s %10s %10s %8d %10s %10s@."
        m.name (Tier.to_string m.tier)
        (Money.to_string m.fixed_cost) (Money.to_string m.unit_cost)
        m.max_units (Size.to_string m.unit_capacity) (Rate.to_string m.unit_bw))
    array_models;
  List.iter (fun (m : Tape_model.t) ->
      Format.fprintf ppf "%-10s %-5s %10s %10s %8d %10s %10s@."
        m.name (Tier.to_string m.tier)
        (Money.to_string m.fixed_cost) (Money.to_string m.drive_cost)
        m.max_drives (Size.to_string m.cartridge_capacity)
        (Rate.to_string m.drive_bw))
    tape_models;
  List.iter (fun (m : Link_model.t) ->
      Format.fprintf ppf "%-10s %-5s %10s %10s %8d %10s %10s@."
        m.name (Tier.to_string m.tier) "-" (Money.to_string m.unit_cost)
        m.max_units "-" (Rate.to_string m.unit_bw))
    link_models;
  Format.fprintf ppf "%-10s %-5s %10s@." "Compute" "high"
    (Money.to_string compute_cost);
  Format.fprintf ppf "%-10s %-5s %10s@." "Site" "-" (Money.to_string site_cost)
