module Rate = Ds_units.Rate
module Money = Ds_units.Money

type t = {
  name : string;
  tier : Tier.t;
  unit_cost : Money.t;
  max_units : int;
  unit_bw : Rate.t;
}

let bw_of_units t n =
  if n <= 0 then Rate.zero else Rate.scale (float_of_int n) t.unit_bw

let units_for_bw t demand =
  if Rate.is_zero demand then 0
  else
    let per_unit = Rate.to_bytes_per_sec t.unit_bw in
    let n = int_of_float (Float.ceil (Rate.to_bytes_per_sec demand /. per_unit)) in
    if n > t.max_units then t.max_units + 1 else max 1 n

let purchase_cost t ~units =
  if units < 0 then invalid_arg "Link_model.purchase_cost: negative units";
  Money.scale (float_of_int units) t.unit_cost

let max_bw t = bw_of_units t t.max_units

let equal a b = String.equal a.name b.name

let pp ppf t =
  Format.fprintf ppf "%s(%a, %d x %a)" t.name Tier.pp t.tier t.max_units
    Rate.pp t.unit_bw
