(** The concrete device catalog of Table 3. *)

module Money = Ds_units.Money

val xp1200 : Array_model.t
(** High-end disk array: $375K enclosure, 512 MB/s controller,
    1024 x 143 GB disks at $8,723 each, 25 MB/s per disk. *)

val eva8000 : Array_model.t
(** Mid-range disk array (EVA800 in the paper): $123K, 256 MB/s,
    512 disks, 10 MB/s per disk. *)

val msa1500 : Array_model.t
(** Low-end disk array: $123K, 128 MB/s, 128 disks, 8 MB/s per disk. *)

val array_models : Array_model.t list

val tape_high : Tape_model.t
(** $141K robot, up to 24 drives at $18,400 (120 MB/s each),
    720 x 60 GB cartridges. *)

val tape_med : Tape_model.t
(** $76K robot, up to 4 drives at $10,400, 120 x 60 GB cartridges. *)

val tape_models : Tape_model.t list

val link_high : Link_model.t
(** Up to 32 x 20 MB/s links at $500K each. *)

val link_med : Link_model.t
(** Up to 16 x 10 MB/s links at $200K each. *)

val link_models : Link_model.t list

val compute_cost : Money.t
(** One compute instance (hosts one application): $125K. *)

val site_cost : Money.t
(** Fixed facility cost of operating a data-center site: $1M. *)

val device_lifetime_years : float
(** Purchase prices are amortized over three years (Section 2.5). *)

val array_model_of_name : string -> Array_model.t option
val tape_model_of_name : string -> Tape_model.t option

val pp_table : Format.formatter -> unit -> unit
(** Table 3-style listing of every device model. *)
