(** Inter-site network link classes (Table 3).

    Bandwidth between two sites is provisioned in discrete link units
    (20 MB/s High, 10 MB/s Med), each with a per-unit cost covering the
    circuit, interfaces and contracts. There is no fixed cost. *)

module Rate = Ds_units.Rate
module Money = Ds_units.Money

type t = {
  name : string;
  tier : Tier.t;
  unit_cost : Money.t;
  max_units : int;  (** Maximum link units between one site pair. *)
  unit_bw : Rate.t;
}

val bw_of_units : t -> int -> Rate.t
val units_for_bw : t -> Rate.t -> int
(** Minimum units for the demand; [max_units + 1] when infeasible. *)

val purchase_cost : t -> units:int -> Money.t
val max_bw : t -> Rate.t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
