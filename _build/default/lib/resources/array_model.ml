module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money

type t = {
  name : string;
  tier : Tier.t;
  fixed_cost : Money.t;
  max_bw : Rate.t;
  unit_cost : Money.t;
  max_units : int;
  unit_capacity : Size.t;
  unit_bw : Rate.t;
}

let bw_of_units t n =
  if n <= 0 then Rate.zero
  else Rate.min t.max_bw (Rate.scale (float_of_int n) t.unit_bw)

let units_for_capacity t size = Size.units_needed size ~per_unit:t.unit_capacity

let units_for_bw t demand =
  if Rate.is_zero demand then 0
  else if Rate.(t.max_bw < demand) then t.max_units + 1
  else
    let per_unit = Rate.to_bytes_per_sec t.unit_bw in
    let n = int_of_float (Float.ceil (Rate.to_bytes_per_sec demand /. per_unit)) in
    max 1 n

let purchase_cost t ~units =
  if units < 0 then invalid_arg "Array_model.purchase_cost: negative units";
  Money.add t.fixed_cost (Money.scale (float_of_int units) t.unit_cost)

let total_capacity t = Size.scale (float_of_int t.max_units) t.unit_capacity

let equal a b = String.equal a.name b.name

let pp ppf t =
  Format.fprintf ppf "%s(%a, %d x %a, %a)"
    t.name Tier.pp t.tier t.max_units Size.pp t.unit_capacity Rate.pp t.max_bw
