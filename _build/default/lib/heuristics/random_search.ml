module App = Ds_workload.App
module Technique_catalog = Ds_protection.Technique_catalog
module Env = Ds_resources.Env
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Layout = Ds_solver.Layout
module Config_solver = Ds_solver.Config_solver

let sample_design rng env apps =
  let rec place design = function
    | [] -> Some design
    | app :: rest ->
      let technique = Sample.choose rng Technique_catalog.all in
      (match Layout.choose_uniform rng design app technique with
       | None -> None
       | Some choice ->
         (match Layout.apply design choice with
          | Ok design -> place design rest
          | Error _ -> None))
  in
  place (Design.empty env) apps

let run ?(options = Config_solver.default_options) ?(attempts = 100) ~seed env
    apps likelihood =
  let rng = Rng.of_int seed in
  let rec loop result remaining =
    if remaining = 0 then result
    else
      let outcome =
        match sample_design rng env apps with
        | None -> None
        | Some design ->
          (match Config_solver.solve ~options design likelihood with
           | Ok candidate -> Some candidate
           | Error _ -> None)
      in
      loop (Heuristic_result.consider result outcome) (remaining - 1)
  in
  loop Heuristic_result.empty attempts
