lib/heuristics/random_search.ml: Ds_design Ds_failure Ds_prng Ds_protection Ds_resources Ds_solver Ds_workload Heuristic_result
