lib/heuristics/annealing.ml: Ds_design Ds_failure Ds_prng Ds_protection Ds_resources Ds_solver Ds_units Ds_workload Heuristic_result Random_search
