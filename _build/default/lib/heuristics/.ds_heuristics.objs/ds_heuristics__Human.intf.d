lib/heuristics/human.mli: Ds_design Ds_failure Ds_prng Ds_resources Ds_solver Ds_workload Heuristic_result
