lib/heuristics/tabu.mli: Ds_failure Ds_resources Ds_solver Ds_workload Heuristic_result
