lib/heuristics/tabu.ml: Ds_design Ds_failure Ds_prng Ds_protection Ds_resources Ds_solver Ds_units Ds_workload Fun Hashtbl Heuristic_result List Random_search
