lib/heuristics/heuristic_result.ml: Ds_solver Format
