lib/heuristics/human.ml: Array Ds_design Ds_failure Ds_prng Ds_protection Ds_resources Ds_solver Ds_units Ds_workload Heuristic_result Int List Option
