lib/heuristics/heuristic_result.mli: Ds_solver Format
