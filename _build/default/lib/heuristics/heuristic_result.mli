(** Common result shape for the baseline heuristics. *)

module Candidate = Ds_solver.Candidate

type t = {
  best : Candidate.t option;  (** Cheapest feasible solution found. *)
  attempts : int;  (** Complete designs generated. *)
  feasible : int;  (** How many of them were feasible. *)
}

val empty : t
val consider : t -> Candidate.t option -> t
(** Count an attempt; keep the candidate if it beats the incumbent. *)

val pp : Format.formatter -> t -> unit
