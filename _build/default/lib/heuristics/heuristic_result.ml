module Candidate = Ds_solver.Candidate

type t = {
  best : Candidate.t option;
  attempts : int;
  feasible : int;
}

let empty = { best = None; attempts = 0; feasible = 0 }

let consider t outcome =
  match outcome with
  | None -> { t with attempts = t.attempts + 1 }
  | Some candidate ->
    let best =
      match t.best with
      | None -> Some candidate
      | Some incumbent -> Some (Candidate.better incumbent candidate)
    in
    { best; attempts = t.attempts + 1; feasible = t.feasible + 1 }

let pp ppf t =
  match t.best with
  | None -> Format.fprintf ppf "no feasible design in %d attempts" t.attempts
  | Some best ->
    Format.fprintf ppf "%a (%d/%d attempts feasible)" Candidate.pp best
      t.feasible t.attempts
