module Time = Ds_units.Time
module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money
module App = Ds_workload.App

type t = {
  footprint : Size.t;
  avg_access_rate : Rate.t;
  avg_update_rate : Rate.t;
  peak_update_rate : Rate.t;
  unique_update_rate : Rate.t;
  write_fraction : float;
}

let analyze ?(peak_window = Time.minutes 1.) trace =
  let duration_s = Float.max 1. (Time.to_seconds (Trace.duration trace)) in
  let written = Size.to_bytes (Trace.bytes_written trace) in
  let read = Size.to_bytes (Trace.bytes_read trace) in
  let window_s = Time.to_seconds peak_window in
  let peak = ref 0. in
  let unique_total = ref 0. in
  let block_bytes = Size.to_bytes (Trace.block_size trace) in
  Trace.iter_windows ~window:peak_window trace ~f:(fun ~start:_ batch ->
      let bytes = ref 0. in
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (r : Io_record.t) ->
           if Io_record.is_write r then begin
             bytes := !bytes +. Size.to_bytes r.Io_record.size;
             if not (Hashtbl.mem seen r.Io_record.block) then begin
               Hashtbl.add seen r.Io_record.block ();
               unique_total := !unique_total +. block_bytes
             end
           end)
        batch;
      peak := Float.max !peak (!bytes /. window_s));
  let total = written +. read in
  { footprint = Trace.footprint trace;
    avg_access_rate = Rate.bytes_per_sec (total /. duration_s);
    avg_update_rate = Rate.bytes_per_sec (written /. duration_s);
    peak_update_rate = Rate.bytes_per_sec (Float.max !peak (written /. duration_s));
    unique_update_rate = Rate.bytes_per_sec (!unique_total /. duration_s);
    write_fraction = (if total = 0. then 0. else written /. total) }

let to_app ~id ~name ~class_tag ~outage_per_hour ~loss_per_hour ?(scale = 1.) t =
  if scale <= 0. then invalid_arg "Characterize.to_app: scale must be positive";
  let growth_headroom = 1.3 in
  App.v ~id ~name ~class_tag ~outage_per_hour ~loss_per_hour
    ~data_size:(Size.scale (scale *. growth_headroom) t.footprint)
    ~avg_update:(Rate.scale scale t.avg_update_rate)
    ~peak_update:(Rate.scale scale t.peak_update_rate)
    ~unique_update:(Rate.min (Rate.scale scale t.avg_update_rate)
                      (Rate.scale scale t.unique_update_rate))
    ~avg_access:(Rate.scale scale t.avg_access_rate) ()

let pp ppf t =
  Format.fprintf ppf
    "footprint %a; access %a; update avg %a / peak %a / unique %a; %.0f%% writes"
    Size.pp t.footprint Rate.pp t.avg_access_rate Rate.pp t.avg_update_rate
    Rate.pp t.peak_update_rate Rate.pp t.unique_update_rate
    (100. *. t.write_fraction)
