(** Synthetic cello-like trace generation.

    The original cello2002 traces are HP-internal; this generator produces
    block I/O streams with the properties the design tool's
    characterization depends on (DESIGN.md documents the substitution):

    - a configurable read/write mix;
    - diurnal intensity (sinusoidal day/night load) plus burst episodes,
      giving a real peak-to-average update ratio;
    - Zipf-like block popularity, so repeated writes hit hot blocks and
      the {e unique} update rate is well below the raw update rate —
      exactly what makes snapshots space-efficient. *)

module Time = Ds_units.Time
module Size = Ds_units.Size
module Rng = Ds_prng.Rng

type profile = {
  duration : Time.t;  (** Trace length. *)
  mean_iops : float;  (** Average request arrival rate (1/s). *)
  write_fraction : float;  (** Fraction of requests that are writes. *)
  request_size : Size.t;  (** Fixed request length. *)
  blocks : int;  (** Volume size in blocks. *)
  zipf_skew : float;  (** Popularity skew; 0 = uniform, ~1 = heavily hot. *)
  diurnal_swing : float;
      (** Relative day/night amplitude in [0, 1); 0 = flat load. *)
  burst_factor : float;  (** Intensity multiplier during bursts (>= 1). *)
  burst_fraction : float;  (** Fraction of windows that burst. *)
}

val default : profile
(** A cello-like OLTP mix: 12 h, 120 IOPS, 40% writes, 8 KiB requests,
    2 GiB footprint, skewed popularity, moderate diurnal swing, 10x
    bursts in 5% of minutes. *)

val validate : profile -> (unit, string) result

val generate : Rng.t -> profile -> Trace.t
(** Deterministic for a given generator state.
    @raise Invalid_argument when the profile fails {!validate}. *)
