(** Trace characterization: from a block trace to the workload numbers
    the design tool consumes (Section 2.2).

    - {e average access rate} (reads + writes) sizes primary array
      bandwidth and failover compute;
    - {e average update rate} sizes asynchronous mirror links;
    - {e peak update rate} (the busiest window) sizes synchronous mirror
      links;
    - {e unique update rate} (distinct bytes dirtied per window) sizes
      snapshot space and periodic-copy bandwidth;
    - {e footprint} sizes capacity. *)

module Time = Ds_units.Time
module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money

type t = {
  footprint : Size.t;
  avg_access_rate : Rate.t;
  avg_update_rate : Rate.t;
  peak_update_rate : Rate.t;  (** Max over {!analyze}'s [peak_window]s. *)
  unique_update_rate : Rate.t;
      (** Distinct blocks dirtied per window x block size / window. *)
  write_fraction : float;
}

val analyze : ?peak_window:Time.t -> Trace.t -> t
(** Default peak window: one minute. @raise Invalid_argument on a zero
    window. *)

val to_app :
  id:Ds_workload.App.id ->
  name:string ->
  class_tag:string ->
  outage_per_hour:Money.t ->
  loss_per_hour:Money.t ->
  ?scale:float ->
  t ->
  Ds_workload.App.t
(** Attach business requirements to a characterization, optionally
    scaling all magnitudes (the paper uses "scaled versions of the
    cello2002 workload"). Capacity is padded 30% above the observed
    footprint for growth, as a provisioning tool would. *)

val pp : Format.formatter -> t -> unit
