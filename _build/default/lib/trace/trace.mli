(** An I/O trace: a time-ordered sequence of block requests plus the
    block size of the traced volume. *)

module Time = Ds_units.Time
module Size = Ds_units.Size
module Rate = Ds_units.Rate

type t

val v : block_size:Size.t -> Io_record.t list -> t
(** Sorts the records by time. @raise Invalid_argument on an empty trace
    or a zero block size. *)

val records : t -> Io_record.t array
(** Time-ordered. *)

val block_size : t -> Size.t
val length : t -> int
val duration : t -> Time.t
(** Timestamp of the last request (traces start at zero). *)

val bytes_read : t -> Size.t
val bytes_written : t -> Size.t
val footprint : t -> Size.t
(** Capacity touched: (highest block + 1) x block size. *)

val iter_windows :
  window:Time.t -> t -> f:(start:Time.t -> Io_record.t list -> unit) -> unit
(** Partition the trace into consecutive fixed-length windows and apply
    [f] to each non-empty one. @raise Invalid_argument on a zero window. *)

val pp : Format.formatter -> t -> unit
