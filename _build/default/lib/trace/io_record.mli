(** One block-level I/O request.

    The paper's workload characteristics (Table 1) are "based on scaled
    versions of the cello2002 workload" — a block I/O trace. This module
    and its siblings provide the trace substrate: synthetic cello-like
    traces and the analysis that turns a trace into the per-application
    characteristics the design tool needs (Section 2.2). *)

module Time = Ds_units.Time
module Size = Ds_units.Size

type op = Read | Write

type t = {
  time : Time.t;  (** Offset from the start of the trace. *)
  op : op;
  block : int;  (** Logical block address. *)
  size : Size.t;  (** Request length in bytes. *)
}

val v : time:Time.t -> op:op -> block:int -> size:Size.t -> t
(** @raise Invalid_argument on a negative block or zero size. *)

val is_write : t -> bool
val compare_time : t -> t -> int
val pp : Format.formatter -> t -> unit
