lib/trace/trace.mli: Ds_units Format Io_record
