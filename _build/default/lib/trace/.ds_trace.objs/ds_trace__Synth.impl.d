lib/trace/synth.ml: Ds_prng Ds_units Float Io_record Trace
