lib/trace/synth.mli: Ds_prng Ds_units Trace
