lib/trace/trace.ml: Array Ds_units Format Io_record List
