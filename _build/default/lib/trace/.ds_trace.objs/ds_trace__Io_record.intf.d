lib/trace/io_record.mli: Ds_units Format
