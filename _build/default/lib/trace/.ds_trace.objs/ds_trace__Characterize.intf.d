lib/trace/characterize.mli: Ds_units Ds_workload Format Trace
