lib/trace/io_record.ml: Ds_units Format
