lib/trace/characterize.ml: Ds_units Ds_workload Float Format Hashtbl Io_record List Trace
