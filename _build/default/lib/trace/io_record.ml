module Time = Ds_units.Time
module Size = Ds_units.Size

type op = Read | Write

type t = {
  time : Time.t;
  op : op;
  block : int;
  size : Size.t;
}

let v ~time ~op ~block ~size =
  if block < 0 then invalid_arg "Io_record.v: negative block address";
  if Size.is_zero size then invalid_arg "Io_record.v: empty request";
  { time; op; block; size }

let is_write t = t.op = Write

let compare_time a b = Time.compare a.time b.time

let pp ppf t =
  Format.fprintf ppf "%a %s blk=%d %a" Time.pp t.time
    (match t.op with Read -> "R" | Write -> "W")
    t.block Size.pp t.size
