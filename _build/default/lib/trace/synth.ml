module Time = Ds_units.Time
module Size = Ds_units.Size
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample

type profile = {
  duration : Time.t;
  mean_iops : float;
  write_fraction : float;
  request_size : Size.t;
  blocks : int;
  zipf_skew : float;
  diurnal_swing : float;
  burst_factor : float;
  burst_fraction : float;
}

let default =
  { duration = Time.hours 12.;
    mean_iops = 120.;
    write_fraction = 0.4;
    request_size = Size.bytes 8192.;
    blocks = 262_144;  (* 2 GiB at 8 KiB *)
    zipf_skew = 0.8;
    diurnal_swing = 0.6;
    burst_factor = 10.;
    burst_fraction = 0.05 }

let validate p =
  if Time.is_zero p.duration then Error "duration must be positive"
  else if not (p.mean_iops > 0.) then Error "mean_iops must be positive"
  else if p.write_fraction < 0. || p.write_fraction > 1. then
    Error "write_fraction must be in [0, 1]"
  else if Size.is_zero p.request_size then Error "request_size must be positive"
  else if p.blocks <= 0 then Error "blocks must be positive"
  else if p.zipf_skew < 0. then Error "zipf_skew must be non-negative"
  else if p.diurnal_swing < 0. || p.diurnal_swing >= 1. then
    Error "diurnal_swing must be in [0, 1)"
  else if p.burst_factor < 1. then Error "burst_factor must be >= 1"
  else if p.burst_fraction < 0. || p.burst_fraction > 1. then
    Error "burst_fraction must be in [0, 1]"
  else Ok ()

(* Approximate Zipf sampling by inverse-transform over a power-law
   density: u^(1/(1-s)) concentrates mass on low indices for s in (0,1);
   for s = 0 it degenerates to uniform. Exact Zipf normalization is not
   needed — only a realistic hot/cold skew. *)
let sample_block rng p =
  if p.zipf_skew = 0. then Rng.int rng p.blocks
  else begin
    let u = Rng.unit_float rng in
    let exponent = 1. /. (1. -. Float.min p.zipf_skew 0.99) in
    let frac = Float.min (Float.pow u exponent) 1. in
    min (p.blocks - 1) (int_of_float (frac *. float_of_int p.blocks))
  end

(* Requests are generated minute by minute: each minute gets an intensity
   (diurnal x burst) and a Poisson-ish request count, then uniform
   arrival offsets inside the minute. *)
let generate rng p =
  (match validate p with Ok () -> () | Error msg -> invalid_arg ("Synth.generate: " ^ msg));
  let minute = 60. in
  let total = Time.to_seconds p.duration in
  let minutes = max 1 (int_of_float (Float.ceil (total /. minute))) in
  let day = 86_400. in
  let records = ref [] in
  for m = 0 to minutes - 1 do
    let start = float_of_int m *. minute in
    let diurnal =
      1. +. (p.diurnal_swing *. sin (2. *. Float.pi *. start /. day))
    in
    let burst =
      if Sample.bernoulli rng p.burst_fraction then p.burst_factor else 1.
    in
    let lambda = p.mean_iops *. minute *. diurnal *. burst in
    (* A cheap Poisson approximation: uniform integer in [0.5, 1.5) x
       lambda. The analysis only needs realistic aggregate rates, not an
       exact arrival process. *)
    let count =
      int_of_float (lambda *. (0.5 +. Rng.unit_float rng))
    in
    for _ = 1 to count do
      let at = start +. (Rng.unit_float rng *. minute) in
      if at <= total then begin
        let op =
          if Sample.bernoulli rng p.write_fraction then Io_record.Write
          else Io_record.Read
        in
        let block = sample_block rng p in
        records :=
          Io_record.v ~time:(Time.seconds at) ~op ~block ~size:p.request_size
          :: !records
      end
    done
  done;
  (* Guarantee non-emptiness even for degenerate profiles. *)
  let records =
    match !records with
    | [] ->
      [ Io_record.v ~time:Time.zero ~op:Io_record.Read ~block:0
          ~size:p.request_size ]
    | rs -> rs
  in
  Trace.v ~block_size:p.request_size records
