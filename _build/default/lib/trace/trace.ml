module Time = Ds_units.Time
module Size = Ds_units.Size
module Rate = Ds_units.Rate

type t = {
  records : Io_record.t array;
  block_size : Size.t;
}

let v ~block_size records =
  if records = [] then invalid_arg "Trace.v: empty trace";
  if Size.is_zero block_size then invalid_arg "Trace.v: zero block size";
  let records = Array.of_list records in
  Array.sort Io_record.compare_time records;
  { records; block_size }

let records t = t.records
let block_size t = t.block_size
let length t = Array.length t.records

let duration t = t.records.(Array.length t.records - 1).Io_record.time

let sum_bytes t keep =
  Array.fold_left
    (fun acc (r : Io_record.t) ->
       if keep r then Size.add acc r.Io_record.size else acc)
    Size.zero t.records

let bytes_read t = sum_bytes t (fun r -> not (Io_record.is_write r))
let bytes_written t = sum_bytes t Io_record.is_write

let footprint t =
  let top =
    Array.fold_left (fun acc (r : Io_record.t) -> max acc r.Io_record.block) 0
      t.records
  in
  Size.scale (float_of_int (top + 1)) t.block_size

let iter_windows ~window t ~f =
  if Time.is_zero window then invalid_arg "Trace.iter_windows: zero window";
  let w = Time.to_seconds window in
  let current = ref [] in
  let current_idx = ref 0 in
  let flush () =
    match !current with
    | [] -> ()
    | batch ->
      f ~start:(Time.seconds (float_of_int !current_idx *. w)) (List.rev batch);
      current := []
  in
  Array.iter
    (fun (r : Io_record.t) ->
       let idx = int_of_float (Time.to_seconds r.Io_record.time /. w) in
       if idx <> !current_idx then begin
         flush ();
         current_idx := idx
       end;
       current := r :: !current)
    t.records;
  flush ()

let pp ppf t =
  Format.fprintf ppf "trace(%d requests over %a, footprint %a)" (length t)
    Time.pp (duration t) Size.pp (footprint t)
