(** How an application resumes after a failure of its primary copy.

    Failover transfers computation to the site holding a secondary mirror
    (fast, needs standby compute and an up-to-date mirror; a background
    fail-back follows and is not charged as outage). Reconstruction
    repairs the failed resources and copies consistent data back onto the
    primary, leaving computation in place. *)

type t = Failover | Reconstruct

val all : t list
val to_string : t -> string
val short : t -> string
(** "F" / "R", as in Table 2 and Table 4 of the paper. *)

val of_string : string -> t option
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
