module Category = Ds_workload.Category

let backup = Backup.default

let sync_failover_backup =
  Technique.v ~id:1 ~mirror:Mirror.synchronous ~recovery:Recovery_mode.Failover
    ~backup ()

let sync_reconstruct_backup =
  Technique.v ~id:2 ~mirror:Mirror.synchronous ~recovery:Recovery_mode.Reconstruct
    ~backup ()

let async_failover_backup =
  Technique.v ~id:3 ~mirror:Mirror.asynchronous ~recovery:Recovery_mode.Failover
    ~backup ()

let async_reconstruct_backup =
  Technique.v ~id:4 ~mirror:Mirror.asynchronous ~recovery:Recovery_mode.Reconstruct
    ~backup ()

let sync_failover =
  Technique.v ~id:5 ~mirror:Mirror.synchronous ~recovery:Recovery_mode.Failover ()

let sync_reconstruct =
  Technique.v ~id:6 ~mirror:Mirror.synchronous ~recovery:Recovery_mode.Reconstruct ()

let async_failover =
  Technique.v ~id:7 ~mirror:Mirror.asynchronous ~recovery:Recovery_mode.Failover ()

let async_reconstruct =
  Technique.v ~id:8 ~mirror:Mirror.asynchronous ~recovery:Recovery_mode.Reconstruct ()

let tape_backup = Technique.v ~id:9 ~recovery:Recovery_mode.Reconstruct ~backup ()

let all =
  [ sync_failover_backup; sync_reconstruct_backup;
    async_failover_backup; async_reconstruct_backup;
    sync_failover; sync_reconstruct;
    async_failover; async_reconstruct;
    tape_backup ]

let of_id id = List.find_opt (fun t -> t.Technique.id = id) all

let in_class c =
  List.filter (fun t -> Category.equal (Technique.category t) c) all

let eligible_for c =
  List.filter (fun t -> Category.covers (Technique.category t) c) all

let pp_table ppf () =
  Format.fprintf ppf "%-30s %-6s %-8s %-6s %-6s@."
    "technique" "class" "recovery" "mirror" "backup";
  List.iter (fun t ->
      Format.fprintf ppf "%-30s %-6s %-8s %-6s %-6s@."
        (Technique.describe t)
        (Category.to_string (Technique.category t))
        (Recovery_mode.to_string t.Technique.recovery)
        (match t.Technique.mirror with
         | Some m -> Mirror.to_string m
         | None -> "-")
        (if Technique.has_backup t then "yes" else "-"))
    all
