type t = Failover | Reconstruct

let all = [ Failover; Reconstruct ]

let to_string = function Failover -> "failover" | Reconstruct -> "reconstruct"

let short = function Failover -> "F" | Reconstruct -> "R"

let of_string s =
  match String.lowercase_ascii s with
  | "failover" | "f" -> Some Failover
  | "reconstruct" | "r" -> Some Reconstruct
  | _ -> None

let rank = function Failover -> 0 | Reconstruct -> 1
let equal a b = rank a = rank b
let compare a b = Int.compare (rank a) (rank b)
let pp ppf t = Format.pp_print_string ppf (to_string t)
