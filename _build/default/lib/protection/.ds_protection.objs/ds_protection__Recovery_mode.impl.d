lib/protection/recovery_mode.ml: Format Int String
