lib/protection/technique.ml: Backup Ds_workload Format Int Mirror Option Printf Recovery_mode
