lib/protection/technique.mli: Backup Ds_workload Format Mirror Recovery_mode
