lib/protection/mirror.ml: Ds_units Ds_workload Format
