lib/protection/technique_catalog.mli: Ds_workload Format Technique
