lib/protection/backup.mli: Ds_units Ds_workload Format
