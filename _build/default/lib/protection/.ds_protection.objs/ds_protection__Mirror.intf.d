lib/protection/mirror.mli: Ds_units Ds_workload Format
