lib/protection/technique_catalog.ml: Backup Ds_workload Format List Mirror Recovery_mode Technique
