lib/protection/recovery_mode.mli: Format
