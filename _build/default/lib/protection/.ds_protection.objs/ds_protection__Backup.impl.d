lib/protection/backup.ml: Ds_units Ds_workload Format
