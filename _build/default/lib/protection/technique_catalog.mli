(** The nine-technique catalog of Table 2. *)

val sync_failover_backup : Technique.t
val sync_reconstruct_backup : Technique.t
val async_failover_backup : Technique.t
val async_reconstruct_backup : Technique.t
val sync_failover : Technique.t
val sync_reconstruct : Technique.t
val async_failover : Technique.t
val async_reconstruct : Technique.t
val tape_backup : Technique.t

val all : Technique.t list
(** Table 2 order. *)

val of_id : int -> Technique.t option

val in_class : Ds_workload.Category.t -> Technique.t list
(** Techniques whose class exactly matches. *)

val eligible_for : Ds_workload.Category.t -> Technique.t list
(** Techniques of the given class {e or better} — what the design solver
    and the human heuristic consider for an application of that class
    (Section 3.1.3). *)

val pp_table : Format.formatter -> unit -> unit
(** Render the catalog as a Table 2-style listing. *)
