lib/failure/scenario.ml: Ds_design Ds_resources Ds_workload Format Likelihood List
