lib/failure/scenario.mli: Ds_design Ds_resources Ds_workload Format Likelihood
