lib/failure/likelihood.ml: Float Format
