lib/failure/likelihood.mli: Format
