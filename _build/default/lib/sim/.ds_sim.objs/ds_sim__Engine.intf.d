lib/sim/engine.mli: Ds_units
