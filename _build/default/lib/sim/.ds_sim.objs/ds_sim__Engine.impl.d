lib/sim/engine.ml: Array Ds_units Float Int List
