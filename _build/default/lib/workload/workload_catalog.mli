(** The four application classes of Table 1 and workload-mix generators.

    Class mnemonics follow the paper: central banking (B), company web
    service (W), consumer banking (C) and student accounts (S). The
    scaling experiments (Figure 4) grow the environment "four applications
    at a time, one from each class". *)

type spec = {
  class_tag : string;
  description : string;
  outage_per_hour : Ds_units.Money.t;
  loss_per_hour : Ds_units.Money.t;
  data_size : Ds_units.Size.t;
  avg_update : Ds_units.Rate.t;
  peak_update : Ds_units.Rate.t;
  avg_access : Ds_units.Rate.t;
}

val central_banking : spec
val web_service : spec
val consumer_banking : spec
val student_accounts : spec

val all_specs : spec list
(** [B; W; C; S], paper order. *)

val spec_of_tag : string -> spec option

val instantiate : spec -> id:App.id -> App.t
(** Named instance [<tag><id>] of a class. *)

val mix : count:int -> App.t list
(** [mix ~count] builds [count] applications cycling through the classes
    in paper order (B, W, C, S, B, ...), ids from 1. *)

val balanced_rounds : rounds:int -> App.t list
(** [balanced_rounds ~rounds] is [mix ~count:(4 * rounds)]: the Figure 4
    scaling unit of one application per class. *)

val jittered :
  Ds_prng.Rng.t -> spec -> id:App.id -> spread:float -> App.t
(** A randomized variant of a class: each magnitude is scaled by a factor
    uniform in [\[1/(1+spread), 1+spread\]]. Used by property tests and the
    synthetic-workload examples. [spread] must be non-negative. *)
