module Money = Ds_units.Money

type t = Gold | Silver | Bronze

let all = [ Gold; Silver; Bronze ]

let rank = function Gold -> 0 | Silver -> 1 | Bronze -> 2

let compare a b = Int.compare (rank a) (rank b)

let equal a b = rank a = rank b

let covers provided required = rank provided <= rank required

(* Thresholds chosen so that Table 1's labels come out right:
   B ($10M/hr) -> Gold; W, C ($5.005M/hr) -> Silver; S ($10K/hr) -> Bronze. *)
let gold_threshold = Money.m 8.
let silver_threshold = Money.k 100.

let classify_penalty rate_sum =
  if Money.compare rate_sum gold_threshold >= 0 then Gold
  else if Money.compare rate_sum silver_threshold >= 0 then Silver
  else Bronze

let to_string = function Gold -> "gold" | Silver -> "silver" | Bronze -> "bronze"

let of_string s =
  match String.lowercase_ascii s with
  | "gold" -> Some Gold
  | "silver" -> Some Silver
  | "bronze" -> Some Bronze
  | _ -> None

let pp ppf c = Format.pp_print_string ppf (to_string c)
