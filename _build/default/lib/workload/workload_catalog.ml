module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money
module Rng = Ds_prng.Rng

type spec = {
  class_tag : string;
  description : string;
  outage_per_hour : Money.t;
  loss_per_hour : Money.t;
  data_size : Size.t;
  avg_update : Rate.t;
  peak_update : Rate.t;
  avg_access : Rate.t;
}

(* Table 1 of the paper, verbatim. *)

let central_banking =
  { class_tag = "B";
    description = "central banking: zero data loss, zero outage";
    outage_per_hour = Money.m 5.;
    loss_per_hour = Money.m 5.;
    data_size = Size.gb 1300.;
    avg_update = Rate.mb_per_sec 5.;
    peak_update = Rate.mb_per_sec 50.;
    avg_access = Rate.mb_per_sec 50. }

let web_service =
  { class_tag = "W";
    description = "company web service: zero outage, modest loss";
    outage_per_hour = Money.m 5.;
    loss_per_hour = Money.k 5.;
    data_size = Size.gb 4300.;
    avg_update = Rate.mb_per_sec 2.;
    peak_update = Rate.mb_per_sec 20.;
    avg_access = Rate.mb_per_sec 20. }

let consumer_banking =
  { class_tag = "C";
    description = "consumer banking: zero loss, modest outage";
    outage_per_hour = Money.k 5.;
    loss_per_hour = Money.m 5.;
    data_size = Size.gb 4300.;
    avg_update = Rate.mb_per_sec 1.;
    peak_update = Rate.mb_per_sec 10.;
    avg_access = Rate.mb_per_sec 10. }

let student_accounts =
  { class_tag = "S";
    description = "student accounts: tolerant to loss and outage";
    outage_per_hour = Money.k 5.;
    loss_per_hour = Money.k 5.;
    data_size = Size.gb 500.;
    avg_update = Rate.mb_per_sec 0.5;
    peak_update = Rate.mb_per_sec 5.;
    avg_access = Rate.mb_per_sec 5. }

let all_specs = [ central_banking; web_service; consumer_banking; student_accounts ]

let spec_of_tag tag =
  List.find_opt (fun s -> String.equal s.class_tag tag) all_specs

let instantiate spec ~id =
  App.v ~id
    ~name:(Printf.sprintf "%s%d" spec.class_tag id)
    ~class_tag:spec.class_tag
    ~outage_per_hour:spec.outage_per_hour
    ~loss_per_hour:spec.loss_per_hour
    ~data_size:spec.data_size
    ~avg_update:spec.avg_update
    ~peak_update:spec.peak_update
    ~avg_access:spec.avg_access ()

let mix ~count =
  if count < 0 then invalid_arg "Workload_catalog.mix: negative count";
  let specs = Array.of_list all_specs in
  List.init count (fun i -> instantiate specs.(i mod Array.length specs) ~id:(i + 1))

let balanced_rounds ~rounds = mix ~count:(4 * rounds)

let jittered rng spec ~id ~spread =
  if spread < 0. then invalid_arg "Workload_catalog.jittered: negative spread";
  let factor () =
    let lo = 1. /. (1. +. spread) in
    let hi = 1. +. spread in
    lo +. Rng.unit_float rng *. (hi -. lo)
  in
  let scale_money v = Money.scale (factor ()) v in
  let scale_size v = Size.scale (factor ()) v in
  let upd = Rate.scale (factor ()) spec.avg_update in
  let peak = Rate.max upd (Rate.scale (factor ()) spec.peak_update) in
  App.v ~id
    ~name:(Printf.sprintf "%s%d~" spec.class_tag id)
    ~class_tag:spec.class_tag
    ~outage_per_hour:(scale_money spec.outage_per_hour)
    ~loss_per_hour:(scale_money spec.loss_per_hour)
    ~data_size:(scale_size spec.data_size)
    ~avg_update:upd
    ~peak_update:peak
    ~avg_access:(Rate.max peak (Rate.scale (factor ()) spec.avg_access)) ()
