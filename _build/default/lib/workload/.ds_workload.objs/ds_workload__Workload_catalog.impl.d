lib/workload/workload_catalog.ml: App Array Ds_prng Ds_units List Printf String
