lib/workload/category.ml: Ds_units Format Int String
