lib/workload/app.ml: Category Ds_units Format Int Option
