lib/workload/category.mli: Ds_units Format
