lib/workload/workload_catalog.mli: App Ds_prng Ds_units
