lib/workload/app.mli: Category Ds_units Format
