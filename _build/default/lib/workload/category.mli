(** Application / technique / resource service classes.

    The paper's heuristics — and real storage architects — bucket
    applications, data protection techniques and devices into gold, silver
    and bronze classes. Applications are classified by fixed thresholds on
    the sum of their penalty rates (Section 3.1.3). *)

type t = Gold | Silver | Bronze

val all : t list
(** In descending order of service level: [Gold; Silver; Bronze]. *)

val rank : t -> int
(** Gold = 0, Silver = 1, Bronze = 2 (lower is better service). *)

val compare : t -> t -> int
(** Orders by service level, best (Gold) first. *)

val equal : t -> t -> bool

val covers : t -> t -> bool
(** [covers provided required] is true when class [provided] offers the
    same or better service than [required]: Gold covers everything, Bronze
    only Bronze. *)

val classify_penalty : Ds_units.Money.t -> t
(** Classify an application by the sum of its hourly penalty rates:
    Gold at or above $1M/hr, Silver at or above $100K/hr, else Bronze.
    (Table 1: central banking sums to $10M/hr -> Gold; web service and
    consumer banking to ~$5M/hr -> the paper labels them Silver, so the
    Gold threshold used here is $8M/hr.) *)

val of_string : string -> t option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
