(** Service-level summary of a provisioned design: the RTO/RPO view an
    architect reads off the tool's output.

    For each application, over every simulated failure scenario:
    - RTO (recovery time objective actually achieved): the worst-case
      recovery time;
    - RPO (recovery point objective): the worst-case recent-data-loss
      window;
    - expected annual downtime and loss-exposure hours (likelihood-
      weighted sums). *)

module Time = Ds_units.Time
module App = Ds_workload.App

type entry = {
  app : App.t;
  rto : Time.t;
  rpo : Time.t;
  worst_scenario : string;  (** Scope achieving the RTO. *)
  expected_downtime : Time.t;  (** Per year. *)
  expected_loss : Time.t;  (** Hours of lost updates per year, expected. *)
}

type t = entry list

val of_evaluation : Evaluate.t -> t
(** Sorted by application id; every assigned app appears (apps untouched
    by any scenario report zeroes). *)

val availability : entry -> float
(** Fraction of the year the app is expected to be up: 1 - downtime/year. *)

val pp : Format.formatter -> t -> unit
(** A per-app table with RTO, RPO, expected downtime and availability. *)
