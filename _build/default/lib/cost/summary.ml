module Money = Ds_units.Money

type t = {
  outlay : Money.t;
  outage_penalty : Money.t;
  loss_penalty : Money.t;
}

let zero = { outlay = Money.zero; outage_penalty = Money.zero; loss_penalty = Money.zero }

let v ~outlay ~outage ~loss = { outlay; outage_penalty = outage; loss_penalty = loss }

let total t = Money.sum [ t.outlay; t.outage_penalty; t.loss_penalty ]

let add a b =
  { outlay = Money.add a.outlay b.outlay;
    outage_penalty = Money.add a.outage_penalty b.outage_penalty;
    loss_penalty = Money.add a.loss_penalty b.loss_penalty }

let compare_total a b = Money.compare (total a) (total b)

let pp ppf t =
  Format.fprintf ppf "total %a (outlay %a, outage %a, loss %a)"
    Money.pp (total t) Money.pp t.outlay Money.pp t.outage_penalty
    Money.pp t.loss_penalty
