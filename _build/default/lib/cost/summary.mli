(** Annualized solution cost: outlays plus expected penalties
    (Section 2.5). *)

module Money = Ds_units.Money

type t = {
  outlay : Money.t;  (** Amortized annual infrastructure cost. *)
  outage_penalty : Money.t;  (** Expected annual data-outage penalty. *)
  loss_penalty : Money.t;  (** Expected annual recent-data-loss penalty. *)
}

val zero : t
val v : outlay:Money.t -> outage:Money.t -> loss:Money.t -> t
val total : t -> Money.t
val add : t -> t -> t
val compare_total : t -> t -> int
val pp : Format.formatter -> t -> unit
