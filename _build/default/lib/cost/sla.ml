module Time = Ds_units.Time
module Money = Ds_units.Money
module App = Ds_workload.App
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Scenario = Ds_failure.Scenario
module Outcome = Ds_recovery.Outcome
module Simulate = Ds_recovery.Simulate

(* Segments as (boundary, hourly rate), boundaries strictly increasing;
   [beyond] applies past the last boundary. *)
type curve = {
  segments : (Time.t * Money.t) list;
  beyond : Money.t;
}

let linear ~rate_per_hour = { segments = []; beyond = rate_per_hour }

let stepped segments ~beyond =
  let rec check prev = function
    | [] -> ()
    | (boundary, _) :: rest ->
      (match prev with
       | Some p when Time.compare boundary p <= 0 ->
         invalid_arg "Sla.stepped: boundaries must be strictly increasing"
       | _ -> ());
      check (Some boundary) rest
  in
  check None segments;
  { segments; beyond }

let with_grace window curve =
  if Time.is_zero window then curve
  else begin
    let shifted =
      List.map (fun (b, r) -> (Time.add b window, r)) curve.segments
    in
    { curve with segments = (window, Money.zero) :: shifted }
  end

let year = Time.years 1.

let cost curve duration =
  let duration = Time.min duration year in
  let rec go start remaining acc = function
    | [] -> Money.add acc (Money.penalty ~rate_per_hour:curve.beyond remaining)
    | (boundary, rate) :: rest ->
      let span = Time.sub boundary start in
      let charged = Time.min remaining span in
      let acc = Money.add acc (Money.penalty ~rate_per_hour:rate charged) in
      let remaining = Time.sub remaining charged in
      if Time.is_zero remaining then acc else go boundary remaining acc rest
  in
  go Time.zero duration Money.zero curve.segments

type contract = { outage : curve; loss : curve }

let paper_contract (app : App.t) =
  { outage = linear ~rate_per_hour:app.App.outage_penalty_rate;
    loss = linear ~rate_per_hour:app.App.loss_penalty_rate }

type repriced = {
  app : App.t;
  outage : Money.t;
  loss : Money.t;
}

let expected_annual ?params ~contracts prov likelihood =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((scen : Scenario.t), outcomes) ->
       List.iter
         (fun (o : Outcome.t) ->
            let (contract : contract) = contracts o.Outcome.app in
            let outage =
              Money.scale scen.Scenario.annual_rate
                (cost contract.outage o.Outcome.recovery_time)
            in
            let loss =
              Money.scale scen.Scenario.annual_rate
                (cost contract.loss o.Outcome.loss_time)
            in
            let app_id = o.Outcome.app.App.id in
            match Hashtbl.find_opt tbl app_id with
            | Some (app, acc_outage, acc_loss) ->
              Hashtbl.replace tbl app_id
                (app, Money.add acc_outage outage, Money.add acc_loss loss)
            | None -> Hashtbl.add tbl app_id (o.Outcome.app, outage, loss))
         outcomes)
    (Simulate.all ?params prov likelihood);
  let by_app =
    Hashtbl.fold (fun _ (app, outage, loss) acc -> { app; outage; loss } :: acc)
      tbl []
    |> List.sort (fun a b -> App.compare a.app b.app)
  in
  let total =
    Money.sum (List.map (fun r -> Money.add r.outage r.loss) by_app)
  in
  (by_app, total)
