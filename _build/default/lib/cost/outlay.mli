(** Infrastructure outlay costing (Section 2.3 / Table 3).

    Counts every provisioned device: site facility costs, array enclosures
    plus disks, tape robots plus drives and cartridges, link units, and
    compute instances. Purchase prices are amortized over the device
    lifetime (three years) to an annual figure. *)

module Money = Ds_units.Money
module Provision = Ds_design.Provision

val purchase : Provision.t -> Money.t
(** Unamortized total purchase price. *)

val annual : Provision.t -> Money.t
(** [purchase /. lifetime]: the yearly outlay used in solution costs. *)

val breakdown : Provision.t -> (string * Money.t) list
(** Named annual components (sites, arrays, tapes, links, compute). *)

val app_share : Provision.t -> Ds_workload.App.id -> Money.t
(** A rough attribution of the annual outlay to one application,
    proportional to its capacity/bandwidth demand on each device it
    touches. Used to bias reconfiguration toward the costliest apps; not
    part of the solution cost itself. *)
