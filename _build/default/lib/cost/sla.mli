(** Nonlinear SLA penalty contracts.

    The paper charges penalties linearly: rate x duration. Real contracts
    are tiered — the first minutes of an outage are free (grace), the
    next hours cost something, and beyond a breach point the rate jumps.
    This module re-prices a design's simulated recovery behaviour under
    piecewise-constant-rate contracts, as a what-if layer: the core
    objective stays the paper's linear model.

    A {!curve} is a sequence of (boundary, hourly rate) segments: the
    first rate applies up to the first boundary, and so on; [beyond]
    applies past the last boundary. Cost is the integral of the rate over
    the duration, so curves with higher rates always cost more and cost
    is monotone in duration. *)

module Time = Ds_units.Time
module Money = Ds_units.Money
module App = Ds_workload.App
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood

type curve

val linear : rate_per_hour:Money.t -> curve
(** The paper's model: one rate forever. *)

val stepped : (Time.t * Money.t) list -> beyond:Money.t -> curve
(** [stepped [(b1, r1); (b2, r2)] ~beyond] charges [r1] per hour until
    [b1], [r2] until [b2], and [beyond] afterwards. Boundaries must be
    strictly increasing. @raise Invalid_argument otherwise. *)

val with_grace : Time.t -> curve -> curve
(** Prepend a free period: no penalty accrues during the grace window. *)

val cost : curve -> Time.t -> Money.t
(** Integral of the rate over the duration (infinite durations are capped
    at one year, like the linear model). *)

type contract = { outage : curve; loss : curve }

val paper_contract : App.t -> contract
(** The app's linear Table 1 rates. *)

type repriced = {
  app : App.t;
  outage : Money.t;  (** Expected annual outage penalty under the contract. *)
  loss : Money.t;
}

val expected_annual :
  ?params:Ds_recovery.Recovery_params.t ->
  contracts:(App.t -> contract) ->
  Provision.t ->
  Likelihood.t ->
  repriced list * Money.t
(** Re-price every simulated outcome under per-app contracts; returns the
    per-app expectations and the grand total. With
    [~contracts:paper_contract] this reproduces
    {!Penalty.expected_annual}'s totals (asserted in the tests). *)
