module Time = Ds_units.Time
module App = Ds_workload.App
module Design = Ds_design.Design
module Scenario = Ds_failure.Scenario
module Outcome = Ds_recovery.Outcome

type entry = {
  app : App.t;
  rto : Time.t;
  rpo : Time.t;
  worst_scenario : string;
  expected_downtime : Time.t;
  expected_loss : Time.t;
}

type t = entry list

let of_evaluation (eval : Evaluate.t) =
  let details = eval.Evaluate.penalty.Penalty.details in
  let apps = Design.apps eval.Evaluate.provision.Ds_design.Provision.design in
  List.map
    (fun app ->
       let entry =
         List.fold_left
           (fun acc ((scen : Scenario.t), outcomes) ->
              List.fold_left
                (fun acc (o : Outcome.t) ->
                   if o.Outcome.app.App.id <> app.App.id then acc
                   else begin
                     let acc =
                       if Time.compare o.Outcome.recovery_time acc.rto > 0 then
                         { acc with
                           rto = o.Outcome.recovery_time;
                           worst_scenario =
                             Format.asprintf "%a" Scenario.pp_scope
                               scen.Scenario.scope }
                       else acc
                     in
                     { acc with
                       rpo = Time.max acc.rpo o.Outcome.loss_time;
                       expected_downtime =
                         Time.add acc.expected_downtime
                           (Time.scale scen.Scenario.annual_rate
                              (Time.min o.Outcome.recovery_time (Time.years 1.)));
                       expected_loss =
                         Time.add acc.expected_loss
                           (Time.scale scen.Scenario.annual_rate
                              (Time.min o.Outcome.loss_time (Time.years 1.))) }
                   end)
                acc outcomes)
           { app; rto = Time.zero; rpo = Time.zero; worst_scenario = "-";
             expected_downtime = Time.zero; expected_loss = Time.zero }
           details
       in
       entry)
    apps
  |> List.sort (fun a b -> App.compare a.app b.app)

let availability entry =
  let year = Time.to_hours (Time.years 1.) in
  1. -. (Float.min year (Time.to_hours entry.expected_downtime) /. year)

let pp ppf t =
  Format.fprintf ppf "%-12s %10s %10s %12s %10s  %s@." "app" "RTO" "RPO"
    "downtime/yr" "avail" "worst case";
  List.iter
    (fun entry ->
       Format.fprintf ppf "%-12s %10s %10s %12s %9.4f%%  %s@."
         entry.app.App.name
         (Time.to_string entry.rto)
         (Time.to_string entry.rpo)
         (Time.to_string entry.expected_downtime)
         (100. *. availability entry)
         entry.worst_scenario)
    t
