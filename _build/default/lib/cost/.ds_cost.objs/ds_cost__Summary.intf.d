lib/cost/summary.mli: Ds_units Format
