lib/cost/sla.mli: Ds_design Ds_failure Ds_recovery Ds_units Ds_workload
