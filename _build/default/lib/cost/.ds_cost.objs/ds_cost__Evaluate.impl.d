lib/cost/evaluate.ml: Ds_design Ds_failure Ds_units Ds_workload List Outlay Penalty Result Summary
