lib/cost/sla.ml: Ds_design Ds_failure Ds_recovery Ds_units Ds_workload Hashtbl List
