lib/cost/penalty.mli: Ds_design Ds_failure Ds_recovery Ds_units Ds_workload
