lib/cost/slo_report.ml: Ds_design Ds_failure Ds_recovery Ds_units Ds_workload Evaluate Float Format List Penalty
