lib/cost/outlay.mli: Ds_design Ds_units Ds_workload
