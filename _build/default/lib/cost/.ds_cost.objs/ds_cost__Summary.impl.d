lib/cost/summary.ml: Ds_units Format
