lib/cost/penalty.ml: Ds_design Ds_failure Ds_recovery Ds_units Ds_workload Hashtbl List
