lib/cost/outlay.ml: Ds_design Ds_protection Ds_resources Ds_units Ds_workload List Option
