lib/cost/evaluate.mli: Ds_design Ds_failure Ds_recovery Ds_units Ds_workload Format Penalty Summary
