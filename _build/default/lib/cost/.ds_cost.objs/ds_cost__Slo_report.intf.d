lib/cost/slo_report.mli: Ds_units Ds_workload Evaluate Format
