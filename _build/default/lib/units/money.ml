type t = float

let zero = 0.
let dollars d =
  if Float.is_nan d then invalid_arg "Money.dollars: NaN";
  if d < 0. then invalid_arg "Money.dollars: negative amount";
  d
let k x = dollars (x *. 1e3)
let m x = dollars (x *. 1e6)

let to_dollars t = t

let add = ( +. )
let sub a b = Float.max 0. (a -. b)
let scale f t =
  if f < 0. then invalid_arg "Money.scale: negative factor";
  f *. t
let div a b = if b = 0. then raise Division_by_zero else a /. b
let sum = List.fold_left ( +. ) 0.

let hours_per_year = 8760.

let penalty ~rate_per_hour duration =
  let h = Time.to_hours duration in
  let h = if Float.is_finite h then Float.min h hours_per_year else hours_per_year in
  rate_per_hour *. h

let amortize price ~lifetime_years =
  if lifetime_years <= 0. then invalid_arg "Money.amortize: lifetime must be positive";
  price /. lifetime_years

let min = Float.min
let max = Float.max
let compare = Float.compare
let equal = Float.equal
let ( <= ) a b = Float.compare a b <= 0
let ( < ) a b = Float.compare a b < 0
let is_zero t = t = 0.

let pp ppf t =
  if t >= 1e9 then Format.fprintf ppf "$%.4gB" (t /. 1e9)
  else if t >= 1e6 then Format.fprintf ppf "$%.4gM" (t /. 1e6)
  else if t >= 1e3 then Format.fprintf ppf "$%.4gK" (t /. 1e3)
  else Format.fprintf ppf "$%.4g" t

let to_string t = Format.asprintf "%a" pp t
