type t = float

let zero = 0.
let bytes b =
  if Float.is_nan b then invalid_arg "Size.bytes: NaN";
  if b < 0. then invalid_arg "Size.bytes: negative size";
  b
let mb x = bytes (x *. 1e6)
let gb x = bytes (x *. 1e9)
let tb x = bytes (x *. 1e12)

let to_bytes s = s
let to_mb s = s /. 1e6
let to_gb s = s /. 1e9

let add = ( +. )
let sub a b = Float.max 0. (a -. b)
let scale k s =
  if k < 0. then invalid_arg "Size.scale: negative factor";
  k *. s
let div a b = if b = 0. then raise Division_by_zero else a /. b

let units_needed total ~per_unit =
  if per_unit = 0. then raise Division_by_zero;
  int_of_float (Float.ceil (total /. per_unit))

let min = Float.min
let max = Float.max
let compare = Float.compare
let equal = Float.equal
let ( <= ) a b = Float.compare a b <= 0
let ( < ) a b = Float.compare a b < 0
let is_zero s = s = 0.

let pp ppf s =
  if s < 1e6 then Format.fprintf ppf "%.3gB" s
  else if s < 1e9 then Format.fprintf ppf "%.4gMB" (to_mb s)
  else if s < 1e12 then Format.fprintf ppf "%.4gGB" (to_gb s)
  else Format.fprintf ppf "%.4gTB" (s /. 1e12)

let to_string s = Format.asprintf "%a" pp s
