lib/units/time.mli: Format
