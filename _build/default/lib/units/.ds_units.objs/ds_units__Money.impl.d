lib/units/money.ml: Float Format List Time
