lib/units/time.ml: Float Format
