lib/units/money.mli: Format Time
