lib/units/rate.mli: Format Size Time
