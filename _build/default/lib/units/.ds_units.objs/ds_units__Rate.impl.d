lib/units/rate.ml: Float Format Size Time
