lib/units/size.ml: Float Format
