(** Data transfer rates (bandwidth).

    Application update/access rates and device/link bandwidths.
    Represented as bytes per second in a float. *)

type t

val zero : t
val bytes_per_sec : float -> t
val mb_per_sec : float -> t

val to_bytes_per_sec : t -> float
val to_mb_per_sec : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** Clamped at {!zero}. *)

val scale : float -> t -> t
val div : t -> t -> float
(** Ratio. @raise Division_by_zero on a zero divisor. *)

val transfer_time : Size.t -> t -> Time.t
(** [transfer_time size rate] is the time to move [size] at [rate];
    {!Time.infinity} when [rate] is zero and [size] is positive. *)

val volume_in : t -> Time.t -> Size.t
(** [volume_in rate window] is the data produced at [rate] over [window]. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
