(** Dollar amounts: outlays, penalties and penalty rates.

    Penalty rates are dollars per hour ({!per_hour} builds the hourly
    amount; {!penalty} multiplies a rate by a duration). *)

type t

val zero : t
val dollars : float -> t
val k : float -> t
(** Thousands of dollars. *)

val m : float -> t
(** Millions of dollars. *)

val to_dollars : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** Clamped at {!zero}; the model has no negative costs. *)

val scale : float -> t -> t
val div : t -> t -> float
(** Ratio. @raise Division_by_zero on a zero divisor. *)

val sum : t list -> t

val penalty : rate_per_hour:t -> Time.t -> t
(** [penalty ~rate_per_hour duration] is the cost accrued over [duration]
    at an hourly rate. Infinite durations give a one-year cap: penalties in
    the model are annual expectations, so a year of accrual is the maximum
    chargeable exposure. *)

val amortize : t -> lifetime_years:float -> t
(** Annual share of a purchase price amortized over its lifetime. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [$1.23M] / [$45.6K] / [$789]. *)

val to_string : t -> string
