(** Data sizes.

    Dataset capacities, copy sizes and device capacity units. Represented
    as bytes in a float (datasets here are hundreds of GB; float precision
    is ample). *)

type t

val zero : t
val bytes : float -> t
val mb : float -> t
val gb : float -> t
val tb : float -> t

val to_bytes : t -> float
val to_mb : t -> float
val to_gb : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** Clamped at {!zero}. *)

val scale : float -> t -> t
val div : t -> t -> float
(** Ratio of two sizes. @raise Division_by_zero on a zero divisor. *)

val units_needed : t -> per_unit:t -> int
(** [units_needed total ~per_unit] is the number of discrete device units
    (disks, cartridges) needed to hold [total]: [ceil (total / per_unit)].
    @raise Division_by_zero if [per_unit] is zero. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
