type t = float

let zero = 0.
let bytes_per_sec r =
  if Float.is_nan r then invalid_arg "Rate.bytes_per_sec: NaN";
  if r < 0. then invalid_arg "Rate.bytes_per_sec: negative rate";
  r
let mb_per_sec x = bytes_per_sec (x *. 1e6)

let to_bytes_per_sec r = r
let to_mb_per_sec r = r /. 1e6

let add = ( +. )
let sub a b = Float.max 0. (a -. b)
let scale k r =
  if k < 0. then invalid_arg "Rate.scale: negative factor";
  k *. r
let div a b = if b = 0. then raise Division_by_zero else a /. b

let transfer_time size rate =
  let size = Size.to_bytes size in
  if size = 0. then Time.zero
  else if rate = 0. then Time.infinity
  else Time.seconds (size /. rate)

let volume_in rate window = Size.bytes (rate *. Time.to_seconds window)

let min = Float.min
let max = Float.max
let compare = Float.compare
let equal = Float.equal
let ( <= ) a b = Float.compare a b <= 0
let ( < ) a b = Float.compare a b < 0
let is_zero r = r = 0.

let pp ppf r = Format.fprintf ppf "%.4gMB/s" (to_mb_per_sec r)
let to_string r = Format.asprintf "%a" pp r
