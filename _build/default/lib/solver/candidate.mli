(** A fully evaluated candidate solution: a design plus its provisioning,
    simulation results and cost. Nodes in the design solver's search graph
    carry these. *)

module Money = Ds_units.Money
module Design = Ds_design.Design
module Evaluate = Ds_cost.Evaluate

type t = { design : Design.t; eval : Evaluate.t }

val v : Design.t -> Evaluate.t -> t
val cost : t -> Money.t
val summary : t -> Ds_cost.Summary.t
val better : t -> t -> t
(** The cheaper of the two (first wins ties). *)

val best_of : t list -> t option
val pp : Format.formatter -> t -> unit
