(** Biased random layout selection (Section 3.1.3).

    Given a partial design and an application with a chosen technique,
    picks the devices its copies will live on. Selection probability of a
    device is proportional to

    [alpha * (1 - util) + (1 - alpha) * (1 - usage)]

    where [util] is the device's current utilization (encouraging load
    balance) and [usage] is the fraction of past layouts of this app that
    used the device (encouraging diversity across reconfigurations).
    [alpha] is close to one, as in the paper. Already-used devices are
    preferred over opening new ones unless none fit. *)

module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Slot = Ds_resources.Slot
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment
module Rng = Ds_prng.Rng

module History : sig
  type t
  (** Mutable record of which devices each application has been laid out
      on across the search, for the diversity bias. *)

  val create : unit -> t
  val record : t -> App.id -> Slot.Array_slot.t -> unit
  val usage : t -> App.id -> Slot.Array_slot.t -> float
  (** Fraction of this app's past layouts using the slot; 0 before any. *)
end

type choice = {
  assignment : Assignment.t;
  primary_model : Array_model.t;
  mirror_model : Array_model.t option;
  tape_model : Tape_model.t option;
}

val apply : Design.t -> choice -> (Design.t, string) result
(** Add the chosen assignment (and models) to the design. *)

val choose :
  ?alpha:float ->
  Rng.t ->
  History.t ->
  Design.t ->
  App.t ->
  Technique.t ->
  choice option
(** Biased layout for the app under the technique; [None] when no
    placement fits (e.g. no connected site has room for a mirror). Records
    the primary choice in the history. *)

val choose_uniform : Rng.t -> Design.t -> App.t -> Technique.t -> choice option
(** Uniform layout over all structurally valid placements — the random
    heuristic's generator (no fit pre-filtering beyond structure). *)

val enumerate_primaries :
  Design.t -> App.t -> (Slot.Array_slot.t * Array_model.t) list
(** Every (slot, model) that could host the app's primary copy with room
    to spare: populated slots keep their installed model; empty bays are
    offered once per allowed model. *)
