lib/solver/reconfigure.mli: Candidate Config_solver Ds_design Ds_failure Ds_prng Ds_protection Ds_workload Layout
