lib/solver/design_solver.mli: Candidate Config_solver Ds_failure Ds_resources Ds_workload Reconfigure
