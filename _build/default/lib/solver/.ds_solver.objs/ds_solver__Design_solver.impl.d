lib/solver/design_solver.ml: Candidate Config_solver Ds_design Ds_failure Ds_prng Ds_resources Ds_units Ds_workload Fun List Reconfigure
