lib/solver/config_solver.ml: Candidate Ds_cost Ds_design Ds_failure Ds_protection Ds_recovery Ds_units Ds_workload List Option
