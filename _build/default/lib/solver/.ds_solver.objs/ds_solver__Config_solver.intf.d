lib/solver/config_solver.mli: Candidate Ds_design Ds_failure Ds_recovery Ds_units Ds_workload
