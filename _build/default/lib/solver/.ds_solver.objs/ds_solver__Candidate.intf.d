lib/solver/candidate.mli: Ds_cost Ds_design Ds_units Format
