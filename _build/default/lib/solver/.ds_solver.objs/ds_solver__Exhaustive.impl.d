lib/solver/exhaustive.ml: Candidate Config_solver Ds_design Ds_failure Ds_protection Ds_resources Ds_workload List Option
