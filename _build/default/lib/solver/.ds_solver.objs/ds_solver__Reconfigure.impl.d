lib/solver/reconfigure.ml: Candidate Config_solver Ds_cost Ds_design Ds_failure Ds_prng Ds_protection Ds_units Ds_workload Float Layout List Option
