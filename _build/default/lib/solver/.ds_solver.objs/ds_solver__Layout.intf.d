lib/solver/layout.mli: Ds_design Ds_prng Ds_protection Ds_resources Ds_workload
