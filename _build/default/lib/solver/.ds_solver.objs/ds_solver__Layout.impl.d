lib/solver/layout.ml: Ds_design Ds_prng Ds_protection Ds_resources Ds_units Ds_workload Float Hashtbl List Option
