lib/solver/candidate.ml: Ds_cost Ds_design Ds_units Format List
