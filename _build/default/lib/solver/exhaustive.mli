(** Exhaustive enumeration over the design space — ground truth for tiny
    instances.

    The paper notes the optimum is intractable for realistic instances
    (the space is ~(d^a)^t), so solution quality is judged against random
    samples. For {e tiny} instances, though, full enumeration is feasible
    and gives an exact yardstick: tests assert the heuristic design
    solver lands within a small factor of the true optimum.

    Enumeration walks applications in order; for each, every eligible
    technique x primary (bay, model) x mirror x tape-library placement
    consistent with the models already installed. Every complete design
    is completed by the configuration solver (with the same options as
    the heuristic under test, so the comparison is apples-to-apples). *)

module App = Ds_workload.App
module Env = Ds_resources.Env
module Likelihood = Ds_failure.Likelihood

type result = {
  best : Candidate.t option;  (** Cheapest feasible complete design. *)
  explored : int;  (** Complete designs evaluated. *)
  truncated : bool;  (** True when [max_nodes] stopped the enumeration. *)
}

val solve :
  ?options:Config_solver.options ->
  ?max_nodes:int ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  result
(** [max_nodes] bounds the number of complete designs evaluated
    (default 200,000). *)

val space_size : Env.t -> App.t list -> float
(** Upper-bound estimate of the number of complete designs (ignoring
    model-consistency pruning) — the paper's x^t intuition, used in docs
    and tests. *)
