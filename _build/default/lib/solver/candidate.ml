module Money = Ds_units.Money
module Design = Ds_design.Design
module Evaluate = Ds_cost.Evaluate

type t = { design : Design.t; eval : Evaluate.t }

let v design eval = { design; eval }

let cost t = Evaluate.total t.eval

let summary t = t.eval.Evaluate.summary

let better a b = if Money.compare (cost a) (cost b) <= 0 then a else b

let best_of = function
  | [] -> None
  | first :: rest -> Some (List.fold_left better first rest)

let pp ppf t =
  Format.fprintf ppf "candidate(%d apps): %a" (Design.size t.design)
    Ds_cost.Summary.pp (summary t)
