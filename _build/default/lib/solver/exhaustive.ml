module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Technique_catalog = Ds_protection.Technique_catalog
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Env = Ds_resources.Env
module Slot = Ds_resources.Slot
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment
module Likelihood = Ds_failure.Likelihood

type result = {
  best : Candidate.t option;
  explored : int;
  truncated : bool;
}

(* Candidate (slot, model) pairs honoring already-installed models. *)
let primary_options design =
  let env = design.Design.env in
  List.concat_map
    (fun slot ->
       match Design.array_model design slot with
       | Some model -> [ (slot, model) ]
       | None -> List.map (fun model -> (slot, model)) env.Env.array_models)
    (Env.array_slots env)

let mirror_options design (primary : Slot.Array_slot.t) =
  let env = design.Design.env in
  primary_options design
  |> List.filter (fun ((slot : Slot.Array_slot.t), _) ->
      slot.site <> primary.site && Env.connected env primary.site slot.site)

let tape_options design (primary : Slot.Array_slot.t) =
  let env = design.Design.env in
  List.concat_map
    (fun (slot : Slot.Tape_slot.t) ->
       if slot.site <> primary.site && not (Env.connected env primary.site slot.site)
       then []
       else
         match Design.tape_model design slot with
         | Some model -> [ (slot, model) ]
         | None -> List.map (fun model -> (slot, model)) env.Env.tape_models)
    (Env.tape_slots env)

let solve ?(options = Config_solver.search_options) ?(max_nodes = 200_000) env
    apps likelihood =
  let best = ref None in
  let explored = ref 0 in
  let truncated = ref false in
  let consider design =
    if !explored >= max_nodes then truncated := true
    else begin
      incr explored;
      match Config_solver.solve ~options design likelihood with
      | Error _ -> ()
      | Ok candidate ->
        (match !best with
         | None -> best := Some candidate
         | Some incumbent -> best := Some (Candidate.better incumbent candidate))
    end
  in
  let rec place design = function
    | [] -> consider design
    | app :: rest ->
      List.iter
        (fun technique ->
           List.iter
             (fun (primary, primary_model) ->
                let mirrors =
                  if Technique.has_mirror technique then
                    List.map (fun m -> Some m) (mirror_options design primary)
                  else [ None ]
                in
                let tapes =
                  if Technique.has_backup technique then
                    List.map (fun t -> Some t) (tape_options design primary)
                  else [ None ]
                in
                List.iter
                  (fun mirror ->
                     List.iter
                       (fun tape ->
                          if not !truncated then begin
                            let asg =
                              Assignment.v ~app ~technique ~primary
                                ?mirror:(Option.map fst mirror)
                                ?backup:(Option.map fst tape) ()
                            in
                            match
                              Design.add design asg ~primary_model
                                ?mirror_model:(Option.map snd mirror)
                                ?tape_model:(Option.map snd tape) ()
                            with
                            | Ok design -> place design rest
                            | Error _ -> ()
                          end)
                       tapes)
                  mirrors)
             (primary_options design))
        (Technique_catalog.eligible_for (App.category app))
  in
  place (Design.empty env) apps;
  { best = !best; explored = !explored; truncated = !truncated }

let space_size env apps =
  let bays = float_of_int (List.length (Env.array_slots env)) in
  let models = float_of_int (List.length env.Env.array_models) in
  let tapes =
    float_of_int (List.length (Env.tape_slots env))
    *. float_of_int (max 1 (List.length env.Env.tape_models))
  in
  let per_app (app : App.t) =
    Technique_catalog.eligible_for (App.category app)
    |> List.fold_left
      (fun acc technique ->
         let primaries = bays *. models in
         let mirrors = if Technique.has_mirror technique then bays *. models else 1. in
         let backups = if Technique.has_backup technique then tapes else 1. in
         acc +. (primaries *. mirrors *. backups))
      0.
  in
  List.fold_left (fun acc app -> acc *. per_app app) 1. apps
