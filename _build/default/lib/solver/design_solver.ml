module Money = Ds_units.Money
module App = Ds_workload.App
module Env = Ds_resources.Env
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample

type params = {
  breadth : int;
  depth : int;
  refit_rounds : int;
  patience : int;
  stage1_restarts : int;
  seed : int;
  options : Config_solver.options;
  polish : Config_solver.options option;
}

let default_params =
  { breadth = 3;
    depth = 5;
    refit_rounds = 12;
    patience = 3;
    stage1_restarts = 5;
    seed = 42;
    options = Config_solver.search_options;
    polish = Some Config_solver.default_options }

type outcome = {
  best : Candidate.t;
  evaluations : int;
  refit_rounds_run : int;
  improved_by_refit : bool;
}

(* Stage 1. Applications with stringent requirements are placed first —
   the draw is weighted by the sum of penalty rates. *)
let greedy state params env apps =
  let rec attempt restart =
    if restart > params.stage1_restarts then None
    else begin
      let rec place design = function
        | [] -> Some design
        | unassigned ->
          let weights =
            List.map
              (fun app -> (app, Money.to_dollars (App.penalty_rate_sum app)))
              unassigned
          in
          let app = Sample.weighted state.Reconfigure.rng weights in
          (match Reconfigure.assign_best state design app with
           | Some candidate ->
             place candidate.Candidate.design
               (List.filter (fun a -> a.App.id <> app.App.id) unassigned)
           | None -> None)
      in
      match place (Design.empty env) apps with
      | Some design ->
        (* The per-step candidates were evaluated against partial designs;
           re-evaluate the complete one. *)
        (match
           Config_solver.solve ~options:params.options design
             state.Reconfigure.likelihood
         with
         | Ok candidate -> Some candidate
         | Error _ -> attempt (restart + 1))
      | None -> attempt (restart + 1)
    end
  in
  attempt 0

(* One depth-first probe from a neighbor (the inner while-loop of
   Algorithm 1): at each level evaluate [breadth] reconfigurations, step
   to the best when it improves, and remember the best node seen. *)
let probe state params start =
  let rec descend current best level =
    if level >= params.depth then best
    else begin
      let children =
        List.init params.breadth (fun _ -> Reconfigure.reconfigure state current)
        |> List.filter_map Fun.id
      in
      match Candidate.best_of children with
      | None -> best
      | Some child ->
        let next =
          if Money.compare (Candidate.cost child) (Candidate.cost current) < 0
          then child
          else current
        in
        descend next (Candidate.better best next) (level + 1)
    end
  in
  descend start start 0

let refit state params start =
  let rec rounds current best round without_improvement =
    if round >= params.refit_rounds || without_improvement >= params.patience
    then (best, round)
    else begin
      let branch_best =
        List.init params.breadth (fun _ ->
            match Reconfigure.reconfigure state current with
            | Some neighbor -> Some (probe state params neighbor)
            | None -> None)
        |> List.filter_map Fun.id
        |> Candidate.best_of
      in
      match branch_best with
      | None -> (best, round + 1)
      | Some candidate ->
        if Money.compare (Candidate.cost candidate) (Candidate.cost best) < 0
        then rounds candidate candidate (round + 1) 0
        else rounds best best (round + 1) (without_improvement + 1)
    end
  in
  rounds start start 0 0

let solve ?(params = default_params) env apps likelihood =
  let rng = Rng.of_int params.seed in
  let state = Reconfigure.state ~options:params.options ~rng likelihood in
  match greedy state params env apps with
  | None -> None
  | Some greedy_best ->
    let refined, rounds_run = refit state params greedy_best in
    let best = Candidate.better refined greedy_best in
    (* Final polish: the search ran with cheap configuration options; give
       the winning design the full window search and growth budget. *)
    let best =
      match params.polish with
      | None -> best
      | Some options ->
        (match
           Config_solver.solve ~options best.Candidate.design
             state.Reconfigure.likelihood
         with
         | Ok polished -> Candidate.better polished best
         | Error _ -> best)
    in
    Some
      { best;
        evaluations = state.Reconfigure.evaluations;
        refit_rounds_run = rounds_run;
        improved_by_refit =
          Money.compare (Candidate.cost refined) (Candidate.cost greedy_best) < 0 }
