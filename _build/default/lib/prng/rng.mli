(** Deterministic, splittable pseudo-random number generator.

    The design tool's heuristics are randomized (biased technique selection,
    randomized refit search, random baseline). To make experiments
    reproducible and independent of OCaml's global [Random] state, all
    randomness flows through explicit generator values of type {!t}.

    The core is SplitMix64 (Steele, Lea & Flood, OOPSLA'14): a 64-bit
    counter advanced by a per-stream odd increment ("gamma"), whose output
    is a bijective finalizer of the counter. Splitting derives a new,
    statistically independent stream from the parent. *)

type t
(** A mutable generator. Values produced by the same seed in the same call
    order are identical across runs and platforms. *)

val create : int64 -> t
(** [create seed] makes a generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split g] advances [g] and returns a fresh generator whose future
    outputs are independent of [g]'s. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy replays [g]'s future. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniform non-negative bits, as an [int]. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. [bound] must be positive
    and finite. @raise Invalid_argument otherwise. *)

val unit_float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val pp : Format.formatter -> t -> unit
(** Prints the internal state (for debugging test failures). *)
