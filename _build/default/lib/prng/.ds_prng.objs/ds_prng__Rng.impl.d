lib/prng/rng.ml: Float Format Int64
