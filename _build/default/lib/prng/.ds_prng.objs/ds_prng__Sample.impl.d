lib/prng/sample.ml: Array Float List Rng
