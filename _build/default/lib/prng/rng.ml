type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* David Stafford's "Mix13" variant of the MurmurHash3 finalizer; the
   standard SplitMix64 output function. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Mix used to derive gammas; result is forced odd. The popcount check from
   the reference implementation guards against weak (low-entropy) gammas. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  let z = Int64.logor (Int64.logxor z (Int64.shift_right_logical z 33)) 1L in
  let popcount x =
    let rec go acc x = if Int64.equal x 0L then acc
      else go (acc + 1) (Int64.logand x (Int64.sub x 1L)) in
    go 0 x
  in
  if popcount (Int64.logxor z (Int64.shift_right_logical z 1)) < 24
  then Int64.logxor z 0xAAAAAAAAAAAAAAAAL
  else z

let create seed = { state = seed; gamma = golden_gamma }

let of_int seed = create (Int64.of_int seed)

let next_seed g =
  g.state <- Int64.add g.state g.gamma;
  g.state

let next_int64 g = mix64 (next_seed g)

let split g =
  let state' = mix64 (next_seed g) in
  let gamma' = mix_gamma (next_seed g) in
  { state = state'; gamma = gamma' }

let copy g = { state = g.state; gamma = g.gamma }

let bits30 g =
  Int64.to_int (Int64.shift_right_logical (next_int64 g) 34)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  if n land (n - 1) = 0 then bits30 g land (n - 1)
  else
    (* Rejection sampling to avoid modulo bias. *)
    let rec draw () =
      let r = bits30 g in
      let v = r mod n in
      if r - v + (n - 1) < 0 then draw () else v
    in
    if n <= 1 lsl 30 then draw ()
    else
      let hi = Int64.shift_right_logical (next_int64 g) 1 in
      Int64.to_int (Int64.rem hi (Int64.of_int n))

let int_in g lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let unit_float g =
  (* 53 uniform bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float g bound =
  if not (bound > 0. && Float.is_finite bound) then
    invalid_arg "Rng.float: bound must be positive and finite";
  unit_float g *. bound

let bool g = Int64.logand (next_int64 g) 1L = 1L

let pp ppf g = Format.fprintf ppf "rng{state=%Lx; gamma=%Lx}" g.state g.gamma
