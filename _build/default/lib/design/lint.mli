(** Design lint: advisory findings a storage architect would flag in
    review, beyond the hard feasibility checks.

    Hard constraints live in {!Design.add} and {!Provision.minimum}; lint
    covers the judgment calls: an expensive-to-lose application with no
    point-in-time copy, protection weaker than the app's class warrants,
    everything riding on one site, a library or array close to its
    capacity ceiling. Warnings never block — the solver occasionally has
    good reasons (a lint-clean design can still be the cheaper one) — but
    they surface risk concentrations for a human to sign off on. *)

module App = Ds_workload.App

type severity = Advice | Warning

type finding = {
  severity : severity;
  app : App.id option;  (** [None] for design-wide findings. *)
  message : string;
}

val check : Design.t -> finding list
(** All findings, warnings first. Empty for an unremarkable design. *)

val pp_finding : Format.formatter -> finding -> unit
val pp : Format.formatter -> finding list -> unit
