(** Textual round-tripping of designs.

    A deployed design is an operational artifact — architects keep it in
    version control, re-audit it when failure likelihoods change, and
    diff the tool's proposals. The format is line-oriented and stable:

    {v
    design peer-sites
    array-model 1 0 XP1200
    tape-model 1 TapeLib-H
    app 1 technique 3 primary 1 0 mirror 2 0 backup 1 snapshot-h 12 tape-d 7
    app 4 technique 9 primary 1 0 backup 1
    v}

    Parsing needs context — the environment and the application
    catalog — because a design only references applications by id. *)

module App = Ds_workload.App
module Env = Ds_resources.Env

val to_string : Design.t -> string

val of_string :
  Env.t -> App.t list -> string -> (Design.t, string) result
(** Rebuilds a design against the given environment and applications.
    Errors name the offending line. Unknown app ids, technique ids,
    device models, malformed slots and constraint violations (via
    {!Design.add}) are all reported. *)

val write_file : string -> Design.t -> (unit, string) result
val read_file :
  Env.t -> App.t list -> string -> (Design.t, string) result

type change =
  | Added of App.id
  | Removed of App.id
  | Technique_changed of App.id * string * string  (** old, new names. *)
  | Placement_changed of App.id * string * string
      (** old, new placements (primary/mirror/backup slots). *)

val diff : Design.t -> Design.t -> change list
(** Per-application differences from the first design to the second,
    sorted by application id. Window retuning on an unchanged technique
    type counts as a technique change (the name carries the windows). *)

val pp_change : Format.formatter -> change -> unit
