(** Discrete provisioning: how many units populate each used device.

    The configuration solver starts from {!minimum} — the least
    provisioning that satisfies normal-operation demand — and then adds
    units ({!grow}) wherever that lowers overall cost by shortening
    recovery (Section 3.2.2). *)

module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Slot = Ds_resources.Slot
module Site = Ds_resources.Site

type t = {
  design : Design.t;
  demand : Demand.t;  (** Normal-operation demand this provisioning serves. *)
  array_units : int Slot.Array_slot.Map.t;
  tape_drives : int Slot.Tape_slot.Map.t;
  tape_cartridges : int Slot.Tape_slot.Map.t;
  link_units : int Slot.Pair.Map.t;
  compute : int Site.Id_map.t;
}

type infeasibility =
  | Array_capacity of Slot.Array_slot.t
  | Array_bandwidth of Slot.Array_slot.t
  | Tape_capacity of Slot.Tape_slot.t
  | Tape_bandwidth of Slot.Tape_slot.t
  | Link_bandwidth of Slot.Pair.t
  | Compute_slots of Site.id
  | Missing_model of string

val pp_infeasibility : Format.formatter -> infeasibility -> unit

val minimum : Design.t -> (t, infeasibility) result
(** Smallest provisioning meeting the design's normal-operation demand, or
    the first constraint that cannot be met. *)

val array_bw : t -> Slot.Array_slot.t -> Rate.t
(** Deliverable bandwidth of the slot as provisioned (zero if unused). *)

val tape_bw : t -> Slot.Tape_slot.t -> Rate.t
val link_bw : t -> Slot.Pair.t -> Rate.t

type growth =
  | Grow_array of Slot.Array_slot.t
  | Grow_tape_drive of Slot.Tape_slot.t
  | Grow_link of Slot.Pair.t

val pp_growth : Format.formatter -> growth -> unit

val growth_moves : t -> growth list
(** Every single-unit addition still within device and environment
    limits. *)

val grow : t -> growth -> t option
(** Apply one addition; [None] when the device is already at its limit. *)

val pp : Format.formatter -> t -> unit
