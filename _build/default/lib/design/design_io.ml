module App = Ds_workload.App
module Time = Ds_units.Time
module Backup = Ds_protection.Backup
module Technique = Ds_protection.Technique
module Technique_catalog = Ds_protection.Technique_catalog
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Device_catalog = Ds_resources.Device_catalog
module Env = Ds_resources.Env
module Slot = Ds_resources.Slot

let assignment_line (asg : Assignment.t) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf
    (Printf.sprintf "app %d technique %d primary %d %d" asg.app.App.id
       asg.technique.Technique.id asg.primary.Slot.Array_slot.site
       asg.primary.Slot.Array_slot.bay);
  (match asg.mirror with
   | Some (m : Slot.Array_slot.t) ->
     Buffer.add_string buf (Printf.sprintf " mirror %d %d" m.site m.bay)
   | None -> ());
  (match asg.backup with
   | Some (b : Slot.Tape_slot.t) ->
     Buffer.add_string buf (Printf.sprintf " backup %d" b.site)
   | None -> ());
  (match asg.technique.Technique.backup with
   | Some chain ->
     Buffer.add_string buf
       (Printf.sprintf " snapshot-h %g tape-d %g fulls %d"
          (Time.to_hours chain.Backup.snapshot_win)
          (Time.to_days chain.Backup.tape_win)
          chain.Backup.tape_fulls_every)
   | None -> ());
  Buffer.contents buf

let to_string design =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "design %s\n" design.Design.env.Env.name);
  Slot.Array_slot.Map.iter
    (fun (slot : Slot.Array_slot.t) (model : Array_model.t) ->
       Buffer.add_string buf
         (Printf.sprintf "array-model %d %d %s\n" slot.site slot.bay model.name))
    design.Design.array_models;
  Slot.Tape_slot.Map.iter
    (fun (slot : Slot.Tape_slot.t) (model : Tape_model.t) ->
       Buffer.add_string buf
         (Printf.sprintf "tape-model %d %s\n" slot.site model.name))
    design.Design.tape_models;
  List.iter
    (fun asg -> Buffer.add_string buf (assignment_line asg ^ "\n"))
    (Design.assignments design);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type parse_state = {
  mutable array_models : (Slot.Array_slot.t * Array_model.t) list;
  mutable tape_models : (Slot.Tape_slot.t * Tape_model.t) list;
  mutable design : Design.t;
}

let ( let* ) = Result.bind

let fail line msg = Error (Printf.sprintf "line %d: %s" line msg)

let int_of line what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> fail line (Printf.sprintf "bad %s %S" what s)

let float_of line what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> fail line (Printf.sprintf "bad %s %S" what s)

(* Parse the optional trailing clauses of an app line. *)
let rec parse_clauses line acc = function
  | [] -> Ok acc
  | "mirror" :: site :: bay :: rest ->
    let* site = int_of line "mirror site" site in
    let* bay = int_of line "mirror bay" bay in
    parse_clauses line
      (`Mirror (Slot.Array_slot.v ~site ~bay) :: acc) rest
  | "backup" :: site :: rest ->
    let* site = int_of line "backup site" site in
    parse_clauses line (`Backup (Slot.Tape_slot.v ~site) :: acc) rest
  | "snapshot-h" :: h :: rest ->
    let* h = float_of line "snapshot window" h in
    if h <= 0. then fail line "snapshot window must be positive"
    else parse_clauses line (`Snapshot (Time.hours h) :: acc) rest
  | "tape-d" :: d :: rest ->
    let* d = float_of line "tape window" d in
    if d <= 0. then fail line "tape window must be positive"
    else parse_clauses line (`Tape (Time.days d) :: acc) rest
  | "fulls" :: n :: rest ->
    let* n = int_of line "fulls cycle" n in
    if n < 1 then fail line "fulls cycle must be positive"
    else parse_clauses line (`Fulls n :: acc) rest
  | token :: _ -> fail line (Printf.sprintf "unexpected token %S" token)

let find_clause clauses pick = List.find_map pick clauses

let parse_app_line line apps state tokens =
  match tokens with
  | id :: "technique" :: tid :: "primary" :: psite :: pbay :: rest ->
    let* id = int_of line "app id" id in
    let* tid = int_of line "technique id" tid in
    let* psite = int_of line "primary site" psite in
    let* pbay = int_of line "primary bay" pbay in
    let* app =
      match List.find_opt (fun (a : App.t) -> a.App.id = id) apps with
      | Some app -> Ok app
      | None -> fail line (Printf.sprintf "unknown application id %d" id)
    in
    let* technique =
      match Technique_catalog.of_id tid with
      | Some t -> Ok t
      | None -> fail line (Printf.sprintf "unknown technique id %d" tid)
    in
    let* clauses = parse_clauses line [] rest in
    let technique =
      match technique.Technique.backup with
      | None -> technique
      | Some chain ->
        let chain =
          match find_clause clauses (function `Snapshot w -> Some w | _ -> None) with
          | Some w -> Backup.with_snapshot_win chain w
          | None -> chain
        in
        let chain =
          match find_clause clauses (function `Tape w -> Some w | _ -> None) with
          | Some w -> Backup.with_tape_win chain w
          | None -> chain
        in
        let chain =
          match find_clause clauses (function `Fulls n -> Some n | _ -> None) with
          | Some n -> Backup.with_fulls_every chain n
          | None -> chain
        in
        Technique.with_backup_chain technique chain
    in
    let primary = Slot.Array_slot.v ~site:psite ~bay:pbay in
    let mirror = find_clause clauses (function `Mirror m -> Some m | _ -> None) in
    let backup = find_clause clauses (function `Backup b -> Some b | _ -> None) in
    let* asg =
      try Ok (Assignment.v ~app ~technique ~primary ?mirror ?backup ())
      with Invalid_argument msg -> fail line msg
    in
    let model_for slot =
      List.find_map
        (fun (s, m) -> if Slot.Array_slot.equal s slot then Some m else None)
        state.array_models
    in
    let* primary_model =
      match model_for primary with
      | Some m -> Ok m
      | None -> fail line "no array-model declared for the primary slot"
    in
    let* mirror_model =
      match mirror with
      | None -> Ok None
      | Some slot ->
        (match model_for slot with
         | Some m -> Ok (Some m)
         | None -> fail line "no array-model declared for the mirror slot")
    in
    let* tape_model =
      match backup with
      | None -> Ok None
      | Some slot ->
        (match
           List.find_map
             (fun (s, m) -> if Slot.Tape_slot.equal s slot then Some m else None)
             state.tape_models
         with
         | Some m -> Ok (Some m)
         | None -> fail line "no tape-model declared for the backup slot")
    in
    (match
       Design.add state.design asg ~primary_model ?mirror_model ?tape_model ()
     with
     | Ok design ->
       state.design <- design;
       Ok ()
     | Error msg -> fail line msg)
  | _ -> fail line "malformed app line"

let parse_line apps state line_no line =
  let tokens =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> Ok ()
  | comment :: _ when String.length comment > 0 && comment.[0] = '#' -> Ok ()
  | [ "design"; _name ] -> Ok ()
  | [ "array-model"; site; bay; model ] ->
    let* site = int_of line_no "site" site in
    let* bay = int_of line_no "bay" bay in
    (match Device_catalog.array_model_of_name model with
     | Some m ->
       state.array_models <-
         (Slot.Array_slot.v ~site ~bay, m) :: state.array_models;
       Ok ()
     | None -> fail line_no (Printf.sprintf "unknown array model %S" model))
  | [ "tape-model"; site; model ] ->
    let* site = int_of line_no "site" site in
    (match Device_catalog.tape_model_of_name model with
     | Some m ->
       state.tape_models <- (Slot.Tape_slot.v ~site, m) :: state.tape_models;
       Ok ()
     | None -> fail line_no (Printf.sprintf "unknown tape model %S" model))
  | "app" :: rest -> parse_app_line line_no apps state rest
  | token :: _ -> fail line_no (Printf.sprintf "unknown directive %S" token)

let of_string env apps text =
  let state =
    { array_models = []; tape_models = []; design = Design.empty env }
  in
  let lines = String.split_on_char '\n' text in
  let rec go line_no = function
    | [] -> Ok state.design
    | line :: rest ->
      let* () = parse_line apps state line_no line in
      go (line_no + 1) rest
  in
  go 1 lines

let write_file path design =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string design));
    Ok ()
  with Sys_error msg -> Error msg

type change =
  | Added of Ds_workload.App.id
  | Removed of Ds_workload.App.id
  | Technique_changed of Ds_workload.App.id * string * string
  | Placement_changed of Ds_workload.App.id * string * string

let technique_signature (asg : Assignment.t) =
  let windows =
    match asg.technique.Technique.backup with
    | Some chain ->
      Printf.sprintf " [snap %gh, tape %gd, fulls %d]"
        (Time.to_hours chain.Backup.snapshot_win)
        (Time.to_days chain.Backup.tape_win)
        chain.Backup.tape_fulls_every
    | None -> ""
  in
  Technique.describe asg.technique ^ windows

let placement_signature (asg : Assignment.t) =
  let mirror =
    match asg.mirror with
    | Some m -> Format.asprintf " mirror %a" Slot.Array_slot.pp m
    | None -> ""
  in
  let backup =
    match asg.backup with
    | Some b -> Format.asprintf " tape %a" Slot.Tape_slot.pp b
    | None -> ""
  in
  Format.asprintf "primary %a%s%s" Slot.Array_slot.pp asg.primary mirror backup

let diff before after =
  let ids design =
    List.map (fun (a : Assignment.t) -> a.app.App.id) (Design.assignments design)
  in
  let all_ids = List.sort_uniq Int.compare (ids before @ ids after) in
  List.concat_map
    (fun id ->
       match Design.find before id, Design.find after id with
       | None, Some _ -> [ Added id ]
       | Some _, None -> [ Removed id ]
       | None, None -> []
       | Some old_asg, Some new_asg ->
         let technique =
           let o = technique_signature old_asg
           and n = technique_signature new_asg in
           if String.equal o n then [] else [ Technique_changed (id, o, n) ]
         in
         let placement =
           let o = placement_signature old_asg
           and n = placement_signature new_asg in
           if String.equal o n then [] else [ Placement_changed (id, o, n) ]
         in
         technique @ placement)
    all_ids

let pp_change ppf = function
  | Added id -> Format.fprintf ppf "app %d: added" id
  | Removed id -> Format.fprintf ppf "app %d: removed" id
  | Technique_changed (id, o, n) ->
    Format.fprintf ppf "app %d: technique %s -> %s" id o n
  | Placement_changed (id, o, n) ->
    Format.fprintf ppf "app %d: placement %s -> %s" id o n

let read_file env apps path =
  try
    let ic = open_in path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_string env apps text
  with Sys_error msg -> Error msg
