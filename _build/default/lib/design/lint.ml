module Money = Ds_units.Money
module Size = Ds_units.Size
module App = Ds_workload.App
module Category = Ds_workload.Category
module Technique = Ds_protection.Technique
module Tape_model = Ds_resources.Tape_model
module Array_model = Ds_resources.Array_model
module Slot = Ds_resources.Slot

type severity = Advice | Warning

type finding = {
  severity : severity;
  app : App.id option;
  message : string;
}

let warning ?app message = { severity = Warning; app; message }
let advice ?app message = { severity = Advice; app; message }

(* A loss rate above this with no point-in-time copy is a standing
   invitation for an unrecoverable fat-finger incident. *)
let pit_loss_threshold = Money.k 100.

let app_findings (asg : Assignment.t) =
  let app = asg.app in
  let technique = asg.technique in
  let missing_pit =
    if (not (Technique.has_backup technique))
    && Money.compare app.App.loss_penalty_rate pit_loss_threshold >= 0
    then
      [ warning ~app:app.App.id
          (Printf.sprintf
             "%s risks %s/hr of data loss but has no point-in-time copy: a \
              corrupting error replicates through the mirror and nothing \
              can roll it back"
             app.App.name
             (Money.to_string app.App.loss_penalty_rate)) ]
    else []
  in
  let under_classed =
    let required = App.category app in
    let provided = Technique.category technique in
    if not (Category.covers provided required) then
      [ warning ~app:app.App.id
          (Printf.sprintf "%s is a %s-class application on %s-class protection"
             app.App.name
             (Category.to_string required)
             (Category.to_string provided)) ]
    else []
  in
  let outage_exposure =
    if Money.compare app.App.outage_penalty_rate (Money.m 1.) >= 0
    && not (Technique.needs_standby_compute technique)
    then
      [ advice ~app:app.App.id
          (Printf.sprintf
             "%s pays %s/hr of downtime but recovers by reconstruction; \
              failover would cut outages to minutes"
             app.App.name
             (Money.to_string app.App.outage_penalty_rate)) ]
    else []
  in
  missing_pit @ under_classed @ outage_exposure

let concentration_findings design =
  let sites =
    Design.assignments design
    |> List.map (fun (a : Assignment.t) -> a.primary.Slot.Array_slot.site)
    |> List.sort_uniq Int.compare
  in
  match Design.assignments design with
  | [] | [ _ ] -> []
  | assignments when List.length sites = 1 ->
    [ warning
        (Printf.sprintf
           "all %d primary copies sit at one site: a single disaster takes \
            every application down at once"
           (List.length assignments)) ]
  | _ -> []

let capacity_findings design =
  let demand = Demand.of_design design in
  let arrays =
    Design.used_array_slots design
    |> List.filter_map (fun slot ->
        match Design.array_model design slot with
        | None -> None
        | Some model ->
          let use = Demand.array_use demand slot in
          let frac =
            Size.div use.Demand.capacity (Array_model.total_capacity model)
          in
          if frac > 0.8 then
            Some
              (advice
                 (Format.asprintf
                    "array %a is %.0f%% full at deployment: no headroom \
                     for growth" Slot.Array_slot.pp slot (100. *. frac)))
          else None)
  in
  let tapes =
    Design.used_tape_slots design
    |> List.filter_map (fun slot ->
        match Design.tape_model design slot with
        | None -> None
        | Some model ->
          let use = Demand.tape_use demand slot in
          let frac =
            Size.div use.Demand.tape_capacity (Tape_model.total_capacity model)
          in
          if frac > 0.8 then
            Some
              (advice
                 (Format.asprintf
                    "tape library %a is %.0f%% full at deployment"
                    Slot.Tape_slot.pp slot (100. *. frac)))
          else None)
  in
  arrays @ tapes

let check design =
  let findings =
    List.concat_map app_findings (Design.assignments design)
    @ concentration_findings design
    @ capacity_findings design
  in
  let rank f = match f.severity with Warning -> 0 | Advice -> 1 in
  List.stable_sort (fun a b -> Int.compare (rank a) (rank b)) findings

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s"
    (match f.severity with Warning -> "warning" | Advice -> "advice")
    f.message

let pp ppf findings =
  match findings with
  | [] -> Format.fprintf ppf "no findings@."
  | findings ->
    List.iter (fun f -> Format.fprintf ppf "%a@." pp_finding f) findings
