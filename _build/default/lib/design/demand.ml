module Size = Ds_units.Size
module Rate = Ds_units.Rate
module App = Ds_workload.App
module Mirror = Ds_protection.Mirror
module Backup = Ds_protection.Backup
module Technique = Ds_protection.Technique
module Slot = Ds_resources.Slot
module Site = Ds_resources.Site

type array_use = { capacity : Size.t; bandwidth : Rate.t }
type tape_use = { tape_capacity : Size.t; tape_bandwidth : Rate.t }

type t = {
  arrays : array_use Slot.Array_slot.Map.t;
  tapes : tape_use Slot.Tape_slot.Map.t;
  links : Rate.t Slot.Pair.Map.t;
  compute : int Site.Id_map.t;
}

let zero_array = { capacity = Size.zero; bandwidth = Rate.zero }
let zero_tape = { tape_capacity = Size.zero; tape_bandwidth = Rate.zero }

let add_array m slot use =
  let prev = Option.value ~default:zero_array (Slot.Array_slot.Map.find_opt slot m) in
  Slot.Array_slot.Map.add slot
    { capacity = Size.add prev.capacity use.capacity;
      bandwidth = Rate.add prev.bandwidth use.bandwidth }
    m

let add_tape m slot use =
  let prev = Option.value ~default:zero_tape (Slot.Tape_slot.Map.find_opt slot m) in
  Slot.Tape_slot.Map.add slot
    { tape_capacity = Size.add prev.tape_capacity use.tape_capacity;
      tape_bandwidth = Rate.add prev.tape_bandwidth use.tape_bandwidth }
    m

let add_link m pair rate =
  let prev = Option.value ~default:Rate.zero (Slot.Pair.Map.find_opt pair m) in
  Slot.Pair.Map.add pair (Rate.add prev rate) m

let add_compute m site n =
  let prev = Option.value ~default:0 (Site.Id_map.find_opt site m) in
  Site.Id_map.add site (prev + n) m

let primary_contribution (asg : Assignment.t) =
  let app = asg.app in
  let snapshot_space =
    match asg.technique.Technique.backup with
    | Some chain -> Backup.snapshot_space chain app
    | None -> Size.zero
  in
  { capacity = Size.add app.App.data_size snapshot_space;
    bandwidth = app.App.avg_access_rate }

let mirror_contribution (asg : Assignment.t) =
  match asg.technique.Technique.mirror with
  | None -> zero_array
  | Some m ->
    { capacity = asg.app.App.data_size;
      bandwidth = Mirror.network_demand m asg.app }

let tape_contribution (asg : Assignment.t) =
  match asg.technique.Technique.backup with
  | None -> zero_tape
  | Some chain ->
    { tape_capacity = Backup.tape_space chain asg.app;
      tape_bandwidth = Backup.tape_bandwidth_demand chain asg.app }

let backup_link_rate (asg : Assignment.t) =
  match asg.technique.Technique.backup with
  | None -> Rate.zero
  | Some chain -> Backup.tape_bandwidth_demand chain asg.app

let fold_assignment acc (asg : Assignment.t) =
  let acc = { acc with arrays = add_array acc.arrays asg.primary (primary_contribution asg) } in
  let acc =
    match asg.mirror with
    | None -> acc
    | Some slot ->
      let acc = { acc with arrays = add_array acc.arrays slot (mirror_contribution asg) } in
      (match Assignment.mirror_pair asg with
       | Some pair ->
         let rate =
           match asg.technique.Technique.mirror with
           | Some m -> Mirror.network_demand m asg.app
           | None -> Rate.zero
         in
         { acc with links = add_link acc.links pair rate }
       | None -> acc)
  in
  let acc =
    match asg.backup with
    | None -> acc
    | Some slot ->
      let acc = { acc with tapes = add_tape acc.tapes slot (tape_contribution asg) } in
      (match Assignment.backup_pair asg with
       | Some pair -> { acc with links = add_link acc.links pair (backup_link_rate asg) }
       | None -> acc)
  in
  let acc =
    { acc with
      compute = add_compute acc.compute asg.primary.Slot.Array_slot.site 1 }
  in
  if Technique.needs_standby_compute asg.technique then
    match asg.mirror with
    | Some m -> { acc with compute = add_compute acc.compute m.Slot.Array_slot.site 1 }
    | None -> acc
  else acc

let empty =
  { arrays = Slot.Array_slot.Map.empty;
    tapes = Slot.Tape_slot.Map.empty;
    links = Slot.Pair.Map.empty;
    compute = Site.Id_map.empty }

let of_assignments _design assignments = List.fold_left fold_assignment empty assignments

let of_design design = of_assignments design (Design.assignments design)

let array_use t slot =
  Option.value ~default:zero_array (Slot.Array_slot.Map.find_opt slot t.arrays)

let tape_use t slot =
  Option.value ~default:zero_tape (Slot.Tape_slot.Map.find_opt slot t.tapes)

let link_use t pair =
  Option.value ~default:Rate.zero (Slot.Pair.Map.find_opt pair t.links)

let compute_use t site = Option.value ~default:0 (Site.Id_map.find_opt site t.compute)

let pp ppf t =
  Slot.Array_slot.Map.iter (fun slot use ->
      Format.fprintf ppf "  %a: %a cap, %a bw@," Slot.Array_slot.pp slot
        Size.pp use.capacity Rate.pp use.bandwidth)
    t.arrays;
  Slot.Tape_slot.Map.iter (fun slot use ->
      Format.fprintf ppf "  %a: %a cap, %a bw@," Slot.Tape_slot.pp slot
        Size.pp use.tape_capacity Rate.pp use.tape_bandwidth)
    t.tapes;
  Slot.Pair.Map.iter (fun pair rate ->
      Format.fprintf ppf "  %a: %a@," Slot.Pair.pp pair Rate.pp rate)
    t.links;
  Site.Id_map.iter (fun site n -> Format.fprintf ppf "  s%d: %d compute@," site n)
    t.compute
