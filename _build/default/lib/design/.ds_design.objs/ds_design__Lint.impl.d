lib/design/lint.ml: Assignment Demand Design Ds_protection Ds_resources Ds_units Ds_workload Format Int List Printf
