lib/design/assignment.mli: Ds_protection Ds_resources Ds_workload Format
