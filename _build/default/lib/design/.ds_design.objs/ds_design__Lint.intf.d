lib/design/lint.mli: Design Ds_workload Format
