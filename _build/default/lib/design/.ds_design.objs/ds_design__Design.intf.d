lib/design/design.mli: Assignment Ds_resources Ds_workload Format
