lib/design/assignment.ml: Ds_protection Ds_resources Ds_workload Format Int List Option
