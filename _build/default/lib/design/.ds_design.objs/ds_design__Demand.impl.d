lib/design/demand.ml: Assignment Design Ds_protection Ds_resources Ds_units Ds_workload Format List Option
