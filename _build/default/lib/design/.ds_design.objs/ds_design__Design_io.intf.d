lib/design/design_io.mli: Design Ds_resources Ds_workload Format
