lib/design/provision.ml: Demand Design Ds_resources Ds_units Format List Option Result
