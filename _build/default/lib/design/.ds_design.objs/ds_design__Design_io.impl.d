lib/design/design_io.ml: Assignment Buffer Design Ds_protection Ds_resources Ds_units Ds_workload Format Fun Int List Printf Result String
