lib/design/design.ml: Assignment Ds_protection Ds_resources Ds_workload Format Fun Int List Option Printf Result
