lib/design/provision.mli: Demand Design Ds_resources Ds_units Format
