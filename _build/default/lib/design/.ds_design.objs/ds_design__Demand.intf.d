lib/design/demand.mli: Assignment Design Ds_resources Ds_units Format
