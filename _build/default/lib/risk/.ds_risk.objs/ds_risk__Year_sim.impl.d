lib/risk/year_sim.ml: Array Ds_cost Ds_design Ds_failure Ds_prng Ds_recovery Ds_units Float Format List
