lib/risk/year_sim.mli: Ds_design Ds_failure Ds_prng Ds_recovery Ds_units Format
