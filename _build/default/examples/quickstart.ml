(* Quickstart: protect two applications across two data centers.

   Build an environment, describe the workloads and their business
   requirements, run the automated design tool, and read the result.

     dune exec examples/quickstart.exe *)

open Dependable_storage
module Money = Units.Money
module Size = Units.Size
module Rate = Units.Rate

let () =
  (* Two sites, each with two disk-array bays and a tape library,
     connected by up to 32 high-class (20 MB/s) links. *)
  let env =
    Resources.Env.fully_connected ~name:"quickstart" ~site_count:2
      ~bays_per_site:2 ~array_models:Resources.Device_catalog.array_models
      ~tape_models:Resources.Device_catalog.tape_models
      ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
      ~compute_slots_per_site:4 ()
  in

  (* An order-processing database where outage and data loss both hurt,
     and an analytics warehouse that tolerates a stale restore. *)
  let orders =
    Workload.App.v ~id:1 ~name:"orders-db" ~class_tag:"B"
      ~outage_per_hour:(Money.m 2.) ~loss_per_hour:(Money.m 1.)
      ~data_size:(Size.gb 800.)
      ~avg_update:(Rate.mb_per_sec 4.) ~peak_update:(Rate.mb_per_sec 30.)
      ~avg_access:(Rate.mb_per_sec 35.) ()
  in
  let analytics =
    Workload.App.v ~id:2 ~name:"analytics" ~class_tag:"S"
      ~outage_per_hour:(Money.k 2.) ~loss_per_hour:(Money.k 1.)
      ~data_size:(Size.gb 2000.)
      ~avg_update:(Rate.mb_per_sec 1.) ~peak_update:(Rate.mb_per_sec 8.)
      ~avg_access:(Rate.mb_per_sec 10.) ()
  in

  (* Failure expectations: fat-finger errors yearly, an array failure
     every four years, a site disaster every twenty. *)
  let likelihood =
    Failure.Likelihood.v ~data_object_per_year:1. ~array_per_year:0.25
      ~site_per_year:0.05
  in

  match Solver.Design_solver.solve env [ orders; analytics ] likelihood with
  | None -> prerr_endline "no feasible design"
  | Some outcome ->
    let best = outcome.Solver.Design_solver.best in
    Format.printf "chosen design:@.";
    List.iter
      (fun asg -> Format.printf "  %a@." Design.Assignment.pp asg)
      (Design.Design.assignments best.Solver.Candidate.design);
    Format.printf "@.annual cost: %a@." Cost.Summary.pp
      (Solver.Candidate.summary best)
