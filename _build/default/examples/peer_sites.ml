(* The paper's peer-sites case study (Section 4.3), end to end: solve the
   eight-application two-site environment with all three methods and
   print the Table 4 solution plus the Figure 3 comparison.

     dune exec examples/peer_sites.exe            (full budgets, ~1 min)
     QUICK=1 dune exec examples/peer_sites.exe    (small budgets, seconds) *)

open Dependable_storage
module E = Experiments

let () =
  let budgets =
    if Sys.getenv_opt "QUICK" = Some "1" then E.Budgets.quick
    else E.Budgets.default
  in
  Format.printf "Solving the Section 4.3 case study: 8 applications, 2 peer sites@.";
  (match E.Case_study.run ~budgets () with
   | Some candidate ->
     E.Report.table4 Format.std_formatter
       (E.Case_study.rows_of_candidate candidate);
     Format.printf "@.";
     (* Things the paper calls out about this solution: *)
     let design = candidate.Solver.Candidate.design in
     let failover_apps =
       List.filter
         (fun (a : Design.Assignment.t) ->
            Protection.Technique.needs_standby_compute a.Design.Assignment.technique)
         (Design.Design.assignments design)
     in
     let backup_apps =
       List.filter
         (fun (a : Design.Assignment.t) ->
            Protection.Technique.has_backup a.Design.Assignment.technique)
         (Design.Design.assignments design)
     in
     Format.printf "%d/8 applications use failover; %d/8 carry a backup chain@."
       (List.length failover_apps) (List.length backup_apps)
   | None -> Format.printf "no feasible design found@.");
  Format.printf "@.Comparing against the human and random heuristics:@.";
  let entries = E.Compare.run_peer ~budgets () in
  E.Report.figure3 Format.std_formatter entries
