(* Consolidation vs segregation — the design decision the paper's
   introduction motivates: "it may be more cost-effective to consolidate
   multiple workloads (even if some are less important) onto a high-end
   disk array than to employ a high-end array for important workloads and
   a less expensive array for less important workloads."

   This example builds both designs BY HAND for the same workloads and
   costs them with the evaluation pipeline — no search involved — showing
   how the library doubles as a what-if calculator for architects.

     dune exec examples/consolidation.exe *)

open Dependable_storage
module D = Design.Design
module Assignment = Design.Assignment
module T = Protection.Technique_catalog
module Catalog = Resources.Device_catalog
module Slot = Resources.Slot

let env =
  Resources.Env.fully_connected ~name:"consolidation" ~site_count:2
    ~bays_per_site:2 ~array_models:Catalog.array_models
    ~tape_models:Catalog.tape_models ~link_model:Catalog.link_high
    ~max_link_units:32 ~compute_slots_per_site:8 ()

(* One important banking app and two student-account apps. *)
let banking = Workload.Workload_catalog.instantiate
    Workload.Workload_catalog.central_banking ~id:1
let students =
  List.map
    (fun id ->
       Workload.Workload_catalog.instantiate
         Workload.Workload_catalog.student_accounts ~id)
    [ 2; 3 ]

let slot site bay = Slot.Array_slot.v ~site ~bay
let tape site = Slot.Tape_slot.v ~site

let add design asg ~primary_model ?mirror_model () =
  match
    D.add design asg ~primary_model ?mirror_model ~tape_model:Catalog.tape_high ()
  with
  | Ok d -> d
  | Error msg -> failwith msg

(* Both designs mirror the banking app to site 2 and back everything up;
   they differ in where the student apps' primaries live. *)
let banking_assignment =
  Assignment.v ~app:banking ~technique:T.async_failover_backup
    ~primary:(slot 1 0) ~mirror:(slot 2 0) ~backup:(tape 1) ()

let segregated () =
  (* Students on their own low-end MSA1500 in bay 1. *)
  let design = D.empty env in
  let design =
    add design banking_assignment ~primary_model:Catalog.xp1200
      ~mirror_model:Catalog.xp1200 ()
  in
  List.fold_left
    (fun design app ->
       let asg =
         Assignment.v ~app ~technique:T.tape_backup ~primary:(slot 1 1)
           ~backup:(tape 1) ()
       in
       add design asg ~primary_model:Catalog.msa1500 ())
    design students

let consolidated () =
  (* Students ride along on the banking app's XP1200. *)
  let design = D.empty env in
  let design =
    add design banking_assignment ~primary_model:Catalog.xp1200
      ~mirror_model:Catalog.xp1200 ()
  in
  List.fold_left
    (fun design app ->
       let asg =
         Assignment.v ~app ~technique:T.tape_backup ~primary:(slot 1 0)
           ~backup:(tape 1) ()
       in
       add design asg ~primary_model:Catalog.xp1200 ())
    design students

let cost name design =
  match Cost.Evaluate.design design Failure.Likelihood.default with
  | Ok eval ->
    Format.printf "%-22s %a@." name Cost.Summary.pp eval.Cost.Evaluate.summary;
    Units.Money.to_dollars (Cost.Evaluate.total eval)
  | Error e ->
    Format.printf "%-22s infeasible (%a)@." name
      Design.Provision.pp_infeasibility e;
    Float.infinity

let () =
  Format.printf
    "Same workloads, same protection, different placement of the student apps:@.@.";
  let seg = cost "segregated (own MSA)" (segregated ()) in
  let con = cost "consolidated (on XP)" (consolidated ()) in
  Format.printf "@.";
  if con < seg then
    Format.printf
      "Consolidating saves %s per year: the students' dedicated MSA1500 \
       enclosure costs more than the marginal disks on the XP1200.@."
      (Units.Money.to_string (Units.Money.dollars (seg -. con)))
  else
    Format.printf
      "Segregating wins here by %s per year (slower shared restores \
       outweigh the extra enclosure).@."
      (Units.Money.to_string (Units.Money.dollars (con -. seg)))
