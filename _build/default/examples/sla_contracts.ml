(* Re-pricing a design under real-world SLA contracts.

   The paper's objective charges penalties linearly (rate x duration).
   Actual service contracts are tiered: a short outage inside the grace
   window is free, sustained outages cost more per hour, and breaching a
   contractual RTO multiplies the rate. This example prices the same
   deployed design under three contract families and shows how tiering
   changes which failure scenarios dominate the bill.

     dune exec examples/sla_contracts.exe *)

open Dependable_storage
module E = Experiments
module Sla = Cost.Sla
module App = Workload.App
module Money = Units.Money
module Time = Units.Time

let () =
  match E.Case_study.run ~budgets:E.Budgets.quick () with
  | None -> prerr_endline "no design"
  | Some candidate ->
    let prov = candidate.Solver.Candidate.eval.Cost.Evaluate.provision in
    let likelihood = Failure.Likelihood.default in
    let price name contracts =
      let by_app, total = Sla.expected_annual ~contracts prov likelihood in
      Format.printf "%-28s total %10s@." name (Money.to_string total);
      List.iter
        (fun (r : Sla.repriced) ->
           Format.printf "    %-6s outage %10s  loss %10s@."
             r.Sla.app.App.name
             (Money.to_string r.Sla.outage)
             (Money.to_string r.Sla.loss))
        by_app;
      Format.printf "@."
    in
    Format.printf "Pricing the peer-sites design under three contracts:@.@.";
    (* 1. The paper's linear rates. *)
    price "linear (paper)" Sla.paper_contract;
    (* 2. A 30-minute grace window on outages: short failovers are free. *)
    price "30-min outage grace"
      (fun app ->
         let c = Sla.paper_contract app in
         { c with Sla.outage = Sla.with_grace (Time.minutes 30.) c.Sla.outage });
    (* 3. A 12-hour contractual RTO: breaching it multiplies the rate 10x. *)
    price "12-h RTO breach clause"
      (fun (app : App.t) ->
         let c = Sla.paper_contract app in
         { c with
           Sla.outage =
             Sla.stepped [ (Time.hours 12., app.App.outage_penalty_rate) ]
               ~beyond:(Money.scale 10. app.App.outage_penalty_rate) });
    Format.printf
      "Failover-protected apps barely notice the grace window or the breach \
       clause (their recoveries are minutes); anything restoring from tape \
       or the vault is exposed to the breach multiplier.@."
