(* From I/O trace to storage design.

   The paper's Table 1 characteristics come from analyzing the cello2002
   block traces. This example walks that pipeline on synthetic traces:
   generate cello-like I/O for three applications, characterize each
   trace (average/peak/unique update rates, access rate, footprint),
   attach business requirements, and hand the result to the design tool.

     dune exec examples/trace_characterization.exe *)

open Dependable_storage
module Synth = Trace.Synth
module Characterize = Trace.Characterize
module Money = Units.Money
module Time = Units.Time
module Size = Units.Size

let rng = Prng.Rng.of_int 2026

(* Three services with different I/O personalities. *)
let profiles =
  [ ("payments", 4.0,
     { Synth.default with
       Synth.mean_iops = 400.; write_fraction = 0.6; zipf_skew = 0.9;
       burst_factor = 15.; duration = Time.hours 2. },
     Money.m 2., Money.m 2.);
    ("mailstore", 8.0,
     { Synth.default with
       Synth.mean_iops = 150.; write_fraction = 0.45; zipf_skew = 0.5;
       duration = Time.hours 2. },
     Money.m 1., Money.k 50.);
    ("wiki", 2.0,
     { Synth.default with
       Synth.mean_iops = 60.; write_fraction = 0.15; zipf_skew = 0.7;
       duration = Time.hours 2. },
     Money.k 20., Money.k 20.) ]

let () =
  Format.printf "Characterizing synthetic traces:@.@.";
  let apps =
    List.mapi
      (fun i (name, scale, profile, outage, loss) ->
         let trace = Synth.generate (Prng.Rng.split rng) profile in
         let c = Characterize.analyze trace in
         Format.printf "%-10s %a@."
           name Trace.Trace.pp trace;
         Format.printf "           %a@.@." Characterize.pp c;
         Characterize.to_app ~id:(i + 1) ~name ~class_tag:"T"
           ~outage_per_hour:outage ~loss_per_hour:loss ~scale c)
      profiles
  in
  Format.printf "Derived application characteristics (Table 1 shape):@.";
  List.iter (fun app -> Format.printf "%a@." Workload.App.pp_row app) apps;
  Format.printf "@.Designing protection for the traced workloads:@.";
  let env =
    Resources.Env.fully_connected ~name:"traced" ~site_count:2 ~bays_per_site:2
      ~array_models:Resources.Device_catalog.array_models
      ~tape_models:Resources.Device_catalog.tape_models
      ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
      ~compute_slots_per_site:4 ()
  in
  match Solver.Design_solver.solve env apps Failure.Likelihood.default with
  | None -> prerr_endline "no feasible design"
  | Some outcome ->
    let best = outcome.Solver.Design_solver.best in
    List.iter
      (fun asg -> Format.printf "  %a@." Design.Assignment.pp asg)
      (Design.Design.assignments best.Solver.Candidate.design);
    Format.printf "@.%a@." Cost.Summary.pp (Solver.Candidate.summary best)
