(* Disaster audit: given a deployed design, ask "what actually happens
   when things fail?" — per failure scenario, which copy each application
   recovers from, how long it is down, and how much recent data it loses.
   This drives the recovery simulator directly, the way an architect
   would audit an existing deployment rather than design a new one.

     dune exec examples/disaster_audit.exe *)

open Dependable_storage
module E = Experiments
module Scenario = Failure.Scenario
module Outcome = Recovery.Outcome

let () =
  (* Get a deployed design: solve the peer-sites case study quickly. *)
  let budgets = E.Budgets.quick in
  match E.Case_study.run ~budgets () with
  | None -> prerr_endline "no design to audit"
  | Some candidate ->
    let prov = candidate.Solver.Candidate.eval.Cost.Evaluate.provision in
    let results = Recovery.Simulate.all prov Failure.Likelihood.default in
    Format.printf "Recovery audit of the deployed design@.@.";
    List.iter
      (fun ((scen : Scenario.t), outcomes) ->
         match outcomes with
         | [] -> ()
         | _ ->
           Format.printf "%a (expected %.2f/year):@." Scenario.pp_scope
             scen.Scenario.scope scen.Scenario.annual_rate;
           List.iter
             (fun (o : Outcome.t) -> Format.printf "  %a@." Outcome.pp o)
             outcomes;
           Format.printf "@.")
      results;
    Format.printf "Service levels achieved:@.%a@." Cost.Slo_report.pp
      (Cost.Slo_report.of_evaluation candidate.Solver.Candidate.eval);
    (* Beyond the expected-value objective: what does a bad year cost? *)
    let sim =
      Risk.Year_sim.simulate ~years:10_000 (Prng.Rng.of_int 7) prov
        Failure.Likelihood.default
    in
    Format.printf "%a@.@." Risk.Year_sim.pp sim;
    (* Highlight the worst exposure: the scenario x app with the largest
       single-event penalty. *)
    let worst =
      List.concat_map
        (fun ((scen : Scenario.t), outcomes) ->
           List.map
             (fun (o : Outcome.t) ->
                let outage, loss = Cost.Penalty.of_outcome ~annual_rate:1.0 o in
                (scen, o, Units.Money.add outage loss))
             outcomes)
        results
      |> List.sort (fun (_, _, a) (_, _, b) -> Units.Money.compare b a)
    in
    match worst with
    | (scen, o, cost) :: _ ->
      Format.printf
        "largest single-event exposure: %s under %a — %s per occurrence@."
        o.Outcome.app.Workload.App.name Scenario.pp_scope scen.Scenario.scope
        (Units.Money.to_string cost)
    | [] -> ()
