examples/consolidation.ml: Cost Dependable_storage Design Failure Float Format List Protection Resources Units Workload
