examples/sla_contracts.ml: Cost Dependable_storage Experiments Failure Format List Solver Units Workload
