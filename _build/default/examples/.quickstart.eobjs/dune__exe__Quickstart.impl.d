examples/quickstart.ml: Cost Dependable_storage Design Failure Format List Resources Solver Units Workload
