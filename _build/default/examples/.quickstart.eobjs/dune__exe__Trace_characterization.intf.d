examples/trace_characterization.mli:
