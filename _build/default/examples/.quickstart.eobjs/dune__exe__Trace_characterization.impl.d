examples/trace_characterization.ml: Cost Dependable_storage Design Failure Format List Prng Resources Solver Trace Units Workload
