examples/disaster_audit.mli:
