examples/consolidation.mli:
