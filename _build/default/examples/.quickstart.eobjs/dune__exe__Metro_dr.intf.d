examples/metro_dr.mli:
