examples/peer_sites.ml: Dependable_storage Design Experiments Format List Protection Solver Sys
