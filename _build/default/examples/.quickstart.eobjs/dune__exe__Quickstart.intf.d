examples/quickstart.mli:
