examples/peer_sites.mli:
