examples/metro_dr.ml: Cost Dependable_storage Design Failure Format List Option Protection Resources Solver Workload
