examples/disaster_audit.ml: Cost Dependable_storage Experiments Failure Format List Prng Recovery Risk Solver Units Workload
