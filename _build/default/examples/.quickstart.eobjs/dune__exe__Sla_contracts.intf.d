examples/sla_contracts.mli:
