(* Metro vs geo disaster recovery: distance-bounded synchronous mirrors.

   Synchronous replication pays a network round trip on every write, so
   real deployments cap it at metro distance (tens of km). This example
   solves the same workloads in two three-site chain topologies:

   - a metro chain (sites 20 km apart): sync mirroring allowed anywhere;
   - a geo chain (sites 400 km apart, 100 km sync cap): the solver must
     fall back to asynchronous mirroring, trading recent-data-loss
     exposure for feasibility.

     dune exec examples/metro_dr.exe *)

open Dependable_storage
module Env = Resources.Env
module Catalog = Resources.Device_catalog
module W = Workload.Workload_catalog
module Mirror = Protection.Mirror
module Technique = Protection.Technique

let chain_env ~name ~spacing_km =
  Env.chain ~name ~site_count:3 ~bays_per_site:2
    ~locations:[ (0., 0.); (spacing_km, 0.); (2. *. spacing_km, 0.) ]
    ~max_sync_distance_km:100. ~array_models:Catalog.array_models
    ~tape_models:Catalog.tape_models ~link_model:Catalog.link_high
    ~max_link_units:16 ~compute_slots_per_site:6 ()

let apps = W.mix ~count:6

let describe label env =
  match Solver.Design_solver.solve env apps Failure.Likelihood.default with
  | None -> Format.printf "%-12s no feasible design@." label
  | Some outcome ->
    let best = outcome.Solver.Design_solver.best in
    let mirrors =
      List.filter_map
        (fun (a : Design.Assignment.t) ->
           Option.map
             (fun (m : Mirror.t) -> m.Mirror.sync)
             a.Design.Assignment.technique.Technique.mirror)
        (Design.Design.assignments best.Solver.Candidate.design)
    in
    let count kind = List.length (List.filter (fun s -> s = kind) mirrors) in
    Format.printf "%-12s %a@." label Cost.Summary.pp
      (Solver.Candidate.summary best);
    Format.printf "%-12s %d sync mirrors, %d async mirrors@.@." ""
      (count Mirror.Synchronous) (count Mirror.Asynchronous)

let () =
  Format.printf
    "Six applications on a three-site chain, 100 km sync-mirror cap:@.@.";
  describe "metro (20km)" (chain_env ~name:"metro" ~spacing_km:20.);
  describe "geo (400km)" (chain_env ~name:"geo" ~spacing_km:400.);
  Format.printf
    "At geo distance every mirror is asynchronous: the cap costs minutes \
     of recent updates after a disaster instead of making the design \
     infeasible.@."
