(* Tests for ds_design: assignments, designs, demand accounting and
   discrete provisioning. *)

open Dependable_storage
open Dependable_storage.Units
module Slot = Resources.Slot
module Device_catalog = Resources.Device_catalog
module Array_model = Resources.Array_model
module T = Protection.Technique_catalog
module App = Workload.App
module Assignment = Design.Assignment
module D = Design.Design
module Demand = Design.Demand
module Provision = Design.Provision

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let assignment_tests =
  [ Alcotest.test_case "mirror requires distinct site" `Quick (fun () ->
        Alcotest.check_raises "same site"
          (Invalid_argument "Assignment.v: mirror must be at a different site")
          (fun () ->
             ignore
               (Assignment.v ~app:Fixtures.b_app ~technique:T.sync_failover
                  ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 1 1) ())));
    Alcotest.test_case "mirror presence must match technique" `Quick (fun () ->
        Alcotest.check_raises "missing mirror"
          (Invalid_argument "Assignment.v: mirroring technique needs a mirror slot")
          (fun () ->
             ignore
               (Assignment.v ~app:Fixtures.b_app ~technique:T.sync_failover
                  ~primary:(Fixtures.slot 1 0) ()));
        Alcotest.check_raises "spurious mirror"
          (Invalid_argument "Assignment.v: mirror slot without a mirroring technique")
          (fun () ->
             ignore
               (Assignment.v ~app:Fixtures.b_app ~technique:T.tape_backup
                  ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0)
                  ~backup:(Fixtures.tape 1) ())));
    Alcotest.test_case "backup presence must match technique" `Quick (fun () ->
        Alcotest.check_raises "missing tape"
          (Invalid_argument "Assignment.v: backup technique needs a tape slot")
          (fun () ->
             ignore
               (Assignment.v ~app:Fixtures.b_app ~technique:T.tape_backup
                  ~primary:(Fixtures.slot 1 0) ())));
    Alcotest.test_case "mirror_pair and backup_pair" `Quick (fun () ->
        let asg =
          Assignment.v ~app:Fixtures.b_app ~technique:T.async_failover_backup
            ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0)
            ~backup:(Fixtures.tape 2) ()
        in
        check_bool "mirror pair" true
          (Assignment.mirror_pair asg = Some (Slot.Pair.v 1 2));
        check_bool "remote backup pair" true
          (Assignment.backup_pair asg = Some (Slot.Pair.v 1 2));
        let local =
          Assignment.v ~app:Fixtures.b_app ~technique:T.tape_backup
            ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 1) ()
        in
        check_bool "local backup has no pair" true
          (Assignment.backup_pair local = None);
        Alcotest.(check (list int)) "sites used" [ 1; 2 ]
          (Assignment.sites_used asg));
    Alcotest.test_case "with_technique validates" `Quick (fun () ->
        let asg =
          Assignment.v ~app:Fixtures.b_app ~technique:T.async_failover_backup
            ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0)
            ~backup:(Fixtures.tape 1) ()
        in
        let swapped = Assignment.with_technique asg T.sync_reconstruct_backup in
        check_bool "swapped" true
          (Protection.Technique.equal swapped.Assignment.technique
             T.sync_reconstruct_backup)) ]

let design_tests =
  [ Alcotest.test_case "add, find, remove round trip" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        check_int "two apps" 2 (D.size design);
        check_bool "finds b" true (D.find design 1 <> None);
        let design = D.remove design 1 in
        check_int "one app" 1 (D.size design);
        check_bool "gone" true (D.find design 1 = None));
    Alcotest.test_case "duplicate app rejected" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        (match Fixtures.assign_full Fixtures.b_app design with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "duplicate accepted"));
    Alcotest.test_case "model conflicts rejected" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        (* s1/bay0 runs an XP1200; try to put a C app there on an EVA. *)
        let asg =
          Assignment.v ~app:Fixtures.c_app ~technique:T.tape_backup
            ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 1) ()
        in
        match
          D.add design asg ~primary_model:Device_catalog.eva8000
            ~tape_model:Device_catalog.tape_high ()
        with
        | Error msg -> check_bool "mentions model" true
                         (String.length msg > 0)
        | Ok _ -> Alcotest.fail "conflicting model accepted");
    Alcotest.test_case "shared slot keeps its model" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let asg =
          Assignment.v ~app:Fixtures.c_app ~technique:T.tape_backup
            ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 1) ()
        in
        let design =
          Fixtures.ok
            (D.add design asg ~primary_model:Device_catalog.xp1200
               ~tape_model:Device_catalog.tape_high ())
        in
        check_bool "still XP" true
          (match D.array_model design (Fixtures.slot 1 0) with
           | Some m -> Array_model.equal m Device_catalog.xp1200
           | None -> false));
    Alcotest.test_case "remove prunes orphaned models" `Quick (fun () ->
        let design = D.empty (Fixtures.peer_env ()) in
        let design = Fixtures.ok (Fixtures.assign_full Fixtures.b_app design) in
        let design = D.remove design Fixtures.b_app.App.id in
        check_bool "model gone" true (D.array_model design (Fixtures.slot 1 0) = None);
        check_bool "mirror model gone" true (D.array_model design (Fixtures.slot 2 0) = None);
        check_bool "tape model gone" true (D.tape_model design (Fixtures.tape 1) = None));
    Alcotest.test_case "disconnected mirror rejected" `Quick (fun () ->
        (* Environment with two sites and no links. *)
        let env =
          Resources.Env.v ~name:"islands"
            ~sites:[ Resources.Site.v ~id:1 ~name:"A" (); Resources.Site.v ~id:2 ~name:"B" () ]
            ~bays_per_site:1 ~array_models:Device_catalog.array_models
            ~tape_slots_per_site:1 ~tape_models:Device_catalog.tape_models
            ~link_model:Device_catalog.link_high ~max_link_units:4 ~links:[]
            ~compute_slots_per_site:4 ()
        in
        let asg =
          Assignment.v ~app:Fixtures.b_app ~technique:T.sync_failover
            ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0) ()
        in
        match D.add (D.empty env) asg ~primary_model:Device_catalog.xp1200
                ~mirror_model:Device_catalog.xp1200 () with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "disconnected mirror accepted");
    Alcotest.test_case "used slots, pairs, sites" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        check_int "array slots" 2 (List.length (D.used_array_slots design));
        check_int "tape slots" 1 (List.length (D.used_tape_slots design));
        check_int "pairs" 1 (List.length (D.used_pairs design));
        Alcotest.(check (list int)) "sites" [ 1; 2 ] (D.used_sites design));
    Alcotest.test_case "primaries and residents" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        check_int "primaries on s1/bay0" 2
          (List.length (D.primaries_on design (Fixtures.slot 1 0)));
        check_int "residents of s2/bay0 (mirror)" 1
          (List.length (D.residents design (Fixtures.slot 2 0)));
        check_int "primaries at site 1" 2
          (List.length (D.primaries_at_site design 1));
        check_int "primaries at site 2" 0
          (List.length (D.primaries_at_site design 2))) ]

let demand_tests =
  [ Alcotest.test_case "primary demand includes snapshots" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let demand = Demand.of_design design in
        let use = Demand.array_use demand (Fixtures.slot 1 0) in
        (* B (1300 GB) + S (500 GB) + their snapshot space. *)
        check_bool "capacity over raw data" true
          Size.(Size.gb 1800. < use.Demand.capacity);
        (* Access bandwidth: B 50 + S 5. *)
        check_float "bandwidth" 55. (Rate.to_mb_per_sec use.Demand.bandwidth));
    Alcotest.test_case "mirror demand uses update rates" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let demand = Demand.of_design design in
        let use = Demand.array_use demand (Fixtures.slot 2 0) in
        check_float "capacity = dataset" 1300. (Size.to_gb use.Demand.capacity);
        (* async mirror: average update rate of B = 5 MB/s. *)
        check_float "bw = avg update" 5. (Rate.to_mb_per_sec use.Demand.bandwidth));
    Alcotest.test_case "sync mirror uses peak rate" `Quick (fun () ->
        let design = D.empty (Fixtures.peer_env ()) in
        let design =
          Fixtures.ok
            (Fixtures.assign_full ~technique:T.sync_failover_backup Fixtures.b_app
               design)
        in
        let demand = Demand.of_design design in
        check_float "link = peak" 50.
          (Rate.to_mb_per_sec (Demand.link_use demand (Slot.Pair.v 1 2))));
    Alcotest.test_case "link demand for async mirror" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let demand = Demand.of_design design in
        check_float "avg update" 5.
          (Rate.to_mb_per_sec (Demand.link_use demand (Slot.Pair.v 1 2))));
    Alcotest.test_case "tape demand" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let demand = Demand.of_design design in
        let use = Demand.tape_use demand (Fixtures.tape 1) in
        (* Two retained fulls each for B and S: 2*(1300+500) GB. *)
        check_float "capacity" 3600. (Size.to_gb use.Demand.tape_capacity);
        check_bool "bandwidth positive" true Rate.(Rate.zero < use.Demand.tape_bandwidth));
    Alcotest.test_case "compute: primary plus failover standby" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let demand = Demand.of_design design in
        (* B and S primaries at site 1; B is failover so a standby at 2. *)
        check_int "site 1" 2 (Demand.compute_use demand 1);
        check_int "site 2" 1 (Demand.compute_use demand 2));
    Alcotest.test_case "of_assignments subsets" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let only_b =
          List.filter (fun (a : Assignment.t) -> a.Assignment.app.App.id = 1)
            (D.assignments design)
        in
        let demand = Demand.of_assignments design only_b in
        let use = Demand.array_use demand (Fixtures.slot 1 0) in
        check_float "only B bandwidth" 50. (Rate.to_mb_per_sec use.Demand.bandwidth));
    Alcotest.test_case "zero for untouched devices" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let demand = Demand.of_design design in
        let use = Demand.array_use demand (Fixtures.slot 2 1) in
        check_bool "zero" true (Size.is_zero use.Demand.capacity);
        check_int "no compute at site 9" 0 (Demand.compute_use demand 9)) ]

let provision_tests =
  [ Alcotest.test_case "minimum covers demand" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let prov = Fixtures.feasible (Provision.minimum design) in
        let demand = prov.Provision.demand in
        let use = Demand.array_use demand (Fixtures.slot 1 0) in
        check_bool "bw covered" true
          Rate.(use.Demand.bandwidth <= Provision.array_bw prov (Fixtures.slot 1 0));
        let units =
          Slot.Array_slot.Map.find (Fixtures.slot 1 0) prov.Provision.array_units
        in
        check_bool "capacity covered" true
          Size.(use.Demand.capacity
                <= Size.scale (float_of_int units) (Size.gb 143.)));
    Alcotest.test_case "tape provisioning" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let prov = Fixtures.feasible (Provision.minimum design) in
        let drives = Slot.Tape_slot.Map.find (Fixtures.tape 1) prov.Provision.tape_drives in
        check_bool "at least one drive" true (drives >= 1);
        let carts =
          Slot.Tape_slot.Map.find (Fixtures.tape 1) prov.Provision.tape_cartridges
        in
        check_int "cartridges for 3600GB" 60 carts);
    Alcotest.test_case "link provisioning" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let prov = Fixtures.feasible (Provision.minimum design) in
        let units = Slot.Pair.Map.find (Slot.Pair.v 1 2) prov.Provision.link_units in
        (* 5 MB/s async mirror -> one 20 MB/s link. *)
        check_int "one link" 1 units);
    Alcotest.test_case "infeasible when capacity exceeded" `Quick (fun () ->
        (* S-class data on an MSA1500 is fine; a 100x web service is not. *)
        let big =
          App.v ~id:9 ~name:"huge" ~class_tag:"W" ~outage_per_hour:(Money.k 1.)
            ~loss_per_hour:(Money.k 1.) ~data_size:(Size.tb 25.)
            ~avg_update:(Rate.mb_per_sec 1.) ~peak_update:(Rate.mb_per_sec 2.)
            ~avg_access:(Rate.mb_per_sec 5.) ()
        in
        let asg =
          Assignment.v ~app:big ~technique:T.tape_backup
            ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 1) ()
        in
        let design =
          Fixtures.ok
            (D.add (D.empty (Fixtures.peer_env ())) asg
               ~primary_model:Device_catalog.msa1500
               ~tape_model:Device_catalog.tape_high ())
        in
        match Provision.minimum design with
        | Error (Provision.Array_capacity _) -> ()
        | Error e ->
          Alcotest.failf "wrong error: %a" Provision.pp_infeasibility e
        | Ok _ -> Alcotest.fail "should be infeasible");
    Alcotest.test_case "infeasible when compute exhausted" `Quick (fun () ->
        let env =
          Resources.Env.fully_connected ~name:"tiny" ~site_count:2 ~bays_per_site:2
            ~array_models:Device_catalog.array_models
            ~tape_models:Device_catalog.tape_models
            ~link_model:Device_catalog.link_high ~max_link_units:32
            ~compute_slots_per_site:1 ()
        in
        let design = D.empty env in
        let design = Fixtures.ok (Fixtures.assign_tape_only Fixtures.s_app design) in
        let asg =
          Assignment.v ~app:Fixtures.c_app ~technique:T.tape_backup
            ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 1) ()
        in
        let design =
          Fixtures.ok
            (D.add design asg ~primary_model:Device_catalog.xp1200
               ~tape_model:Device_catalog.tape_high ())
        in
        match Provision.minimum design with
        | Error (Provision.Compute_slots 1) -> ()
        | Error e -> Alcotest.failf "wrong error: %a" Provision.pp_infeasibility e
        | Ok _ -> Alcotest.fail "should be infeasible");
    Alcotest.test_case "grow adds one unit, respects limits" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let prov = Fixtures.feasible (Provision.minimum design) in
        let pair = Slot.Pair.v 1 2 in
        let before = Slot.Pair.Map.find pair prov.Provision.link_units in
        (match Provision.grow prov (Provision.Grow_link pair) with
         | Some grown ->
           check_int "one more" (before + 1)
             (Slot.Pair.Map.find pair grown.Provision.link_units)
         | None -> Alcotest.fail "grow failed");
        (* Saturate the pair and check grow refuses. *)
        let rec saturate p =
          match Provision.grow p (Provision.Grow_link pair) with
          | Some p -> saturate p
          | None -> p
        in
        let full = saturate prov in
        check_int "at env max" 32 (Slot.Pair.Map.find pair full.Provision.link_units));
    Alcotest.test_case "growth_moves lists live devices" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let prov = Fixtures.feasible (Provision.minimum design) in
        let moves = Provision.growth_moves prov in
        check_bool "has array move" true
          (List.exists (function Provision.Grow_array _ -> true | _ -> false) moves);
        check_bool "has link move" true
          (List.exists (function Provision.Grow_link _ -> true | _ -> false) moves);
        check_bool "has drive move" true
          (List.exists (function Provision.Grow_tape_drive _ -> true | _ -> false) moves));
    Alcotest.test_case "array grow stops at controller ceiling" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let prov = Fixtures.feasible (Provision.minimum design) in
        let slot = Fixtures.slot 1 0 in
        let rec saturate p =
          match Provision.grow p (Provision.Grow_array slot) with
          | Some p -> saturate p
          | None -> p
        in
        let full = saturate prov in
        check_float "at 512MB/s" 512.
          (Rate.to_mb_per_sec (Provision.array_bw full slot))) ]

let suites =
  [ ("design.assignment", assignment_tests);
    ("design.design", design_tests);
    ("design.demand", demand_tests);
    ("design.provision", provision_tests) ]
