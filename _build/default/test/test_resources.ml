(* Tests for ds_resources: device models, Table 3 catalog, environments. *)

open Dependable_storage.Units
open Dependable_storage.Resources

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let array_tests =
  [ Alcotest.test_case "bandwidth capped by controller" `Quick (fun () ->
        let m = Device_catalog.xp1200 in
        check_float "1 disk" 25. (Rate.to_mb_per_sec (Array_model.bw_of_units m 1));
        check_float "20 disks" 500. (Rate.to_mb_per_sec (Array_model.bw_of_units m 20));
        check_float "capped" 512. (Rate.to_mb_per_sec (Array_model.bw_of_units m 100));
        check_float "zero" 0. (Rate.to_mb_per_sec (Array_model.bw_of_units m 0)));
    Alcotest.test_case "units_for_capacity" `Quick (fun () ->
        let m = Device_catalog.xp1200 in
        check_int "1300GB -> 10 disks" 10
          (Array_model.units_for_capacity m (Size.gb 1300.));
        check_int "zero" 0 (Array_model.units_for_capacity m Size.zero));
    Alcotest.test_case "units_for_bw" `Quick (fun () ->
        let m = Device_catalog.xp1200 in
        check_int "50MB/s -> 2 disks" 2 (Array_model.units_for_bw m (Rate.mb_per_sec 50.));
        check_int "zero" 0 (Array_model.units_for_bw m Rate.zero);
        check_bool "beyond controller infeasible" true
          (Array_model.units_for_bw m (Rate.mb_per_sec 600.) > m.Array_model.max_units));
    Alcotest.test_case "purchase cost" `Quick (fun () ->
        let m = Device_catalog.xp1200 in
        check_float "fixed + disks" (375_000. +. 10. *. 8723.)
          (Money.to_dollars (Array_model.purchase_cost m ~units:10)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"units_for_bw delivers the demand" ~count:200
         QCheck2.Gen.(float_range 0.1 512.)
         (fun mb ->
            let m = Device_catalog.xp1200 in
            let demand = Rate.mb_per_sec mb in
            let n = Array_model.units_for_bw m demand in
            n > m.Array_model.max_units
            || Rate.(demand <= Array_model.bw_of_units m n))) ]

let tape_tests =
  [ Alcotest.test_case "drive bandwidth" `Quick (fun () ->
        let m = Device_catalog.tape_high in
        check_float "2 drives" 240. (Rate.to_mb_per_sec (Tape_model.bw_of_drives m 2)));
    Alcotest.test_case "drives_for_bw caps at max" `Quick (fun () ->
        let m = Device_catalog.tape_med in
        check_int "240MB/s -> 2 drives" 2 (Tape_model.drives_for_bw m (Rate.mb_per_sec 240.));
        check_bool "overflow flagged" true
          (Tape_model.drives_for_bw m (Rate.mb_per_sec 1000.) > m.Tape_model.max_drives));
    Alcotest.test_case "cartridges round up" `Quick (fun () ->
        let m = Device_catalog.tape_high in
        check_int "100GB -> 2 cartridges" 2
          (Tape_model.cartridges_for_capacity m (Size.gb 100.)));
    Alcotest.test_case "total capacity" `Quick (fun () ->
        check_float "high lib 43.2TB" 43.2
          (Size.to_bytes (Tape_model.total_capacity Device_catalog.tape_high) /. 1e12)) ]

let link_tests =
  [ Alcotest.test_case "units and bandwidth" `Quick (fun () ->
        let m = Device_catalog.link_high in
        check_float "3 units" 60. (Rate.to_mb_per_sec (Link_model.bw_of_units m 3));
        check_int "45MB/s -> 3 units" 3 (Link_model.units_for_bw m (Rate.mb_per_sec 45.));
        check_float "max" 640. (Rate.to_mb_per_sec (Link_model.max_bw m)));
    Alcotest.test_case "cost is linear, no fixed part" `Quick (fun () ->
        let m = Device_catalog.link_high in
        check_float "zero" 0. (Money.to_dollars (Link_model.purchase_cost m ~units:0));
        check_float "2 units" 1e6 (Money.to_dollars (Link_model.purchase_cost m ~units:2))) ]

let catalog_tests =
  [ Alcotest.test_case "Table 3 array prices" `Quick (fun () ->
        check_float "XP fixed" 375_000.
          (Money.to_dollars Device_catalog.xp1200.Array_model.fixed_cost);
        check_float "EVA fixed" 123_000.
          (Money.to_dollars Device_catalog.eva8000.Array_model.fixed_cost);
        check_float "MSA disk" 3720.
          (Money.to_dollars Device_catalog.msa1500.Array_model.unit_cost));
    Alcotest.test_case "Table 3 counts" `Quick (fun () ->
        check_int "XP disks" 1024 Device_catalog.xp1200.Array_model.max_units;
        check_int "EVA disks" 512 Device_catalog.eva8000.Array_model.max_units;
        check_int "MSA disks" 128 Device_catalog.msa1500.Array_model.max_units;
        check_int "tape-high drives" 24 Device_catalog.tape_high.Tape_model.max_drives;
        check_int "tape-med drives" 4 Device_catalog.tape_med.Tape_model.max_drives;
        check_int "net-high units" 32 Device_catalog.link_high.Link_model.max_units);
    Alcotest.test_case "fixed costs" `Quick (fun () ->
        check_float "compute" 125_000. (Money.to_dollars Device_catalog.compute_cost);
        check_float "site" 1e6 (Money.to_dollars Device_catalog.site_cost);
        check_float "3yr life" 3. Device_catalog.device_lifetime_years);
    Alcotest.test_case "lookup by name" `Quick (fun () ->
        check_bool "XP1200" true (Device_catalog.array_model_of_name "XP1200" <> None);
        check_bool "unknown" true (Device_catalog.array_model_of_name "ZZ" = None);
        check_bool "tape" true (Device_catalog.tape_model_of_name "TapeLib-H" <> None)) ]

let env_tests =
  [ Alcotest.test_case "fully_connected shape" `Quick (fun () ->
        let env =
          Env.fully_connected ~name:"quad" ~site_count:4 ~bays_per_site:2
            ~array_models:Device_catalog.array_models
            ~tape_models:Device_catalog.tape_models
            ~link_model:Device_catalog.link_high ~max_link_units:16
            ~compute_slots_per_site:8 ()
        in
        check_int "sites" 4 (List.length env.Env.sites);
        check_int "pairs" 6 (List.length (Env.pairs env));
        check_int "array slots" 8 (List.length (Env.array_slots env));
        check_int "tape slots" 4 (List.length (Env.tape_slots env));
        check_bool "1-2 connected" true (Env.connected env 1 2);
        check_bool "self not connected" false (Env.connected env 1 1);
        check_int "peers of 1" 3 (List.length (Env.peers_of env 1)));
    Alcotest.test_case "validation" `Quick (fun () ->
        let site = Site.v ~id:1 ~name:"S1" () in
        Alcotest.check_raises "no sites" (Invalid_argument "Env.v: no sites")
          (fun () ->
             ignore
               (Env.v ~name:"x" ~sites:[] ~bays_per_site:1
                  ~array_models:Device_catalog.array_models ~tape_slots_per_site:0
                  ~tape_models:[] ~link_model:Device_catalog.link_high
                  ~max_link_units:1 ~links:[] ~compute_slots_per_site:1 ()));
        Alcotest.check_raises "too many link units"
          (Invalid_argument "Env.v: max_link_units exceeds the link model's ceiling")
          (fun () ->
             ignore
               (Env.v ~name:"x" ~sites:[ site ] ~bays_per_site:1
                  ~array_models:Device_catalog.array_models ~tape_slots_per_site:0
                  ~tape_models:[] ~link_model:Device_catalog.link_high
                  ~max_link_units:33 ~links:[] ~compute_slots_per_site:1 ())));
    Alcotest.test_case "slot and pair primitives" `Quick (fun () ->
        let a = Slot.Pair.v 2 1 and b = Slot.Pair.v 1 2 in
        check_bool "normalized" true (Slot.Pair.equal a b);
        check_bool "mem" true (Slot.Pair.mem 1 a);
        check_bool "not mem" false (Slot.Pair.mem 3 a);
        Alcotest.check_raises "self pair"
          (Invalid_argument "Pair.v: a link needs two distinct sites") (fun () ->
              ignore (Slot.Pair.v 1 1));
        let s1 = Slot.Array_slot.v ~site:1 ~bay:0 in
        let s2 = Slot.Array_slot.v ~site:1 ~bay:1 in
        check_bool "slots ordered" true (Slot.Array_slot.compare s1 s2 < 0)) ]

let suites =
  [ ("resources.array", array_tests);
    ("resources.tape", tape_tests);
    ("resources.link", link_tests);
    ("resources.catalog", catalog_tests);
    ("resources.env", env_tests) ]
