(* Remaining surface coverage: budgets, report edge cases, pretty-printer
   stability, and facade sanity. *)

open Dependable_storage
open Dependable_storage.Units
module E = Experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let budget_tests =
  [ Alcotest.test_case "with_seed only changes the seed" `Quick (fun () ->
        let b = E.Budgets.with_seed E.Budgets.default 99 in
        check_int "seed" 99 b.E.Budgets.solver.Solver.Design_solver.seed;
        check_int "human attempts unchanged"
          E.Budgets.default.E.Budgets.human_attempts b.E.Budgets.human_attempts;
        check_int "random attempts unchanged"
          E.Budgets.default.E.Budgets.random_attempts
          b.E.Budgets.random_attempts);
    Alcotest.test_case "quick budget is strictly smaller" `Quick (fun () ->
        check_bool "refit rounds" true
          (E.Budgets.quick.E.Budgets.solver.Solver.Design_solver.refit_rounds
           < E.Budgets.default.E.Budgets.solver.Solver.Design_solver.refit_rounds);
        check_bool "samples" true
          (E.Budgets.quick.E.Budgets.space_samples
           < E.Budgets.default.E.Budgets.space_samples)) ]

let report_tests =
  [ Alcotest.test_case "histogram rejects empty stats and bad bins" `Quick
      (fun () ->
         let empty = { E.Space_sampler.costs = [||]; infeasible = 5 } in
         Alcotest.check_raises "no samples"
           (Invalid_argument "Space_sampler.histogram: no feasible samples")
           (fun () -> ignore (E.Space_sampler.histogram ~bins:4 empty));
         let one = { E.Space_sampler.costs = [| 100. |]; infeasible = 0 } in
         Alcotest.check_raises "bins"
           (Invalid_argument "Space_sampler.histogram: bins < 1") (fun () ->
               ignore (E.Space_sampler.histogram ~bins:0 one)));
    Alcotest.test_case "histogram handles a single sample" `Quick (fun () ->
        let one = { E.Space_sampler.costs = [| 1e6 |]; infeasible = 0 } in
        let h = E.Space_sampler.histogram ~bins:3 one in
        check_int "all in some bucket" 1
          (Array.fold_left ( + ) 0 h.E.Space_sampler.counts));
    Alcotest.test_case "spread of empty stats is None" `Quick (fun () ->
        check_bool "none" true
          (E.Space_sampler.spread { E.Space_sampler.costs = [||]; infeasible = 0 }
           = None));
    Alcotest.test_case "sensitivity report renders infeasible points" `Quick
      (fun () ->
         let pts = [ { E.Sensitivity.rate = 0.5; summary = None } ] in
         let s =
           Format.asprintf "%a"
             (fun ppf pts ->
                E.Report.sensitivity ppf E.Sensitivity.Array_failure pts)
             pts
         in
         check_bool "mentions infeasible" true
           (let rec contains i =
              i + 10 <= String.length s
              && (String.sub s i 10 = "infeasible" || contains (i + 1))
            in
            contains 0)) ]

let pp_tests =
  [ Alcotest.test_case "printers produce stable, non-empty text" `Quick
      (fun () ->
         let non_empty name s = check_bool name true (String.length s > 0) in
         non_empty "time" (Time.to_string (Time.hours 3.));
         non_empty "size" (Size.to_string (Size.gb 42.));
         non_empty "rate" (Rate.to_string (Rate.mb_per_sec 7.));
         non_empty "money" (Money.to_string (Money.m 1.5));
         non_empty "app"
           (Format.asprintf "%a" Workload.App.pp Fixtures.b_app);
         non_empty "technique"
           (Format.asprintf "%a" Protection.Technique.pp
              Protection.Technique_catalog.tape_backup);
         non_empty "backup"
           (Format.asprintf "%a" Protection.Backup.pp Protection.Backup.default);
         non_empty "env"
           (Format.asprintf "%a" Resources.Env.pp (Fixtures.peer_env ()));
         non_empty "design"
           (Format.asprintf "%a" Design.Design.pp (Fixtures.two_app_design ()));
         non_empty "likelihood"
           (Format.asprintf "%a" Failure.Likelihood.pp Failure.Likelihood.default);
         non_empty "recovery params"
           (Format.asprintf "%a" Recovery.Recovery_params.pp
              Recovery.Recovery_params.default));
    Alcotest.test_case "infeasibility printer covers every constructor" `Quick
      (fun () ->
         let open Design.Provision in
         List.iter
           (fun inf ->
              check_bool "prints" true
                (String.length (Format.asprintf "%a" pp_infeasibility inf) > 0))
           [ Array_capacity (Fixtures.slot 1 0);
             Array_bandwidth (Fixtures.slot 1 0);
             Tape_capacity (Fixtures.tape 1);
             Tape_bandwidth (Fixtures.tape 1);
             Link_bandwidth (Resources.Slot.Pair.v 1 2);
             Compute_slots 1;
             Missing_model "x" ]) ]

let facade_tests =
  [ Alcotest.test_case "facade modules are wired to the same catalogs" `Quick
      (fun () ->
         (* Table 2 catalog reachable both ways and identical. *)
         check_int "techniques" 9
           (List.length Protection.Technique_catalog.all);
         check_int "array models" 3
           (List.length Resources.Device_catalog.array_models);
         check_int "tape models" 2
           (List.length Resources.Device_catalog.tape_models);
         check_int "workload classes" 4
           (List.length Workload.Workload_catalog.all_specs));
    Alcotest.test_case "default parameters match the paper" `Quick (fun () ->
        let p = Solver.Design_solver.default_params in
        check_int "b = 3" 3 p.Solver.Design_solver.breadth;
        check_int "d = 5" 5 p.Solver.Design_solver.depth) ]

let suites =
  [ ("misc.budgets", budget_tests);
    ("misc.report", report_tests);
    ("misc.printers", pp_tests);
    ("misc.facade", facade_tests) ]
