(* Tests for SLA penalty curves, the tabu-search baseline and the chain
   topology. *)

open Dependable_storage
open Dependable_storage.Units
module Sla = Cost.Sla
module Penalty = Cost.Penalty
module Provision = Design.Provision
module Likelihood = Failure.Likelihood
module App = Workload.App
module Tabu = Heuristics.Tabu
module Config_solver = Solver.Config_solver
module Candidate = Solver.Candidate
module Heuristic_result = Heuristics.Heuristic_result
module Env = Resources.Env

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_money = Alcotest.(check (float 1.))

let likelihood = Likelihood.default

let dollars m = Money.to_dollars m

let curve_tests =
  [ Alcotest.test_case "linear curve matches Money.penalty" `Quick (fun () ->
        let curve = Sla.linear ~rate_per_hour:(Money.k 5.) in
        List.iter
          (fun hours ->
             check_money (Printf.sprintf "%gh" hours)
               (dollars (Money.penalty ~rate_per_hour:(Money.k 5.) (Time.hours hours)))
               (dollars (Sla.cost curve (Time.hours hours))))
          [ 0.; 0.5; 1.; 7.3; 100.; 9000. ]);
    Alcotest.test_case "stepped curve integrates per segment" `Quick (fun () ->
        (* $1K/hr for the first hour, $10K/hr until hour 3, $100K beyond. *)
        let curve =
          Sla.stepped
            [ (Time.hours 1., Money.k 1.); (Time.hours 3., Money.k 10.) ]
            ~beyond:(Money.k 100.)
        in
        check_money "30min" 500. (dollars (Sla.cost curve (Time.minutes 30.)));
        check_money "1h" 1000. (dollars (Sla.cost curve (Time.hours 1.)));
        check_money "2h" (1000. +. 10_000.) (dollars (Sla.cost curve (Time.hours 2.)));
        check_money "5h" (1000. +. 20_000. +. 200_000.)
          (dollars (Sla.cost curve (Time.hours 5.))));
    Alcotest.test_case "grace period charges nothing early" `Quick (fun () ->
        let curve =
          Sla.with_grace (Time.hours 1.) (Sla.linear ~rate_per_hour:(Money.k 10.))
        in
        check_money "inside grace" 0. (dollars (Sla.cost curve (Time.minutes 30.)));
        check_money "one hour past grace" 10_000.
          (dollars (Sla.cost curve (Time.hours 2.))));
    Alcotest.test_case "stepped validates boundaries" `Quick (fun () ->
        Alcotest.check_raises "non-increasing"
          (Invalid_argument "Sla.stepped: boundaries must be strictly increasing")
          (fun () ->
             ignore
               (Sla.stepped
                  [ (Time.hours 2., Money.k 1.); (Time.hours 1., Money.k 2.) ]
                  ~beyond:Money.zero)));
    Alcotest.test_case "cost caps at a year like the linear model" `Quick
      (fun () ->
         let curve = Sla.linear ~rate_per_hour:(Money.k 1.) in
         check_money "infinite = year"
           (dollars (Sla.cost curve (Time.years 1.)))
           (dollars (Sla.cost curve Time.infinity)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"cost is monotone in duration" ~count:100
         QCheck2.Gen.(pair (float_range 0. 2000.) (float_range 0. 2000.))
         (fun (h1, h2) ->
            let curve =
              Sla.stepped
                [ (Time.hours 4., Money.k 1.); (Time.hours 24., Money.k 20.) ]
                ~beyond:(Money.k 80.)
            in
            let lo = Float.min h1 h2 and hi = Float.max h1 h2 in
            Money.(Sla.cost curve (Time.hours lo) <= Sla.cost curve (Time.hours hi)))) ]

let reprice_tests =
  [ Alcotest.test_case "paper contracts reproduce the linear totals" `Quick
      (fun () ->
         let prov = Fixtures.feasible (Provision.minimum (Fixtures.two_app_design ())) in
         let linear = Penalty.expected_annual prov likelihood in
         let _, total =
           Sla.expected_annual ~contracts:Sla.paper_contract prov likelihood
         in
         check_money "same total"
           (dollars (Money.add linear.Penalty.outage_total linear.Penalty.loss_total))
           (dollars total));
    Alcotest.test_case "a grace period can only reduce the bill" `Quick
      (fun () ->
         let prov = Fixtures.feasible (Provision.minimum (Fixtures.two_app_design ())) in
         let graceful (app : App.t) =
           let c = Sla.paper_contract app in
           { c with Sla.outage = Sla.with_grace (Time.hours 1.) c.Sla.outage }
         in
         let _, linear_total =
           Sla.expected_annual ~contracts:Sla.paper_contract prov likelihood
         in
         let _, graced_total =
           Sla.expected_annual ~contracts:graceful prov likelihood
         in
         check_bool "cheaper or equal" true Money.(graced_total <= linear_total));
    Alcotest.test_case "breach steps can explode the bill" `Quick (fun () ->
        let prov = Fixtures.feasible (Provision.minimum (Fixtures.two_app_design ())) in
        (* The S app restores from the vault after a site disaster —
           days of outage — so a breach step at 24 h bites hard. *)
        let breach (app : App.t) =
          let c = Sla.paper_contract app in
          { c with
            Sla.outage =
              Sla.stepped [ (Time.hours 24., app.App.outage_penalty_rate) ]
                ~beyond:(Money.scale 100. app.App.outage_penalty_rate) }
        in
        let _, linear_total =
          Sla.expected_annual ~contracts:Sla.paper_contract prov likelihood
        in
        let _, breach_total = Sla.expected_annual ~contracts:breach prov likelihood in
        check_bool "more expensive" true Money.(linear_total < breach_total)) ]

let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 1;
    window_scope = Config_solver.Skip }

let tabu_tests =
  [ Alcotest.test_case "parameter validation" `Quick (fun () ->
        Alcotest.check_raises "neighbors"
          (Invalid_argument "Tabu: need at least one neighbor") (fun () ->
              ignore
                (Tabu.run
                   ~params:{ Tabu.default_params with Tabu.neighbors = 0 }
                   ~seed:1 (Fixtures.peer_env ()) [ Fixtures.s_app ] likelihood)));
    Alcotest.test_case "finds a complete feasible design" `Slow (fun () ->
        let params = { Tabu.iterations = 25; neighbors = 3; tenure = 3 } in
        let result =
          Tabu.run ~options:fast_options ~params ~seed:31 (Fixtures.peer_env ())
            (Ds_experiments.Envs.peer_apps ()) likelihood
        in
        match result.Heuristic_result.best with
        | None -> Alcotest.fail "no design"
        | Some best ->
          check_int "all apps" 8 (Design.Design.size best.Candidate.design));
    Alcotest.test_case "deterministic per seed" `Slow (fun () ->
        let params = { Tabu.iterations = 10; neighbors = 2; tenure = 2 } in
        let cost () =
          (Tabu.run ~options:fast_options ~params ~seed:32 (Fixtures.peer_env ())
             [ Fixtures.b_app; Fixtures.s_app ] likelihood).Heuristic_result.best
          |> Option.map (fun c -> Money.to_dollars (Candidate.cost c))
        in
        Alcotest.(check (option (float 1e-3))) "same" (cost ()) (cost ())) ]

let chain_tests =
  [ Alcotest.test_case "chain topology links neighbors only" `Quick (fun () ->
        let env =
          Env.chain ~name:"metro" ~site_count:4 ~bays_per_site:1
            ~array_models:Resources.Device_catalog.array_models
            ~tape_models:Resources.Device_catalog.tape_models
            ~link_model:Resources.Device_catalog.link_med ~max_link_units:8
            ~compute_slots_per_site:4 ()
        in
        check_int "three links" 3 (List.length (Env.pairs env));
        check_bool "neighbors" true (Env.connected env 1 2);
        check_bool "ends not connected" false (Env.connected env 1 4);
        check_int "middle site has two peers" 2 (List.length (Env.peers_of env 2));
        check_int "end site has one peer" 1 (List.length (Env.peers_of env 1)));
    Alcotest.test_case "solver respects chain connectivity" `Slow (fun () ->
        let env =
          Env.chain ~name:"metro" ~site_count:3 ~bays_per_site:2
            ~array_models:Resources.Device_catalog.array_models
            ~tape_models:Resources.Device_catalog.tape_models
            ~link_model:Resources.Device_catalog.link_high ~max_link_units:16
            ~compute_slots_per_site:4 ()
        in
        let params =
          { Solver.Design_solver.default_params with
            Solver.Design_solver.refit_rounds = 1; depth = 1; breadth = 2;
            options = fast_options; polish = None }
        in
        match
          Solver.Design_solver.solve ~params env
            [ Fixtures.b_app; Fixtures.c_app ] likelihood
        with
        | None -> Alcotest.fail "no design"
        | Some outcome ->
          List.iter
            (fun (asg : Design.Assignment.t) ->
               match asg.Design.Assignment.mirror with
               | Some m ->
                 check_bool "mirror on a connected site" true
                   (Env.connected env
                      asg.Design.Assignment.primary.Resources.Slot.Array_slot.site
                      m.Resources.Slot.Array_slot.site)
               | None -> ())
            (Design.Design.assignments
               outcome.Solver.Design_solver.best.Candidate.design)) ]

(* Two sites 300 km apart with a 100 km synchronous-mirroring cap. *)
let far_env () =
  Env.fully_connected ~name:"far" ~site_count:2 ~bays_per_site:2
    ~locations:[ (0., 0.); (300., 0.) ] ~max_sync_distance_km:100.
    ~array_models:Resources.Device_catalog.array_models
    ~tape_models:Resources.Device_catalog.tape_models
    ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
    ~compute_slots_per_site:8 ()

let distance_tests =
  [ Alcotest.test_case "site distance computed from locations" `Quick (fun () ->
        let env = far_env () in
        (match Env.distance_km env 1 2 with
         | Some d -> Alcotest.(check (float 1e-6)) "300km" 300. d
         | None -> Alcotest.fail "no distance");
        check_bool "unlocated sites have no distance" true
          (Env.distance_km (Fixtures.peer_env ()) 1 2 = None));
    Alcotest.test_case "sync allowed without a cap or locations" `Quick
      (fun () ->
         check_bool "no cap" true
           (Env.sync_mirror_allowed (Fixtures.peer_env ()) 1 2));
    Alcotest.test_case "far sync mirror rejected, async accepted" `Quick
      (fun () ->
         let env = far_env () in
         check_bool "cap applies" false (Env.sync_mirror_allowed env 1 2);
         let add technique =
           let asg =
             Design.Assignment.v ~app:Fixtures.b_app ~technique
               ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0)
               ~backup:(Fixtures.tape 1) ()
           in
           Design.Design.add (Design.Design.empty env) asg
             ~primary_model:Resources.Device_catalog.xp1200
             ~mirror_model:Resources.Device_catalog.xp1200
             ~tape_model:Resources.Device_catalog.tape_high ()
         in
         (match add Protection.Technique_catalog.sync_failover_backup with
          | Error msg -> check_bool "mentions distance" true
                           (String.length msg > 0)
          | Ok _ -> Alcotest.fail "far sync mirror accepted");
         match add Protection.Technique_catalog.async_failover_backup with
         | Ok _ -> ()
         | Error msg -> Alcotest.failf "async rejected: %s" msg);
    Alcotest.test_case "solver only ever picks async mirrors across the gap"
      `Slow (fun () ->
          let params =
            { Solver.Design_solver.default_params with
              Solver.Design_solver.refit_rounds = 2; depth = 2; breadth = 2;
              options = fast_options; polish = None }
          in
          match
            Solver.Design_solver.solve ~params (far_env ())
              (Ds_experiments.Envs.peer_apps ()) likelihood
          with
          | None -> Alcotest.fail "no design"
          | Some outcome ->
            List.iter
              (fun (asg : Design.Assignment.t) ->
                 match asg.Design.Assignment.technique.Protection.Technique.mirror with
                 | Some m ->
                   check_bool "async only" true
                     (m.Protection.Mirror.sync = Protection.Mirror.Asynchronous)
                 | None -> ())
              (Design.Design.assignments
                 outcome.Solver.Design_solver.best.Candidate.design)) ]

let suites =
  [ ("sla.curves", curve_tests);
    ("sla.reprice", reprice_tests);
    ("heuristics.tabu", tabu_tests);
    ("resources.chain", chain_tests);
    ("resources.distance", distance_tests) ]
