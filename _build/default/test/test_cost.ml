(* Tests for ds_cost: outlays, expected penalties, full evaluation. *)

open Dependable_storage
open Dependable_storage.Units
module D = Design.Design
module Provision = Design.Provision
module Likelihood = Failure.Likelihood
module Outlay = Cost.Outlay
module Penalty = Cost.Penalty
module Summary = Cost.Summary
module Evaluate = Cost.Evaluate
module Outcome = Recovery.Outcome
module Copy_source = Recovery.Copy_source
module App = Workload.App
module T = Protection.Technique_catalog

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))
let dollars m = Money.to_dollars m

let prov_of design = Fixtures.feasible (Provision.minimum design)

let summary_tests =
  [ Alcotest.test_case "total sums the components" `Quick (fun () ->
        let s = Summary.v ~outlay:(Money.m 1.) ~outage:(Money.m 2.) ~loss:(Money.m 3.) in
        check_float "6M" 6e6 (dollars (Summary.total s)));
    Alcotest.test_case "add and compare" `Quick (fun () ->
        let a = Summary.v ~outlay:(Money.m 1.) ~outage:Money.zero ~loss:Money.zero in
        let b = Summary.v ~outlay:(Money.m 2.) ~outage:Money.zero ~loss:Money.zero in
        check_bool "a < b" true (Summary.compare_total a b < 0);
        check_float "sum" 3e6 (dollars (Summary.total (Summary.add a b)))) ]

let outlay_tests =
  [ Alcotest.test_case "annual = purchase / 3" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        check_float "amortized" (dollars (Outlay.purchase prov) /. 3.)
          (dollars (Outlay.annual prov)));
    Alcotest.test_case "purchase covers all component classes" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let parts = Outlay.breakdown prov in
        Alcotest.(check (list string)) "names"
          [ "sites"; "disk arrays"; "tape libraries"; "network links"; "compute" ]
          (List.map fst parts);
        (* Two sites, two arrays, one tape lib, one link pair, 3 compute. *)
        let get name = dollars (List.assoc name parts) in
        check_float "sites" (2e6 /. 3.) (get "sites");
        check_bool "arrays positive" true (get "disk arrays" > 0.);
        check_bool "tapes positive" true (get "tape libraries" > 0.);
        check_float "one link" (500_000. /. 3.) (get "network links");
        check_float "compute: 2 primaries + 1 standby" (3. *. 125_000. /. 3.)
          (get "compute");
        let sum = List.fold_left (fun acc (_, m) -> acc +. dollars m) 0. parts in
        check_bool "breakdown sums to annual" true
          (Float.abs (sum -. dollars (Outlay.annual prov)) < 1.));
    Alcotest.test_case "breakdown reacts to provisioning growth" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let pair = Resources.Slot.Pair.v 1 2 in
        match Provision.grow prov (Provision.Grow_link pair) with
        | Some grown ->
          check_bool "more links cost more" true
            (dollars (Outlay.annual grown) > dollars (Outlay.annual prov))
        | None -> Alcotest.fail "grow failed");
    Alcotest.test_case "app_share positive and bounded" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let share1 = dollars (Outlay.app_share prov 1) in
        let share4 = dollars (Outlay.app_share prov 4) in
        check_bool "positive" true (share1 > 0. && share4 > 0.);
        check_bool "B costs more than S" true (share1 > share4);
        check_bool "bounded by total" true
          (share1 +. share4 <= dollars (Outlay.annual prov) +. 1.));
    Alcotest.test_case "app_share of unknown app is zero" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        check_float "zero" 0. (dollars (Outlay.app_share prov 99))) ]

let penalty_tests =
  [ Alcotest.test_case "of_outcome weights by annual rate" `Quick (fun () ->
        let outcome =
          { Outcome.app = Fixtures.b_app; mode = Outcome.Failed_over;
            recovery_time = Time.hours 1.; loss_time = Time.hours 2. }
        in
        let outage, loss = Penalty.of_outcome ~annual_rate:0.5 outcome in
        (* B: outage $5M/hr, loss $5M/hr. *)
        check_float "outage" (5e6 *. 0.5) (dollars outage);
        check_float "loss" (2. *. 5e6 *. 0.5) (dollars loss));
    Alcotest.test_case "expected_annual covers every app" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let p = Penalty.expected_annual prov Likelihood.default in
        Alcotest.(check (list int)) "apps" [ 1; 4 ]
          (List.map (fun (x : Penalty.per_app) -> x.Penalty.app.App.id)
             p.Penalty.by_app);
        check_bool "totals positive" true
          (dollars p.Penalty.outage_total > 0. && dollars p.Penalty.loss_total > 0.);
        let sum_outage =
          List.fold_left (fun acc (x : Penalty.per_app) -> acc +. dollars x.Penalty.outage)
            0. p.Penalty.by_app
        in
        check_float "by_app sums to total" (dollars p.Penalty.outage_total) sum_outage);
    Alcotest.test_case "higher likelihood means higher penalties" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let base = Penalty.expected_annual prov Likelihood.default in
        let double =
          Penalty.expected_annual prov
            (Likelihood.v ~data_object_per_year:(2. /. 3.)
               ~array_per_year:(2. /. 3.) ~site_per_year:0.4)
        in
        check_float "outage doubles" (2. *. dollars base.Penalty.outage_total)
          (dollars double.Penalty.outage_total);
        check_float "loss doubles" (2. *. dollars base.Penalty.loss_total)
          (dollars double.Penalty.loss_total)) ]

let evaluate_tests =
  [ Alcotest.test_case "design evaluates at minimum provisioning" `Quick (fun () ->
        match Evaluate.design (Fixtures.two_app_design ()) Likelihood.default with
        | Ok eval ->
          check_bool "total = summary" true
            (Float.abs (dollars (Evaluate.total eval)
                        -. dollars (Summary.total eval.Evaluate.summary)) < 1e-6)
        | Error e ->
          Alcotest.failf "infeasible: %a" Provision.pp_infeasibility e);
    Alcotest.test_case "infeasible design reports the constraint" `Quick (fun () ->
        let big =
          App.v ~id:9 ~name:"huge" ~class_tag:"W" ~outage_per_hour:(Money.k 1.)
            ~loss_per_hour:(Money.k 1.) ~data_size:(Size.tb 25.)
            ~avg_update:(Rate.mb_per_sec 1.) ~peak_update:(Rate.mb_per_sec 2.)
            ~avg_access:(Rate.mb_per_sec 5.) ()
        in
        let asg =
          Design.Assignment.v ~app:big ~technique:T.tape_backup
            ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 1) ()
        in
        let design =
          Fixtures.ok
            (D.add (D.empty (Fixtures.peer_env ())) asg
               ~primary_model:Resources.Device_catalog.msa1500
               ~tape_model:Resources.Device_catalog.tape_high ())
        in
        check_bool "error" true
          (Result.is_error (Evaluate.design design Likelihood.default)));
    Alcotest.test_case "app_burden includes penalties and outlay share" `Quick
      (fun () ->
         match Evaluate.design (Fixtures.two_app_design ()) Likelihood.default with
         | Ok eval ->
           let burden = dollars (Evaluate.app_burden eval 1) in
           let share = dollars (Outlay.app_share eval.Evaluate.provision 1) in
           check_bool "burden >= outlay share" true (burden >= share)
         | Error _ -> Alcotest.fail "infeasible");
    Alcotest.test_case "growing bandwidth cannot worsen penalties" `Quick (fun () ->
        let prov = prov_of (Fixtures.two_app_design ()) in
        let base = Evaluate.provisioned prov Likelihood.default in
        let pair = Resources.Slot.Pair.v 1 2 in
        match Provision.grow prov (Provision.Grow_link pair) with
        | Some grown ->
          let after = Evaluate.provisioned grown Likelihood.default in
          let penalties e =
            dollars e.Evaluate.summary.Summary.outage_penalty
            +. dollars e.Evaluate.summary.Summary.loss_penalty
          in
          check_bool "penalties not worse" true (penalties after <= penalties base +. 1e-6)
        | None -> Alcotest.fail "grow failed") ]

let suites =
  [ ("cost.summary", summary_tests);
    ("cost.outlay", outlay_tests);
    ("cost.penalty", penalty_tests);
    ("cost.evaluate", evaluate_tests) ]
