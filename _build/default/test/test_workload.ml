(* Tests for ds_workload: categories, application model, Table 1 catalog. *)

open Dependable_storage.Units
open Dependable_storage.Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let category_tests =
  [ Alcotest.test_case "ordering" `Quick (fun () ->
        check_bool "gold best" true (Category.compare Category.Gold Category.Silver < 0);
        check_bool "silver better than bronze" true
          (Category.compare Category.Silver Category.Bronze < 0));
    Alcotest.test_case "covers" `Quick (fun () ->
        check_bool "gold covers bronze" true (Category.covers Category.Gold Category.Bronze);
        check_bool "gold covers gold" true (Category.covers Category.Gold Category.Gold);
        check_bool "bronze does not cover silver" false
          (Category.covers Category.Bronze Category.Silver));
    Alcotest.test_case "classify matches Table 1 labels" `Quick (fun () ->
        check_str "B gold" "gold"
          (Category.to_string (Category.classify_penalty (Money.m 10.)));
        check_str "W silver" "silver"
          (Category.to_string (Category.classify_penalty (Money.m 5.005)));
        check_str "S bronze" "bronze"
          (Category.to_string (Category.classify_penalty (Money.k 10.))));
    Alcotest.test_case "string round trip" `Quick (fun () ->
        List.iter
          (fun c ->
             check_bool "round trip" true
               (Category.of_string (Category.to_string c) = Some c))
          Category.all;
        check_bool "unknown" true (Category.of_string "platinum" = None)) ]

let app_tests =
  [ Alcotest.test_case "penalty sum" `Quick (fun () ->
        let app = Workload_catalog.instantiate Workload_catalog.central_banking ~id:1 in
        Alcotest.(check (float 1.)) "10M" 10e6
          (Money.to_dollars (App.penalty_rate_sum app)));
    Alcotest.test_case "category derived" `Quick (fun () ->
        let b = Workload_catalog.instantiate Workload_catalog.central_banking ~id:1 in
        let w = Workload_catalog.instantiate Workload_catalog.web_service ~id:2 in
        let c = Workload_catalog.instantiate Workload_catalog.consumer_banking ~id:3 in
        let s = Workload_catalog.instantiate Workload_catalog.student_accounts ~id:4 in
        check_str "B" "gold" (Category.to_string (App.category b));
        check_str "W" "silver" (Category.to_string (App.category w));
        check_str "C" "silver" (Category.to_string (App.category c));
        check_str "S" "bronze" (Category.to_string (App.category s)));
    Alcotest.test_case "constructor validation" `Quick (fun () ->
        let make ~peak ~avg =
          App.v ~id:1 ~name:"x" ~class_tag:"X" ~outage_per_hour:(Money.k 1.)
            ~loss_per_hour:(Money.k 1.) ~data_size:(Size.gb 1.)
            ~avg_update:(Rate.mb_per_sec avg) ~peak_update:(Rate.mb_per_sec peak)
            ~avg_access:(Rate.mb_per_sec 1.) ()
        in
        check_bool "valid" true (ignore (make ~peak:2. ~avg:1.); true);
        Alcotest.check_raises "peak < avg"
          (Invalid_argument "App.v: peak update rate below average update rate")
          (fun () -> ignore (make ~peak:0.5 ~avg:1.)));
    Alcotest.test_case "compare by id" `Quick (fun () ->
        let a = Workload_catalog.instantiate Workload_catalog.central_banking ~id:1 in
        let b = Workload_catalog.instantiate Workload_catalog.web_service ~id:2 in
        check_bool "ordering" true (App.compare a b < 0);
        check_bool "self" true (App.equal a a)) ]

let catalog_tests =
  [ Alcotest.test_case "Table 1 values" `Quick (fun () ->
        let b = Workload_catalog.central_banking in
        Alcotest.(check (float 1.)) "B size GB" 1300.
          (Size.to_gb b.Workload_catalog.data_size);
        Alcotest.(check (float 0.01)) "B avg update" 5.
          (Rate.to_mb_per_sec b.Workload_catalog.avg_update);
        Alcotest.(check (float 0.01)) "B peak update" 50.
          (Rate.to_mb_per_sec b.Workload_catalog.peak_update);
        let w = Workload_catalog.web_service in
        Alcotest.(check (float 1.)) "W size GB" 4300.
          (Size.to_gb w.Workload_catalog.data_size);
        let s = Workload_catalog.student_accounts in
        Alcotest.(check (float 1.)) "S size GB" 500.
          (Size.to_gb s.Workload_catalog.data_size));
    Alcotest.test_case "four specs in paper order" `Quick (fun () ->
        check_int "count" 4 (List.length Workload_catalog.all_specs);
        Alcotest.(check (list string)) "tags" [ "B"; "W"; "C"; "S" ]
          (List.map (fun s -> s.Workload_catalog.class_tag)
             Workload_catalog.all_specs));
    Alcotest.test_case "spec_of_tag" `Quick (fun () ->
        check_bool "B" true (Workload_catalog.spec_of_tag "B" <> None);
        check_bool "unknown" true (Workload_catalog.spec_of_tag "Z" = None));
    Alcotest.test_case "mix cycles classes, unique ids" `Quick (fun () ->
        let apps = Workload_catalog.mix ~count:10 in
        check_int "count" 10 (List.length apps);
        let ids = List.map (fun a -> a.App.id) apps in
        check_int "unique ids" 10 (List.length (List.sort_uniq Int.compare ids));
        check_str "first is B" "B" ((List.nth apps 0).App.class_tag);
        check_str "fifth is B again" "B" ((List.nth apps 4).App.class_tag));
    Alcotest.test_case "balanced_rounds" `Quick (fun () ->
        let apps = Workload_catalog.balanced_rounds ~rounds:3 in
        check_int "12 apps" 12 (List.length apps);
        let count tag =
          List.length (List.filter (fun a -> a.App.class_tag = tag) apps)
        in
        List.iter (fun tag -> check_int tag 3 (count tag)) [ "B"; "W"; "C"; "S" ]);
    Alcotest.test_case "jittered stays valid" `Quick (fun () ->
        let rng = Dependable_storage.Prng.Rng.of_int 42 in
        for i = 1 to 100 do
          let app =
            Workload_catalog.jittered rng Workload_catalog.central_banking ~id:i
              ~spread:0.5
          in
          check_bool "peak >= avg" true
            Rate.(app.App.avg_update_rate <= app.App.peak_update_rate)
        done);
    Alcotest.test_case "jittered rejects negative spread" `Quick (fun () ->
        let rng = Dependable_storage.Prng.Rng.of_int 42 in
        Alcotest.check_raises "negative"
          (Invalid_argument "Workload_catalog.jittered: negative spread")
          (fun () ->
             ignore
               (Workload_catalog.jittered rng Workload_catalog.central_banking
                  ~id:1 ~spread:(-0.1)))) ]

let suites =
  [ ("workload.category", category_tests);
    ("workload.app", app_tests);
    ("workload.catalog", catalog_tests) ]
