(* Tests for ds_recovery: surviving copies, staleness, recovery paths,
   contention, and the full scenario simulator. *)

open Dependable_storage
open Dependable_storage.Units
module T = Protection.Technique_catalog
module Backup = Protection.Backup
module Scenario = Failure.Scenario
module Likelihood = Failure.Likelihood
module Params = Recovery.Recovery_params
module Copy_source = Recovery.Copy_source
module Outcome = Recovery.Outcome
module Simulate = Recovery.Simulate
module Provision = Design.Provision
module D = Design.Design
module Assignment = Design.Assignment
module App = Workload.App

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let params = Params.default

let full_asg technique =
  Assignment.v ~app:Fixtures.b_app ~technique ~primary:(Fixtures.slot 1 0)
    ~mirror:(Fixtures.slot 2 0) ~backup:(Fixtures.tape 1) ()

let kinds copies = List.map (fun c -> c.Copy_source.kind) copies

let has kind copies = List.mem kind (kinds copies)

let surviving scope technique =
  Copy_source.surviving ~params ~tape_propagation:(Time.hours 2.)
    (full_asg technique) scope

let copy_tests =
  [ Alcotest.test_case "object failure: corruption kills the mirror" `Quick
      (fun () ->
         let copies = surviving (Scenario.Data_object 1) T.sync_failover_backup in
         check_bool "no mirror" false (has Copy_source.Mirror copies);
         check_bool "snapshot lives" true (has Copy_source.Snapshot copies);
         check_bool "tape lives" true (has Copy_source.Tape copies);
         check_bool "vault lives" true (has Copy_source.Vault copies));
    Alcotest.test_case "array failure: snapshots die with the array" `Quick
      (fun () ->
         let copies =
           surviving (Scenario.Array_failure (Fixtures.slot 1 0))
             T.sync_failover_backup
         in
         check_bool "no snapshot" false (has Copy_source.Snapshot copies);
         check_bool "mirror lives" true (has Copy_source.Mirror copies);
         check_bool "tape lives" true (has Copy_source.Tape copies));
    Alcotest.test_case "site disaster: local tape dies, vault survives" `Quick
      (fun () ->
         let copies =
           surviving (Scenario.Site_disaster 1) T.sync_failover_backup
         in
         check_bool "no snapshot" false (has Copy_source.Snapshot copies);
         check_bool "no local tape" false (has Copy_source.Tape copies);
         check_bool "mirror lives" true (has Copy_source.Mirror copies);
         check_bool "vault lives" true (has Copy_source.Vault copies));
    Alcotest.test_case "remote tape survives a primary-site disaster" `Quick
      (fun () ->
         let asg =
           Assignment.v ~app:Fixtures.b_app ~technique:T.tape_backup
             ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 2) ()
         in
         let copies =
           Copy_source.surviving ~params ~tape_propagation:(Time.hours 2.) asg
             (Scenario.Site_disaster 1)
         in
         check_bool "remote tape lives" true (has Copy_source.Tape copies));
    Alcotest.test_case "mirror-only technique has nothing after object failure"
      `Quick (fun () ->
          let asg =
            Assignment.v ~app:Fixtures.b_app ~technique:T.sync_failover
              ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0) ()
          in
          let copies =
            Copy_source.surviving ~params ~tape_propagation:Time.zero asg
              (Scenario.Data_object 1)
          in
          check_int "none" 0 (List.length copies));
    Alcotest.test_case "best picks minimum staleness" `Quick (fun () ->
        let copies =
          surviving (Scenario.Array_failure (Fixtures.slot 1 0))
            T.async_failover_backup
        in
        match Copy_source.best copies with
        | Some { Copy_source.kind = Copy_source.Mirror; staleness } ->
          check_bool "10min" true
            (Float.abs (Time.to_minutes staleness -. 10.) < 1e-9)
        | _ -> Alcotest.fail "expected the mirror");
    Alcotest.test_case "best of nothing is None" `Quick (fun () ->
        check_bool "none" true (Copy_source.best [] = None));
    Alcotest.test_case "staleness ordering mirror < snapshot < tape < vault"
      `Quick (fun () ->
          let copies = surviving (Scenario.Array_failure (Fixtures.slot 2 1))
              T.sync_reconstruct_backup in
          (* Scope elsewhere: everything survives. *)
          let stale kind =
            List.find (fun c -> c.Copy_source.kind = kind) copies
            |> fun c -> c.Copy_source.staleness
          in
          check_bool "mirror freshest" true
            Time.(stale Copy_source.Mirror < stale Copy_source.Snapshot);
          check_bool "snapshot fresher than tape" true
            Time.(stale Copy_source.Snapshot < stale Copy_source.Tape);
          check_bool "tape fresher than vault" true
            Time.(stale Copy_source.Tape < stale Copy_source.Vault));
    Alcotest.test_case "vault staleness modes" `Quick (fun () ->
        let tape_only =
          Assignment.v ~app:Fixtures.s_app ~technique:T.tape_backup
            ~primary:(Fixtures.slot 1 0) ~backup:(Fixtures.tape 1) ()
        in
        let cyc =
          Copy_source.surviving ~params:{ params with Params.vault_mode = Params.Cycle }
            ~tape_propagation:Time.zero tape_only (Scenario.Site_disaster 1)
        in
        let cont =
          Copy_source.surviving
            ~params:{ params with Params.vault_mode = Params.Continuous }
            ~tape_propagation:Time.zero tape_only (Scenario.Site_disaster 1)
        in
        let vault copies =
          List.find (fun c -> c.Copy_source.kind = Copy_source.Vault) copies
        in
        check_bool "continuous is fresher" true
          Time.((vault cont).Copy_source.staleness
                < (vault cyc).Copy_source.staleness)) ]

let prov_of design = Fixtures.feasible (Provision.minimum design)

let outcome_for outcomes id =
  List.find (fun (o : Outcome.t) -> o.Outcome.app.App.id = id) outcomes

let scenario_of _design scope rate = { Scenario.scope; annual_rate = rate }

let simulate_tests =
  [ Alcotest.test_case "failover recovery is minutes, loss is mirror window"
      `Quick (fun () ->
          let design = Fixtures.two_app_design () in
          let prov = prov_of design in
          let outcomes =
            Simulate.scenario prov
              (scenario_of design (Scenario.Array_failure (Fixtures.slot 1 0)) 1.)
          in
          let b = outcome_for outcomes 1 in
          check_bool "failed over" true (b.Outcome.mode = Outcome.Failed_over);
          check_bool "15 minutes" true
            (Float.abs (Time.to_minutes b.Outcome.recovery_time -. 15.) < 1e-6);
          check_bool "10 min loss (async)" true
            (Float.abs (Time.to_minutes b.Outcome.loss_time -. 10.) < 1e-6));
    Alcotest.test_case "tape-only app restores from tape after array failure"
      `Quick (fun () ->
          let design = Fixtures.two_app_design () in
          let prov = prov_of design in
          let outcomes =
            Simulate.scenario prov
              (scenario_of design (Scenario.Array_failure (Fixtures.slot 1 0)) 1.)
          in
          let s = outcome_for outcomes 4 in
          check_bool "restored from tape" true
            (s.Outcome.mode = Outcome.Restored Copy_source.Tape);
          (* At least the repair time. *)
          check_bool "after repair" true
            Time.(params.Params.array_repair <= s.Outcome.recovery_time));
    Alcotest.test_case "object failure restores from snapshot, no repair" `Quick
      (fun () ->
         let design = Fixtures.two_app_design () in
         let prov = prov_of design in
         let outcomes =
           Simulate.scenario prov
             (scenario_of design (Scenario.Data_object 4) 1.)
         in
         let s = outcome_for outcomes 4 in
         check_bool "snapshot" true
           (s.Outcome.mode = Outcome.Restored Copy_source.Snapshot);
         check_bool "faster than a repair" true
           Time.(s.Outcome.recovery_time < params.Params.array_repair);
         check_bool "loss = snapshot window" true
           (Float.abs (Time.to_hours s.Outcome.loss_time -. 12.) < 1e-6));
    Alcotest.test_case "mirror-only app is unrecoverable after object failure"
      `Quick (fun () ->
          let design = D.empty (Fixtures.peer_env ()) in
          let asg =
            Assignment.v ~app:Fixtures.b_app ~technique:T.sync_failover
              ~primary:(Fixtures.slot 1 0) ~mirror:(Fixtures.slot 2 0) ()
          in
          let design =
            Fixtures.ok
              (D.add design asg
                 ~primary_model:Resources.Device_catalog.xp1200
                 ~mirror_model:Resources.Device_catalog.xp1200 ())
          in
          let prov = prov_of design in
          let outcomes =
            Simulate.scenario prov (scenario_of design (Scenario.Data_object 1) 1.)
          in
          let b = outcome_for outcomes 1 in
          check_bool "unrecoverable" true (b.Outcome.mode = Outcome.Unrecoverable);
          check_bool "horizon loss" true
            (Time.equal b.Outcome.loss_time params.Params.loss_horizon));
    Alcotest.test_case "site disaster: reconstruct promotes the mirror" `Quick
      (fun () ->
         let design = D.empty (Fixtures.peer_env ()) in
         let design =
           Fixtures.ok
             (Fixtures.assign_full ~technique:T.sync_reconstruct_backup
                Fixtures.b_app design)
         in
         let prov = prov_of design in
         let outcomes =
           Simulate.scenario prov (scenario_of design (Scenario.Site_disaster 1) 1.)
         in
         let b = outcome_for outcomes 1 in
         check_bool "restored from mirror" true
           (b.Outcome.mode = Outcome.Restored Copy_source.Mirror);
         let expected =
           Time.add params.Params.detection
             (Time.add params.Params.site_reconfig params.Params.mirror_promote)
         in
         check_bool "reconfig + promote" true
           (Float.abs (Time.to_hours b.Outcome.recovery_time
                       -. Time.to_hours expected) < 1e-6));
    Alcotest.test_case "site disaster: tape-only app waits for the vault" `Quick
      (fun () ->
         let design = D.empty (Fixtures.peer_env ()) in
         let design = Fixtures.ok (Fixtures.assign_tape_only Fixtures.s_app design) in
         let prov = prov_of design in
         let outcomes =
           Simulate.scenario prov (scenario_of design (Scenario.Site_disaster 1) 1.)
         in
         let s = outcome_for outcomes 4 in
         check_bool "vault" true (s.Outcome.mode = Outcome.Restored Copy_source.Vault);
         check_bool "site rebuild + vault fetch" true
           Time.(Time.add params.Params.site_rebuild params.Params.vault_fetch
                 <= s.Outcome.recovery_time));
    Alcotest.test_case "unaffected scenarios yield no outcomes" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let prov = prov_of design in
        check_int "empty" 0
          (List.length
             (Simulate.scenario prov
                (scenario_of design (Scenario.Site_disaster 2) 1.))));
    Alcotest.test_case "contention: the lower-priority app waits" `Quick (fun () ->
        (* B and C share the primary array and both reconstruct from tape
           after an array failure: the tape library serializes them. *)
        let design = D.empty (Fixtures.peer_env ()) in
        let design = Fixtures.ok (Fixtures.assign_tape_only Fixtures.b_app design) in
        let design = Fixtures.ok (Fixtures.assign_tape_only Fixtures.s_app design) in
        let prov = prov_of design in
        let outcomes =
          Simulate.scenario prov
            (scenario_of design (Scenario.Array_failure (Fixtures.slot 1 0)) 1.)
        in
        let b = outcome_for outcomes 1 and s = outcome_for outcomes 4 in
        (* B's penalty rates dominate: it must not finish after S. *)
        check_bool "priority order" true
          Time.(b.Outcome.recovery_time <= s.Outcome.recovery_time);
        check_bool "S actually waited" true
          Time.(b.Outcome.recovery_time < s.Outcome.recovery_time));
    Alcotest.test_case "all enumerates and simulates every scenario" `Quick
      (fun () ->
         let design = Fixtures.two_app_design () in
         let prov = prov_of design in
         let results = Simulate.all prov Likelihood.default in
         check_int "four scenarios" 4 (List.length results);
         List.iter
           (fun ((scen : Scenario.t), outcomes) ->
              let expected =
                List.length (Scenario.affected design scen.Scenario.scope)
              in
              check_int "outcomes per scenario" expected (List.length outcomes))
           results);
    Alcotest.test_case "tape propagation reflects provisioned drives" `Quick
      (fun () ->
         let design = Fixtures.two_app_design () in
         let prov = prov_of design in
         let asg = List.hd (D.assignments design) in
         let prop = Simulate.tape_propagation prov asg in
         check_bool "positive, finite" true
           (Time.is_finite prop && not (Time.is_zero prop)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"recovery never beats the detection delay"
         ~count:30
         QCheck2.Gen.(int_range 1 4)
         (fun n ->
            let design = Fixtures.two_app_design () in
            let prov = prov_of design in
            let scope =
              match n with
              | 1 -> Scenario.Data_object 1
              | 2 -> Scenario.Data_object 4
              | 3 -> Scenario.Array_failure (Fixtures.slot 1 0)
              | _ -> Scenario.Site_disaster 1
            in
            Simulate.scenario prov (scenario_of design scope 1.)
            |> List.for_all (fun (o : Outcome.t) ->
                Time.(params.Params.detection <= o.Outcome.recovery_time)))) ]

let suites =
  [ ("recovery.copies", copy_tests); ("recovery.simulate", simulate_tests) ]
