(* Tests for the discrete-event engine: delays, exclusive holds, priority
   serialization, multi-resource grants, infinite stages. *)

open Dependable_storage.Units
module Engine = Dependable_storage.Sim.Engine

let check_bool = Alcotest.(check bool)
let check_hours = Alcotest.(check (float 1e-6))

let hours t = Time.to_hours t

let engine_tests =
  [ Alcotest.test_case "single delay job" `Quick (fun () ->
        let e = Engine.create () in
        let j = Engine.submit e ~name:"a" ~priority:1. [ Engine.Delay (Time.hours 2.) ] in
        check_hours "2h" 2. (hours (Engine.completion_time e j)));
    Alcotest.test_case "empty job completes at zero" `Quick (fun () ->
        let e = Engine.create () in
        let j = Engine.submit e ~name:"a" ~priority:1. [] in
        check_hours "0" 0. (hours (Engine.completion_time e j)));
    Alcotest.test_case "stages are sequential" `Quick (fun () ->
        let e = Engine.create () in
        let r = Engine.resource e "disk" in
        let j =
          Engine.submit e ~name:"a" ~priority:1.
            [ Engine.Delay (Time.hours 1.); Engine.Hold ([ r ], Time.hours 2.);
              Engine.Delay (Time.hours 0.5) ]
        in
        check_hours "3.5h" 3.5 (hours (Engine.completion_time e j)));
    Alcotest.test_case "delays run in parallel" `Quick (fun () ->
        let e = Engine.create () in
        let a = Engine.submit e ~name:"a" ~priority:1. [ Engine.Delay (Time.hours 4.) ] in
        let b = Engine.submit e ~name:"b" ~priority:1. [ Engine.Delay (Time.hours 4.) ] in
        check_hours "a" 4. (hours (Engine.completion_time e a));
        check_hours "b" 4. (hours (Engine.completion_time e b)));
    Alcotest.test_case "holds serialize on a shared device" `Quick (fun () ->
        let e = Engine.create () in
        let r = Engine.resource e "tape" in
        let a = Engine.submit e ~name:"a" ~priority:1. [ Engine.Hold ([ r ], Time.hours 3.) ] in
        let b = Engine.submit e ~name:"b" ~priority:1. [ Engine.Hold ([ r ], Time.hours 3.) ] in
        check_hours "first" 3. (hours (Engine.completion_time e a));
        check_hours "second queued" 6. (hours (Engine.completion_time e b)));
    Alcotest.test_case "higher priority served first" `Quick (fun () ->
        let e = Engine.create () in
        let r = Engine.resource e "link" in
        let low = Engine.submit e ~name:"low" ~priority:1. [ Engine.Hold ([ r ], Time.hours 2.) ] in
        let high = Engine.submit e ~name:"high" ~priority:10. [ Engine.Hold ([ r ], Time.hours 2.) ] in
        check_hours "high first" 2. (hours (Engine.completion_time e high));
        check_hours "low waits" 4. (hours (Engine.completion_time e low)));
    Alcotest.test_case "no preemption: a started hold finishes" `Quick (fun () ->
        let e = Engine.create () in
        let r = Engine.resource e "link" in
        (* Low priority starts immediately; high priority arrives (becomes
           ready) only after a delay, and must wait. *)
        let low = Engine.submit e ~name:"low" ~priority:1. [ Engine.Hold ([ r ], Time.hours 5.) ] in
        let high =
          Engine.submit e ~name:"high" ~priority:10.
            [ Engine.Delay (Time.hours 1.); Engine.Hold ([ r ], Time.hours 1.) ]
        in
        check_hours "low kept the device" 5. (hours (Engine.completion_time e low));
        check_hours "high waited" 6. (hours (Engine.completion_time e high)));
    Alcotest.test_case "ties broken by submission order" `Quick (fun () ->
        let e = Engine.create () in
        let r = Engine.resource e "x" in
        let first = Engine.submit e ~name:"first" ~priority:5. [ Engine.Hold ([ r ], Time.hours 1.) ] in
        let second = Engine.submit e ~name:"second" ~priority:5. [ Engine.Hold ([ r ], Time.hours 1.) ] in
        check_hours "first" 1. (hours (Engine.completion_time e first));
        check_hours "second" 2. (hours (Engine.completion_time e second)));
    Alcotest.test_case "multi-resource hold needs all devices" `Quick (fun () ->
        let e = Engine.create () in
        let r1 = Engine.resource e "r1" and r2 = Engine.resource e "r2" in
        let a = Engine.submit e ~name:"a" ~priority:2. [ Engine.Hold ([ r1 ], Time.hours 2.) ] in
        let b = Engine.submit e ~name:"b" ~priority:1. [ Engine.Hold ([ r1; r2 ], Time.hours 1.) ] in
        (* b wants r1+r2 but a holds r1 (same arrival, higher priority). *)
        check_hours "a" 2. (hours (Engine.completion_time e a));
        check_hours "b after a" 3. (hours (Engine.completion_time e b)));
    Alcotest.test_case "non-conflicting multi-resource holds overlap" `Quick (fun () ->
        let e = Engine.create () in
        let r1 = Engine.resource e "r1" and r2 = Engine.resource e "r2" in
        let a = Engine.submit e ~name:"a" ~priority:1. [ Engine.Hold ([ r1 ], Time.hours 2.) ] in
        let b = Engine.submit e ~name:"b" ~priority:1. [ Engine.Hold ([ r2 ], Time.hours 2.) ] in
        check_hours "a" 2. (hours (Engine.completion_time e a));
        check_hours "b parallel" 2. (hours (Engine.completion_time e b)));
    Alcotest.test_case "duplicate resource in one hold is harmless" `Quick (fun () ->
        let e = Engine.create () in
        let r = Engine.resource e "r" in
        let a = Engine.submit e ~name:"a" ~priority:1. [ Engine.Hold ([ r; r ], Time.hours 1.) ] in
        check_hours "1h" 1. (hours (Engine.completion_time e a)));
    Alcotest.test_case "zero-duration stages chain at one instant" `Quick (fun () ->
        let e = Engine.create () in
        let r = Engine.resource e "r" in
        let a =
          Engine.submit e ~name:"a" ~priority:1.
            [ Engine.Delay Time.zero; Engine.Hold ([ r ], Time.zero);
              Engine.Delay Time.zero ]
        in
        check_hours "instant" 0. (hours (Engine.completion_time e a)));
    Alcotest.test_case "infinite stage never completes; others unaffected" `Quick
      (fun () ->
         let e = Engine.create () in
         let r = Engine.resource e "r" in
         let stuck = Engine.submit e ~name:"stuck" ~priority:1. [ Engine.Delay Time.infinity ] in
         let fine = Engine.submit e ~name:"fine" ~priority:1. [ Engine.Hold ([ r ], Time.hours 1.) ] in
         check_hours "fine" 1. (hours (Engine.completion_time e fine));
         check_bool "stuck forever" false
           (Time.is_finite (Engine.completion_time e stuck)));
    Alcotest.test_case "infinite hold starves later holders" `Quick (fun () ->
        let e = Engine.create () in
        let r = Engine.resource e "r" in
        let hog = Engine.submit e ~name:"hog" ~priority:10. [ Engine.Hold ([ r ], Time.infinity) ] in
        let starved = Engine.submit e ~name:"starved" ~priority:1. [ Engine.Hold ([ r ], Time.hours 1.) ] in
        check_bool "hog" false (Time.is_finite (Engine.completion_time e hog));
        check_bool "starved" false (Time.is_finite (Engine.completion_time e starved)));
    Alcotest.test_case "submit after run rejected" `Quick (fun () ->
        let e = Engine.create () in
        ignore (Engine.submit e ~name:"a" ~priority:1. []);
        Engine.run e;
        Alcotest.check_raises "late submit"
          (Invalid_argument "Engine.submit: engine already ran") (fun () ->
              ignore (Engine.submit e ~name:"b" ~priority:1. [])));
    Alcotest.test_case "foreign resource rejected" `Quick (fun () ->
        let e1 = Engine.create () and e2 = Engine.create () in
        let r = Engine.resource e1 "r" in
        Alcotest.check_raises "foreign" (Invalid_argument "Engine: foreign resource")
          (fun () ->
             ignore
               (Engine.submit e2 ~name:"a" ~priority:1.
                  [ Engine.Hold ([ r ], Time.hours 1.) ])));
    Alcotest.test_case "results lists all jobs in submission order" `Quick (fun () ->
        let e = Engine.create () in
        ignore (Engine.submit e ~name:"a" ~priority:1. [ Engine.Delay (Time.hours 1.) ]);
        ignore (Engine.submit e ~name:"b" ~priority:9. [ Engine.Delay (Time.hours 2.) ]);
        Alcotest.(check (list string)) "names" [ "a"; "b" ]
          (List.map fst (Engine.results e)));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"serialized holds sum on one device" ~count:50
         QCheck2.Gen.(list_size (int_range 1 8) (float_range 0.1 10.))
         (fun durations ->
            let e = Engine.create () in
            let r = Engine.resource e "r" in
            let jobs =
              List.map
                (fun d ->
                   Engine.submit e ~name:"j" ~priority:1.
                     [ Engine.Hold ([ r ], Time.hours d) ])
                durations
            in
            let finish =
              List.fold_left
                (fun acc j -> Float.max acc (hours (Engine.completion_time e j)))
                0. jobs
            in
            let total = List.fold_left ( +. ) 0. durations in
            Float.abs (finish -. total) < 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make
         ~name:"on one device, higher priority never finishes later" ~count:50
         QCheck2.Gen.(list_size (int_range 2 6) (pair (float_range 1. 9.) (float_range 0.1 5.)))
         (fun jobs_spec ->
            let e = Engine.create () in
            let r = Engine.resource e "r" in
            let jobs =
              List.map
                (fun (prio, d) ->
                   (prio,
                    Engine.submit e ~name:"j" ~priority:prio
                      [ Engine.Hold ([ r ], Time.hours d) ]))
                jobs_spec
            in
            (* The strictly-highest-priority job must finish no later than
               anyone else (equal priorities are FIFO by submission). *)
            let sorted =
              List.sort (fun (a, _) (b, _) -> Float.compare b a) jobs
            in
            match sorted with
            | (top_p, top_j) :: rest ->
              List.for_all
                (fun (p, j) ->
                   p = top_p
                   || hours (Engine.completion_time e top_j)
                      <= hours (Engine.completion_time e j) +. 1e-9)
                rest
            | [] -> true)) ]

(* Randomized stage plans over a few shared devices: the engine must
   terminate, and every job's completion must sit between its own work
   (lower bound) and the total work in the system (upper bound, since
   devices only ever serialize). *)
let fuzz_tests =
  [ QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"fuzz: completions bounded by own and total work"
         ~count:60
         QCheck2.Gen.(
           list_size (int_range 1 6)
             (pair (float_range 0. 9.)
                (list_size (int_range 0 4)
                   (pair (int_range 0 3) (float_range 0. 5.)))))
         (fun jobs_spec ->
            let e = Engine.create () in
            let devices =
              [| Engine.resource e "d0"; Engine.resource e "d1";
                 Engine.resource e "d2" |]
            in
            let jobs =
              List.map
                (fun (priority, stages_spec) ->
                   let stages =
                     List.map
                       (fun (which, dur) ->
                          if which = 3 then Engine.Delay (Time.hours dur)
                          else Engine.Hold ([ devices.(which) ], Time.hours dur))
                       stages_spec
                   in
                   let own =
                     List.fold_left
                       (fun acc (_, d) -> acc +. d) 0. stages_spec
                   in
                   (Engine.submit e ~name:"fuzz" ~priority stages, own))
                jobs_spec
            in
            let total = List.fold_left (fun acc (_, own) -> acc +. own) 0. jobs in
            List.for_all
              (fun (id, own) ->
                 let finish = Time.to_hours (Engine.completion_time e id) in
                 finish >= own -. 1e-9 && finish <= total +. 1e-9)
              jobs)) ]

let suites = [ ("sim.engine", engine_tests); ("sim.fuzz", fuzz_tests) ]
