(* Unit and property tests for ds_units: Time, Size, Rate, Money. *)

open Dependable_storage.Units

let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)
let check_raises_invalid name f =
  Alcotest.check_raises name (Invalid_argument "") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument ""))

(* Generators *)
let pos_float = QCheck2.Gen.float_range 0.001 1e9

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:200 gen f)

let time_tests =
  [ Alcotest.test_case "conversions round-trip" `Quick (fun () ->
        check_float "minutes" 90. (Time.to_seconds (Time.minutes 1.5));
        check_float "hours" 7200. (Time.to_seconds (Time.hours 2.));
        check_float "days" 86400. (Time.to_seconds (Time.days 1.));
        check_float "weeks" (7. *. 86400.) (Time.to_seconds (Time.weeks 1.));
        check_float "years" (365. *. 86400.) (Time.to_seconds (Time.years 1.)));
    Alcotest.test_case "to_x inverts of_x" `Quick (fun () ->
        check_float "hours" 3.5 (Time.to_hours (Time.hours 3.5));
        check_float "days" 2.25 (Time.to_days (Time.days 2.25));
        check_float "minutes" 59. (Time.to_minutes (Time.minutes 59.));
        check_float "years" 0.4 (Time.to_years (Time.years 0.4)));
    Alcotest.test_case "negative duration rejected" `Quick (fun () ->
        check_raises_invalid "negative" (fun () -> ignore (Time.seconds (-1.)));
        check_raises_invalid "NaN" (fun () -> ignore (Time.seconds Float.nan)));
    Alcotest.test_case "sub clamps at zero" `Quick (fun () ->
        check_float "clamped" 0.
          (Time.to_seconds (Time.sub (Time.hours 1.) (Time.hours 2.))));
    Alcotest.test_case "infinity is not finite" `Quick (fun () ->
        check_bool "finite" false (Time.is_finite Time.infinity);
        check_bool "finite" true (Time.is_finite (Time.hours 1e6)));
    Alcotest.test_case "zero is zero" `Quick (fun () ->
        check_bool "zero" true (Time.is_zero Time.zero);
        check_bool "eps" false (Time.is_zero (Time.seconds 0.1)));
    Alcotest.test_case "min max compare" `Quick (fun () ->
        let a = Time.hours 1. and b = Time.hours 2. in
        check_bool "min" true (Time.equal a (Time.min a b));
        check_bool "max" true (Time.equal b (Time.max a b));
        check_bool "le" true Time.(a <= b);
        check_bool "lt" true Time.(a < b));
    Alcotest.test_case "div ratio" `Quick (fun () ->
        check_float "ratio" 2. (Time.div (Time.hours 2.) (Time.hours 1.));
        Alcotest.check_raises "by zero" Division_by_zero (fun () ->
            ignore (Time.div (Time.hours 1.) Time.zero)));
    Alcotest.test_case "pp picks sensible units" `Quick (fun () ->
        let s t = Time.to_string t in
        check_bool "seconds" true (String.length (s (Time.seconds 30.)) > 0);
        Alcotest.(check string) "forever" "forever" (s Time.infinity));
    prop "add is commutative" QCheck2.Gen.(pair pos_float pos_float)
      (fun (a, b) ->
         Time.equal
           (Time.add (Time.seconds a) (Time.seconds b))
           (Time.add (Time.seconds b) (Time.seconds a)));
    prop "scale distributes over add" QCheck2.Gen.(triple (float_range 0. 100.) pos_float pos_float)
      (fun (k, a, b) ->
         let lhs = Time.scale k (Time.add (Time.seconds a) (Time.seconds b)) in
         let rhs = Time.add (Time.scale k (Time.seconds a)) (Time.scale k (Time.seconds b)) in
         Float.abs (Time.to_seconds lhs -. Time.to_seconds rhs)
         <= 1e-6 *. Float.max 1. (Time.to_seconds lhs));
    prop "sub never negative" QCheck2.Gen.(pair pos_float pos_float)
      (fun (a, b) ->
         Time.to_seconds (Time.sub (Time.seconds a) (Time.seconds b)) >= 0.) ]

let size_tests =
  [ Alcotest.test_case "conversions" `Quick (fun () ->
        check_float "mb" 1e6 (Size.to_bytes (Size.mb 1.));
        check_float "gb" 1e9 (Size.to_bytes (Size.gb 1.));
        check_float "tb" 1e12 (Size.to_bytes (Size.tb 1.));
        check_float "to_gb" 2.5 (Size.to_gb (Size.gb 2.5)));
    Alcotest.test_case "units_needed rounds up" `Quick (fun () ->
        Alcotest.(check int) "exact" 10
          (Size.units_needed (Size.gb 1430.) ~per_unit:(Size.gb 143.));
        Alcotest.(check int) "round up" 10
          (Size.units_needed (Size.gb 1300.) ~per_unit:(Size.gb 143.));
        Alcotest.(check int) "zero" 0
          (Size.units_needed Size.zero ~per_unit:(Size.gb 143.));
        Alcotest.check_raises "zero unit" Division_by_zero (fun () ->
            ignore (Size.units_needed (Size.gb 1.) ~per_unit:Size.zero)));
    Alcotest.test_case "negative rejected" `Quick (fun () ->
        check_raises_invalid "negative" (fun () -> ignore (Size.bytes (-5.))));
    Alcotest.test_case "sub clamps" `Quick (fun () ->
        check_float "clamp" 0. (Size.to_bytes (Size.sub (Size.gb 1.) (Size.gb 2.))));
    prop "units_needed covers the demand" QCheck2.Gen.(pair pos_float pos_float)
      (fun (total, per_unit) ->
         let n = Size.units_needed (Size.bytes total) ~per_unit:(Size.bytes per_unit) in
         float_of_int n *. per_unit >= total -. 1e-6);
    prop "units_needed is minimal" QCheck2.Gen.(pair pos_float pos_float)
      (fun (total, per_unit) ->
         let n = Size.units_needed (Size.bytes total) ~per_unit:(Size.bytes per_unit) in
         n = 0 || float_of_int (n - 1) *. per_unit < total) ]

let rate_tests =
  [ Alcotest.test_case "transfer_time basics" `Quick (fun () ->
        check_float "100MB at 10MB/s" 10.
          (Time.to_seconds (Rate.transfer_time (Size.mb 100.) (Rate.mb_per_sec 10.)));
        check_bool "zero rate is forever" false
          (Time.is_finite (Rate.transfer_time (Size.mb 1.) Rate.zero));
        check_float "zero size instant" 0.
          (Time.to_seconds (Rate.transfer_time Size.zero Rate.zero)));
    Alcotest.test_case "volume_in inverts transfer_time" `Quick (fun () ->
        let size = Size.gb 13. and rate = Rate.mb_per_sec 25. in
        let t = Rate.transfer_time size rate in
        check_float "round trip" (Size.to_bytes size)
          (Size.to_bytes (Rate.volume_in rate t)));
    Alcotest.test_case "negative rejected" `Quick (fun () ->
        check_raises_invalid "negative" (fun () -> ignore (Rate.mb_per_sec (-1.))));
    prop "transfer_time is monotone decreasing in rate"
      QCheck2.Gen.(triple pos_float pos_float pos_float)
      (fun (size, r1, r2) ->
         let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
         let t_lo = Rate.transfer_time (Size.bytes size) (Rate.bytes_per_sec lo) in
         let t_hi = Rate.transfer_time (Size.bytes size) (Rate.bytes_per_sec hi) in
         Time.(t_hi <= t_lo)) ]

let money_tests =
  [ Alcotest.test_case "constructors" `Quick (fun () ->
        check_float "k" 5000. (Money.to_dollars (Money.k 5.));
        check_float "m" 5e6 (Money.to_dollars (Money.m 5.)));
    Alcotest.test_case "penalty accrues hourly" `Quick (fun () ->
        check_float "2h at $5k" 10_000.
          (Money.to_dollars
             (Money.penalty ~rate_per_hour:(Money.k 5.) (Time.hours 2.))));
    Alcotest.test_case "penalty caps at a year" `Quick (fun () ->
        let yearly = Money.penalty ~rate_per_hour:(Money.k 1.) (Time.years 1.) in
        let forever = Money.penalty ~rate_per_hour:(Money.k 1.) Time.infinity in
        let decade = Money.penalty ~rate_per_hour:(Money.k 1.) (Time.years 10.) in
        check_float "infinite = year" (Money.to_dollars yearly)
          (Money.to_dollars forever);
        check_float "decade = year" (Money.to_dollars yearly)
          (Money.to_dollars decade));
    Alcotest.test_case "amortize" `Quick (fun () ->
        check_float "3yr" 100. (Money.to_dollars
                                  (Money.amortize (Money.dollars 300.) ~lifetime_years:3.));
        check_raises_invalid "zero lifetime" (fun () ->
            ignore (Money.amortize (Money.dollars 1.) ~lifetime_years:0.)));
    Alcotest.test_case "sum" `Quick (fun () ->
        check_float "sum" 6.
          (Money.to_dollars (Money.sum [ Money.dollars 1.; Money.dollars 2.; Money.dollars 3. ])));
    Alcotest.test_case "pp formats magnitudes" `Quick (fun () ->
        Alcotest.(check string) "millions" "$2.5M" (Money.to_string (Money.m 2.5));
        Alcotest.(check string) "thousands" "$75K" (Money.to_string (Money.k 75.));
        Alcotest.(check string) "billions" "$1.2B" (Money.to_string (Money.m 1200.)));
    prop "penalty is monotone in duration" QCheck2.Gen.(pair pos_float pos_float)
      (fun (h1, h2) ->
         let lo = Float.min h1 h2 and hi = Float.max h1 h2 in
         let p t = Money.penalty ~rate_per_hour:(Money.k 1.) (Time.hours t) in
         Money.(p lo <= p hi)) ]

let suites =
  [ ("units.time", time_tests);
    ("units.size", size_tests);
    ("units.rate", rate_tests);
    ("units.money", money_tests) ]
