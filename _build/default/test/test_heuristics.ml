(* Tests for the human and random baseline heuristics. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module App = Workload.App
module Category = Workload.Category
module Technique = Protection.Technique
module D = Design.Design
module Likelihood = Failure.Likelihood
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Human = Heuristics.Human
module Random_search = Heuristics.Random_search
module Heuristic_result = Heuristics.Heuristic_result

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let likelihood = Likelihood.default

let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 2;
    window_scope = Config_solver.Skip }

let result_tests =
  [ Alcotest.test_case "consider keeps the cheaper candidate" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let candidate =
          match Config_solver.solve ~options:fast_options design likelihood with
          | Ok c -> c
          | Error _ -> Alcotest.fail "infeasible"
        in
        let r = Heuristic_result.empty in
        let r = Heuristic_result.consider r None in
        check_int "attempt counted" 1 r.Heuristic_result.attempts;
        check_int "not feasible" 0 r.Heuristic_result.feasible;
        let r = Heuristic_result.consider r (Some candidate) in
        check_int "two attempts" 2 r.Heuristic_result.attempts;
        check_int "one feasible" 1 r.Heuristic_result.feasible;
        check_bool "kept" true (r.Heuristic_result.best <> None)) ]

let human_tests =
  [ Alcotest.test_case "class model mapping" `Quick (fun () ->
        let env = Fixtures.peer_env () in
        Alcotest.(check string) "gold -> XP" "XP1200"
          (Human.class_array_model env Category.Gold).Resources.Array_model.name;
        Alcotest.(check string) "silver -> EVA" "EVA800"
          (Human.class_array_model env Category.Silver).Resources.Array_model.name;
        Alcotest.(check string) "bronze -> MSA" "MSA1500"
          (Human.class_array_model env Category.Bronze).Resources.Array_model.name);
    Alcotest.test_case "design_once builds a complete class-matched design"
      `Quick (fun () ->
          let rng = Rng.of_int 31 in
          let apps = Ds_experiments.Envs.peer_apps () in
          match Human.design_once rng (Fixtures.peer_env ()) apps with
          | None -> Alcotest.fail "no design"
          | Some design ->
            check_int "all apps" 8 (D.size design);
            (* Gold and silver apps are mirrored with backup; bronze apps
               are tape-only. *)
            List.iter
              (fun (asg : Design.Assignment.t) ->
                 let category = App.category asg.Design.Assignment.app in
                 let technique = asg.Design.Assignment.technique in
                 check_bool "backup everywhere" true (Technique.has_backup technique);
                 match category with
                 | Category.Gold ->
                   check_bool "gold fails over" true
                     (Technique.needs_standby_compute technique)
                 | Category.Silver ->
                   check_bool "silver mirrors" true (Technique.has_mirror technique);
                   check_bool "silver reconstructs" false
                     (Technique.needs_standby_compute technique)
                 | Category.Bronze ->
                   check_bool "bronze tape-only" false (Technique.has_mirror technique))
              (D.assignments design));
    Alcotest.test_case "primaries spread across the sites" `Quick (fun () ->
        let rng = Rng.of_int 32 in
        let apps = Ds_experiments.Envs.peer_apps () in
        match Human.design_once rng (Fixtures.peer_env ()) apps with
        | None -> Alcotest.fail "no design"
        | Some design ->
          check_int "half at site 1" 4 (List.length (D.primaries_at_site design 1));
          check_int "half at site 2" 4 (List.length (D.primaries_at_site design 2)));
    Alcotest.test_case "run returns a feasible best on peer sites" `Slow (fun () ->
        let result =
          Human.run ~options:fast_options ~attempts:10 ~seed:33
            (Fixtures.peer_env ()) (Ds_experiments.Envs.peer_apps ()) likelihood
        in
        check_int "attempts" 10 result.Heuristic_result.attempts;
        check_bool "found one" true (result.Heuristic_result.best <> None));
    Alcotest.test_case "run is deterministic per seed" `Slow (fun () ->
        let cost seed =
          (Human.run ~options:fast_options ~attempts:5 ~seed (Fixtures.peer_env ())
             (Ds_experiments.Envs.peer_apps ()) likelihood).Heuristic_result.best
          |> Option.map (fun c -> Money.to_dollars (Candidate.cost c))
        in
        Alcotest.(check (option (float 1e-3))) "same" (cost 7) (cost 7)) ]

let random_tests =
  [ Alcotest.test_case "sample_design is structurally complete" `Quick (fun () ->
        let rng = Rng.of_int 41 in
        let apps = Ds_experiments.Envs.peer_apps () in
        let complete = ref 0 in
        for _ = 1 to 20 do
          match Random_search.sample_design rng (Fixtures.peer_env ()) apps with
          | Some design ->
            incr complete;
            check_int "all apps" 8 (D.size design)
          | None -> ()
        done;
        check_bool "usually completes" true (!complete >= 15));
    Alcotest.test_case "run keeps the minimum-cost candidate" `Slow (fun () ->
        let result =
          Random_search.run ~options:fast_options ~attempts:30 ~seed:42
            (Fixtures.peer_env ()) (Ds_experiments.Envs.peer_apps ()) likelihood
        in
        check_int "attempts" 30 result.Heuristic_result.attempts;
        match result.Heuristic_result.best with
        | None -> Alcotest.fail "nothing feasible in 30 tries"
        | Some best ->
          check_bool "feasible count sane" true
            (result.Heuristic_result.feasible >= 1
             && result.Heuristic_result.feasible <= 30);
          check_bool "cost positive" true Money.(Money.zero < Candidate.cost best));
    Alcotest.test_case "impossible environments yield no best" `Quick (fun () ->
        let env =
          Resources.Env.fully_connected ~name:"impossible" ~site_count:2
            ~bays_per_site:2 ~array_models:Resources.Device_catalog.array_models
            ~tape_models:Resources.Device_catalog.tape_models
            ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
            ~compute_slots_per_site:0 ()
        in
        let result =
          Random_search.run ~options:fast_options ~attempts:5 ~seed:43 env
            (Ds_experiments.Envs.peer_apps ()) likelihood
        in
        check_bool "none" true (result.Heuristic_result.best = None)) ]

let suites =
  [ ("heuristics.result", result_tests);
    ("heuristics.human", human_tests);
    ("heuristics.random", random_tests) ]
