test/test_risk.ml: Alcotest Cost Dependable_storage Design Ds_experiments Failure Fixtures Float Heuristics Money Option Printf Prng Resources Risk Solver
