test/test_workload.ml: Alcotest App Category Dependable_storage Int List Money Rate Size Workload_catalog
