test/test_prng.ml: Alcotest Array Dependable_storage Fun Int Int64 List QCheck2 QCheck_alcotest Rng Sample
