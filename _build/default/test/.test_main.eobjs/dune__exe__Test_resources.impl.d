test/test_resources.ml: Alcotest Array_model Dependable_storage Device_catalog Env Link_model List Money QCheck2 QCheck_alcotest Rate Site Size Slot Tape_model
