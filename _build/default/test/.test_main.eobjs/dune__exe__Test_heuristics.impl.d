test/test_heuristics.ml: Alcotest Dependable_storage Design Ds_experiments Failure Fixtures Heuristics List Money Option Prng Protection Resources Solver Workload
