test/test_protection.ml: Alcotest Backup Dependable_storage Float Int List Mirror Money QCheck2 QCheck_alcotest Rate Recovery_mode Size Technique Technique_catalog Time
