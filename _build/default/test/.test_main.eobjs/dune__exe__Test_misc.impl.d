test/test_misc.ml: Alcotest Array Dependable_storage Design Experiments Failure Fixtures Format List Money Protection Rate Recovery Resources Size Solver String Time Workload
