test/test_design.ml: Alcotest Dependable_storage Design Fixtures List Money Protection Rate Resources Size String Workload
