test/test_properties.ml: Cost Dependable_storage Design Ds_experiments Failure Float Heuristics List Money Option Prng QCheck2 QCheck_alcotest Rate Recovery Resources Size String Time Workload
