test/test_sim.ml: Alcotest Array Dependable_storage Float List QCheck2 QCheck_alcotest Time
