test/test_solver.ml: Alcotest Dependable_storage Design Ds_experiments Failure Fixtures Hashtbl List Money Option Prng Protection Resources Result Solver String Workload
