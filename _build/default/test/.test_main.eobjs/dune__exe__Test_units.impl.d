test/test_units.ml: Alcotest Dependable_storage Float Money QCheck2 QCheck_alcotest Rate Size String Time
