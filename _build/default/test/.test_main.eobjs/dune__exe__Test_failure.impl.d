test/test_failure.ml: Alcotest Dependable_storage Design Failure Fixtures List Workload
