test/test_recovery.ml: Alcotest Dependable_storage Design Failure Fixtures Float List Protection QCheck2 QCheck_alcotest Recovery Resources Time Workload
