test/fixtures.ml: Alcotest Dependable_storage Design Protection Resources Workload
