test/test_trace.ml: Alcotest Array Dependable_storage Hashtbl List Money Prng Rate Result Size Time Trace Workload
