test/test_cost.ml: Alcotest Cost Dependable_storage Design Failure Fixtures Float List Money Protection Rate Recovery Resources Result Size Time Workload
