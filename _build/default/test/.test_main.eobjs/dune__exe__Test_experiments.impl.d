test/test_experiments.ml: Alcotest Array Cost Dependable_storage Experiments Failure Float Format List Resources Solver String Units Workload
