(* Tests for the trace substrate: records, traces, synthesis and
   characterization. *)

open Dependable_storage
open Dependable_storage.Units
module Io_record = Trace.Io_record
module T = Trace.Trace
module Synth = Trace.Synth
module Characterize = Trace.Characterize
module Rng = Prng.Rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let rec_at ?(op = Io_record.Write) ?(block = 0) ?(size = Size.bytes 4096.) t =
  Io_record.v ~time:(Time.seconds t) ~op ~block ~size

let record_tests =
  [ Alcotest.test_case "constructor validation" `Quick (fun () ->
        Alcotest.check_raises "negative block"
          (Invalid_argument "Io_record.v: negative block address") (fun () ->
              ignore (rec_at ~block:(-1) 0.));
        Alcotest.check_raises "empty request"
          (Invalid_argument "Io_record.v: empty request") (fun () ->
              ignore (rec_at ~size:Size.zero 0.)));
    Alcotest.test_case "predicates" `Quick (fun () ->
        check_bool "write" true (Io_record.is_write (rec_at 0.));
        check_bool "read" false (Io_record.is_write (rec_at ~op:Io_record.Read 0.));
        check_bool "ordering" true
          (Io_record.compare_time (rec_at 1.) (rec_at 2.) < 0)) ]

let trace_tests =
  [ Alcotest.test_case "records are sorted by time" `Quick (fun () ->
        let t = T.v ~block_size:(Size.bytes 4096.) [ rec_at 5.; rec_at 1.; rec_at 3. ] in
        let times = Array.map (fun r -> Time.to_seconds r.Io_record.time) (T.records t) in
        Alcotest.(check (array (float 1e-9))) "sorted" [| 1.; 3.; 5. |] times);
    Alcotest.test_case "empty trace rejected" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Trace.v: empty trace")
          (fun () -> ignore (T.v ~block_size:(Size.bytes 4096.) [])));
    Alcotest.test_case "byte accounting" `Quick (fun () ->
        let t =
          T.v ~block_size:(Size.bytes 4096.)
            [ rec_at ~op:Io_record.Read ~size:(Size.bytes 1000.) 0.;
              rec_at ~size:(Size.bytes 2000.) 1.;
              rec_at ~size:(Size.bytes 3000.) 2. ]
        in
        check_float "read" 1000. (Size.to_bytes (T.bytes_read t));
        check_float "written" 5000. (Size.to_bytes (T.bytes_written t));
        check_int "length" 3 (T.length t);
        check_float "duration" 2. (Time.to_seconds (T.duration t)));
    Alcotest.test_case "footprint from highest block" `Quick (fun () ->
        let t =
          T.v ~block_size:(Size.bytes 4096.) [ rec_at ~block:9 0.; rec_at ~block:3 1. ]
        in
        check_float "10 blocks" (10. *. 4096.) (Size.to_bytes (T.footprint t)));
    Alcotest.test_case "iter_windows partitions without loss" `Quick (fun () ->
        let records = List.init 100 (fun i -> rec_at (float_of_int i)) in
        let t = T.v ~block_size:(Size.bytes 4096.) records in
        let total = ref 0 in
        let windows = ref 0 in
        T.iter_windows ~window:(Time.seconds 10.) t ~f:(fun ~start:_ batch ->
            incr windows;
            total := !total + List.length batch);
        check_int "all records" 100 !total;
        check_int "ten windows" 10 !windows) ]

let synth_tests =
  [ Alcotest.test_case "default profile validates" `Quick (fun () ->
        check_bool "ok" true (Synth.validate Synth.default = Ok ()));
    Alcotest.test_case "validation catches bad profiles" `Quick (fun () ->
        let bad f = Result.is_error (Synth.validate f) in
        check_bool "write fraction" true
          (bad { Synth.default with Synth.write_fraction = 1.5 });
        check_bool "burst factor" true
          (bad { Synth.default with Synth.burst_factor = 0.5 });
        check_bool "iops" true (bad { Synth.default with Synth.mean_iops = 0. }));
    Alcotest.test_case "generation is deterministic per seed" `Quick (fun () ->
        let profile = { Synth.default with Synth.duration = Time.minutes 30. } in
        let t1 = Synth.generate (Rng.of_int 5) profile in
        let t2 = Synth.generate (Rng.of_int 5) profile in
        check_int "same length" (T.length t1) (T.length t2);
        check_float "same bytes"
          (Size.to_bytes (T.bytes_written t1))
          (Size.to_bytes (T.bytes_written t2)));
    Alcotest.test_case "request volume tracks mean_iops" `Quick (fun () ->
        let profile =
          { Synth.default with
            Synth.duration = Time.hours 1.; mean_iops = 50.;
            diurnal_swing = 0.; burst_fraction = 0. }
        in
        let t = Synth.generate (Rng.of_int 6) profile in
        let expected = 50. *. 3600. in
        let actual = float_of_int (T.length t) in
        check_bool "within 20%" true
          (actual > 0.8 *. expected && actual < 1.2 *. expected));
    Alcotest.test_case "write fraction respected" `Quick (fun () ->
        let profile =
          { Synth.default with Synth.duration = Time.hours 1.; write_fraction = 0.3 }
        in
        let t = Synth.generate (Rng.of_int 7) profile in
        let writes =
          Array.fold_left
            (fun acc r -> if Io_record.is_write r then acc + 1 else acc)
            0 (T.records t)
        in
        let frac = float_of_int writes /. float_of_int (T.length t) in
        check_bool "near 0.3" true (frac > 0.25 && frac < 0.35));
    Alcotest.test_case "zipf skew concentrates writes" `Quick (fun () ->
        let gen skew =
          Synth.generate (Rng.of_int 8)
            { Synth.default with
              Synth.duration = Time.minutes 30.; zipf_skew = skew }
        in
        let distinct t =
          let seen = Hashtbl.create 1024 in
          Array.iter
            (fun (r : Io_record.t) ->
               if Io_record.is_write r then
                 Hashtbl.replace seen r.Io_record.block ())
            (T.records t);
          Hashtbl.length seen
        in
        check_bool "skew reduces distinct blocks" true
          (distinct (gen 0.9) < distinct (gen 0.))) ]

let characterize_tests =
  [ Alcotest.test_case "hand-built trace has exact rates" `Quick (fun () ->
        (* 10 writes of 1 MB and 10 reads of 1 MB over 100 s. *)
        let records =
          List.init 10 (fun i ->
              rec_at ~size:(Size.mb 1.) ~block:i (float_of_int (i * 10)))
          @ List.init 10 (fun i ->
              rec_at ~op:Io_record.Read ~size:(Size.mb 1.) ~block:i
                (float_of_int (i * 10) +. 5.))
          @ [ rec_at ~size:(Size.mb 1.) ~block:0 100. ]
        in
        let t = T.v ~block_size:(Size.mb 1.) records in
        let c = Characterize.analyze t in
        check_float "avg update MB/s" 0.11 (Rate.to_mb_per_sec c.Characterize.avg_update_rate);
        check_float "avg access MB/s" 0.21 (Rate.to_mb_per_sec c.Characterize.avg_access_rate);
        check_bool "peak >= avg" true
          Rate.(c.Characterize.avg_update_rate <= c.Characterize.peak_update_rate));
    Alcotest.test_case "unique rate is below raw rate for hot blocks" `Quick
      (fun () ->
         (* Hammer one block: unique rate counts it once per window. *)
         let records =
           List.init 600 (fun i ->
               rec_at ~size:(Size.bytes 4096.) ~block:0 (float_of_int i /. 10.))
         in
         let t = T.v ~block_size:(Size.bytes 4096.) records in
         let c = Characterize.analyze t in
         check_bool "unique << raw" true
           Rate.(c.Characterize.unique_update_rate < c.Characterize.avg_update_rate));
    Alcotest.test_case "to_app produces a valid application" `Quick (fun () ->
        let t = Synth.generate (Rng.of_int 9) Synth.default in
        let c = Characterize.analyze t in
        let app =
          Characterize.to_app ~id:7 ~name:"traced" ~class_tag:"T"
            ~outage_per_hour:(Money.k 10.) ~loss_per_hour:(Money.k 10.) c
        in
        check_int "id" 7 app.Workload.App.id;
        check_bool "peak >= avg" true
          Rate.(app.Workload.App.avg_update_rate
                <= app.Workload.App.peak_update_rate);
        check_bool "capacity padded" true
          Size.(c.Characterize.footprint < app.Workload.App.data_size));
    Alcotest.test_case "scaling scales magnitudes" `Quick (fun () ->
        let t = Synth.generate (Rng.of_int 10) Synth.default in
        let c = Characterize.analyze t in
        let base =
          Characterize.to_app ~id:1 ~name:"x" ~class_tag:"T"
            ~outage_per_hour:(Money.k 1.) ~loss_per_hour:(Money.k 1.) c
        in
        let big =
          Characterize.to_app ~id:2 ~name:"y" ~class_tag:"T"
            ~outage_per_hour:(Money.k 1.) ~loss_per_hour:(Money.k 1.) ~scale:4. c
        in
        check_float "4x data"
          (4. *. Size.to_gb base.Workload.App.data_size)
          (Size.to_gb big.Workload.App.data_size);
        Alcotest.check_raises "bad scale"
          (Invalid_argument "Characterize.to_app: scale must be positive")
          (fun () ->
             ignore
               (Characterize.to_app ~id:3 ~name:"z" ~class_tag:"T"
                  ~outage_per_hour:(Money.k 1.) ~loss_per_hour:(Money.k 1.)
                  ~scale:0. c))) ]

let suites =
  [ ("trace.record", record_tests);
    ("trace.trace", trace_tests);
    ("trace.synth", synth_tests);
    ("trace.characterize", characterize_tests) ]
