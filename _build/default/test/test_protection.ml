(* Tests for ds_protection: mirrors, backup chains, the Table 2 catalog. *)

open Dependable_storage.Units
open Dependable_storage.Protection
module Category = Dependable_storage.Workload.Category
module Workload_catalog = Dependable_storage.Workload.Workload_catalog

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let b_app = Workload_catalog.instantiate Workload_catalog.central_banking ~id:1

let mirror_tests =
  [ Alcotest.test_case "Table 2 windows" `Quick (fun () ->
        check_float "sync 0.5min" 30. (Time.to_seconds (Mirror.staleness Mirror.synchronous));
        check_float "async 10min" 600. (Time.to_seconds (Mirror.staleness Mirror.asynchronous)));
    Alcotest.test_case "network demand: sync uses peak, async avg" `Quick (fun () ->
        check_float "sync peak" 50.
          (Rate.to_mb_per_sec (Mirror.network_demand Mirror.synchronous b_app));
        check_float "async avg" 5.
          (Rate.to_mb_per_sec (Mirror.network_demand Mirror.asynchronous b_app)));
    Alcotest.test_case "to_string" `Quick (fun () ->
        Alcotest.(check string) "sync" "sync" (Mirror.to_string Mirror.synchronous);
        Alcotest.(check string) "async" "async" (Mirror.to_string Mirror.asynchronous)) ]

let backup_tests =
  [ Alcotest.test_case "Table 2 defaults" `Quick (fun () ->
        let b = Backup.default in
        check_float "snapshot 12h" 12. (Time.to_hours b.Backup.snapshot_win);
        check_float "tape 7d" 7. (Time.to_days b.Backup.tape_win);
        check_float "vault 28d" 28. (Time.to_days b.Backup.vault_win);
        check_float "vault prop 1d" 1. (Time.to_days b.Backup.vault_prop));
    Alcotest.test_case "staleness accumulates down the hierarchy" `Quick (fun () ->
        let b = Backup.default in
        let prop = Time.hours 2. in
        let snap = Backup.snapshot_staleness b in
        let tape = Backup.tape_staleness b ~propagation:prop in
        let vault = Backup.vault_staleness b ~propagation:prop in
        check_bool "snap < tape" true Time.(snap < tape);
        check_bool "tape < vault" true Time.(tape < vault);
        check_float "tape = snap+win+prop"
          (Time.to_hours (Time.add snap (Time.add b.Backup.tape_win prop)))
          (Time.to_hours tape));
    Alcotest.test_case "snapshot space bounded by dataset" `Quick (fun () ->
        let b = Backup.default in
        let space = Backup.snapshot_space b b_app in
        let bound = Size.scale (float_of_int b.Backup.snapshot_retained) b_app.data_size in
        check_bool "bounded" true Size.(space <= bound);
        check_bool "positive" true Size.(Size.zero < space));
    Alcotest.test_case "tape space = retained fulls" `Quick (fun () ->
        let b = Backup.default in
        check_float "2 fulls" (2. *. 1300.)
          (Size.to_gb (Backup.tape_space b b_app)));
    Alcotest.test_case "tape bandwidth meets the backup window" `Quick (fun () ->
        let b = Backup.default in
        let bw = Backup.tape_bandwidth_demand b b_app in
        let duration = Rate.transfer_time b_app.data_size bw in
        check_bool "within window" true Time.(duration <= b.Backup.backup_window));
    Alcotest.test_case "window setters validate" `Quick (fun () ->
        Alcotest.check_raises "zero snapshot"
          (Invalid_argument "Backup.with_snapshot_win: zero window") (fun () ->
              ignore (Backup.with_snapshot_win Backup.default Time.zero));
        let b = Backup.with_tape_win Backup.default (Time.days 14.) in
        check_float "14d" 14. (Time.to_days b.Backup.tape_win));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"staleness monotone in snapshot window" ~count:100
         QCheck2.Gen.(pair (float_range 1. 48.) (float_range 1. 48.))
         (fun (h1, h2) ->
            let lo = Float.min h1 h2 and hi = Float.max h1 h2 in
            let s h =
              Backup.snapshot_staleness
                (Backup.with_snapshot_win Backup.default (Time.hours h))
            in
            Time.(s lo <= s hi))) ]

let technique_tests =
  [ Alcotest.test_case "catalog has the nine Table 2 rows" `Quick (fun () ->
        check_int "nine" 9 (List.length Technique_catalog.all);
        let ids = List.map (fun t -> t.Technique.id) Technique_catalog.all in
        check_int "unique" 9 (List.length (List.sort_uniq Int.compare ids)));
    Alcotest.test_case "classes per Section 3.1.3" `Quick (fun () ->
        check_int "gold: mirror+failover" 4
          (List.length (Technique_catalog.in_class Category.Gold));
        check_int "silver: mirror+reconstruct" 4
          (List.length (Technique_catalog.in_class Category.Silver));
        check_int "bronze: backup alone" 1
          (List.length (Technique_catalog.in_class Category.Bronze)));
    Alcotest.test_case "eligible_for is class-or-better" `Quick (fun () ->
        check_int "gold apps: gold only" 4
          (List.length (Technique_catalog.eligible_for Category.Gold));
        check_int "silver apps: gold+silver" 8
          (List.length (Technique_catalog.eligible_for Category.Silver));
        check_int "bronze apps: everything" 9
          (List.length (Technique_catalog.eligible_for Category.Bronze)));
    Alcotest.test_case "paper-style names" `Quick (fun () ->
        Alcotest.(check string) "async F backup" "Async mirror (F) with backup"
          (Technique.describe Technique_catalog.async_failover_backup);
        Alcotest.(check string) "sync R backup" "Sync mirror (R) with backup"
          (Technique.describe Technique_catalog.sync_reconstruct_backup);
        Alcotest.(check string) "tape" "Tape backup"
          (Technique.describe Technique_catalog.tape_backup));
    Alcotest.test_case "standby compute only for failover" `Quick (fun () ->
        check_bool "failover" true
          (Technique.needs_standby_compute Technique_catalog.sync_failover_backup);
        check_bool "reconstruct" false
          (Technique.needs_standby_compute Technique_catalog.sync_reconstruct_backup);
        check_bool "tape" false
          (Technique.needs_standby_compute Technique_catalog.tape_backup));
    Alcotest.test_case "structure predicates" `Quick (fun () ->
        check_bool "tape has no mirror" false
          (Technique.has_mirror Technique_catalog.tape_backup);
        check_bool "tape uses tape" true
          (Technique.uses_tape Technique_catalog.tape_backup);
        check_bool "mirror-only has no backup" false
          (Technique.has_backup Technique_catalog.sync_failover);
        check_bool "mirror uses network" true
          (Technique.uses_network Technique_catalog.sync_failover));
    Alcotest.test_case "constructor validation" `Quick (fun () ->
        Alcotest.check_raises "empty technique"
          (Invalid_argument "Technique.v: technique protects nothing") (fun () ->
              ignore (Technique.v ~id:99 ~recovery:Recovery_mode.Reconstruct ()));
        Alcotest.check_raises "failover without mirror"
          (Invalid_argument "Technique.v: failover requires a mirror") (fun () ->
              ignore
                (Technique.v ~id:99 ~recovery:Recovery_mode.Failover
                   ~backup:Backup.default ())));
    Alcotest.test_case "with_backup_chain replaces windows" `Quick (fun () ->
        let chain = Backup.with_snapshot_win Backup.default (Time.hours 6.) in
        let t = Technique.with_backup_chain Technique_catalog.tape_backup chain in
        (match t.Technique.backup with
         | Some b -> check_float "6h" 6. (Time.to_hours b.Backup.snapshot_win)
         | None -> Alcotest.fail "backup disappeared");
        let no_backup =
          Technique.with_backup_chain Technique_catalog.sync_failover chain
        in
        check_bool "no-op on mirror-only" true
          (no_backup.Technique.backup = None));
    Alcotest.test_case "of_id" `Quick (fun () ->
        check_bool "found" true (Technique_catalog.of_id 1 <> None);
        check_bool "missing" true (Technique_catalog.of_id 42 = None));
    Alcotest.test_case "recovery mode strings" `Quick (fun () ->
        Alcotest.(check string) "F" "F" (Recovery_mode.short Recovery_mode.Failover);
        Alcotest.(check string) "R" "R" (Recovery_mode.short Recovery_mode.Reconstruct);
        check_bool "parse" true
          (Recovery_mode.of_string "failover" = Some Recovery_mode.Failover)) ]

(* An app with a unique update rate well below its raw update rate, as a
   trace with hot blocks would produce. *)
let hot_app =
  Workload_catalog.instantiate Workload_catalog.web_service ~id:77
  |> fun base ->
  Dependable_storage.Workload.App.v ~id:77 ~name:"hot" ~class_tag:"W"
    ~outage_per_hour:base.outage_penalty_rate
    ~loss_per_hour:base.loss_penalty_rate ~data_size:base.data_size
    ~avg_update:base.avg_update_rate ~peak_update:base.peak_update_rate
    ~unique_update:(Rate.scale 0.1 base.avg_update_rate)
    ~avg_access:base.avg_access_rate ()

let incremental_tests =
  [ Alcotest.test_case "default schedule is fulls-only" `Quick (fun () ->
        check_int "every backup full" 1 Backup.default.Backup.tape_fulls_every);
    Alcotest.test_case "with_fulls_every validates" `Quick (fun () ->
        Alcotest.check_raises "zero cycle"
          (Invalid_argument "Backup.with_fulls_every: cycle must be positive")
          (fun () -> ignore (Backup.with_fulls_every Backup.default 0));
        check_int "set" 7
          (Backup.with_fulls_every Backup.default 7).Backup.tape_fulls_every);
    Alcotest.test_case "incremental size follows the unique rate" `Quick
      (fun () ->
         let chain = Backup.with_tape_win Backup.default (Time.days 1.) in
         let incr = Backup.incremental_size chain hot_app in
         let expected =
           Rate.volume_in hot_app.unique_update_rate (Time.days 1.)
         in
         check_float "unique volume" (Size.to_gb expected) (Size.to_gb incr);
         check_bool "bounded by dataset" true Size.(incr <= hot_app.data_size));
    Alcotest.test_case "incremental schedule stores fulls plus incrementals"
      `Quick (fun () ->
          let daily_incr =
            Backup.with_fulls_every
              (Backup.with_tape_win Backup.default (Time.days 1.)) 7
          in
          let weekly_full = Backup.default in
          let space_incr = Backup.tape_space daily_incr hot_app in
          let space_full = Backup.tape_space weekly_full hot_app in
          (* Hot app dirties little unique data: the daily-incremental
             cycle stays close to the fulls-only footprint. *)
          check_bool "within 2x" true
            Size.(space_incr <= Size.scale 2. space_full);
          check_bool "more than fulls alone" true Size.(space_full <= space_incr));
    Alcotest.test_case "daily incrementals slash tape staleness" `Quick
      (fun () ->
         let daily_incr =
           Backup.with_fulls_every
             (Backup.with_tape_win Backup.default (Time.days 1.)) 7
         in
         let stale_daily =
           Backup.tape_staleness daily_incr ~propagation:(Time.hours 2.)
         in
         let stale_weekly =
           Backup.tape_staleness Backup.default ~propagation:(Time.hours 2.)
         in
         check_bool "fresher" true Time.(stale_daily < stale_weekly));
    Alcotest.test_case "restore volume includes expected replay" `Quick
      (fun () ->
         let chain =
           Backup.with_fulls_every
             (Backup.with_tape_win Backup.default (Time.days 1.)) 7
         in
         let v = Backup.restore_volume chain hot_app in
         let full_only = Backup.restore_volume Backup.default hot_app in
         check_float "fulls-only restores the dataset"
           (Size.to_gb hot_app.data_size) (Size.to_gb full_only);
         check_bool "incremental replays more" true Size.(full_only < v));
    Alcotest.test_case "unique rate caps snapshot space" `Quick (fun () ->
        let cold = Backup.snapshot_space Backup.default hot_app in
        let raw =
          Backup.snapshot_space Backup.default
            (Workload_catalog.instantiate Workload_catalog.web_service ~id:78)
        in
        check_bool "hot app snapshots are smaller" true Size.(cold < raw));
    Alcotest.test_case "unique rate above average rejected" `Quick (fun () ->
        Alcotest.check_raises "too high"
          (Invalid_argument "App.v: unique update rate above average update rate")
          (fun () ->
             ignore
               (Dependable_storage.Workload.App.v ~id:1 ~name:"x" ~class_tag:"X"
                  ~outage_per_hour:(Money.k 1.) ~loss_per_hour:(Money.k 1.)
                  ~data_size:(Size.gb 1.) ~avg_update:(Rate.mb_per_sec 1.)
                  ~peak_update:(Rate.mb_per_sec 2.)
                  ~unique_update:(Rate.mb_per_sec 1.5)
                  ~avg_access:(Rate.mb_per_sec 2.) ()))) ]

let suites =
  [ ("protection.mirror", mirror_tests);
    ("protection.backup", backup_tests);
    ("protection.incremental", incremental_tests);
    ("protection.technique", technique_tests) ]
