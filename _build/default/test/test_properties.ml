(* Cross-module properties over randomly generated designs.

   A design generator (uniform random layouts over the peer-sites
   environment) drives invariants that must hold for ANY design, not just
   the handful of hand-built fixtures: demand decomposition, provisioning
   coverage, growth monotonicity, scenario partitioning, serialization
   round trips and evaluation determinism. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module App = Workload.App
module Slot = Resources.Slot
module Array_model = Resources.Array_model
module Env = Resources.Env
module D = Design.Design
module Demand = Design.Demand
module Provision = Design.Provision
module Design_io = Design.Design_io
module Likelihood = Failure.Likelihood
module Scenario = Failure.Scenario
module Copy_source = Recovery.Copy_source
module Outcome = Recovery.Outcome
module Evaluate = Cost.Evaluate
module Outlay = Cost.Outlay
module Random_search = Heuristics.Random_search

let likelihood = Likelihood.default

let apps = Ds_experiments.Envs.peer_apps ()

(* Uniform random complete design from a seed; sample_design can fail
   structurally only in degenerate environments, so retry. *)
let design_of_seed seed =
  let rec go attempt =
    let rng = Rng.of_int (seed + (attempt * 7919)) in
    match Random_search.sample_design rng (Ds_experiments.Envs.peer_sites ()) apps with
    | Some design -> design
    | None -> go (attempt + 1)
  in
  go 0

(* Random design whose minimum provisioning is feasible. *)
let feasible_of_seed seed =
  let rec go attempt =
    let design = design_of_seed (seed + (attempt * 104729)) in
    match Provision.minimum design with
    | Ok prov -> (design, prov)
    | Error _ -> go (attempt + 1)
  in
  go 0

let prop ?(count = 40) name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count QCheck2.Gen.(int_range 0 1_000_000) f)

let design_properties =
  [ prop "every app assigned exactly once" (fun seed ->
        let design = design_of_seed seed in
        D.size design = List.length apps
        && List.for_all
          (fun (app : App.t) -> D.find design app.App.id <> None)
          apps);
    prop "used slots always carry a model" (fun seed ->
        let design = design_of_seed seed in
        List.for_all (fun slot -> D.array_model design slot <> None)
          (D.used_array_slots design)
        && List.for_all (fun slot -> D.tape_model design slot <> None)
          (D.used_tape_slots design));
    prop "remove then re-count" (fun seed ->
        let design = design_of_seed seed in
        let victim = List.nth apps (seed mod List.length apps) in
        let removed = D.remove design victim.App.id in
        D.size removed = D.size design - 1
        && D.find removed victim.App.id = None);
    prop "demand decomposes over assignment subsets" (fun seed ->
        let design = design_of_seed seed in
        let all = D.assignments design in
        let split = List.partition (fun (a : Design.Assignment.t) ->
            a.Design.Assignment.app.App.id mod 2 = 0) all in
        let left = Demand.of_assignments design (fst split) in
        let right = Demand.of_assignments design (snd split) in
        let whole = Demand.of_design design in
        List.for_all
          (fun slot ->
             let a = (Demand.array_use left slot).Demand.bandwidth in
             let b = (Demand.array_use right slot).Demand.bandwidth in
             let w = (Demand.array_use whole slot).Demand.bandwidth in
             Float.abs (Rate.to_bytes_per_sec (Rate.add a b)
                        -. Rate.to_bytes_per_sec w) < 1.)
          (D.used_array_slots design)
        && List.for_all
          (fun pair ->
             let a = Demand.link_use left pair in
             let b = Demand.link_use right pair in
             let w = Demand.link_use whole pair in
             Float.abs (Rate.to_bytes_per_sec (Rate.add a b)
                        -. Rate.to_bytes_per_sec w) < 1.)
          (D.used_pairs design));
    prop "serialization round-trips" (fun seed ->
        let design = design_of_seed seed in
        let text = Design_io.to_string design in
        match Design_io.of_string (Ds_experiments.Envs.peer_sites ()) apps text with
        | Ok parsed -> String.equal text (Design_io.to_string parsed)
        | Error _ -> false) ]

let provision_properties =
  [ prop "minimum provisioning covers every demand" (fun seed ->
        let design, prov = feasible_of_seed seed in
        let demand = prov.Provision.demand in
        let env = design.D.env in
        List.for_all
          (fun slot ->
             let use = Demand.array_use demand slot in
             let units = Slot.Array_slot.Map.find slot prov.Provision.array_units in
             let model = Option.get (D.array_model design slot) in
             Rate.(use.Demand.bandwidth <= Provision.array_bw prov slot)
             && Size.(use.Demand.capacity
                      <= Size.scale (float_of_int units)
                        model.Array_model.unit_capacity)
             && units <= model.Array_model.max_units)
          (D.used_array_slots design)
        && List.for_all
          (fun pair ->
             Rate.(Demand.link_use demand pair <= Provision.link_bw prov pair))
          (D.used_pairs design)
        && List.for_all
          (fun site ->
             Demand.compute_use demand site <= env.Env.compute_slots_per_site)
          (Env.site_ids env));
    prop "growth only increases outlay" ~count:20 (fun seed ->
        let _, prov = feasible_of_seed seed in
        List.for_all
          (fun move ->
             match Provision.grow prov move with
             | None -> true
             | Some grown ->
               Money.(Outlay.annual prov <= Outlay.annual grown))
          (Provision.growth_moves prov));
    prop "array bandwidth never exceeds the controller" ~count:20 (fun seed ->
        let design, prov = feasible_of_seed seed in
        List.for_all
          (fun slot ->
             let model = Option.get (D.array_model design slot) in
             Rate.(Provision.array_bw prov slot <= model.Array_model.max_bw))
          (D.used_array_slots design)) ]

let scenario_properties =
  [ prop "affected and unaffected partition the assignments" (fun seed ->
        let design = design_of_seed seed in
        Scenario.enumerate likelihood design
        |> List.for_all (fun (scen : Scenario.t) ->
            let hit = Scenario.affected design scen.Scenario.scope in
            let missed = Scenario.unaffected design scen.Scenario.scope in
            List.length hit + List.length missed = D.size design
            && hit <> []);
        );
    prop "every enumerated scenario has a positive rate" (fun seed ->
        let design = design_of_seed seed in
        Scenario.enumerate likelihood design
        |> List.for_all (fun (s : Scenario.t) -> s.Scenario.annual_rate > 0.));
    prop "best copy has minimal staleness" (fun seed ->
        let design = design_of_seed seed in
        let params = Recovery.Recovery_params.default in
        Scenario.enumerate likelihood design
        |> List.for_all (fun (scen : Scenario.t) ->
            Scenario.affected design scen.Scenario.scope
            |> List.for_all (fun asg ->
                let copies =
                  Copy_source.surviving ~params ~tape_propagation:(Time.hours 4.)
                    asg scen.Scenario.scope
                in
                match Copy_source.best copies with
                | None -> copies = []
                | Some best ->
                  List.for_all
                    (fun c ->
                       Time.(best.Copy_source.staleness <= c.Copy_source.staleness))
                    copies))) ]

let evaluation_properties =
  [ prop "evaluation is deterministic" ~count:15 (fun seed ->
        let _, prov = feasible_of_seed seed in
        let run () = Money.to_dollars (Evaluate.total (Evaluate.provisioned prov likelihood)) in
        Float.equal (run ()) (run ()));
    prop "outage never beats detection; loss is bounded by the horizon"
      ~count:15 (fun seed ->
          let _, prov = feasible_of_seed seed in
          let params = Recovery.Recovery_params.default in
          Recovery.Simulate.all prov likelihood
          |> List.for_all (fun (_, outcomes) ->
              List.for_all
                (fun (o : Outcome.t) ->
                   Time.(params.Recovery.Recovery_params.detection
                         <= o.Outcome.recovery_time)
                   && Time.(o.Outcome.loss_time
                            <= params.Recovery.Recovery_params.loss_horizon))
                outcomes));
    prop "uncontended object-failure recovery is monotone in array growth"
      ~count:15 (fun seed ->
          let design, prov = feasible_of_seed seed in
          let asg = List.hd (D.assignments design) in
          let scen =
            { Scenario.scope =
                Scenario.Data_object asg.Design.Assignment.app.App.id;
              annual_rate = 1. }
          in
          let recovery p =
            match Recovery.Simulate.scenario p scen with
            | [ o ] -> Time.to_seconds o.Outcome.recovery_time
            | _ -> 0.
          in
          match
            Provision.grow prov
              (Provision.Grow_array asg.Design.Assignment.primary)
          with
          | None -> true
          | Some grown -> recovery grown <= recovery prov +. 1e-6);
    prop "per-app penalties sum to the totals" ~count:15 (fun seed ->
        let _, prov = feasible_of_seed seed in
        let p = Cost.Penalty.expected_annual prov likelihood in
        let sum get =
          List.fold_left
            (fun acc x -> acc +. Money.to_dollars (get x))
            0. p.Cost.Penalty.by_app
        in
        Float.abs (sum (fun (x : Cost.Penalty.per_app) -> x.Cost.Penalty.outage)
                   -. Money.to_dollars p.Cost.Penalty.outage_total) < 1.
        && Float.abs (sum (fun (x : Cost.Penalty.per_app) -> x.Cost.Penalty.loss)
                      -. Money.to_dollars p.Cost.Penalty.loss_total) < 1.) ]

let suites =
  [ ("props.design", design_properties);
    ("props.provision", provision_properties);
    ("props.scenario", scenario_properties);
    ("props.evaluation", evaluation_properties) ]
