(* Tests for ds_failure: likelihoods, scenario enumeration, scopes. *)

open Dependable_storage
module Likelihood = Failure.Likelihood
module Scenario = Failure.Scenario
module App = Workload.App
module Assignment = Design.Assignment

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let likelihood_tests =
  [ Alcotest.test_case "per_years" `Quick (fun () ->
        check_float "1/3" (1. /. 3.) (Likelihood.per_years 3.);
        Alcotest.check_raises "zero"
          (Invalid_argument "Likelihood.per_years: need a positive period")
          (fun () -> ignore (Likelihood.per_years 0.)));
    Alcotest.test_case "paper defaults" `Quick (fun () ->
        let d = Likelihood.default in
        check_float "object 1/3" (1. /. 3.) d.Likelihood.data_object_per_year;
        check_float "array 1/3" (1. /. 3.) d.Likelihood.array_per_year;
        check_float "site 1/5" (1. /. 5.) d.Likelihood.site_per_year);
    Alcotest.test_case "sensitivity baseline (Section 4.5)" `Quick (fun () ->
        let d = Likelihood.sensitivity_base in
        check_float "object 2/yr" 2. d.Likelihood.data_object_per_year;
        check_float "array 1/5" 0.2 d.Likelihood.array_per_year;
        check_float "site 1/20" 0.05 d.Likelihood.site_per_year);
    Alcotest.test_case "negative rates rejected" `Quick (fun () ->
        Alcotest.check_raises "negative"
          (Invalid_argument "Likelihood: rates must be finite and non-negative")
          (fun () ->
             ignore
               (Likelihood.v ~data_object_per_year:(-1.) ~array_per_year:0.1
                  ~site_per_year:0.1))) ]

let scenario_tests =
  [ Alcotest.test_case "enumeration covers apps, arrays, sites" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let scenarios = Scenario.enumerate Likelihood.default design in
        (* 2 object failures + 1 array with primaries + 1 site with
           primaries. The mirror-only array at site 2 hosts no primary. *)
        check_int "count" 4 (List.length scenarios);
        let count p = List.length (List.filter p scenarios) in
        check_int "object scenarios" 2
          (count (fun s -> match s.Scenario.scope with
               | Scenario.Data_object _ -> true | _ -> false));
        check_int "array scenarios" 1
          (count (fun s -> match s.Scenario.scope with
               | Scenario.Array_failure _ -> true | _ -> false));
        check_int "site scenarios" 1
          (count (fun s -> match s.Scenario.scope with
               | Scenario.Site_disaster _ -> true | _ -> false)));
    Alcotest.test_case "rates attached per class" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let scenarios = Scenario.enumerate Likelihood.default design in
        List.iter
          (fun s ->
             let expected =
               match s.Scenario.scope with
               | Scenario.Data_object _ -> 1. /. 3.
               | Scenario.Array_failure _ -> 1. /. 3.
               | Scenario.Site_disaster _ -> 1. /. 5.
             in
             check_float "rate" expected s.Scenario.annual_rate)
          scenarios);
    Alcotest.test_case "affected apps per scope" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let affected scope = List.length (Scenario.affected design scope) in
        check_int "object failure hits one app" 1
          (affected (Scenario.Data_object 1));
        check_int "array failure hits both primaries" 2
          (affected (Scenario.Array_failure (Fixtures.slot 1 0)));
        check_int "mirror array failure hits no primary" 0
          (affected (Scenario.Array_failure (Fixtures.slot 2 0)));
        check_int "site 1 disaster hits both" 2
          (affected (Scenario.Site_disaster 1));
        check_int "site 2 disaster hits none" 0
          (affected (Scenario.Site_disaster 2)));
    Alcotest.test_case "affected + unaffected partition" `Quick (fun () ->
        let design = Fixtures.two_app_design () in
        let scope = Scenario.Data_object 1 in
        check_int "partition" 2
          (List.length (Scenario.affected design scope)
           + List.length (Scenario.unaffected design scope)));
    Alcotest.test_case "destroys_array" `Quick (fun () ->
        let s10 = Fixtures.slot 1 0 and s20 = Fixtures.slot 2 0 in
        check_bool "object failure destroys nothing" false
          (Scenario.destroys_array (Scenario.Data_object 1) s10);
        check_bool "array failure destroys itself" true
          (Scenario.destroys_array (Scenario.Array_failure s10) s10);
        check_bool "array failure spares others" false
          (Scenario.destroys_array (Scenario.Array_failure s10) s20);
        check_bool "site disaster destroys its arrays" true
          (Scenario.destroys_array (Scenario.Site_disaster 1) s10);
        check_bool "site disaster spares remote arrays" false
          (Scenario.destroys_array (Scenario.Site_disaster 1) s20));
    Alcotest.test_case "destroys_tape only on site disaster" `Quick (fun () ->
        let t1 = Fixtures.tape 1 in
        check_bool "object" false (Scenario.destroys_tape (Scenario.Data_object 1) t1);
        check_bool "array" false
          (Scenario.destroys_tape (Scenario.Array_failure (Fixtures.slot 1 0)) t1);
        check_bool "site" true (Scenario.destroys_tape (Scenario.Site_disaster 1) t1);
        check_bool "other site" false
          (Scenario.destroys_tape (Scenario.Site_disaster 2) t1)) ]

let suites =
  [ ("failure.likelihood", likelihood_tests);
    ("failure.scenario", scenario_tests) ]
