(* Benchmark & reproduction harness.

   Two halves:
   1. Artifact regeneration — re-runs every experiment from the paper's
      evaluation section (Tables 1-4, Figures 2-7) and prints each in a
      shape comparable to the original (see EXPERIMENTS.md for the
      paper-vs-measured record).
   2. Bechamel micro-benchmarks — one Test per paper artifact, timing the
      computational kernel that regenerating it leans on.

   Environment knobs:
     DS_BENCH_BUDGET=quick|default   iteration budgets (default: default)
     DS_BENCH_SKIP_SLOW=1            skip Figure 4 and Figures 5-7 sweeps
     DS_BENCH_SAMPLES=<n>            override Figure 2 sample count
     DS_BENCH_JSON=<path>            where to write the machine-readable
                                     results (default: BENCH_results.json)

   Every section is timed through Obs' monotonic clock; per-section wall
   times plus the instrumented solver/simulation counters land in
   BENCH_results.json — the repo's perf trajectory record. *)

open Dependable_storage
module E = Experiments
module Money = Units.Money
module Summary = Cost.Summary
module Likelihood = Failure.Likelihood
module Design_solver = Solver.Design_solver

let fmt = Format.std_formatter

let section title = Format.fprintf fmt "@.=== %s ===@.@." title

let budgets =
  match Sys.getenv_opt "DS_BENCH_BUDGET" with
  | Some "quick" -> E.Budgets.quick
  | _ -> E.Budgets.default

(* Figures 4-7 cover many solver runs; a trimmed budget keeps the full
   harness in minutes while preserving the trends. *)
let sweep_budgets =
  { budgets with
    E.Budgets.solver =
      { budgets.E.Budgets.solver with
        Design_solver.refit_rounds = 6; depth = 4 };
    human_attempts = 12;
    random_attempts = 60 }

let skip_slow = Sys.getenv_opt "DS_BENCH_SKIP_SLOW" = Some "1"

let samples =
  match Option.map int_of_string_opt (Sys.getenv_opt "DS_BENCH_SAMPLES") with
  | Some (Some n) when n > 0 -> n
  | _ -> budgets.E.Budgets.space_samples

(* One Obs capability for the whole harness: sections time through its
   registry's monotonic clock and the instrumented stack (the figure-3
   solver + heuristics run) accumulates counters into the same registry. *)
let obs = Obs.create ~metrics:true ()

let sections : (string * float) list ref = ref []

(* Per-section allocation deltas (Gc.quick_stat across the section, main
   domain only — worker-domain allocation lands in the exec.* metrics),
   keyed like [sections] and joined back in [write_results]. *)
let section_gc : (string * (float * float * int * int)) list ref = ref []

let timed label f =
  let gc0 = Gc.quick_stat () in
  let t0 = Obs.Metrics.now_s () in
  let r = f () in
  let dt = Obs.Metrics.now_s () -. t0 in
  let gc1 = Gc.quick_stat () in
  sections := (label, dt) :: !sections;
  section_gc :=
    ( label,
      ( gc1.Gc.minor_words -. gc0.Gc.minor_words,
        gc1.Gc.major_words -. gc0.Gc.major_words,
        gc1.Gc.minor_collections - gc0.Gc.minor_collections,
        gc1.Gc.major_collections - gc0.Gc.major_collections ) )
    :: !section_gc;
  (match Obs.metrics obs with
   | Some reg -> Obs.Metrics.observe (Obs.Metrics.histogram reg "bench.section_s") dt
   | None -> ());
  Format.fprintf fmt "@.[%s took %.1fs]@." label dt;
  r

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let write_results ~total () =
  let path =
    Option.value ~default:"BENCH_results.json" (Sys.getenv_opt "DS_BENCH_JSON")
  in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\"schema\":\"ds-bench/1\",";
  Buffer.add_string buf
    (Printf.sprintf "\"budget\":\"%s\",\"samples\":%d,\"skip_slow\":%b,"
       (match Sys.getenv_opt "DS_BENCH_BUDGET" with
        | Some b -> json_escape b
        | None -> "default")
       samples skip_slow);
  (* Run metadata, so a results file is interpretable on its own: the
     parallel head-to-heads only mean something next to the core count,
     and DS_BENCH_ONLY_* runs carry a section subset. *)
  let only_knob =
    List.find_opt
      (fun k -> Sys.getenv_opt k = Some "1")
      [ "DS_BENCH_ONLY_CACHE"; "DS_BENCH_ONLY_PARALLEL"; "DS_BENCH_ONLY_EXEC";
        "DS_BENCH_ONLY_PORTFOLIO"; "DS_BENCH_ONLY_TAIL";
        "DS_BENCH_ONLY_FLEET"; "DS_BENCH_ONLY_SERVE" ]
  in
  Buffer.add_string buf
    (Printf.sprintf "\"nproc\":%d,\"ocaml\":\"%s\",\"only\":%s,"
       (Domain.recommended_domain_count ())
       (json_escape Sys.ocaml_version)
       (match only_knob with
        | Some k -> Printf.sprintf "\"%s\"" (json_escape k)
        | None -> "null"));
  Buffer.add_string buf "\"sections\":[";
  List.iteri
    (fun i (label, dt) ->
       if i > 0 then Buffer.add_char buf ',';
       let minor, major, minor_col, major_col =
         match List.assoc_opt label !section_gc with
         | Some gc -> gc
         | None -> (0., 0., 0, 0)
       in
       Buffer.add_string buf
         (Printf.sprintf
            "{\"name\":\"%s\",\"seconds\":%.3f,\"minor_words\":%.0f,\
             \"major_words\":%.0f,\"minor_collections\":%d,\
             \"major_collections\":%d}"
            (json_escape label) dt minor major minor_col major_col))
    (List.rev !sections);
  Buffer.add_string buf "],";
  (match Obs.metrics obs with
   | Some reg ->
     Buffer.add_string buf
       (Printf.sprintf "\"metrics\":%s," (Obs.Metrics.to_json reg));
     (* The same registry folded into a ds-prof/1 report (stage list is
        empty — the harness traces nothing — but the pool-accounting and
        lock-wait sections carry the parallel head-to-heads' story). *)
     Buffer.add_string buf
       (Printf.sprintf "\"profile\":%s,"
          (Obs.Prof.to_json (Obs.Prof.capture ~label:"bench" ~registry:reg ())))
   | None -> ());
  Buffer.add_string buf (Printf.sprintf "\"total_seconds\":%.3f}" total);
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (Buffer.contents buf));
  Format.fprintf fmt "results written to %s@." path

(* ------------------------------------------------------------------ *)
(* Artifact regeneration                                               *)
(* ------------------------------------------------------------------ *)

let catalogs () =
  section "Catalogs (Tables 1-3)";
  E.Report.table1 fmt ();
  Format.fprintf fmt "@.";
  E.Report.table2 fmt ();
  Format.fprintf fmt "@.";
  E.Report.table3 fmt ()

let table4_and_figure3 () =
  section "Table 4 + Figure 3 (peer-sites case study)";
  let entries =
    timed "figure 3" (fun () ->
        E.Compare.run ~budgets ~obs (E.Envs.peer_sites ()) (E.Envs.peer_apps ())
          Likelihood.default)
  in
  (match timed "table 4" (fun () -> E.Case_study.run ~budgets ()) with
   | Some candidate ->
     E.Report.table4 fmt (E.Case_study.rows_of_candidate candidate);
     Format.fprintf fmt "@.design tool solution: %a@." Solver.Candidate.pp
       candidate
   | None -> Format.fprintf fmt "table 4: no feasible design@.");
  Format.fprintf fmt "@.";
  E.Report.figure3 fmt entries;
  entries

let figure2 entries =
  section "Figure 2 (solution-space distribution, peer sites)";
  let stats =
    timed
      (Printf.sprintf "figure 2 (%d samples)" samples)
      (fun () ->
         E.Space_sampler.sample ~seed:7 ~samples (E.Envs.peer_sites ())
           (E.Envs.peer_apps ()) Likelihood.default)
  in
  let marks =
    List.filter_map
      (fun (e : E.Compare.entry) ->
         Option.map
           (fun s -> (e.E.Compare.label, Money.to_dollars (Summary.total s)))
           e.E.Compare.summary)
      entries
  in
  E.Report.figure2 fmt stats ~bins:14 ~marks

let figure4 () =
  section "Figure 4 (scalability, four fully connected sites)";
  if skip_slow then Format.fprintf fmt "skipped (DS_BENCH_SKIP_SLOW=1)@."
  else
    let points =
      timed "figure 4" (fun () ->
          E.Scalability.run ~budgets:sweep_budgets ~rounds:[ 1; 2; 3; 4; 5; 6 ] ())
    in
    E.Report.figure4 fmt points

let sensitivity axis label =
  section label;
  if skip_slow then Format.fprintf fmt "skipped (DS_BENCH_SKIP_SLOW=1)@."
  else
    let points =
      timed label (fun () -> E.Sensitivity.run ~budgets:sweep_budgets axis)
    in
    E.Report.sensitivity fmt axis points

let frontier () =
  section "Frontier (outlay vs penalty trade-off; not in the paper)";
  if skip_slow then Format.fprintf fmt "skipped (DS_BENCH_SKIP_SLOW=1)@."
  else begin
    let points = timed "frontier" (fun () -> E.Frontier.run_peer ~budgets ()) in
    E.Frontier.pp fmt points
  end

let ablations () =
  section "Ablations (tool design choices; not in the paper)";
  let run title f = E.Ablation.pp fmt ~title (f ()); Format.fprintf fmt "@." in
  run "Design-solver stages (peer sites)" (fun () ->
      E.Ablation.solver_stages ~budgets ());
  run "Refit search shape: breadth x depth (peer sites)" (fun () ->
      E.Ablation.search_shape ~budgets ());
  run "Configuration-solver features (peer sites)" (fun () ->
      E.Ablation.config_features ~budgets ());
  run "Vault staleness semantics (fixed all-tape design)" (fun () ->
      E.Ablation.vault_modes ~budgets ());
  run "Recovery scheduling policies (fixed all-tape design)" (fun () ->
      E.Ablation.scheduling_policies ~budgets ())

(* ------------------------------------------------------------------ *)
(* Configuration-solver memo cache                                     *)
(* ------------------------------------------------------------------ *)

(* Head-to-head: the same refit-heavy search with the memo cache off and
   on. The refit stage revisits near-identical designs, which is exactly
   where memoization pays; patience is raised past the round budget so
   neither run stops early and both perform the same amount of search.
   CI's bench-smoke job gates on "solver cached" beating "solver
   uncached" in BENCH_results.json. *)
let cache_speedup () =
  section "Config-solver memo cache (cached vs uncached refit search)";
  (* Deliberately not trimmed under DS_BENCH_BUDGET=quick: fewer rounds
     shrink the hit-heavy tail of the search and understate the cache. *)
  let refit_params =
    { budgets.E.Budgets.solver with
      Design_solver.breadth = 3; depth = 4; refit_rounds = 12;
      patience = 13; polish = None }
  in
  let run label config_cache_size =
    timed label (fun () ->
        Design_solver.solve ~obs
          ~params:{ refit_params with Design_solver.config_cache_size }
          (E.Envs.peer_sites ()) (E.Envs.peer_apps ()) Likelihood.default)
  in
  let uncached = run "solver uncached" 0 in
  let cached = run "solver cached" 8192 in
  (match uncached, cached with
   | Some u, Some c ->
     let bytes o =
       Design.Design_io.to_string o.Design_solver.best.Solver.Candidate.design
     in
     if bytes u <> bytes c
        || u.Design_solver.evaluations <> c.Design_solver.evaluations
     then begin
       prerr_endline
         "FATAL: memo cache changed the solver result (design or \
          evaluation count differs)";
       exit 1
     end;
     let seconds label = List.assoc label !sections in
     Format.fprintf fmt
       "cache transparency: OK (byte-identical designs, %d evaluations \
        each)@.speedup: %.2fx (uncached %.1fs, cached %.1fs)@."
       u.Design_solver.evaluations
       (seconds "solver uncached" /. seconds "solver cached")
       (seconds "solver uncached") (seconds "solver cached")
   | _ ->
     prerr_endline "FATAL: memo-cache benchmark found no feasible design";
     exit 1)

(* ------------------------------------------------------------------ *)
(* Parallel refit                                                      *)
(* ------------------------------------------------------------------ *)

(* Head-to-head: the same refit-heavy search run sequentially and on 4
   domains. The parallel refit is deterministic by construction (probe
   RNG streams pre-split in probe order, probe results merged in probe
   order), so this section first proves the byte-identity contract and
   then reports the speedup. A breadth of 4 gives every domain a probe
   per round. CI's bench-smoke job gates on "refit parallel" not being
   slower than "refit sequential"; the speedup itself depends on the
   host's core count (a single-core runner can at best break even). *)
let parallel_refit_speedup () =
  section "Parallel refit (sequential vs 4 domains)";
  let refit_params =
    { budgets.E.Budgets.solver with
      Design_solver.breadth = 4; depth = 4; refit_rounds = 12;
      patience = 13; polish = None }
  in
  let run label domains =
    timed label (fun () ->
        Design_solver.solve ~obs
          ~params:{ refit_params with Design_solver.domains }
          (E.Envs.peer_sites ()) (E.Envs.peer_apps ()) Likelihood.default)
  in
  let sequential = run "refit sequential" 1 in
  let parallel = run "refit parallel" 4 in
  (match sequential, parallel with
   | Some s, Some p ->
     let bytes o =
       Design.Design_io.to_string o.Design_solver.best.Solver.Candidate.design
     in
     if bytes s <> bytes p
        || s.Design_solver.evaluations <> p.Design_solver.evaluations
     then begin
       prerr_endline
         "FATAL: parallel refit changed the solver result (design or \
          evaluation count differs between 1 and 4 domains)";
       exit 1
     end;
     let seconds label = List.assoc label !sections in
     Format.fprintf fmt
       "domain transparency: OK (byte-identical designs, %d evaluations \
        each)@.speedup: %.2fx on %d cores (sequential %.1fs, 4 domains \
        %.1fs)@."
       s.Design_solver.evaluations
       (seconds "refit sequential" /. seconds "refit parallel")
       (Domain.recommended_domain_count ())
       (seconds "refit sequential") (seconds "refit parallel")
   | _ ->
     prerr_endline "FATAL: parallel-refit benchmark found no feasible design";
     exit 1)

(* ------------------------------------------------------------------ *)
(* Exec pool: Monte Carlo years and experiment sweeps                  *)
(* ------------------------------------------------------------------ *)

(* A deterministic feasible design to benchmark kernels on (also the
   bechamel fixture below). *)
let kernel_fixture () =
  let env = E.Envs.peer_sites () in
  let apps = E.Envs.peer_apps () in
  let rec build seed =
    let rng = Prng.Rng.of_int seed in
    match Heuristics.Random_search.sample_design rng env apps with
    | Some design ->
      (match Design.Provision.minimum design with
       | Ok prov -> (design, prov)
       | Error _ -> build (seed + 1))
    | None -> build (seed + 1)
  in
  build 99

(* Head-to-head: the same Monte Carlo risk simulation run sequentially
   and on a 4-domain Exec pool. Year_sim pre-splits one RNG stream per
   fixed-size chunk of years in chunk order, so the pool width is pure
   scheduling — the section proves the identity (the full yearly arrays,
   not just the aggregates) and then reports the speedup. CI's
   bench-smoke job gates on "year_sim parallel" not being slower than
   "year_sim sequential". *)
let year_sim_speedup () =
  section "Exec pool: Monte Carlo years (sequential vs 4 domains)";
  let _, prov = kernel_fixture () in
  let likelihood = Likelihood.default in
  let years = 400_000 in
  let run label domains =
    timed label (fun () ->
        Risk.Year_sim.simulate ~years ~obs ~pool:(Exec.auto_width (Exec.create ~domains ()))
          (Prng.Rng.of_int 42) prov likelihood)
  in
  let sequential = run "year_sim sequential" 1 in
  let parallel = run "year_sim parallel" 4 in
  if sequential.Risk.Year_sim.years <> parallel.Risk.Year_sim.years then begin
    prerr_endline
      "FATAL: Exec pool changed the Monte Carlo sample (yearly results \
       differ between 1 and 4 domains)";
    exit 1
  end;
  let seconds label = List.assoc label !sections in
  Format.fprintf fmt
    "domain transparency: OK (identical %d-year samples)@.speedup: %.2fx \
     on %d cores (sequential %.1fs, 4 domains %.1fs)@."
    years
    (seconds "year_sim sequential" /. seconds "year_sim parallel")
    (Domain.recommended_domain_count ())
    (seconds "year_sim sequential") (seconds "year_sim parallel")

(* Head-to-head: the rare-event tail engine run sequentially and on a
   4-domain Exec pool. Tail_sim enumerates (stratum, chunk) tasks
   stratum-major with one pre-split RNG stream per task, so the pool
   width is pure scheduling — the section compares the estimates, CIs,
   ESS and certification verdict fatally (any divergence means the
   determinism contract broke, not just noise) before reporting the
   speedup. CI's bench-smoke job gates on "risk tail parallel" not
   being slower than "risk tail sequential". *)
let tail_speedup () =
  section "Rare-event tail engine (sequential vs 4 domains)";
  let _, prov = kernel_fixture () in
  let likelihood = Likelihood.default in
  let years = 200_000 in
  let run label domains =
    timed label (fun () ->
        Risk.Tail_sim.simulate ~years ~obs
          ~pool:(Exec.auto_width (Exec.create ~domains ()))
          (Prng.Rng.of_int 42) prov likelihood)
  in
  let sequential = run "risk tail sequential" 1 in
  let parallel = run "risk tail parallel" 4 in
  let fingerprint (t : Risk.Tail_sim.t) =
    let e (est : Risk.Tail_sim.estimate) =
      (est.Risk.Tail_sim.value, est.Risk.Tail_sim.lower, est.Risk.Tail_sim.upper)
    in
    ( e t.Risk.Tail_sim.mean_total,
      e t.Risk.Tail_sim.mean_downtime,
      e t.Risk.Tail_sim.unavailability,
      t.Risk.Tail_sim.ess,
      (Risk.Tail_sim.certify t ~availability:0.99999999999)
        .Risk.Tail_sim.verdict )
  in
  if fingerprint sequential <> fingerprint parallel then begin
    prerr_endline
      "FATAL: Exec pool changed the tail estimates (estimate, CI, ESS or \
       verdict differs between 1 and 4 domains)";
    exit 1
  end;
  let seconds label = List.assoc label !sections in
  Format.fprintf fmt
    "domain transparency: OK (identical estimates, CIs, ESS %.1f and \
     verdict over %d years)@.speedup: %.2fx on %d cores (sequential %.1fs, \
     4 domains %.1fs)@."
    sequential.Risk.Tail_sim.ess years
    (seconds "risk tail sequential" /. seconds "risk tail parallel")
    (Domain.recommended_domain_count ())
    (seconds "risk tail sequential") (seconds "risk tail parallel")

(* Head-to-head: the same sensitivity sweep with its points scheduled
   sequentially and on a 4-domain Exec pool (each point's solver runs
   single-domain either way; the sweep level is where the parallelism
   lives). Points are compared fatally before reporting the speedup.
   CI's bench-smoke job gates on "sweep parallel" not being slower than
   "sweep sequential". *)
let sweep_speedup () =
  section "Exec pool: sensitivity sweep (sequential vs 4 domains)";
  let sweep_rates = [ 2.; 1.; 0.5; 0.25 ] in
  let trimmed =
    { budgets with
      E.Budgets.solver =
        { budgets.E.Budgets.solver with
          Design_solver.refit_rounds = 2; depth = 2; breadth = 2;
          stage1_restarts = 2 } }
  in
  let run label domains =
    timed label (fun () ->
        E.Sensitivity.run
          ~budgets:(E.Budgets.with_domains trimmed domains)
          ~rates:sweep_rates ~apps:4 E.Sensitivity.Object_failure)
  in
  let sequential = run "sweep sequential" 1 in
  let parallel = run "sweep parallel" 4 in
  let totals points =
    List.map
      (fun (p : E.Sensitivity.point) ->
         (p.E.Sensitivity.rate, Option.map Summary.total p.E.Sensitivity.summary))
      points
  in
  if totals sequential <> totals parallel then begin
    prerr_endline
      "FATAL: Exec pool changed the sensitivity sweep (points differ \
       between 1 and 4 domains)";
    exit 1
  end;
  let seconds label = List.assoc label !sections in
  Format.fprintf fmt
    "domain transparency: OK (identical %d-point sweeps)@.speedup: %.2fx \
     on %d cores (sequential %.1fs, 4 domains %.1fs)@."
    (List.length sweep_rates)
    (seconds "sweep sequential" /. seconds "sweep parallel")
    (Domain.recommended_domain_count ())
    (seconds "sweep sequential") (seconds "sweep parallel")

(* Head-to-head: the same 6-restart portfolio run on a sequential pool
   and on 4 domains. Restart streams are pre-split in restart order and
   restarts commit in restart order, so the pool width is pure
   scheduling; racing may only cut losing refit rounds short, never
   change the winner. The section proves both identities fatally
   (sequential vs parallel designs, and racing on vs off at 4 domains)
   before reporting the speedup. CI's bench-smoke job gates on
   "portfolio parallel" not being slower than "portfolio sequential". *)
let portfolio_speedup () =
  section "Portfolio meta-solver (6 restarts: sequential vs 4 domains)";
  let params =
    { budgets.E.Budgets.solver with
      Design_solver.breadth = 3; depth = 3; refit_rounds = 8;
      patience = 9; polish = None }
  in
  let restarts = 6 in
  let run label ~race domains =
    timed label (fun () ->
        Search.run ~restarts ~race ~params ~pool:(Exec.auto_width (Exec.create ~domains ()))
          ~obs (E.Envs.peer_sites ()) (E.Envs.peer_apps ())
          Likelihood.default)
  in
  let sequential = run "portfolio sequential" ~race:false 1 in
  let parallel = run "portfolio parallel" ~race:false 4 in
  let raced = run "portfolio racing" ~race:true 4 in
  match sequential, parallel, raced with
  | Some s, Some p, Some r ->
    let bytes (res : Search.result) =
      Design.Design_io.to_string res.Search.best.Solver.Candidate.design
    in
    if bytes s <> bytes p || s.Search.winner <> p.Search.winner
       || s.Search.total_evaluations <> p.Search.total_evaluations
    then begin
      prerr_endline
        "FATAL: portfolio changed its result between 1 and 4 domains \
         (design, winner or evaluation count differs)";
      exit 1
    end;
    if bytes s <> bytes r || s.Search.winner <> r.Search.winner then begin
      prerr_endline
        "FATAL: racing changed the portfolio winner (design or winner \
         index differs from the unraced run)";
      exit 1
    end;
    let seconds label = List.assoc label !sections in
    Format.fprintf fmt
      "domain transparency: OK (byte-identical designs, winner restart %d, \
       %d evaluations each)@.racing transparency: OK (same winner, %d of \
       %d restarts raced off)@.speedup: %.2fx on %d cores (sequential \
       %.1fs, 4 domains %.1fs, 4 domains racing %.1fs)@."
      s.Search.winner s.Search.total_evaluations r.Search.raced_off
      r.Search.restarts_run
      (seconds "portfolio sequential" /. seconds "portfolio parallel")
      (Domain.recommended_domain_count ())
      (seconds "portfolio sequential") (seconds "portfolio parallel")
      (seconds "portfolio racing")
  | _ ->
    prerr_endline "FATAL: portfolio benchmark found no feasible design";
    exit 1

(* ------------------------------------------------------------------ *)
(* Fleet coordinator                                                   *)
(* ------------------------------------------------------------------ *)

(* Head-to-head at fleet scale: a 1,024-application fleet (128 four-site
   pods) solved cold on a sequential pool and on 4 domains — shard RNG
   streams are pre-split in shard-index order and shard designs merge in
   index order, so the pool width is pure scheduling and the merged
   designs must be byte-identical. Then the warm-start story: a
   forced-dirty re-solve of the unchanged fleet must never come back
   costlier than the incumbent (the anytime floor), and a re-solve after
   a single application drifts must reuse every untouched shard and
   spend at least 5x fewer configuration-solver calls than the cold
   solve. All three properties are checked fatally — a violation is a
   broken contract, not noise. CI's bench-smoke job gates on "fleet
   parallel" not being slower than "fleet sequential". *)
let fleet_speedup () =
  section "Fleet coordinator (1,024 apps over 128 pods: cold, parallel, warm)";
  let pods = 128 and apps_per_pod = 8 in
  let env = E.Envs.fleet_sites ~pods () in
  let apps = E.Envs.fleet_apps ~pods ~apps_per_pod in
  let likelihood = Likelihood.default in
  (* Shard solves dominate; a trimmed per-shard budget keeps 128 of them
     in seconds while leaving the coordinator paths (partition, merge,
     reconcile, warm reuse) fully exercised. *)
  let trimmed =
    { budgets.E.Budgets.solver with
      Design_solver.refit_rounds = 2; depth = 2; breadth = 2;
      stage1_restarts = 2 }
  in
  let run label domains =
    timed label (fun () ->
        Fleet.solve ~obs ~params:{ trimmed with Design_solver.domains } env
          apps likelihood)
  in
  let sequential = run "fleet sequential" 1 in
  let parallel = run "fleet parallel" 4 in
  let bytes (r : Fleet.t) = Design.Design_io.to_string r.Fleet.design in
  if bytes sequential <> bytes parallel
     || sequential.Fleet.evaluations <> parallel.Fleet.evaluations
  then begin
    prerr_endline
      "FATAL: fleet coordinator changed its result between 1 and 4 domains \
       (merged design or evaluation count differs)";
    exit 1
  end;
  let warm_params = { trimmed with Design_solver.domains = 4 } in
  (* Anytime floor: force one app dirty without changing it — the warm
     re-solve starts from the incumbent's rebased design, so it can
     polish the fleet cheaper but never return it costlier. *)
  let floored =
    timed "fleet warm floor" (fun () ->
        Fleet.resolve ~obs ~params:warm_params ~dirty:[ 1 ]
          ~incumbent:parallel env apps likelihood)
  in
  if Money.to_dollars floored.Fleet.cost
     > Money.to_dollars parallel.Fleet.cost +. 1e-6
  then begin
    prerr_endline
      "FATAL: warm fleet re-solve returned a costlier design than its \
       incumbent (the anytime floor broke)";
    exit 1
  end;
  (* Incremental re-solve: drift one app and re-solve warm. Only the
     dirty app's shard may spend solver calls. *)
  let drift_id = 5 in
  let drifted =
    List.map
      (fun a ->
         if a.Workload.App.id = drift_id then Workload.App.drift ~factor:2. a
         else a)
      apps
  in
  let warm =
    timed "fleet warm drift" (fun () ->
        Fleet.resolve ~obs ~params:warm_params ~incumbent:parallel env drifted
          likelihood)
  in
  let shard_count = List.length warm.Fleet.shard_results in
  let reused =
    List.length (List.filter (fun r -> r.Fleet.reused) warm.Fleet.shard_results)
  in
  if warm.Fleet.evaluations * 5 > sequential.Fleet.evaluations then begin
    prerr_endline
      (Printf.sprintf
         "FATAL: warm fleet re-solve after a single-app drift spent %d \
          evaluations against %d cold — less than the required 5x saving"
         warm.Fleet.evaluations sequential.Fleet.evaluations);
    exit 1
  end;
  let seconds label = List.assoc label !sections in
  Format.fprintf fmt
    "domain transparency: OK (byte-identical merged designs over %d apps, \
     %d evaluations each)@.anytime floor: OK (warm cost %s <= incumbent \
     %s)@.warm re-solve: %d of %d shards reused, %d evaluations vs %d cold \
     (%.1fx fewer)@.speedup: %.2fx on %d cores (sequential %.1fs, 4 \
     domains %.1fs); warm drift re-solve %.2fs@."
    (List.length apps) sequential.Fleet.evaluations
    (Money.to_string floored.Fleet.cost)
    (Money.to_string parallel.Fleet.cost)
    reused shard_count warm.Fleet.evaluations sequential.Fleet.evaluations
    (float_of_int sequential.Fleet.evaluations
     /. float_of_int (max 1 warm.Fleet.evaluations))
    (seconds "fleet sequential" /. seconds "fleet parallel")
    (Domain.recommended_domain_count ())
    (seconds "fleet sequential") (seconds "fleet parallel")
    (seconds "fleet warm drift")

(* ------------------------------------------------------------------ *)
(* dstool server round trips                                           *)
(* ------------------------------------------------------------------ *)

(* An in-process daemon on an ephemeral port, sharing the harness
   metrics registry, driven by one closed-loop client. The same quick
   solve is issued twice: request #2 must beat request #1 (it runs
   against the resident configuration cache) and both must return the
   design a direct in-process solve produces, byte for byte — the
   service determinism contract (DESIGN.md §16). scripts/bench_gate.sh
   gates "serve warm solve" <= "serve cold solve". *)
let serve_roundtrips () =
  section "dstool serve (cold vs warm round trips)";
  let registry =
    match Obs.metrics obs with Some r -> r | None -> Obs.Metrics.create ()
  in
  let d =
    Server.Daemon.create ~registry
      { Server.Daemon.default_config with Server.Daemon.port = 0 }
  in
  let server = Thread.create (fun () -> Server.Daemon.run d) () in
  let c = Server.Client.connect ~port:(Server.Daemon.port d) () in
  let params =
    Server.Json.Obj
      [ ("budget", Server.Json.Str "quick"); ("seed", Server.Json.Num 42.) ]
  in
  let design_of label = function
    | Ok r ->
      Option.get
        (Option.bind (Server.Json.member "design" r) Server.Json.str_opt)
    | Error msg ->
      prerr_endline (Printf.sprintf "FATAL: %s failed: %s" label msg);
      exit 1
  in
  let solve label =
    design_of label
      (timed label (fun () -> Server.Client.call c ~method_:"solve" params))
  in
  let cold = solve "serve cold solve" in
  let warm = solve "serve warm solve" in
  (* Closed-loop warm round trips: the steady-state service rate. *)
  let lat = Obs.Metrics.histogram registry "serve.client_round_trip_s" in
  let rounds = 16 in
  let t0 = Obs.Metrics.now_s () in
  for _ = 1 to rounds do
    ignore
      (design_of "serve steady-state solve"
         (Obs.Metrics.time lat (fun () ->
              Server.Client.call c ~method_:"solve" params)))
  done;
  let dt = Obs.Metrics.now_s () -. t0 in
  let rps = float_of_int rounds /. dt in
  Obs.Metrics.set (Obs.Metrics.gauge registry "serve.warm_rps") rps;
  let hits =
    match Server.Client.call c ~method_:"metrics" (Server.Json.Obj []) with
    | Ok m ->
      Option.value ~default:0.
        (Option.bind
           (Server.Json.member "config.cache_hits" m)
           Server.Json.num_opt)
    | Error _ -> 0.
  in
  ignore (Server.Client.call c ~method_:"shutdown" (Server.Json.Obj []));
  Server.Client.close c;
  Thread.join server;
  let direct =
    let budget = E.Budgets.with_seed E.Budgets.quick 42 in
    match
      Design_solver.solve ~params:budget.E.Budgets.solver
        (E.Envs.peer_sites ()) (E.Envs.peer_apps ()) Likelihood.default
    with
    | Some o ->
      Design.Design_io.to_string o.Design_solver.best.Solver.Candidate.design
    | None ->
      prerr_endline "FATAL: direct solve found no design";
      exit 1
  in
  if cold <> direct || warm <> direct then begin
    prerr_endline
      "FATAL: server designs are not byte-identical to a direct solve";
    exit 1
  end;
  if hits <= 0. then begin
    prerr_endline
      "FATAL: a repeated identical request missed the resident config cache";
    exit 1
  end;
  let seconds label = List.assoc label !sections in
  let cold_s = seconds "serve cold solve" in
  let warm_s = seconds "serve warm solve" in
  if warm_s >= cold_s then begin
    prerr_endline
      (Printf.sprintf
         "FATAL: warm server request (%.3fs) not faster than cold (%.3fs) \
          despite %d resident-cache hits"
         warm_s cold_s (int_of_float hits));
    exit 1
  end;
  Format.fprintf fmt
    "round trips: cold %.3fs, warm %.3fs (%.1fx); steady state %.1f req/s \
     (p50 %.1f ms, p99 %.1f ms over %d warm requests); designs \
     byte-identical to a direct solve, %d resident-cache hits@."
    cold_s warm_s (cold_s /. warm_s) rps
    (1e3 *. Obs.Metrics.percentile lat 0.5)
    (1e3 *. Obs.Metrics.percentile lat 0.99)
    rounds (int_of_float hits)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  section "Microbenchmarks (bechamel)";
  let open Bechamel in
  let design, prov = kernel_fixture () in
  let likelihood = Likelihood.default in
  let scen =
    { Failure.Scenario.scope = Failure.Scenario.Site_disaster 1;
      annual_rate = 0.2 }
  in
  let quick_solver_params =
    { Design_solver.default_params with
      Design_solver.refit_rounds = 0; depth = 1; breadth = 1;
      stage1_restarts = 1;
      options =
        { Solver.Config_solver.search_options with
          Solver.Config_solver.max_growth_steps = 1 } }
  in
  let tests =
    [ Test.make ~name:"table4:design-solver-greedy"
        (Staged.stage (fun () ->
             ignore
               (Design_solver.solve ~params:quick_solver_params
                  (E.Envs.peer_sites ()) (E.Envs.peer_apps ()) likelihood)));
      Test.make ~name:"figure2:sample+evaluate"
        (Staged.stage
           (let rng = Prng.Rng.of_int 5 in
            fun () ->
              match
                Heuristics.Random_search.sample_design rng (E.Envs.peer_sites ())
                  (E.Envs.peer_apps ())
              with
              | Some d -> ignore (Cost.Evaluate.design d likelihood)
              | None -> ()));
      Test.make ~name:"figure3:config-solver"
        (Staged.stage (fun () ->
             ignore
               (Solver.Config_solver.solve
                  ~options:Solver.Config_solver.search_options design likelihood)));
      Test.make ~name:"figure4:minimum-provision"
        (Staged.stage (fun () -> ignore (Design.Provision.minimum design)));
      Test.make ~name:"figure5:penalty-evaluation"
        (Staged.stage (fun () ->
             ignore (Cost.Penalty.expected_annual prov likelihood)));
      Test.make ~name:"figure6:recovery-simulation"
        (Staged.stage (fun () -> ignore (Recovery.Simulate.scenario prov scen)));
      Test.make ~name:"figure7:scenario-enumeration"
        (Staged.stage (fun () ->
             ignore (Failure.Scenario.enumerate likelihood design))) ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Format.fprintf fmt "%-32s %16s@." "kernel" "time/run";
  List.iter
    (fun test ->
       let results = Benchmark.all cfg [ instance ] test in
       let analyzed = Analyze.all ols instance results in
       Hashtbl.iter
         (fun name ols_result ->
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] ->
              if est >= 1e6 then
                Format.fprintf fmt "%-32s %13.2f ms@." name (est /. 1e6)
              else Format.fprintf fmt "%-32s %13.1f ns@." name est
            | _ -> Format.fprintf fmt "%-32s %16s@." name "(no estimate)")
         analyzed)
    tests

let () =
  (* Debug knob: run just the memo-cache head-to-head (the section CI's
     bench-smoke job gates on) without the full artifact regeneration. *)
  if Sys.getenv_opt "DS_BENCH_ONLY_CACHE" = Some "1" then begin
    let t0 = Obs.Metrics.now_s () in
    cache_speedup ();
    write_results ~total:(Obs.Metrics.now_s () -. t0) ();
    exit 0
  end;
  (* Same knob for the parallel-refit head-to-head. *)
  if Sys.getenv_opt "DS_BENCH_ONLY_PARALLEL" = Some "1" then begin
    let t0 = Obs.Metrics.now_s () in
    parallel_refit_speedup ();
    write_results ~total:(Obs.Metrics.now_s () -. t0) ();
    exit 0
  end;
  (* And for the Exec-pool head-to-heads (year_sim + sweep). *)
  if Sys.getenv_opt "DS_BENCH_ONLY_EXEC" = Some "1" then begin
    let t0 = Obs.Metrics.now_s () in
    year_sim_speedup ();
    sweep_speedup ();
    write_results ~total:(Obs.Metrics.now_s () -. t0) ();
    exit 0
  end;
  (* And for the portfolio head-to-head. *)
  if Sys.getenv_opt "DS_BENCH_ONLY_PORTFOLIO" = Some "1" then begin
    let t0 = Obs.Metrics.now_s () in
    portfolio_speedup ();
    write_results ~total:(Obs.Metrics.now_s () -. t0) ();
    exit 0
  end;
  (* And for the rare-event tail head-to-head. *)
  if Sys.getenv_opt "DS_BENCH_ONLY_TAIL" = Some "1" then begin
    let t0 = Obs.Metrics.now_s () in
    tail_speedup ();
    write_results ~total:(Obs.Metrics.now_s () -. t0) ();
    exit 0
  end;
  (* And for the fleet-coordinator head-to-head. *)
  if Sys.getenv_opt "DS_BENCH_ONLY_FLEET" = Some "1" then begin
    let t0 = Obs.Metrics.now_s () in
    fleet_speedup ();
    write_results ~total:(Obs.Metrics.now_s () -. t0) ();
    exit 0
  end;
  (* And for the server round trips. *)
  if Sys.getenv_opt "DS_BENCH_ONLY_SERVE" = Some "1" then begin
    let t0 = Obs.Metrics.now_s () in
    serve_roundtrips ();
    write_results ~total:(Obs.Metrics.now_s () -. t0) ();
    exit 0
  end;
  Format.fprintf fmt "dependable-storage reproduction harness@.";
  Format.fprintf fmt "budget: %s, figure-2 samples: %d%s@."
    (match Sys.getenv_opt "DS_BENCH_BUDGET" with Some b -> b | None -> "default")
    samples
    (if skip_slow then ", slow sweeps skipped" else "");
  let t0 = Obs.Metrics.now_s () in
  timed "catalogs" catalogs;
  let entries = table4_and_figure3 () in
  figure2 entries;
  figure4 ();
  sensitivity E.Sensitivity.Object_failure
    "Figure 5 (sensitivity: data-object failure likelihood)";
  sensitivity E.Sensitivity.Array_failure
    "Figure 6 (sensitivity: disk-array failure likelihood)";
  sensitivity E.Sensitivity.Site_failure
    "Figure 7 (sensitivity: site-disaster likelihood)";
  frontier ();
  timed "ablations" ablations;
  cache_speedup ();
  parallel_refit_speedup ();
  year_sim_speedup ();
  tail_speedup ();
  sweep_speedup ();
  portfolio_speedup ();
  fleet_speedup ();
  serve_roundtrips ();
  timed "microbenchmarks" bechamel_suite;
  let total = Obs.Metrics.now_s () -. t0 in
  Format.fprintf fmt "@.total harness time: %.1fs@." total;
  write_results ~total ()
