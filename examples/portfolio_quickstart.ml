(* Portfolio quickstart: the design tool is a randomized search, so one
   run is one sample — the portfolio meta-solver runs several restarts
   from independent RNG streams and keeps the cheapest design.

     dune exec examples/portfolio_quickstart.exe

   Restart 0 replays the fixed-seed single run, so the winner can never
   cost more than [Solver.Design_solver.solve] with the same seed; the
   pool width only changes wall-clock time, never the result. *)

open Dependable_storage
module Money = Units.Money
module Size = Units.Size
module Rate = Units.Rate

let () =
  let env =
    Resources.Env.fully_connected ~name:"portfolio" ~site_count:2
      ~bays_per_site:2 ~array_models:Resources.Device_catalog.array_models
      ~tape_models:Resources.Device_catalog.tape_models
      ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
      ~compute_slots_per_site:4 ()
  in
  let orders =
    Workload.App.v ~id:1 ~name:"orders-db" ~class_tag:"B"
      ~outage_per_hour:(Money.m 2.) ~loss_per_hour:(Money.m 1.)
      ~data_size:(Size.gb 800.)
      ~avg_update:(Rate.mb_per_sec 4.) ~peak_update:(Rate.mb_per_sec 30.)
      ~avg_access:(Rate.mb_per_sec 35.) ()
  in
  let analytics =
    Workload.App.v ~id:2 ~name:"analytics" ~class_tag:"S"
      ~outage_per_hour:(Money.k 2.) ~loss_per_hour:(Money.k 1.)
      ~data_size:(Size.gb 2000.)
      ~avg_update:(Rate.mb_per_sec 1.) ~peak_update:(Rate.mb_per_sec 8.)
      ~avg_access:(Rate.mb_per_sec 10.) ()
  in
  let likelihood =
    Failure.Likelihood.v ~data_object_per_year:1. ~array_per_year:0.25
      ~site_per_year:0.05
  in

  (* Six restarts, racing on, spread across four domains. Racing lets a
     restart abandon refit rounds it provably cannot win; the winner is
     the same with it off, it just arrives sooner. *)
  let pool = Exec.create ~domains:4 () in
  match
    Search.run ~restarts:6 ~race:true ~pool env [ orders; analytics ]
      likelihood
  with
  | None -> prerr_endline "no feasible design"
  | Some result ->
    List.iter
      (fun (r : Search.report) ->
         Format.printf "restart %d: %s%s%s@." r.index
           (match r.cost with
            | None -> "infeasible"
            | Some c -> Printf.sprintf "$%.0f" c)
           (if r.raced_off then " (raced off)" else "")
           (if r.improved then "  <- new incumbent" else ""))
      result.reports;
    let best = result.best in
    Format.printf "@.winner: restart %d (%d restarts, %d evaluations)@."
      result.winner result.restarts_run result.total_evaluations;
    Format.printf "annual cost: %a@." Cost.Summary.pp
      (Solver.Candidate.summary best)
