(* The design tool as a long-running service (DESIGN.md §16).

   A one-shot [dstool] run pays the full setup bill every time: pool
   creation, a cold configuration cache, a fresh metrics registry. The
   daemon keeps all three resident and serves requests over
   newline-delimited JSON-RPC 2.0 on TCP.

   Threading (systhreads, not domains — request handling is mostly
   waiting on the solver, whose own [Exec] pool provides the domain
   parallelism):

     - an accept loop on the calling thread, select()ing over the
       listen socket and a self-pipe so [stop] can interrupt it;
     - one reader thread per connection, answering cheap methods
       (health / metrics / cache_resize / shutdown) inline and pushing
       heavy ones (solve / resolve / fleet / risk / sleep) through the
       bounded admission queue — a full queue answers [overloaded]
       immediately rather than blocking the reader;
     - [concurrency] worker threads draining the queue.

   Shutdown drains: the phase moves Running -> Draining (stop
   accepting, reject newly read heavy requests with [shutting_down],
   finish everything admitted) -> Stopped (workers exit, connections
   are shut down to wake their readers, [run] returns).

   Determinism: every request carries its own seed and runs the same
   machinery the CLI does. The shared memo cache is result-transparent
   (identical keys map to identical values) and the resident pool is
   pure scheduling, so a request's design is byte-identical whether
   served alone, under concurrent load, or computed by [dstool solve]. *)

module Metrics = Ds_obs.Metrics
module Obs = Ds_obs.Obs
module Progress = Ds_obs.Progress
module Rng = Ds_prng.Rng
module Env = Ds_resources.Env
module App = Ds_workload.App
module Workload_catalog = Ds_workload.Workload_catalog
module Likelihood = Ds_failure.Likelihood
module Design_io = Ds_design.Design_io
module Provision = Ds_design.Provision
module Summary = Ds_cost.Summary
module Evaluate = Ds_cost.Evaluate
module Candidate = Ds_solver.Candidate
module Design_solver = Ds_solver.Design_solver
module Config_solver = Ds_solver.Config_solver
module Memo = Ds_solver.Memo
module Search = Ds_search.Search
module Fleet = Ds_fleet.Fleet
module Year_sim = Ds_risk.Year_sim
module Tail_sim = Ds_risk.Tail_sim
module Exec = Ds_exec.Exec
module Budgets = Ds_experiments.Budgets
module Envs = Ds_experiments.Envs
module Money = Ds_units.Money

type config = {
  host : string;
  port : int;
  concurrency : int;
  queue_depth : int;
  budget_evals : int option;
  cache_capacity : int;
  domains : int;
}

let default_config =
  { host = "127.0.0.1";
    port = 7411;
    concurrency = 2;
    queue_depth = 16;
    budget_evals = None;
    cache_capacity = 4096;
    domains = 1 }

type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  out_lock : Mutex.t;
  (* Checked under [out_lock] before every write, flipped before the fd
     is closed: the kernel reuses descriptor numbers, so a worker still
     holding a job for a dead connection must never write to the raw fd
     again — it could be someone else's socket by then. *)
  mutable alive : bool;
}

type job = {
  j_conn : conn;
  j_req : Protocol.request;
  enqueued_at : float;
}

type phase = Running | Draining | Stopped

type fleet_entry = {
  mutable f_env : Env.t;
  mutable f_apps : App.t list;
  f_params : Design_solver.params;
  f_likelihood : Likelihood.t;
  mutable incumbent : Fleet.t;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  registry : Metrics.registry;
  memo : Config_solver.cache;
  pool : Exec.pool;
  started_at : float;
  lock : Mutex.t;
  work : Condition.t;  (* workers wait for jobs *)
  idle : Condition.t;  (* the drain waits for queue empty && inflight 0 *)
  queue : job Queue.t;
  mutable inflight : int;
  mutable phase : phase;
  mutable conns : conn list;
  mutable readers : Thread.t list;
  wake_r : Unix.file_descr;  (* self-pipe: [stop] interrupts the select *)
  wake_w : Unix.file_descr;
  fleets : (string, fleet_entry) Hashtbl.t;  (* guarded by [lock] *)
}

let port t = t.bound_port
let registry t = t.registry

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ ->
    (try (Unix.gethostbyname host).Unix.h_addr_list.(0)
     with Not_found | Invalid_argument _ ->
       invalid_arg (Printf.sprintf "Daemon.create: unknown host %S" host))

let create ?registry config =
  if config.concurrency < 1 then
    invalid_arg "Daemon.create: concurrency must be positive";
  if config.queue_depth < 1 then
    invalid_arg "Daemon.create: queue_depth must be positive";
  let registry =
    match registry with Some r -> r | None -> Metrics.create ()
  in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (resolve_host config.host, config.port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe () in
  { config;
    listen_fd;
    bound_port;
    registry;
    memo = Config_solver.create_cache ~size:(max 1 config.cache_capacity) ();
    pool = Exec.auto_width (Exec.create ~domains:(max 1 config.domains) ());
    started_at = Metrics.now_s ();
    lock = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    queue = Queue.create ();
    inflight = 0;
    phase = Running;
    conns = [];
    readers = [];
    wake_r;
    wake_w;
    fleets = Hashtbl.create 8 }

(* ---- Wire helpers ------------------------------------------------- *)

let send conn line =
  try
    Mutex.protect conn.out_lock (fun () ->
        if conn.alive then begin
          output_string conn.oc line;
          output_char conn.oc '\n';
          flush conn.oc
        end)
  with Sys_error _ | Unix.Unix_error _ -> ()

let send_reply conn id = function
  | Ok result -> send conn (Protocol.response ~id result)
  | Error (code, message) ->
    send conn (Protocol.error_response ~id ~code message)

let observe_request t method_ ~since =
  let dt = Metrics.now_s () -. since in
  Metrics.observe (Metrics.histogram t.registry "server.request_s") dt;
  Metrics.observe
    (Metrics.histogram t.registry (Printf.sprintf "server.%s_s" method_))
    dt

(* ---- Request-parameter parsing ------------------------------------ *)

let ( let* ) = Result.bind
let bad msg = Error (Protocol.invalid_params, msg)
let lift r = Result.map_error (fun m -> (Protocol.invalid_params, m)) r
let int_json n = Json.Num (float_of_int n)
let money_json m = Json.Num (Money.to_dollars m)

(* Mirrors [dstool]'s --env/--apps resolution exactly: requests and CLI
   runs describing the same problem must build the same Env/App values,
   or the byte-identity contract is vacuous. *)
let env_of params =
  let* name = lift (Json.get_str ~default:"peer" "env" params) in
  let apps = Option.bind (Json.member "apps" params) Json.int_opt in
  match name with
  | "peer" ->
    let workloads =
      match apps with
      | None -> Envs.peer_apps ()
      | Some n -> Workload_catalog.mix ~count:n
    in
    Ok (Envs.peer_sites (), workloads)
  | "quad" ->
    let n = Option.value ~default:16 apps in
    Ok (Envs.quad_sites (), Workload_catalog.mix ~count:n)
  | s -> bad (Printf.sprintf "unknown environment %S (peer|quad)" s)

let likelihood_of params =
  let d = Likelihood.default in
  let rate key dflt =
    match Json.member key params with
    | None -> Ok dflt
    | Some v ->
      (match Json.num_opt v with
       | Some f -> Ok f
       | None -> bad (key ^ " must be a number"))
  in
  let* obj = rate "object_rate" d.Likelihood.data_object_per_year in
  let* arr = rate "array_rate" d.Likelihood.array_per_year in
  let* site = rate "site_rate" d.Likelihood.site_per_year in
  Ok
    (Likelihood.v ~data_object_per_year:obj ~array_per_year:arr
       ~site_per_year:site)

(* Same seed/budget/portfolio shaping as [dstool solve]; the server's
   --budget-evals becomes the default portfolio cap for requests that
   ask for restarts without a cap of their own. *)
let budget_of t params =
  let* seed = lift (Json.get_int ~default:42 "seed" params) in
  let* budget_name = lift (Json.get_str ~default:"default" "budget" params) in
  let* base =
    match budget_name with
    | "quick" -> Ok Budgets.quick
    | "default" -> Ok Budgets.default
    | s -> bad (Printf.sprintf "unknown budget %S (quick|default)" s)
  in
  let* restarts = lift (Json.get_int ~default:1 "restarts" params) in
  let* race = lift (Json.get_bool ~default:false "race" params) in
  if restarts < 1 then bad "restarts must be positive"
  else begin
    let evals =
      match Option.bind (Json.member "max_evaluations" params) Json.int_opt with
      | Some n -> Some n
      | None -> if restarts > 1 then t.config.budget_evals else None
    in
    let budget = Budgets.with_seed base seed in
    if restarts = 1 && (not race) && evals = None then Ok budget
    else Ok (Budgets.with_portfolio ~race ?max_evaluations:evals budget restarts)
  end

(* ---- Progress notifications --------------------------------------- *)

let progress_json id (e : Progress.entry) =
  let base =
    [ ("id", id); ("evaluations", int_json e.Progress.evaluations) ]
  in
  let rest =
    match e.Progress.event with
    | Progress.Stage s -> [ ("event", Json.Str "stage"); ("stage", Json.Str s) ]
    | Progress.Incumbent c ->
      [ ("event", Json.Str "incumbent"); ("cost_dollars", Json.Num c) ]
    | Progress.Accepted -> [ ("event", Json.Str "accept") ]
    | Progress.Rejected -> [ ("event", Json.Str "reject") ]
    | Progress.Portfolio { restart; cost } ->
      [ ("event", Json.Str "portfolio"); ("restart", int_json restart);
        ("cost_dollars", Json.Num cost) ]
    | Progress.Shard { shard; cost } ->
      [ ("event", Json.Str "shard"); ("shard", int_json shard);
        ("cost_dollars", Json.Num cost) ]
  in
  Json.Obj (base @ rest)

(* Every request records into the resident registry; a request that
   asked for progress additionally streams each event down its own
   connection as a notification tagged with the request id, so a client
   multiplexing several in-flight calls can route them. *)
let request_obs t conn id ~progress =
  if not progress then Obs.attach ~metrics:t.registry ()
  else
    let stream =
      Progress.create
        ~on_event:(fun e ->
          send conn
            (Protocol.notification ~method_:"progress"
               ~params:(progress_json id e)))
        ()
    in
    Obs.attach ~metrics:t.registry ~progress:stream ()

(* ---- Method handlers ---------------------------------------------- *)

let outcome_json (o : Design_solver.outcome) portfolio =
  let best, extra =
    match portfolio with
    | None -> (o.Design_solver.best, [])
    | Some (r : Search.result) ->
      ( r.Search.best,
        [ ("winner", int_json r.Search.winner);
          ("restarts_run", int_json r.Search.restarts_run);
          ("portfolio_raced_off", int_json r.Search.raced_off);
          ("total_evaluations", int_json r.Search.total_evaluations) ] )
  in
  Json.Obj
    ([ ("design", Json.Str (Design_io.to_string best.Candidate.design));
       ( "cost_dollars",
         money_json (Summary.total (Candidate.summary best)) );
       ("evaluations", int_json o.Design_solver.evaluations);
       ("refit_rounds", int_json o.Design_solver.refit_rounds_run);
       ("improved_by_refit", Json.Bool o.Design_solver.improved_by_refit);
       ("raced_off", Json.Bool o.Design_solver.raced_off) ]
     @ extra)

(* Budget semantics (DESIGN.md §16): [max_evaluations] binds portfolio
   requests through [Search.run]'s anytime admission; [deadline_s]
   binds single solves through the [abandon] race hook, which returns
   the anytime incumbent with [raced_off = true] instead of failing. *)
let handle_solve t conn (req : Protocol.request) =
  let params = req.Protocol.params in
  let* env, workloads = env_of params in
  let* likelihood = likelihood_of params in
  let* budget = budget_of t params in
  let* want_progress = lift (Json.get_bool ~default:false "progress" params) in
  let deadline_s = Option.bind (Json.member "deadline_s" params) Json.num_opt in
  let obs = request_obs t conn req.Protocol.id ~progress:want_progress in
  let abandon =
    Option.map
      (fun limit ->
        let deadline = Metrics.now_s () +. limit in
        fun (_ : float) -> Metrics.now_s () > deadline)
      deadline_s
  in
  if budget.Budgets.restarts = 1 then
    match
      Design_solver.solve ~params:budget.Budgets.solver ~obs ?abandon
        ~memo:t.memo env workloads likelihood
    with
    | Some o -> Ok (outcome_json o None)
    | None -> Error (Protocol.internal_error, "no feasible design found")
  else
    match
      Search.run ~restarts:budget.Budgets.restarts ~race:budget.Budgets.race
        ?max_evaluations:budget.Budgets.portfolio_evaluations
        ~params:budget.Budgets.solver ~pool:t.pool ~obs env workloads
        likelihood
    with
    | Some r -> Ok (outcome_json r.Search.outcome (Some r))
    | None -> Error (Protocol.internal_error, "no feasible design found")

let fleet_json (f : Fleet.t) =
  Json.Obj
    [ ("cost_dollars", money_json f.Fleet.cost);
      ("evaluations", int_json f.Fleet.evaluations);
      ("conflicts", int_json f.Fleet.conflicts);
      ("reconcile_passes", int_json f.Fleet.reconcile_passes);
      ("unplaced", Json.List (List.map int_json f.Fleet.unplaced));
      ("shards", int_json (List.length f.Fleet.shard_results));
      ( "shards_reused",
        int_json
          (List.length
             (List.filter
                (fun (r : Fleet.shard_result) -> r.Fleet.reused)
                f.Fleet.shard_results)) ) ]

let handle_fleet t conn (req : Protocol.request) =
  let params = req.Protocol.params in
  let* name = lift (Json.get_str ~default:"default" "name" params) in
  let* pods = lift (Json.get_int ~default:4 "pods" params) in
  let* apps_per_pod = lift (Json.get_int ~default:8 "apps_per_pod" params) in
  let shards = Option.bind (Json.member "shards" params) Json.int_opt in
  let* likelihood = likelihood_of params in
  let* budget = budget_of t params in
  let* want_progress = lift (Json.get_bool ~default:false "progress" params) in
  if pods < 1 || apps_per_pod < 1 then
    bad "pods and apps_per_pod must be positive"
  else begin
    let f_params =
      { budget.Budgets.solver with
        Design_solver.domains = max 1 t.config.domains }
    in
    match Envs.fleet_sites ~pods () with
    | exception Invalid_argument msg -> bad msg
    | env ->
      let apps = Envs.fleet_apps ~pods ~apps_per_pod in
      let obs = request_obs t conn req.Protocol.id ~progress:want_progress in
      (match Fleet.solve ~params:f_params ?shards ~obs env apps likelihood with
       | exception Invalid_argument msg -> bad msg
       | fleet ->
         Mutex.protect t.lock (fun () ->
             Hashtbl.replace t.fleets name
               { f_env = env;
                 f_apps = apps;
                 f_params;
                 f_likelihood = likelihood;
                 incumbent = fleet });
         Ok (fleet_json fleet))
  end

let drift_of params =
  match Json.member "drift" params with
  | None -> Ok []
  | Some v ->
    (match Json.list_opt v with
     | None -> bad "drift must be a list of {app_id, factor} objects"
     | Some items ->
       List.fold_left
         (fun acc item ->
           let* acc = acc in
           let* app_id = lift (Json.get_int "app_id" item) in
           let* factor = lift (Json.get_num ~default:2. "factor" item) in
           Ok ((app_id, factor) :: acc))
         (Ok []) items
       |> Result.map List.rev)

(* Warm-start re-solve of a named fleet held server-side: apply the
   requested drift to the resident apps, re-solve against the resident
   incumbent, and keep the result as the new incumbent. Entry mutations
   happen under the daemon lock; concurrent resolves of the same fleet
   serialize their state updates (last writer wins on the incumbent). *)
let handle_resolve t conn (req : Protocol.request) =
  let params = req.Protocol.params in
  let* name = lift (Json.get_str ~default:"default" "name" params) in
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.fleets name) with
  | None ->
    bad
      (Printf.sprintf "unknown fleet %S (create it with the fleet method)"
         name)
  | Some entry ->
    let* drift = drift_of params in
    let dirty =
      match Json.member "dirty" params with
      | Some (Json.List ids) -> Some (List.filter_map Json.int_opt ids)
      | _ -> None
    in
    let* catalog_revision =
      match Json.member "catalog_revision" params with
      | None -> Ok None
      | Some v ->
        (match Json.int_opt v with
         | Some n -> Ok (Some n)
         | None -> bad "catalog_revision must be an integer")
    in
    let* want_progress = lift (Json.get_bool ~default:false "progress" params) in
    let env =
      match catalog_revision with
      | Some rev -> Env.with_catalog_revision entry.f_env rev
      | None -> entry.f_env
    in
    let apps' =
      if drift = [] then entry.f_apps
      else
        List.map
          (fun a ->
            match List.assoc_opt a.App.id drift with
            | Some factor -> App.drift ~factor a
            | None -> a)
          entry.f_apps
    in
    let obs = request_obs t conn req.Protocol.id ~progress:want_progress in
    let warm =
      Fleet.resolve ~params:entry.f_params ~obs ?dirty
        ~incumbent:entry.incumbent env apps' entry.f_likelihood
    in
    Mutex.protect t.lock (fun () ->
        entry.f_env <- env;
        entry.f_apps <- apps';
        entry.incumbent <- warm);
    Ok (fleet_json warm)

let handle_risk t conn (req : Protocol.request) =
  let params = req.Protocol.params in
  let* env, workloads = env_of params in
  let* likelihood = likelihood_of params in
  let* budget = budget_of t params in
  let* seed = lift (Json.get_int ~default:42 "seed" params) in
  let* years = lift (Json.get_int ~default:10_000 "years" params) in
  let* tilt = lift (Json.get_num ~default:8. "tilt" params) in
  let* strata = lift (Json.get_str ~default:"scope" "strata" params) in
  let* strategy =
    match strata with
    | "scope" -> Ok Tail_sim.By_scope
    | "none" -> Ok Tail_sim.Nominal_only
    | s -> bad (Printf.sprintf "unknown strata %S (scope|none)" s)
  in
  let sla = Option.bind (Json.member "sla" params) Json.num_opt in
  if years < 1 then bad "years must be positive"
  else begin
    let obs = request_obs t conn req.Protocol.id ~progress:false in
    let* prov =
      match Option.bind (Json.member "design" params) Json.str_opt with
      | Some text ->
        (match Design_io.of_string env workloads text with
         | Error msg -> bad ("design: " ^ msg)
         | Ok design ->
           (match Provision.minimum design with
            | Ok prov -> Ok prov
            | Error e ->
              bad
                (Format.asprintf "design is infeasible: %a"
                   Provision.pp_infeasibility e)))
      | None ->
        (match
           Design_solver.solve ~params:budget.Budgets.solver ~obs ~memo:t.memo
             env workloads likelihood
         with
         | Some o ->
           Ok o.Design_solver.best.Candidate.eval.Evaluate.provision
         | None -> Error (Protocol.internal_error, "no feasible design found"))
    in
    let rng = Rng.of_int seed in
    let sim = Year_sim.simulate ~years ~obs ~pool:t.pool rng prov likelihood in
    let base =
      [ ("years", int_json years);
        ("mean_dollars", money_json sim.Year_sim.mean);
        ("p50_dollars", money_json sim.Year_sim.p50);
        ("p90_dollars", money_json sim.Year_sim.p90);
        ("p99_dollars", money_json sim.Year_sim.p99);
        ("worst_dollars", money_json sim.Year_sim.worst);
        ("quiet_fraction", Json.Num sim.Year_sim.quiet_fraction) ]
    in
    match sla with
    | None -> Ok (Json.Obj base)
    | Some availability when availability <= 0. || availability >= 1. ->
      bad "sla must be in (0, 1)"
    | Some availability ->
      (* Split after the naive run, exactly like the CLI: Year_sim
         pre-splits one stream per chunk, so the parent has advanced by
         a fixed pool-independent amount and the tail sample stays
         byte-identical at every width. *)
      (match
         Tail_sim.simulate ~years ~tilt ~strategy ~obs ~pool:t.pool
           (Rng.split rng) prov likelihood
       with
       | exception Invalid_argument msg -> bad msg
       | tail ->
         let cert = Tail_sim.certify tail ~availability in
         Ok
           (Json.Obj
              (base
              @ [ ( "certification",
                    Json.Obj
                      [ ( "verdict",
                          Json.Str
                            (Tail_sim.verdict_to_string
                               cert.Tail_sim.verdict) );
                        ("availability", Json.Num cert.Tail_sim.availability);
                        ( "downtime_budget_h",
                          Json.Num cert.Tail_sim.downtime_budget );
                        ( "deciding_bound",
                          Json.Num cert.Tail_sim.deciding_bound );
                        ("ess", Json.Num cert.Tail_sim.ess);
                        ( "uncovered",
                          Json.List
                            (List.map
                               (fun s -> Json.Str s)
                               cert.Tail_sim.uncovered) );
                        ("reason", Json.Str cert.Tail_sim.reason) ] ) ])))
  end

(* Test and bench aid: occupies a worker for a deterministic duration,
   which is how the admission tests fill the queue and how drain tests
   leave a request in flight. Not part of the documented surface. *)
let handle_sleep (req : Protocol.request) =
  let* seconds = lift (Json.get_num ~default:0.05 "seconds" req.Protocol.params) in
  if seconds < 0. || seconds > 60. then bad "seconds must be in [0, 60]"
  else begin
    Thread.delay seconds;
    Ok (Json.Obj [ ("slept_s", Json.Num seconds) ])
  end

let health_json t =
  let queued, inflight, phase =
    Mutex.protect t.lock (fun () ->
        (Queue.length t.queue, t.inflight, t.phase))
  in
  Json.Obj
    [ ( "status",
        Json.Str
          (match phase with
           | Running -> "ok"
           | Draining -> "draining"
           | Stopped -> "stopped") );
      ("queued", int_json queued);
      ("inflight", int_json inflight);
      ("uptime_s", Json.Num (Metrics.now_s () -. t.started_at));
      ("port", int_json t.bound_port);
      ("cache_entries", int_json (Memo.length t.memo));
      ("cache_capacity", int_json (Memo.capacity t.memo)) ]

let metrics_json t =
  let dump = Metrics.to_json t.registry in
  match Json.of_string dump with Ok v -> v | Error _ -> Json.Str dump

let handle_cache_resize t (req : Protocol.request) =
  let* capacity = lift (Json.get_int "capacity" req.Protocol.params) in
  match Memo.resize t.memo capacity with
  | () ->
    Ok
      (Json.Obj
         [ ("capacity", int_json (Memo.capacity t.memo));
           ("entries", int_json (Memo.length t.memo)) ])
  | exception Invalid_argument msg -> bad msg

(* ---- Dispatch ----------------------------------------------------- *)

let heavy = function
  | "solve" | "resolve" | "fleet" | "risk" | "sleep" -> true
  | _ -> false

let handle_heavy t conn (req : Protocol.request) =
  match req.Protocol.method_ with
  | "solve" -> handle_solve t conn req
  | "resolve" -> handle_resolve t conn req
  | "fleet" -> handle_fleet t conn req
  | "risk" -> handle_risk t conn req
  | "sleep" -> handle_sleep req
  | m -> Error (Protocol.method_not_found, "unknown method " ^ m)

let run_job t (job : job) =
  Metrics.observe
    (Metrics.histogram t.registry "server.queue_wait_s")
    (Metrics.now_s () -. job.enqueued_at);
  let reply =
    try handle_heavy t job.j_conn job.j_req
    with exn -> Error (Protocol.internal_error, Printexc.to_string exn)
  in
  (match reply with
   | Error _ -> Metrics.incr (Metrics.counter t.registry "server.errors")
   | Ok _ -> ());
  send_reply job.j_conn job.j_req.Protocol.id reply;
  observe_request t job.j_req.Protocol.method_ ~since:job.enqueued_at

let set_queue_gauge t =
  Metrics.set
    (Metrics.gauge t.registry "server.queue_depth")
    (float_of_int (Queue.length t.queue))

let rec worker_loop t =
  let job =
    Mutex.protect t.lock (fun () ->
        while Queue.is_empty t.queue && t.phase <> Stopped do
          Condition.wait t.work t.lock
        done;
        if Queue.is_empty t.queue then None
        else begin
          let job = Queue.pop t.queue in
          t.inflight <- t.inflight + 1;
          set_queue_gauge t;
          Some job
        end)
  in
  match job with
  | None -> ()
  | Some job ->
    run_job t job;
    Mutex.protect t.lock (fun () ->
        t.inflight <- t.inflight - 1;
        if t.inflight = 0 && Queue.is_empty t.queue then
          Condition.broadcast t.idle);
    worker_loop t

let admit t conn (req : Protocol.request) =
  let enqueued_at = Metrics.now_s () in
  let verdict =
    Mutex.protect t.lock (fun () ->
        if t.phase <> Running then `Shutting_down
        else if Queue.length t.queue >= t.config.queue_depth then `Overloaded
        else begin
          Queue.push { j_conn = conn; j_req = req; enqueued_at } t.queue;
          set_queue_gauge t;
          Condition.signal t.work;
          `Admitted
        end)
  in
  match verdict with
  | `Admitted -> ()
  | `Shutting_down ->
    send_reply conn req.Protocol.id
      (Error (Protocol.shutting_down, "server is draining"))
  | `Overloaded ->
    Metrics.incr (Metrics.counter t.registry "server.overloaded");
    send_reply conn req.Protocol.id
      (Error
         ( Protocol.overloaded,
           Printf.sprintf "admission queue full (%d queued, %d workers)"
             t.config.queue_depth t.config.concurrency ))

let stop t =
  let changed =
    Mutex.protect t.lock (fun () ->
        if t.phase = Running then begin
          t.phase <- Draining;
          true
        end
        else false)
  in
  if changed then
    try ignore (Unix.write t.wake_w (Bytes.of_string "x") 0 1)
    with Unix.Unix_error _ -> ()

let handle_line t conn line =
  if String.trim line <> "" then begin
    Metrics.incr (Metrics.counter t.registry "server.requests");
    match Protocol.parse_request line with
    | Error (code, message) ->
      Metrics.incr (Metrics.counter t.registry "server.errors");
      send conn (Protocol.error_response ~id:Json.Null ~code message)
    | Ok req ->
      let inline reply =
        let since = Metrics.now_s () in
        send_reply conn req.Protocol.id reply;
        observe_request t req.Protocol.method_ ~since
      in
      (match req.Protocol.method_ with
       | "health" -> inline (Ok (health_json t))
       | "metrics" -> inline (Ok (metrics_json t))
       | "cache_resize" -> inline (handle_cache_resize t req)
       | "shutdown" ->
         (* Reply before draining so the client sees the acknowledgment
            even when its connection is among those shut down. *)
         inline (Ok (Json.Obj [ ("draining", Json.Bool true) ]));
         stop t
       | m when heavy m -> admit t conn req
       | m ->
         send_reply conn req.Protocol.id
           (Error (Protocol.method_not_found, "unknown method " ^ m)))
  end

let close_conn t conn =
  Mutex.protect t.lock (fun () ->
      t.conns <- List.filter (fun c -> c != conn) t.conns);
  Mutex.protect conn.out_lock (fun () ->
      if conn.alive then begin
        conn.alive <- false;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let rec reader_loop t conn =
  match input_line conn.ic with
  | line ->
    handle_line t conn line;
    reader_loop t conn
  | exception (End_of_file | Sys_error _) -> close_conn t conn

let rec accept_loop t =
  let running = Mutex.protect t.lock (fun () -> t.phase = Running) in
  if running then begin
    (match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.) with
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
     | readable, _, _ ->
       if List.mem t.wake_r readable then
         ignore (Unix.read t.wake_r (Bytes.create 8) 0 8);
       if List.mem t.listen_fd readable then begin
         match Unix.accept t.listen_fd with
         | exception Unix.Unix_error _ -> ()
         | fd, _ ->
           let conn =
             { fd;
               ic = Unix.in_channel_of_descr fd;
               oc = Unix.out_channel_of_descr fd;
               out_lock = Mutex.create ();
               alive = true }
           in
           Metrics.incr (Metrics.counter t.registry "server.connections");
           Mutex.protect t.lock (fun () -> t.conns <- conn :: t.conns);
           let th = Thread.create (fun () -> reader_loop t conn) () in
           Mutex.protect t.lock (fun () -> t.readers <- th :: t.readers)
       end);
    accept_loop t
  end

let run t =
  (* A client hanging up mid-response must surface as a failed write,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let workers =
    List.init t.config.concurrency (fun _ ->
        Thread.create (fun () -> worker_loop t) ())
  in
  accept_loop t;
  (* Draining: refuse new connections immediately... *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (* ...finish everything admitted (readers keep answering health /
     metrics and rejecting heavy requests with [shutting_down])... *)
  Mutex.protect t.lock (fun () ->
      while not (Queue.is_empty t.queue && t.inflight = 0) do
        Condition.wait t.idle t.lock
      done;
      t.phase <- Stopped;
      Condition.broadcast t.work);
  List.iter Thread.join workers;
  (* ...then wake every blocked reader by shutting its socket down
     (close alone would not interrupt a blocked read, and the fd number
     must stay reserved until the reader is done with it). *)
  let conns, readers =
    Mutex.protect t.lock (fun () -> (t.conns, t.readers))
  in
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
      with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join readers;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ())
