(* Minimal JSON: the wire format of the dstool server.

   The repo deliberately has no external dependencies beyond the OCaml
   toolchain, so the newline-delimited JSON-RPC endpoint carries its own
   parser and printer. The subset is full JSON (RFC 8259): all escapes
   including \uXXXX with surrogate pairs (decoded to UTF-8 bytes),
   numbers as OCaml floats, nested arrays/objects. Object member order
   is preserved; duplicate keys keep every occurrence ([member] returns
   the first). The printer emits integral doubles without a fractional
   part so ids and counters survive a round trip textually. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- Parsing ----------------------------------------------------- *)

exception Fail of string

type cursor = { src : string; mutable pos : int }

let error c fmt =
  Printf.ksprintf
    (fun msg -> raise (Fail (Printf.sprintf "at byte %d: %s" c.pos msg)))
    fmt

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let next c =
  match peek c with
  | Some ch ->
    c.pos <- c.pos + 1;
    ch
  | None -> error c "unexpected end of input"

let expect c ch =
  let got = next c in
  if got <> ch then error c "expected '%c', got '%c'" ch got

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> c.pos <- c.pos + 1
    | _ -> continue := false
  done

let expect_word c word value =
  String.iter (fun ch -> expect c ch) word;
  value

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> error c "invalid hex digit '%c'" ch

let hex4 c =
  let d3 = hex_digit c (next c) in
  let d2 = hex_digit c (next c) in
  let d1 = hex_digit c (next c) in
  let d0 = hex_digit c (next c) in
  (d3 lsl 12) lor (d2 lsl 8) lor (d1 lsl 4) lor d0

(* UTF-8 encode one code point into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  (* Opening quote already consumed. *)
  let buf = Buffer.create 16 in
  let rec go () =
    match next c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (match next c with
       | '"' -> Buffer.add_char buf '"'; go ()
       | '\\' -> Buffer.add_char buf '\\'; go ()
       | '/' -> Buffer.add_char buf '/'; go ()
       | 'b' -> Buffer.add_char buf '\b'; go ()
       | 'f' -> Buffer.add_char buf '\012'; go ()
       | 'n' -> Buffer.add_char buf '\n'; go ()
       | 'r' -> Buffer.add_char buf '\r'; go ()
       | 't' -> Buffer.add_char buf '\t'; go ()
       | 'u' ->
         let cp = hex4 c in
         let cp =
           (* A high surrogate must pair with a following \uDC00-\uDFFF
              low surrogate; decode the pair to one code point. *)
           if cp >= 0xD800 && cp <= 0xDBFF then begin
             expect c '\\';
             expect c 'u';
             let lo = hex4 c in
             if lo < 0xDC00 || lo > 0xDFFF then
               error c "unpaired surrogate \\u%04X" cp;
             0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
           end
           else if cp >= 0xDC00 && cp <= 0xDFFF then
             error c "unpaired low surrogate \\u%04X" cp
           else cp
         in
         add_utf8 buf cp;
         go ()
       | ch -> error c "invalid escape '\\%c'" ch)
    | '\000' .. '\031' -> error c "unescaped control character in string"
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let consume_while pred =
    let continue = ref true in
    while !continue do
      match peek c with
      | Some ch when pred ch -> c.pos <- c.pos + 1
      | _ -> continue := false
    done
  in
  if peek c = Some '-' then c.pos <- c.pos + 1;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek c = Some '.' then begin
    c.pos <- c.pos + 1;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek c with
   | Some ('e' | 'E') ->
     c.pos <- c.pos + 1;
     (match peek c with
      | Some ('+' | '-') -> c.pos <- c.pos + 1
      | _ -> ());
     consume_while (function '0' .. '9' -> true | _ -> false)
   | _ -> ());
  let text = String.sub c.src start (c.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error c "invalid number %S" text

let rec parse_value c =
  skip_ws c;
  match next c with
  | 'n' -> expect_word c "ull" Null
  | 't' -> expect_word c "rue" (Bool true)
  | 'f' -> expect_word c "alse" (Bool false)
  | '"' -> Str (parse_string c)
  | '[' ->
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let continue = ref true in
      while !continue do
        items := parse_value c :: !items;
        skip_ws c;
        match next c with
        | ',' -> ()
        | ']' -> continue := false
        | ch -> error c "expected ',' or ']' in array, got '%c'" ch
      done;
      List (List.rev !items)
    end
  | '{' ->
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let members = ref [] in
      let continue = ref true in
      while !continue do
        skip_ws c;
        expect c '"';
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let value = parse_value c in
        members := (key, value) :: !members;
        skip_ws c;
        match next c with
        | ',' -> ()
        | '}' -> continue := false
        | ch -> error c "expected ',' or '}' in object, got '%c'" ch
      done;
      Obj (List.rev !members)
    end
  | ('-' | '0' .. '9') ->
    c.pos <- c.pos - 1;
    parse_number c
  | ch -> error c "unexpected character '%c'" ch

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "at byte %d: trailing garbage" c.pos)
    else Ok v
  | exception Fail msg -> Error msg

(* ---- Printing ---------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | '\000' .. '\031' ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
       | ch -> Buffer.add_char buf ch)
    s;
  Buffer.add_char buf '"'

let add_number buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else
    (* JSON has no inf/nan; null is the conventional spelling. *)
    Buffer.add_string buf "null"

let rec add_value buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Num f -> add_number buf f
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_char buf ',';
         add_value buf item)
      items;
    Buffer.add_char buf ']'
  | Obj members ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
         if i > 0 then Buffer.add_char buf ',';
         add_escaped buf key;
         Buffer.add_char buf ':';
         add_value buf value)
      members;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add_value buf v;
  Buffer.contents buf

(* ---- Accessors --------------------------------------------------- *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let str_opt = function Str s -> Some s | _ -> None
let bool_opt = function Bool b -> Some b | _ -> None
let num_opt = function Num f -> Some f | _ -> None

let int_opt = function
  | Num f when Float.is_integer f && Float.abs f < 1e15 ->
    Some (int_of_float f)
  | _ -> None

let list_opt = function List items -> Some items | _ -> None

let get_str ?default key v =
  match Option.map str_opt (member key v) with
  | Some (Some s) -> Ok s
  | Some None -> Error (Printf.sprintf "%S must be a string" key)
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing required member %S" key))

let get_int ?default key v =
  match Option.map int_opt (member key v) with
  | Some (Some n) -> Ok n
  | Some None -> Error (Printf.sprintf "%S must be an integer" key)
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing required member %S" key))

let get_num ?default key v =
  match Option.map num_opt (member key v) with
  | Some (Some f) -> Ok f
  | Some None -> Error (Printf.sprintf "%S must be a number" key)
  | None ->
    (match default with
     | Some d -> Ok d
     | None -> Error (Printf.sprintf "missing required member %S" key))

let get_bool ~default key v =
  match Option.map bool_opt (member key v) with
  | Some (Some b) -> Ok b
  | Some None -> Error (Printf.sprintf "%S must be a boolean" key)
  | None -> Ok default
