(** Newline-delimited JSON-RPC 2.0 framing for the dstool server.

    One compact JSON value per line in both directions. Requests carry
    an [id] (number or string); the server answers every identified
    request with exactly one response bearing the same id. Server
    notifications (id-less calls — streaming progress events) embed the
    subscribing request's id in their params, so a client with several
    in-flight calls on one connection can route them. See DESIGN.md
    §16 for the full protocol specification. *)

(** {1 Error codes} *)

val parse_error : int  (** -32700: unparseable request line. *)

val invalid_request : int  (** -32600: not a JSON-RPC request. *)

val method_not_found : int  (** -32601 *)

val invalid_params : int  (** -32602 *)

val internal_error : int  (** -32603: handler raised. *)

val overloaded : int
(** -32000: the bounded admission queue is full; retry later. *)

val shutting_down : int
(** -32001: the server is draining and accepts no new work. *)

(** {1 Server side} *)

type request = {
  id : Json.t;  (** [Null] marks a notification (no response owed). *)
  method_ : string;
  params : Json.t;  (** [Obj []] when absent. *)
}

val parse_request : string -> (request, int * string) result
(** Parse one request line. [Error (code, message)] is ready to feed
    {!error_response} (with a [Null] id, since none was recovered). *)

val response : id:Json.t -> Json.t -> string
val error_response : id:Json.t -> code:int -> ?data:Json.t -> string -> string
val notification : method_:string -> params:Json.t -> string

(** {1 Client side} *)

val request : id:Json.t -> method_:string -> params:Json.t -> string

type rpc_error = { code : int; message : string; data : Json.t option }

type incoming =
  | Reply of { id : Json.t; result : (Json.t, rpc_error) result }
  | Note of { method_ : string; params : Json.t }

val parse_incoming : string -> (incoming, string) result
val pp_rpc_error : Format.formatter -> rpc_error -> unit
