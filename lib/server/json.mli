(** Minimal JSON values, parser and printer — the wire format of the
    dstool server.

    Self-contained (the repo carries no external JSON dependency).
    Covers RFC 8259: every escape including [\uXXXX] with surrogate
    pairs (decoded to UTF-8), numbers as OCaml floats, arbitrarily
    nested arrays and objects. Object member order is preserved and
    duplicate keys are kept ({!member} returns the first). The printer
    emits integral doubles without a fractional part, so request ids and
    counters survive a textual round trip; non-finite numbers print as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse one complete JSON value; anything but trailing whitespace
    after it is an error. Errors carry the byte offset. *)

val to_string : t -> string
(** Compact (single-line) rendering — safe to frame newline-delimited,
    since the printer never emits a literal newline. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** First binding of the key in an object; [None] on non-objects. *)

val str_opt : t -> string option
val bool_opt : t -> bool option
val num_opt : t -> float option

val int_opt : t -> int option
(** [Some] only for integral doubles below 10{^15} in magnitude. *)

val list_opt : t -> t list option

(** {1 Checked object lookups} — shared by the RPC method handlers;
    the [Error] strings are user-facing "invalid params" messages. *)

val get_str : ?default:string -> string -> t -> (string, string) result
val get_int : ?default:int -> string -> t -> (int, string) result
val get_num : ?default:float -> string -> t -> (float, string) result
val get_bool : default:bool -> string -> t -> (bool, string) result
