(* Newline-delimited JSON-RPC 2.0 framing.

   One JSON value per line in both directions. Requests carry an [id]
   (number or string); the server answers every identified request with
   exactly one response carrying the same id, possibly preceded by
   notifications (id-less method calls from the server — progress
   events) that embed the subscribing request's id in their params so a
   client multiplexing several in-flight calls can route them. *)

(* Standard JSON-RPC error codes ... *)
let parse_error = -32700
let invalid_request = -32600
let method_not_found = -32601
let invalid_params = -32602
let internal_error = -32603

(* ... plus the server's own range: admission control and lifecycle. *)
let overloaded = -32000
let shutting_down = -32001

type request = {
  id : Json.t;  (* Null for notifications *)
  method_ : string;
  params : Json.t;
}

let parse_request line =
  match Json.of_string line with
  | Error msg -> Error (parse_error, "parse error: " ^ msg)
  | Ok json ->
    let id = Option.value ~default:Json.Null (Json.member "id" json) in
    (match Json.member "method" json with
     | Some (Json.Str method_) ->
       let params =
         Option.value ~default:(Json.Obj []) (Json.member "params" json)
       in
       (match id with
        | Json.Null | Json.Num _ | Json.Str _ -> Ok { id; method_; params }
        | _ -> Error (invalid_request, "id must be a number or a string"))
     | Some _ -> Error (invalid_request, "method must be a string")
     | None -> Error (invalid_request, "missing method"))

let request ~id ~method_ ~params =
  Json.to_string
    (Json.Obj
       [ ("jsonrpc", Json.Str "2.0"); ("id", id);
         ("method", Json.Str method_); ("params", params) ])

let response ~id result =
  Json.to_string
    (Json.Obj [ ("jsonrpc", Json.Str "2.0"); ("id", id); ("result", result) ])

let error_response ~id ~code ?data message =
  let err =
    [ ("code", Json.Num (float_of_int code)); ("message", Json.Str message) ]
  in
  let err =
    match data with Some d -> err @ [ ("data", d) ] | None -> err
  in
  Json.to_string
    (Json.Obj
       [ ("jsonrpc", Json.Str "2.0"); ("id", id); ("error", Json.Obj err) ])

let notification ~method_ ~params =
  Json.to_string
    (Json.Obj
       [ ("jsonrpc", Json.Str "2.0"); ("method", Json.Str method_);
         ("params", params) ])

(* ---- Client side ------------------------------------------------- *)

type rpc_error = { code : int; message : string; data : Json.t option }

type incoming =
  | Reply of { id : Json.t; result : (Json.t, rpc_error) result }
  | Note of { method_ : string; params : Json.t }

let parse_incoming line =
  match Json.of_string line with
  | Error msg -> Error ("malformed server line: " ^ msg)
  | Ok json ->
    (match Json.member "method" json with
     | Some (Json.Str method_) ->
       let params =
         Option.value ~default:(Json.Obj []) (Json.member "params" json)
       in
       Ok (Note { method_; params })
     | _ ->
       let id = Option.value ~default:Json.Null (Json.member "id" json) in
       (match Json.member "error" json with
        | Some err ->
          let code =
            Option.value ~default:0
              (Option.bind (Json.member "code" err) Json.int_opt)
          in
          let message =
            Option.value ~default:"unknown error"
              (Option.bind (Json.member "message" err) Json.str_opt)
          in
          Ok
            (Reply
               { id;
                 result = Error { code; message; data = Json.member "data" err }
               })
        | None ->
          (match Json.member "result" json with
           | Some result -> Ok (Reply { id; result = Ok result })
           | None -> Error "server line has neither result nor error")))

let pp_rpc_error ppf e =
  Format.fprintf ppf "server error %d: %s%s" e.code e.message
    (match e.data with
     | Some d -> " (" ^ Json.to_string d ^ ")"
     | None -> "")
