(* Minimal blocking JSON-RPC client for the dstool server.

   One request in flight at a time per connection: [call] writes the
   request line, then reads server lines until the response carrying
   the matching id arrives, handing any interleaved notifications
   (progress events) to [on_note] along the way. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
}

let connect ?(host = "127.0.0.1") ~port () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    next_id = 1 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let call ?on_note t ~method_ params =
  let id = Json.Num (float_of_int t.next_id) in
  t.next_id <- t.next_id + 1;
  match
    output_string t.oc (Protocol.request ~id ~method_ ~params);
    output_char t.oc '\n';
    flush t.oc
  with
  | exception Sys_error msg -> Error ("write failed: " ^ msg)
  | () ->
    (* Ids are ours and sequential, so the first reply line with a
       matching id is the answer; replies to other ids cannot occur on
       a connection this client owns. *)
    let rec await () =
      match input_line t.ic with
      | exception End_of_file -> Error "server closed the connection"
      | exception Sys_error msg -> Error ("read failed: " ^ msg)
      | line ->
        (match Protocol.parse_incoming line with
         | Error msg -> Error msg
         | Ok (Protocol.Note { method_; params }) ->
           (match on_note with
            | Some f -> f ~method_ params
            | None -> ());
           await ()
         | Ok (Protocol.Reply { id = rid; result }) ->
           if rid = id then
             match result with
             | Ok v -> Ok v
             | Error e -> Error (Format.asprintf "%a" Protocol.pp_rpc_error e)
           else await ())
    in
    await ()
