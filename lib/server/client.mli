(** Blocking JSON-RPC client for the dstool server (DESIGN.md §16).

    One request in flight at a time per connection. Used by
    [dstool client], the serve-smoke CI job and the bench harness's
    closed-loop clients; tests drive the daemon through it too, so the
    client exercises the same framing the server emits. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** TCP connect (default host [127.0.0.1]).
    @raise Unix.Unix_error when nothing listens there. *)

val close : t -> unit

val call :
  ?on_note:(method_:string -> Json.t -> unit) ->
  t ->
  method_:string ->
  Json.t ->
  (Json.t, string) result
(** Send one request and block until its response arrives.
    Notifications interleaved before the response (progress events for
    this request) are handed to [on_note] in arrival order; without the
    callback they are discarded. [Error] carries the server's RPC error
    rendered as text, or the transport failure. *)
