(** The design tool as a long-running service.

    A daemon owns the expensive state a one-shot [dstool] run rebuilds
    from scratch every time — a resident auto-width {!Ds_exec.Exec}
    pool, a shared {!Ds_solver.Memo} configuration cache, a
    {!Ds_obs.Metrics} registry and the incumbent designs of named
    fleets — and serves design / risk / fleet queries over
    newline-delimited JSON-RPC 2.0 on TCP (DESIGN.md §16).

    {b Threading.} One reader systhread per connection, a bounded
    admission queue, and [concurrency] worker threads. Cheap methods
    ([health], [metrics], [cache_resize], [shutdown]) are answered
    inline by the reader; heavy ones ([solve], [resolve], [fleet],
    [risk], [sleep]) are enqueued. A full queue rejects with the
    [overloaded] error instead of blocking the reader.

    {b Determinism.} Requests carry their own seeds and run the same
    deterministic machinery the CLI does; the shared memo cache is
    result-transparent and the pool is pure scheduling, so a given
    request returns the byte-identical design whether served alone,
    under concurrent load, or by [dstool solve] directly. *)

type config = {
  host : string;  (** Bind address (default ["127.0.0.1"]). *)
  port : int;  (** TCP port; [0] picks an ephemeral one (tests). *)
  concurrency : int;  (** Worker threads draining the queue. *)
  queue_depth : int;
      (** Admission bound: heavy requests beyond this many waiting are
          rejected with the [overloaded] error. *)
  budget_evals : int option;
      (** Default portfolio evaluation cap applied to [solve] requests
          that ask for restarts but no [max_evaluations] of their own. *)
  cache_capacity : int;  (** Resident configuration-cache entries. *)
  domains : int;
      (** Width of the resident pool (portfolio restarts, risk
          simulation chunks, fleet shards). Pure scheduling. *)
}

val default_config : config
(** [{ host = "127.0.0.1"; port = 7411; concurrency = 2; queue_depth =
    16; budget_evals = None; cache_capacity = 4096; domains = 1 }]. *)

type t

val create : ?registry:Ds_obs.Metrics.registry -> config -> t
(** Bind and listen (the port is fixed here — {!port} is valid before
    {!run}). [registry] shares an existing metrics registry (the bench
    harness reads server instruments out of its own); by default the
    daemon creates one. @raise Unix.Unix_error when the address is in
    use or cannot be bound. *)

val run : t -> unit
(** Serve until a [shutdown] request (or {!stop}) arrives, then drain:
    stop accepting, reject newly read requests with [shutting_down],
    finish everything already admitted, and return. Spawns its own
    worker and reader threads; blocks the calling thread. *)

val stop : t -> unit
(** Initiate the same graceful drain a [shutdown] request does.
    Thread-safe; returns immediately ({!run} returns once drained). *)

val port : t -> int
(** The bound port — the ephemeral one when the config said [0]. *)

val registry : t -> Ds_obs.Metrics.registry
(** The daemon's metrics registry ([server.*] instruments plus
    everything the solver stack records). *)
