(** The snapshot / tape backup / offsite vault chain (Table 2).

    Every backup-bearing technique in the paper maintains the same
    three-level chain under the primary (or mirror): array-internal
    snapshots every [snapshot_win] (12 h), full backups to a tape library
    every [tape_win] (7 days) propagated at tape bandwidth, and cartridges
    cycled to an offsite vault every [vault_win] (28 days) with a
    [vault_prop] (1 day) courier delay.

    Snapshots are space-efficient copy-on-write copies internal to the
    primary disk array: cheap, fast to restore, but they die with the
    array. Tape backups survive array failures; the vault survives site
    disasters. *)

module Time = Ds_units.Time
module Size = Ds_units.Size
module Rate = Ds_units.Rate

type t = {
  snapshot_win : Time.t;
  snapshot_retained : int;  (** How many snapshots are kept on the array. *)
  tape_win : Time.t;  (** Interval between successive backups to tape. *)
  tape_fulls_every : int;
      (** Backup schedule (Section 1: "whether the backups will be full
          or incremental"): every [tape_fulls_every]-th backup is a full,
          the rest are incrementals capturing the updates unique to the
          interval. [1] = every backup is a full (Table 2's default). *)
  tape_retained : int;  (** Backup cycles kept in the library. *)
  backup_window : Time.t;  (** A full backup must finish within this window
                               ("backups complete overnight"). *)
  vault_win : Time.t;
  vault_prop : Time.t;
}

val default : t
(** Table 2 values: 12 h snapshots (2 retained), 7-day fulls (2 retained,
    no incrementals), 12 h backup window, 28-day vault cycle, 1 day in
    transit. *)

val with_snapshot_win : t -> Time.t -> t
val with_tape_win : t -> Time.t -> t
val with_fulls_every : t -> int -> t
(** @raise Invalid_argument when the cycle length is not positive. *)

val incremental_size : t -> Ds_workload.App.t -> Size.t
(** Data an incremental captures: the app's unique updates over one
    backup interval, never more than the dataset. *)

val snapshot_space : t -> Ds_workload.App.t -> Size.t
(** Extra capacity the retained snapshots occupy on the primary array:
    copy-on-write space, bounded by the dataset size per snapshot. *)

val tape_space : t -> Ds_workload.App.t -> Size.t
(** Library capacity for the retained backup cycles: each cycle is one
    full plus its incrementals. *)

val tape_bandwidth_demand : t -> Ds_workload.App.t -> Rate.t
(** Drive bandwidth needed so a full backup completes within
    [backup_window]. *)

val restore_volume : t -> Ds_workload.App.t -> Size.t
(** Data read back when restoring from tape: the full, plus the expected
    number of incrementals to replay (half a cycle). *)

val snapshot_staleness : t -> Time.t
(** Worst-case age of the freshest snapshot: one snapshot window. *)

val tape_staleness : t -> propagation:Time.t -> Time.t
(** Worst-case age of the freshest tape full: snapshot window + tape window
    + time to write the backup ([propagation]). *)

val vault_staleness : t -> propagation:Time.t -> Time.t
(** Worst-case age of the freshest vaulted copy: tape staleness + vault
    cycle + courier time. *)

val equal : t -> t -> bool

val add_fingerprint : Buffer.t -> t -> unit
val fingerprint : t -> string
(** Canonical encoding of every chain parameter (exact [%h] float
    encodings): two chains have equal fingerprints iff {!equal} holds.
    The configuration solver mutates backup windows while a technique
    keeps its id, so the memo-cache key must hash the chain itself. *)

val pp : Format.formatter -> t -> unit
