module Time = Ds_units.Time
module Size = Ds_units.Size
module Rate = Ds_units.Rate
module App = Ds_workload.App

type t = {
  snapshot_win : Time.t;
  snapshot_retained : int;
  tape_win : Time.t;
  tape_fulls_every : int;
  tape_retained : int;
  backup_window : Time.t;
  vault_win : Time.t;
  vault_prop : Time.t;
}

let default =
  { snapshot_win = Time.hours 12.;
    snapshot_retained = 2;
    tape_win = Time.days 7.;
    tape_fulls_every = 1;
    tape_retained = 2;
    backup_window = Time.hours 12.;
    vault_win = Time.days 28.;
    vault_prop = Time.days 1. }

let with_snapshot_win t w =
  if Time.is_zero w then invalid_arg "Backup.with_snapshot_win: zero window";
  { t with snapshot_win = w }

let with_tape_win t w =
  if Time.is_zero w then invalid_arg "Backup.with_tape_win: zero window";
  { t with tape_win = w }

let with_fulls_every t n =
  if n < 1 then invalid_arg "Backup.with_fulls_every: cycle must be positive";
  { t with tape_fulls_every = n }

let incremental_size t (app : App.t) =
  Size.min app.App.data_size
    (Rate.volume_in app.App.unique_update_rate t.tape_win)

let snapshot_space t (app : App.t) =
  (* Copy-on-write: each retained snapshot holds the updates unique to its
     window, never more than the full dataset. *)
  let per_snapshot =
    Size.min app.data_size (Rate.volume_in app.unique_update_rate t.snapshot_win)
  in
  Size.scale (float_of_int t.snapshot_retained) per_snapshot

let tape_space t (app : App.t) =
  let incrementals =
    Size.scale (float_of_int (t.tape_fulls_every - 1)) (incremental_size t app)
  in
  Size.scale (float_of_int t.tape_retained) (Size.add app.data_size incrementals)

let restore_volume t (app : App.t) =
  let expected_incrementals = float_of_int (t.tape_fulls_every - 1) /. 2. in
  Size.add app.data_size
    (Size.scale expected_incrementals (incremental_size t app))

let tape_bandwidth_demand t (app : App.t) =
  let bytes = Size.to_bytes app.data_size in
  Rate.bytes_per_sec (bytes /. Time.to_seconds t.backup_window)

let snapshot_staleness t = t.snapshot_win

let tape_staleness t ~propagation =
  Time.add t.snapshot_win (Time.add t.tape_win propagation)

let vault_staleness t ~propagation =
  Time.add (tape_staleness t ~propagation) (Time.add t.vault_win t.vault_prop)

let equal a b =
  Time.equal a.snapshot_win b.snapshot_win
  && a.snapshot_retained = b.snapshot_retained
  && Time.equal a.tape_win b.tape_win
  && a.tape_fulls_every = b.tape_fulls_every
  && a.tape_retained = b.tape_retained
  && Time.equal a.backup_window b.backup_window
  && Time.equal a.vault_win b.vault_win
  && Time.equal a.vault_prop b.vault_prop

let add_fingerprint buf t =
  Buffer.add_string buf "b{";
  Time.add_fp buf t.snapshot_win;
  Buffer.add_char buf '*';
  Buffer.add_string buf (string_of_int t.snapshot_retained);
  Buffer.add_char buf ';';
  Time.add_fp buf t.tape_win;
  Buffer.add_char buf '/';
  Buffer.add_string buf (string_of_int t.tape_fulls_every);
  Buffer.add_char buf '*';
  Buffer.add_string buf (string_of_int t.tape_retained);
  Buffer.add_char buf ';';
  Time.add_fp buf t.backup_window;
  Buffer.add_char buf ';';
  Time.add_fp buf t.vault_win;
  Buffer.add_char buf '+';
  Time.add_fp buf t.vault_prop;
  Buffer.add_char buf '}'

let fingerprint t =
  let buf = Buffer.create 64 in
  add_fingerprint buf t;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "backup{snap %a x%d; tape %a (full/%d) x%d; vault %a +%a}"
    Time.pp t.snapshot_win t.snapshot_retained
    Time.pp t.tape_win t.tape_fulls_every t.tape_retained
    Time.pp t.vault_win Time.pp t.vault_prop
