module Time = Ds_units.Time
module Rate = Ds_units.Rate

type sync = Synchronous | Asynchronous

type t = { sync : sync; acc_win : Time.t }

let synchronous = { sync = Synchronous; acc_win = Time.minutes 0.5 }

let asynchronous = { sync = Asynchronous; acc_win = Time.minutes 10. }

let network_demand t (app : Ds_workload.App.t) =
  match t.sync with
  | Synchronous -> app.peak_update_rate
  | Asynchronous -> app.avg_update_rate

let staleness t = t.acc_win

let to_string t =
  match t.sync with Synchronous -> "sync" | Asynchronous -> "async"

let equal a b = a.sync = b.sync && Time.equal a.acc_win b.acc_win

(* Exact bit-level window encoding, so distinct windows never collide. *)
let add_fingerprint buf t =
  Buffer.add_string buf "m{";
  Buffer.add_string buf (to_string t);
  Buffer.add_char buf ';';
  Time.add_fp buf t.acc_win;
  Buffer.add_char buf '}'

let fingerprint t =
  let buf = Buffer.create 24 in
  add_fingerprint buf t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
