(** Data protection techniques: the rows of Table 2.

    A technique combines an optional remote mirror (with a recovery mode —
    failover or reconstruction) and an optional snapshot/tape/vault backup
    chain. The paper's catalog has nine techniques: {sync, async} mirror x
    {failover, reconstruct} x {with, without} backup, plus tape backup
    alone.

    Techniques are classed gold / silver / bronze by the protection they
    offer (Section 3.1.3): mirroring with failover is gold, mirroring with
    reconstruction is silver, backup alone is bronze. *)

module Category = Ds_workload.Category

type t = {
  id : int;
  name : string;
  mirror : Mirror.t option;
  recovery : Recovery_mode.t;
  (** Meaningful only when [mirror] is present; backup-only techniques
      always reconstruct. *)
  backup : Backup.t option;
}

val v :
  id:int -> ?mirror:Mirror.t -> recovery:Recovery_mode.t ->
  ?backup:Backup.t -> unit -> t
(** Builds a technique and derives its [name].
    @raise Invalid_argument for the empty technique (no mirror, no backup)
    or a failover technique without a mirror. *)

val category : t -> Category.t
(** Gold for mirror+failover, Silver for mirror+reconstruct, Bronze for
    backup alone. *)

val has_mirror : t -> bool
val has_backup : t -> bool
val uses_network : t -> bool
(** True iff the technique needs an inter-site link (i.e. has a mirror). *)

val uses_tape : t -> bool
(** True iff the technique needs a tape library (i.e. has a backup chain). *)

val needs_standby_compute : t -> bool
(** True iff recovery is failover (standby compute at the mirror site). *)

val with_backup_chain : t -> Backup.t -> t
(** Replace the backup parameters (configuration-solver window search);
    identity if the technique has no backup. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** By id. *)

val equal_config : t -> t -> bool
(** Id {e and} configuration equality: same id, mirror parameters,
    recovery mode and backup chain. Distinguishes same-id techniques
    whose backup windows were retuned by the configuration solver. *)

val add_fingerprint : Buffer.t -> t -> unit
val fingerprint : t -> string
(** Canonical encoding (id, mirror, recovery mode, backup chain): equal
    fingerprints iff {!equal_config} holds. *)

val pp : Format.formatter -> t -> unit
val describe : t -> string
(** Paper-style name, e.g. "Async mirror (F) with backup". *)
