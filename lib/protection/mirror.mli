(** Inter-array remote mirroring (level 1 of the protection hierarchy).

    A mirror keeps a remote copy nearly current. Synchronous mirroring
    applies every update before acknowledging (worst-case staleness one
    batch window, 0.5 min in Table 2; network sized for the *peak* update
    rate). Asynchronous mirroring batches updates (10 min accumulation;
    network sized for the *average* update rate). Propagation is bound by
    the provisioned network bandwidth ("n/w" in Table 2). *)

module Time = Ds_units.Time
module Rate = Ds_units.Rate

type sync = Synchronous | Asynchronous

type t = { sync : sync; acc_win : Time.t }

val synchronous : t
(** 0.5 min accumulation window (Table 2). *)

val asynchronous : t
(** 10 min accumulation window (Table 2). *)

val network_demand : t -> Ds_workload.App.t -> Rate.t
(** Link bandwidth the mirror consumes in normal operation: the app's peak
    update rate when synchronous, average update rate when asynchronous. *)

val staleness : t -> Time.t
(** Upper bound on how out-of-date the mirror copy is: its accumulation
    window (propagation is subsumed by the bandwidth sizing above). *)

val to_string : t -> string
val equal : t -> t -> bool

val add_fingerprint : Buffer.t -> t -> unit
(** Append {!fingerprint}'s encoding to [buf] without intermediate
    strings (the design fingerprint is rebuilt on every memo probe). *)

val fingerprint : t -> string
(** Canonical encoding of the mirror parameters: two mirrors have equal
    fingerprints iff {!equal} holds. Feeds the design fingerprint used to
    key the configuration-solver memo cache. *)

val pp : Format.formatter -> t -> unit
