module Category = Ds_workload.Category

type t = {
  id : int;
  name : string;
  mirror : Mirror.t option;
  recovery : Recovery_mode.t;
  backup : Backup.t option;
}

let describe_parts mirror recovery backup =
  match mirror, backup with
  | None, None -> invalid_arg "Technique.v: technique protects nothing"
  | None, Some _ -> "Tape backup"
  | Some m, b ->
    let kind = match m.Mirror.sync with
      | Mirror.Synchronous -> "Sync mirror"
      | Mirror.Asynchronous -> "Async mirror"
    in
    let suffix = match b with Some _ -> " with backup" | None -> "" in
    Printf.sprintf "%s (%s)%s" kind (Recovery_mode.short recovery) suffix

let v ~id ?mirror ~recovery ?backup () =
  (match mirror, recovery with
   | None, Recovery_mode.Failover ->
     invalid_arg "Technique.v: failover requires a mirror"
   | _ -> ());
  { id; name = describe_parts mirror recovery backup; mirror; recovery; backup }

let category t =
  match t.mirror, t.recovery with
  | Some _, Recovery_mode.Failover -> Category.Gold
  | Some _, Recovery_mode.Reconstruct -> Category.Silver
  | None, _ -> Category.Bronze

let has_mirror t = Option.is_some t.mirror
let has_backup t = Option.is_some t.backup
let uses_network = has_mirror
let uses_tape = has_backup

let needs_standby_compute t =
  has_mirror t && Recovery_mode.equal t.recovery Recovery_mode.Failover

let with_backup_chain t chain =
  match t.backup with None -> t | Some _ -> { t with backup = Some chain }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

(* Same id is not enough once the window search has run: the search swaps
   backup chains inside a technique without changing its id. *)
let equal_config a b =
  a.id = b.id
  && Option.equal Mirror.equal a.mirror b.mirror
  && Recovery_mode.equal a.recovery b.recovery
  && Option.equal Backup.equal a.backup b.backup

let add_fingerprint buf t =
  Buffer.add_char buf 't';
  Buffer.add_string buf (string_of_int t.id);
  Buffer.add_char buf '{';
  (match t.mirror with
   | Some m -> Mirror.add_fingerprint buf m
   | None -> Buffer.add_char buf '-');
  Buffer.add_char buf ';';
  Buffer.add_string buf (Recovery_mode.short t.recovery);
  Buffer.add_char buf ';';
  (match t.backup with
   | Some b -> Backup.add_fingerprint buf b
   | None -> Buffer.add_char buf '-');
  Buffer.add_char buf '}'

let fingerprint t =
  let buf = Buffer.create 96 in
  add_fingerprint buf t;
  Buffer.contents buf

let describe t = t.name
let pp ppf t = Format.pp_print_string ppf t.name
