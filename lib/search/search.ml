module Money = Ds_units.Money
module Env = Ds_resources.Env
module App = Ds_workload.App
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng
module Obs = Ds_obs.Obs
module Exec = Ds_exec.Exec
module Candidate = Ds_solver.Candidate
module Design_solver = Ds_solver.Design_solver

type report = {
  index : int;
  cost : float option;
  evaluations : int;
  raced_off : bool;
  improved : bool;
}

type result = {
  best : Candidate.t;
  winner : int;
  outcome : Design_solver.outcome;
  restarts_run : int;
  total_evaluations : int;
  raced_off : int;
  reports : report list;
}

let restart_streams ~seed ~restarts =
  if restarts < 1 then
    invalid_arg "Search.restart_streams: restarts must be >= 1";
  let master = Rng.of_int seed in
  (* Stream 0 replays the single-solve stream (a copy taken before any
     split), so the portfolio's restart 0 is exactly the fixed-seed
     [Design_solver.solve] run and the winner can never cost more than
     it. Streams 1.. are split off in index order. *)
  let streams = Array.make restarts (Rng.copy master) in
  for i = 1 to restarts - 1 do
    streams.(i) <- Rng.split master
  done;
  streams

let cost_dollars c = Money.to_dollars (Candidate.cost c)

(* Racing state shared with worker domains. Publications happen at
   restart completion on whichever domain ran it; commits (and all obs
   emission) happen on the calling domain in restart-index order. *)
type shared = {
  incumbent_cell : (float * int) option Atomic.t;
      (* Best (cost, index) any completed restart has published;
         minimum by cost, then lowest index. *)
  max_gain : float Atomic.t;
      (* Largest greedy-to-final improvement observed, in dollars. *)
}

let publish shared idx (o : Design_solver.outcome) =
  let cost = cost_dollars o.Design_solver.best in
  let gain = Money.to_dollars o.Design_solver.greedy_cost -. cost in
  let rec bump_gain () =
    let cur = Atomic.get shared.max_gain in
    if gain > cur && not (Atomic.compare_and_set shared.max_gain cur gain)
    then bump_gain ()
  in
  bump_gain ();
  let rec bump_incumbent () =
    let cur = Atomic.get shared.incumbent_cell in
    let better =
      match cur with
      | None -> true
      | Some (c, i) -> cost < c || (cost = c && idx < i)
    in
    if
      better
      && not (Atomic.compare_and_set shared.incumbent_cell cur (Some (cost, idx)))
    then bump_incumbent ()
  in
  bump_incumbent ()

(* The racing hook for restart [idx]: abandon once even the largest
   observed improvement cannot bring the current cost strictly below a
   published incumbent. Only incumbents from lower-index restarts count:
   admission is prefix-closed, so a committed restart can only ever have
   raced against restarts that are themselves committed — a speculative
   (later discarded) publication can never steer a result that
   survives. *)
let abandon_hook shared idx =
  fun current_cost ->
    match Atomic.get shared.incumbent_cell with
    | Some (inc, widx) when widx < idx ->
      current_cost -. Atomic.get shared.max_gain > inc
    | _ -> false

let run ?(restarts = 4) ?(race = false) ?max_evaluations ?patience
    ?(params = Design_solver.default_params) ?(pool = Exec.sequential)
    ?(obs = Obs.noop) env apps likelihood =
  if restarts < 1 then invalid_arg "Search.run: restarts must be >= 1";
  Obs.with_span obs "portfolio.run" @@ fun () ->
  let width = Exec.domains pool in
  (* The portfolio owns the parallelism on a wide pool; each restart's
     solver then runs single-domain (pure scheduling, same results). *)
  let inner_params =
    if width > 1 then { params with Design_solver.domains = 1 } else params
  in
  let streams = restart_streams ~seed:params.Design_solver.seed ~restarts in
  let shared =
    { incumbent_cell = Atomic.make None; max_gain = Atomic.make 0. }
  in
  (* Committed state: only ever touched on the calling domain, in
     restart-index order. *)
  let rev_reports = ref [] in
  let incumbent = ref None in
  let total_evaluations = ref 0 in
  let raced_count = ref 0 in
  let stale = ref 0 in
  let stop = ref false in
  let admitted idx =
    idx = 0
    || ((match max_evaluations with
         | Some cap -> !total_evaluations < cap
         | None -> true)
        &&
        match patience with Some p -> !stale < p | None -> true)
  in
  let commit idx (o : Design_solver.outcome option) =
    Obs.incr obs "portfolio.restarts";
    match o with
    | None ->
      incr stale;
      rev_reports :=
        { index = idx; cost = None; evaluations = 0; raced_off = false;
          improved = false }
        :: !rev_reports
    | Some o ->
      total_evaluations := !total_evaluations + o.Design_solver.evaluations;
      if o.Design_solver.raced_off then begin
        incr raced_count;
        Obs.incr obs "portfolio.raced_off"
      end;
      let improved =
        match !incumbent with
        | None -> true
        | Some (best, _, _) ->
          Money.compare
            (Candidate.cost o.Design_solver.best)
            (Candidate.cost best)
          < 0
      in
      if improved then begin
        incumbent := Some (o.Design_solver.best, o, idx);
        stale := 0;
        let cost = cost_dollars o.Design_solver.best in
        Obs.gauge_set obs "portfolio.incumbent_cost" cost;
        Obs.portfolio_incumbent obs ~evaluations:!total_evaluations
          ~restart:idx cost
      end
      else incr stale;
      rev_reports :=
        { index = idx;
          cost = Some (cost_dollars o.Design_solver.best);
          evaluations = o.Design_solver.evaluations;
          raced_off = o.Design_solver.raced_off;
          improved }
        :: !rev_reports
  in
  let next = ref 0 in
  while (not !stop) && !next < restarts do
    let wave = min width (restarts - !next) in
    let indices = Array.init wave (fun k -> !next + k) in
    let outcomes =
      Exec.mapi_obs pool ~label:"portfolio.wave" ~obs
        (fun wobs _ idx ->
           let abandon = if race then Some (abandon_hook shared idx) else None in
           let outcome =
             Obs.with_span wobs "portfolio.restart"
               ~args:[ ("index", string_of_int idx) ]
               (fun () ->
                  Design_solver.solve ~params:inner_params ~obs:wobs
                    ~rng:streams.(idx) ?abandon env apps likelihood)
           in
           Option.iter (publish shared idx) outcome;
           outcome)
        indices
    in
    (* Commit this wave in index order; the first index the budget
       rejects stops the portfolio and discards the (speculative) rest
       of the wave, so the committed set is always a restart-index
       prefix whatever the pool width. *)
    Array.iteri
      (fun k outcome ->
         if not !stop then begin
           let idx = indices.(k) in
           if admitted idx then commit idx outcome else stop := true
         end)
      outcomes;
    next := !next + wave
  done;
  match !incumbent with
  | None -> None
  | Some (best, outcome, winner) ->
    let restarts_run = List.length !rev_reports in
    Obs.gauge_set obs "portfolio.restarts_run" (float_of_int restarts_run);
    Some
      { best; winner; outcome; restarts_run;
        total_evaluations = !total_evaluations;
        raced_off = !raced_count;
        reports = List.rev !rev_reports }
