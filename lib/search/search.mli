(** Multi-start portfolio meta-solver.

    The design tool (Algorithm 1) is a randomized search: solution
    quality is seed-dependent, and the cheapest way to both better
    designs and busier hardware is independent restarts. [run] launches
    up to [restarts] {!Ds_solver.Design_solver.solve} runs, each from
    its own pre-split RNG stream, schedules them on an {!Ds_exec.Exec}
    pool, and returns the cheapest completed candidate (cost ties broken
    toward the lowest restart index).

    {b Determinism.} Restart streams are split from the master generator
    in restart-index order before anything runs; restarts execute in
    waves of pool width and are {e committed} in restart-index order, so
    budget decisions depend only on the committed prefix — never on
    which domain finished first. With racing off, every field of the
    result is a function of (seed, restarts, budgets) alone: byte-
    identical at any domain count. With racing on, the returned winner
    is unchanged (see below) but which restarts raced off — and
    therefore the per-restart statistics — may vary with scheduling.

    {b Racing.} A restart abandons its remaining refit rounds once its
    lower bound (current cost minus the maximum improvement any
    completed restart has achieved from its greedy start to its final
    cost) can no longer strictly beat an incumbent published by a
    lower-index restart. Abandoned restarts still polish and still
    compete for the win. Because any published incumbent is a completed
    restart's final cost — hence no lower than the eventual winner's —
    pruning is winner-preserving whenever the observed-gain bound holds
    (no restart's remaining improvement exceeds the largest observed
    gain); DESIGN.md §11 states the argument and its limits.

    {b Budgets.} [run] is an anytime search: [restarts] caps the
    portfolio, [max_evaluations] stops admitting restarts once the
    committed configuration-solver calls reach the cap, and [patience]
    stops after that many consecutive committed restarts without an
    incumbent improvement. The first restart is always admitted, and
    exhaustion returns the incumbent so far rather than raising. *)

module Env = Ds_resources.Env
module App = Ds_workload.App
module Likelihood = Ds_failure.Likelihood
module Candidate = Ds_solver.Candidate
module Design_solver = Ds_solver.Design_solver

type report = {
  index : int;  (** Restart index (also its RNG stream index). *)
  cost : float option;
      (** Final total annual cost in dollars; [None] when the restart
          found no feasible design. *)
  evaluations : int;  (** Configuration-solver calls this restart made. *)
  raced_off : bool;  (** Whether racing cut its refit rounds short. *)
  improved : bool;
      (** Whether committing it improved the portfolio incumbent. *)
}

type result = {
  best : Candidate.t;  (** The cheapest design any restart produced. *)
  winner : int;  (** Its restart index. *)
  outcome : Design_solver.outcome;  (** The winning restart's outcome. *)
  restarts_run : int;  (** Restarts committed (admitted by the budget). *)
  total_evaluations : int;  (** Sum over committed restarts. *)
  raced_off : int;  (** Committed restarts racing cut short. *)
  reports : report list;  (** One per committed restart, index order. *)
}

val restart_streams : seed:int -> restarts:int -> Ds_prng.Rng.t array
(** The portfolio's RNG streams: stream 0 is a copy of the master
    generator [Rng.of_int seed] — so restart 0 replays the stream a
    plain [Design_solver.solve] with the same seed would use, making the
    portfolio winner never worse than the single run — and streams
    [1 .. restarts-1] are split off the master in index order. Exposed
    for tests (pairwise distinctness). *)

val run :
  ?restarts:int ->
  ?race:bool ->
  ?max_evaluations:int ->
  ?patience:int ->
  ?params:Design_solver.params ->
  ?pool:Ds_exec.Exec.pool ->
  ?obs:Ds_obs.Obs.t ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  result option
(** Run the portfolio. Defaults: [restarts = 4], [race = false], no
    evaluation cap, no stale-incumbent patience, default solver params,
    sequential pool. [None] only when {e every} committed restart failed
    to find a feasible design.

    On a pool wider than one domain each restart's own solver is forced
    to [domains = 1] (the portfolio owns the parallelism; restart
    results are unchanged because the solver's domain count is pure
    scheduling). [obs] records a [portfolio.run] span, per-restart
    [portfolio.restart] spans (on single-domain pools; worker domains
    run trace-stripped like every [Exec] consumer), the
    [portfolio.restarts] / [portfolio.raced_off] counters and
    [portfolio.incumbent_cost] gauge, and incumbent-improvement progress
    events ({!Ds_obs.Obs.portfolio_incumbent}) emitted at commit time in
    restart-index order.

    @raise Invalid_argument when [restarts < 1]. *)
