module Money = Ds_units.Money
module App = Ds_workload.App
module Env = Ds_resources.Env
module Likelihood = Ds_failure.Likelihood
module Evaluate = Ds_cost.Evaluate
module Outlay = Ds_cost.Outlay
module Penalty = Ds_cost.Penalty
module Candidate = Ds_solver.Candidate
module Design_solver = Ds_solver.Design_solver
module Exec = Ds_exec.Exec

type point = {
  aversion : float;
  outlay : Money.t;
  true_penalty : Money.t;
}

let default_multipliers = [ 0.25; 0.5; 1.; 2.; 4. ]

let scale_app factor (app : App.t) =
  App.v ~id:app.App.id ~name:app.App.name ~class_tag:app.App.class_tag
    ~outage_per_hour:(Money.scale factor app.App.outage_penalty_rate)
    ~loss_per_hour:(Money.scale factor app.App.loss_penalty_rate)
    ~data_size:app.App.data_size ~avg_update:app.App.avg_update_rate
    ~peak_update:app.App.peak_update_rate
    ~unique_update:app.App.unique_update_rate
    ~avg_access:app.App.avg_access_rate ()

let run ?(budgets = Budgets.default) ?(multipliers = default_multipliers) env
    apps likelihood =
  let pool = Exec.auto_width (Exec.create ~domains:(max 1 budgets.Budgets.domains) ()) in
  let inner =
    if Exec.domains pool > 1 then Budgets.sequential budgets else budgets
  in
  Exec.map_list pool
    (fun aversion ->
       let scaled = List.map (scale_app aversion) apps in
       match
         Design_solver.solve ~params:inner.Budgets.solver env scaled
           likelihood
       with
       | None -> None
       | Some outcome ->
         (* Re-price the chosen design against the original applications:
            same structure, true penalty rates. The design references the
            scaled apps, so rebuild it around the originals via the
            serialization round trip. *)
         let design = outcome.Design_solver.best.Candidate.design in
         let text = Ds_design.Design_io.to_string design in
         (match Ds_design.Design_io.of_string env apps text with
          | Error _ -> None
          | Ok repriced ->
            (match Evaluate.design repriced likelihood with
             | Error _ -> None
             | Ok eval ->
               Some
                 { aversion;
                   outlay = Outlay.annual eval.Evaluate.provision;
                   true_penalty =
                     Money.add eval.Evaluate.penalty.Penalty.outage_total
                       eval.Evaluate.penalty.Penalty.loss_total })))
    multipliers
  |> List.filter_map Fun.id

let run_peer ?budgets () =
  run ?budgets (Envs.peer_sites ()) (Envs.peer_apps ()) Likelihood.default

let pp ppf points =
  Format.fprintf ppf "%-10s %12s %14s %12s@." "aversion" "outlay"
    "true-penalty" "total";
  List.iter
    (fun p ->
       Format.fprintf ppf "%-10.4g %12s %14s %12s@." p.aversion
         (Money.to_string p.outlay)
         (Money.to_string p.true_penalty)
         (Money.to_string (Money.add p.outlay p.true_penalty)))
    points
