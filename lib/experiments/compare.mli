(** Heuristic comparison (Figure 3): outlay, data-loss penalty and outage
    penalty of the design tool, the human heuristic and the random
    heuristic on the same environment. *)

module Env = Ds_resources.Env
module App = Ds_workload.App
module Likelihood = Ds_failure.Likelihood
module Summary = Ds_cost.Summary

type entry = {
  label : string;
  summary : Summary.t option;  (** [None] when no feasible design found. *)
}

val arm_seed_offsets : (string * int) list
(** Per-arm RNG seed offsets, added to the budget's solver seed so no two
    arms replay the same stream. Pairwise distinct (asserted by the test
    suite); part of the fixed-seed output contract. *)

val run :
  ?budgets:Budgets.t ->
  ?metaheuristics:bool ->
  ?obs:Ds_obs.Obs.t ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  entry list
(** Entries in order: design tool, random, human — plus simulated
    annealing and tabu search when [metaheuristics] is set (the
    related-work baselines, not part of the paper's Figure 3).

    Arms are scheduled on an [Exec] pool [budgets.domains] wide (results
    are identical at every width; merge order is arm order). On a
    parallel pool each arm's own solver runs single-domain and [obs] is
    trace-stripped ([Exec.worker_obs]).

    With [budgets.restarts > 1] every randomized arm gets the same
    restart budget: the design-tool arm becomes a
    {!Ds_search.Search.run} portfolio (honoring [budgets.race] and
    [budgets.portfolio_evaluations]) and the annealing / tabu arms keep
    their best of [restarts] runs from pairwise-distinct seed streams
    (restart [r] of offset-[k] arm seeds at [seed + k + 5r]). Restart 0
    always replays the [restarts = 1] stream, so raising the budget can
    only improve an arm, and results for [restarts = 1] are unchanged
    from earlier releases. *)

val run_peer : ?budgets:Budgets.t -> unit -> entry list
(** Figure 3's setting: the peer-sites case study. *)

val ratio : entry list -> baseline:string -> string -> float option
(** Cost of [baseline] divided by cost of the named entry (how many times
    cheaper the named entry is). *)
