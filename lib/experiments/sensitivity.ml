module Money = Ds_units.Money
module Likelihood = Ds_failure.Likelihood
module Summary = Ds_cost.Summary
module Candidate = Ds_solver.Candidate
module Design_solver = Ds_solver.Design_solver
module Exec = Ds_exec.Exec

type axis = Object_failure | Array_failure | Site_failure

let axis_name = function
  | Object_failure -> "data object failure"
  | Array_failure -> "disk array failure"
  | Site_failure -> "site disaster"

let default_rates = function
  | Object_failure -> [ 2.; 1.; 1. /. 2.; 1. /. 3.; 1. /. 5.; 1. /. 10. ]
  | Array_failure -> [ 1. /. 2.; 1. /. 3.; 1. /. 5.; 1. /. 10.; 1. /. 20. ]
  | Site_failure -> [ 1. /. 5.; 1. /. 10.; 1. /. 20.; 1. /. 35.; 1. /. 50. ]

let likelihood_for axis rate =
  let base = Likelihood.sensitivity_base in
  match axis with
  | Object_failure ->
    Likelihood.v ~data_object_per_year:rate
      ~array_per_year:base.Likelihood.array_per_year
      ~site_per_year:base.Likelihood.site_per_year
  | Array_failure ->
    Likelihood.v ~data_object_per_year:base.Likelihood.data_object_per_year
      ~array_per_year:rate ~site_per_year:base.Likelihood.site_per_year
  | Site_failure ->
    Likelihood.v ~data_object_per_year:base.Likelihood.data_object_per_year
      ~array_per_year:base.Likelihood.array_per_year ~site_per_year:rate

type point = {
  rate : float;
  summary : Summary.t option;
}

let run ?(budgets = Budgets.default) ?rates ?(apps = 16) axis =
  let rates = Option.value ~default:(default_rates axis) rates in
  let env = Envs.quad_sites () in
  let rounds = (apps + 3) / 4 in
  let workloads = Envs.scaled_apps ~rounds in
  let pool = Exec.auto_width (Exec.create ~domains:(max 1 budgets.Budgets.domains) ()) in
  let inner =
    if Exec.domains pool > 1 then Budgets.sequential budgets else budgets
  in
  Exec.map_list pool
    (fun rate ->
       let likelihood = likelihood_for axis rate in
       let summary =
         Design_solver.solve ~params:inner.Budgets.solver env workloads
           likelihood
         |> Option.map (fun o -> Candidate.summary o.Design_solver.best)
       in
       { rate; summary })
    rates
