(** Failure-likelihood sensitivity (Figures 5, 6 and 7).

    Sixteen applications on four fully connected sites; one failure class
    rate is swept while the others stay at the Section 4.5 baseline (data
    object twice a year, disk array once in five years, site disaster once
    in twenty years). *)

module Money = Ds_units.Money
module Likelihood = Ds_failure.Likelihood

type axis = Object_failure | Array_failure | Site_failure

val axis_name : axis -> string

val default_rates : axis -> float list
(** The paper's sweep, in events per year:
    data object from twice a year down to once in ten years;
    disk array from once in two years down to once in twenty;
    site disaster from once in five years down to once in fifty. *)

val likelihood_for : axis -> float -> Likelihood.t
(** Baseline likelihoods with the swept axis overridden. *)

type point = {
  rate : float;  (** Events per year on the swept axis. *)
  summary : Ds_cost.Summary.t option;  (** [None]: infeasible. *)
}

val run : ?budgets:Budgets.t -> ?rates:float list -> ?apps:int -> axis -> point list
(** Runs the design tool at each rate (default: the paper's sweep,
    16 applications). Rates are solved on an [Exec] pool
    [budgets.domains] wide (identical points at every width, in rate
    order); on a parallel pool each solve runs single-domain. *)
