module Money = Ds_units.Money
module App = Ds_workload.App
module Summary = Ds_cost.Summary

let table1 ppf () =
  Format.fprintf ppf
    "Table 1. Application business requirements and workload characteristics@.";
  Format.fprintf ppf "%-3s %-22s %-2s %10s %10s %8s %9s %9s %9s %s@." "id"
    "name" "cl" "outage/hr" "loss/hr" "size" "avg-upd" "peak-upd" "access"
    "category";
  List.iter
    (fun app -> Format.fprintf ppf "%a@." App.pp_row app)
    (Ds_workload.Workload_catalog.mix ~count:4)

let table2 ppf () =
  Format.fprintf ppf "Table 2. Data protection techniques@.";
  Ds_protection.Technique_catalog.pp_table ppf ()

let table3 ppf () =
  Format.fprintf ppf "Table 3. Resource description (unamortized)@.";
  Ds_resources.Device_catalog.pp_table ppf ()

let site_list sites =
  String.concat "," (List.map (fun s -> Printf.sprintf "P%d" s) sites)

let table4 ppf rows =
  Format.fprintf ppf
    "Table 4. Data protection solution chosen by the design tool@.";
  Format.fprintf ppf "%-4s %-3s %-32s %-8s %-10s %-8s %-7s@." "app" "cls"
    "technique" "primary" "arrays" "tapelib" "network";
  List.iter
    (fun (row : Case_study.row) ->
       Format.fprintf ppf "%-4d %-3s %-32s %-8s %-10s %-8s %-7s@."
         row.Case_study.app.App.id row.Case_study.app.App.class_tag
         row.Case_study.technique
         (Printf.sprintf "P%d" row.Case_study.primary_site)
         (site_list row.Case_study.array_sites)
         (site_list row.Case_study.tape_sites)
         (if row.Case_study.uses_network then "yes" else "-"))
    rows

let bar width count max_count =
  let len =
    if max_count = 0 then 0 else count * width / max_count
  in
  String.make len '#'

let figure2 ppf stats ~bins ~marks =
  Format.fprintf ppf
    "Figure 2. Distribution of random solution costs (%d feasible, %d infeasible)@."
    (Array.length stats.Space_sampler.costs) stats.Space_sampler.infeasible;
  let hist = Space_sampler.histogram ~bins stats in
  let max_count = Array.fold_left max 0 hist.Space_sampler.counts in
  Array.iteri
    (fun i count ->
       Format.fprintf ppf "%10s - %10s | %-50s %d@."
         (Money.to_string (Money.dollars hist.Space_sampler.bucket_lo.(i)))
         (Money.to_string (Money.dollars hist.Space_sampler.bucket_hi.(i)))
         (bar 50 count max_count) count)
    hist.Space_sampler.counts;
  (match Space_sampler.spread stats with
   | Some spread -> Format.fprintf ppf "cost spread (max/min): %.1fx@." spread
   | None -> ());
  List.iter
    (fun (label, cost) ->
       Format.fprintf ppf "%s lands at percentile %.2f%% (cost %s)@." label
         (100. *. Space_sampler.percentile_of stats cost)
         (Money.to_string (Money.dollars cost)))
    marks

let figure3 ppf entries =
  Format.fprintf ppf "Figure 3. Solution cost by heuristic@.";
  Format.fprintf ppf "%-12s %12s %12s %12s %12s@." "heuristic" "outlay"
    "loss-pen" "outage-pen" "total";
  List.iter
    (fun (e : Compare.entry) ->
       match e.Compare.summary with
       | Some s ->
         Format.fprintf ppf "%-12s %12s %12s %12s %12s@." e.Compare.label
           (Money.to_string s.Summary.outlay)
           (Money.to_string s.Summary.loss_penalty)
           (Money.to_string s.Summary.outage_penalty)
           (Money.to_string (Summary.total s))
       | None ->
         Format.fprintf ppf "%-12s %12s@." e.Compare.label "infeasible")
    entries;
  (match Compare.ratio entries ~baseline:"human" "design tool" with
   | Some r -> Format.fprintf ppf "design tool is %.2fx cheaper than human@." r
   | None -> ());
  match Compare.ratio entries ~baseline:"random" "design tool" with
  | Some r -> Format.fprintf ppf "design tool is %.2fx cheaper than random@." r
  | None -> ()

let opt_money ppf = function
  | Some m -> Format.fprintf ppf "%12s" (Money.to_string m)
  | None -> Format.fprintf ppf "%12s" "infeasible"

let figure4 ppf points =
  Format.fprintf ppf "Figure 4. Scalability (four fully connected sites)@.";
  Format.fprintf ppf "%-6s %12s %12s %12s %9s %9s@." "apps" "design" "random"
    "human" "wall-s" "apps/s";
  List.iter
    (fun (p : Scalability.point) ->
       Format.fprintf ppf "%-6d %a %a %a %9.2f %9.1f@." p.Scalability.apps
         opt_money p.Scalability.design_tool opt_money p.Scalability.random
         opt_money p.Scalability.human p.Scalability.seconds
         p.Scalability.apps_per_sec)
    points

let fleet_scale ppf points =
  Format.fprintf ppf "Fleet scalability (sharded coordinator)@.";
  Format.fprintf ppf "%-6s %7s %12s %8s %9s %9s %9s %9s@." "apps" "shards"
    "cost" "evals" "conflicts" "unplaced" "wall-s" "apps/s";
  List.iter
    (fun (p : Scalability.fleet_point) ->
       Format.fprintf ppf "%-6d %7d %12s %8d %9d %9d %9.2f %9.1f@."
         p.Scalability.apps p.Scalability.shards
         (Money.to_string p.Scalability.cost) p.Scalability.evaluations
         p.Scalability.conflicts p.Scalability.unplaced p.Scalability.seconds
         p.Scalability.apps_per_sec)
    points

let sensitivity ppf axis points =
  Format.fprintf ppf "Sensitivity to the likelihood of %s@."
    (Sensitivity.axis_name axis);
  Format.fprintf ppf "%-14s %12s %12s %12s %12s@." "events/yr" "outlay"
    "loss-pen" "outage-pen" "total";
  List.iter
    (fun (p : Sensitivity.point) ->
       match p.Sensitivity.summary with
       | Some s ->
         Format.fprintf ppf "%-14.4g %12s %12s %12s %12s@." p.Sensitivity.rate
           (Money.to_string s.Summary.outlay)
           (Money.to_string s.Summary.loss_penalty)
           (Money.to_string s.Summary.outage_penalty)
           (Money.to_string (Summary.total s))
       | None ->
         Format.fprintf ppf "%-14.4g %12s@." p.Sensitivity.rate "infeasible")
    points
