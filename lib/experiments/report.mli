(** Text renderers that print each reproduced artifact in a shape
    comparable to the paper's tables and figures. *)

val table1 : Format.formatter -> unit -> unit
(** Application classes (Table 1). *)

val table2 : Format.formatter -> unit -> unit
(** Data protection technique catalog (Table 2). *)

val table3 : Format.formatter -> unit -> unit
(** Device catalog (Table 3). *)

val table4 : Format.formatter -> Case_study.row list -> unit
(** Chosen peer-sites solution (Table 4). *)

val figure2 :
  Format.formatter -> Space_sampler.stats -> bins:int -> marks:(string * float) list -> unit
(** Cost-distribution histogram with heuristic solutions marked at their
    percentile (Figure 2). *)

val figure3 : Format.formatter -> Compare.entry list -> unit
(** Stacked cost comparison of the heuristics (Figure 3). *)

val figure4 : Format.formatter -> Scalability.point list -> unit
(** Cost vs number of applications (Figure 4), with per-round wall time
    and throughput columns. *)

val fleet_scale : Format.formatter -> Scalability.fleet_point list -> unit
(** Fleet-coordinator scaling table: cost, evaluations, reconcile
    casualties and throughput per fleet size. *)

val sensitivity :
  Format.formatter -> Sensitivity.axis -> Sensitivity.point list -> unit
(** Cost vs failure likelihood (Figures 5-7). *)
