module Design_solver = Ds_solver.Design_solver

type t = {
  solver : Design_solver.params;
  human_attempts : int;
  random_attempts : int;
  space_samples : int;
  domains : int;
  restarts : int;
  race : bool;
  portfolio_evaluations : int option;
}

let default =
  { solver = Design_solver.default_params;
    human_attempts = 30;
    random_attempts = 150;
    space_samples = 20_000;
    domains = 1;
    restarts = 1;
    race = false;
    portfolio_evaluations = None }

let quick =
  { solver =
      { Design_solver.default_params with
        Design_solver.refit_rounds = 4; depth = 3; stage1_restarts = 3 };
    human_attempts = 10;
    random_attempts = 40;
    space_samples = 4_000;
    domains = 1;
    restarts = 1;
    race = false;
    portfolio_evaluations = None }

let with_seed t seed =
  { t with solver = { t.solver with Design_solver.seed } }

let with_domains t domains =
  { t with domains; solver = { t.solver with Design_solver.domains } }

let sequential t = with_domains t 1

let with_portfolio ?(race = false) ?max_evaluations t restarts =
  if restarts < 1 then invalid_arg "Budgets.with_portfolio: restarts >= 1";
  { t with restarts; race; portfolio_evaluations = max_evaluations }
