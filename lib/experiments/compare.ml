module Env = Ds_resources.Env
module App = Ds_workload.App
module Likelihood = Ds_failure.Likelihood
module Summary = Ds_cost.Summary
module Money = Ds_units.Money
module Candidate = Ds_solver.Candidate
module Design_solver = Ds_solver.Design_solver
module Search = Ds_search.Search
module Human = Ds_heuristics.Human
module Random_search = Ds_heuristics.Random_search
module Heuristic_result = Ds_heuristics.Heuristic_result
module Obs = Ds_obs.Obs
module Exec = Ds_exec.Exec

type entry = {
  label : string;
  summary : Summary.t option;
}

(* Each arm seeds its generator at the shared budget seed plus its own
   offset, so no two arms replay the same stream. The offsets are part of
   the fixed-seed contract: changing one changes that arm's published
   numbers. *)
let solver_seed_offset = 0
let random_seed_offset = 1
let human_seed_offset = 2
let annealing_seed_offset = 3
let tabu_seed_offset = 4

let arm_seed_offsets =
  [ ("design tool", solver_seed_offset);
    ("random", random_seed_offset);
    ("human", human_seed_offset);
    ("annealing", annealing_seed_offset);
    ("tabu", tabu_seed_offset) ]

let of_candidate label = function
  | Some c -> { label; summary = Some (Candidate.summary c) }
  | None -> { label; summary = None }

(* Best-of-[restarts] for the single-shot metaheuristic arms. Restart
   [r]'s seed is the arm's stream plus [r] strides of the offset table
   size, so no restart of any arm ever collides with another arm's
   stream ([offset + 5r mod 5] identifies the arm). [Candidate.better]
   keeps its first argument on ties: the lowest restart wins, as in the
   portfolio. Restart 0 replays the pre-portfolio stream, so
   [restarts = 1] reproduces historical results exactly. *)
let best_of_restarts restarts run_one =
  let rec loop r best =
    if r >= restarts then best
    else
      let best =
        match best, run_one r with
        | None, c -> c
        | b, None -> b
        | Some b, Some c -> Some (Candidate.better b c)
      in
      loop (r + 1) best
  in
  loop 0 None

let arm_count = List.length arm_seed_offsets

let run ?(budgets = Budgets.default) ?(metaheuristics = false)
    ?(obs = Obs.noop) env apps likelihood =
  let seed = budgets.Budgets.solver.Design_solver.seed in
  let pool = Exec.auto_width (Exec.create ~domains:(max 1 budgets.Budgets.domains) ()) in
  (* Arms scheduled on a parallel pool run their solvers single-domain:
     the parallelism lives at one level only. *)
  let inner =
    if Exec.domains pool > 1 then Budgets.sequential budgets else budgets
  in
  let restarts = max 1 budgets.Budgets.restarts in
  let arms =
    [ ( "design tool",
        fun obs ->
          if restarts = 1 then
            Design_solver.solve ~params:inner.Budgets.solver ~obs env apps
              likelihood
            |> Option.map (fun o -> o.Design_solver.best)
          else
            (* The arm itself may already sit on a parallel pool, so the
               portfolio runs its restarts sequentially; restart 0
               replays the single-solve stream, so this arm can only get
               cheaper as [restarts] grows. *)
            Search.run ~restarts ~race:budgets.Budgets.race
              ?max_evaluations:budgets.Budgets.portfolio_evaluations
              ~params:inner.Budgets.solver ~obs env apps likelihood
            |> Option.map (fun r -> r.Search.best) );
      ( "random",
        fun obs ->
          (Random_search.run ~attempts:budgets.Budgets.random_attempts ~obs
             ~seed:(seed + random_seed_offset) env apps likelihood)
            .Heuristic_result.best );
      ( "human",
        fun obs ->
          (Human.run ~attempts:budgets.Budgets.human_attempts ~obs
             ~seed:(seed + human_seed_offset) env apps likelihood)
            .Heuristic_result.best ) ]
    @
    if not metaheuristics then []
    else
      [ ( "annealing",
          fun obs ->
            best_of_restarts restarts (fun r ->
                (Ds_heuristics.Annealing.run ~obs
                   ~seed:(seed + annealing_seed_offset + (arm_count * r))
                   env apps likelihood)
                  .Heuristic_result.best) );
        ( "tabu",
          fun obs ->
            best_of_restarts restarts (fun r ->
                (Ds_heuristics.Tabu.run ~obs
                   ~seed:(seed + tabu_seed_offset + (arm_count * r))
                   env apps likelihood)
                  .Heuristic_result.best) ) ]
  in
  Exec.mapi_obs pool ~label:"compare.arms" ~obs
    (fun wobs _ (label, arm) -> of_candidate label (arm wobs))
    (Array.of_list arms)
  |> Array.to_list

let run_peer ?budgets () =
  run ?budgets (Envs.peer_sites ()) (Envs.peer_apps ()) Likelihood.default

let total_of entries label =
  List.find_opt (fun e -> String.equal e.label label) entries
  |> Fun.flip Option.bind (fun e -> e.summary)
  |> Option.map (fun s -> Money.to_dollars (Summary.total s))

let ratio entries ~baseline label =
  match total_of entries baseline, total_of entries label with
  | Some base, Some target when target > 0. -> Some (base /. target)
  | _ -> None
