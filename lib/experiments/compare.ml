module Env = Ds_resources.Env
module App = Ds_workload.App
module Likelihood = Ds_failure.Likelihood
module Summary = Ds_cost.Summary
module Money = Ds_units.Money
module Candidate = Ds_solver.Candidate
module Design_solver = Ds_solver.Design_solver
module Human = Ds_heuristics.Human
module Random_search = Ds_heuristics.Random_search
module Heuristic_result = Ds_heuristics.Heuristic_result

type entry = {
  label : string;
  summary : Summary.t option;
}

let of_candidate label = function
  | Some c -> { label; summary = Some (Candidate.summary c) }
  | None -> { label; summary = None }

let run ?(budgets = Budgets.default) ?(metaheuristics = false) ?obs env apps
    likelihood =
  let solver_entry =
    Design_solver.solve ~params:budgets.Budgets.solver ?obs env apps likelihood
    |> Option.map (fun o -> o.Design_solver.best)
    |> of_candidate "design tool"
  in
  let seed = budgets.Budgets.solver.Design_solver.seed in
  let random_entry =
    (Random_search.run ~attempts:budgets.Budgets.random_attempts ?obs
       ~seed:(seed + 1) env apps likelihood).Heuristic_result.best
    |> of_candidate "random"
  in
  let human_entry =
    (Human.run ~attempts:budgets.Budgets.human_attempts ?obs ~seed:(seed + 2)
       env apps likelihood).Heuristic_result.best
    |> of_candidate "human"
  in
  let extras =
    if not metaheuristics then []
    else
      [ (Ds_heuristics.Annealing.run ?obs ~seed:(seed + 3) env apps likelihood)
          .Heuristic_result.best
        |> of_candidate "annealing";
        (Ds_heuristics.Tabu.run ?obs ~seed:(seed + 4) env apps likelihood)
          .Heuristic_result.best
        |> of_candidate "tabu" ]
  in
  [ solver_entry; random_entry; human_entry ] @ extras

let run_peer ?budgets () =
  run ?budgets (Envs.peer_sites ()) (Envs.peer_apps ()) Likelihood.default

let total_of entries label =
  List.find_opt (fun e -> String.equal e.label label) entries
  |> Fun.flip Option.bind (fun e -> e.summary)
  |> Option.map (fun s -> Money.to_dollars (Summary.total s))

let ratio entries ~baseline label =
  match total_of entries baseline, total_of entries label with
  | Some base, Some target when target > 0. -> Some (base /. target)
  | _ -> None
