module Money = Ds_units.Money
module Likelihood = Ds_failure.Likelihood
module Summary = Ds_cost.Summary
module Exec = Ds_exec.Exec

type point = {
  apps : int;
  design_tool : Money.t option;
  random : Money.t option;
  human : Money.t option;
}

let total entry =
  Option.map Summary.total entry.Compare.summary

let find entries label =
  List.find_opt (fun (e : Compare.entry) -> String.equal e.Compare.label label)
    entries

let run ?(budgets = Budgets.default) ?(rounds = [ 1; 2; 3; 4; 5 ]) () =
  let env = Envs.quad_sites () in
  let pool = Exec.auto_width (Exec.create ~domains:(max 1 budgets.Budgets.domains) ()) in
  (* Rounds are the outer unit of work; each round's Compare (and the
     solvers underneath) runs sequentially when the pool is parallel. *)
  let inner =
    if Exec.domains pool > 1 then Budgets.sequential budgets else budgets
  in
  Exec.map_list pool
    (fun round ->
       let apps = Envs.scaled_apps ~rounds:round in
       let entries = Compare.run ~budgets:inner env apps Likelihood.default in
       { apps = List.length apps;
         design_tool = Option.bind (find entries "design tool") total;
         random = Option.bind (find entries "random") total;
         human = Option.bind (find entries "human") total })
    rounds
