module Money = Ds_units.Money
module Likelihood = Ds_failure.Likelihood
module Summary = Ds_cost.Summary
module Exec = Ds_exec.Exec
module Metrics = Ds_obs.Metrics
module Fleet = Ds_fleet.Fleet

type point = {
  apps : int;
  design_tool : Money.t option;
  random : Money.t option;
  human : Money.t option;
  seconds : float;
  apps_per_sec : float;
}

let total entry =
  Option.map Summary.total entry.Compare.summary

let find entries label =
  List.find_opt (fun (e : Compare.entry) -> String.equal e.Compare.label label)
    entries

(* A missing arm is a harness bug (Compare.run always emits all three
   labels), distinct from an arm that found no feasible design (entry
   present, summary [None]) — it used to degrade silently to [None] and
   read as "infeasible" in Figure 4. Fail loudly instead. *)
let total_of entries label =
  match find entries label with
  | Some entry -> total entry
  | None ->
    invalid_arg
      (Printf.sprintf
         "Scalability: comparison returned no %S entry (labels: %s)" label
         (String.concat ", "
            (List.map (fun (e : Compare.entry) -> e.Compare.label) entries)))

let rate ~apps ~seconds =
  if seconds > 0. then float_of_int apps /. seconds else 0.

let run ?(budgets = Budgets.default) ?(rounds = [ 1; 2; 3; 4; 5 ]) () =
  let env = Envs.quad_sites () in
  let pool = Exec.auto_width (Exec.create ~domains:(max 1 budgets.Budgets.domains) ()) in
  (* Rounds are the outer unit of work; each round's Compare (and the
     solvers underneath) runs sequentially when the pool is parallel. *)
  let inner =
    if Exec.domains pool > 1 then Budgets.sequential budgets else budgets
  in
  Exec.map_list pool
    (fun round ->
       let apps = Envs.scaled_apps ~rounds:round in
       let started = Metrics.now_s () in
       let entries = Compare.run ~budgets:inner env apps Likelihood.default in
       let seconds = Metrics.now_s () -. started in
       let apps = List.length apps in
       { apps;
         design_tool = total_of entries "design tool";
         random = total_of entries "random";
         human = total_of entries "human";
         seconds;
         apps_per_sec = rate ~apps ~seconds })
    rounds

type fleet_point = {
  apps : int;
  shards : int;
  cost : Money.t;
  evaluations : int;
  conflicts : int;
  unplaced : int;
  seconds : float;
  apps_per_sec : float;
}

(* The fleet scaling sweep: one cold Fleet.solve per pod count, shards
   parallel on [budgets.domains] domains. Pod counts are the outer axis
   (each point already fans out over its shards), so points run
   sequentially in list order. *)
let run_fleet ?(budgets = Budgets.default) ?(apps_per_pod = 8)
    ?(pods = [ 4; 16; 64 ]) () =
  let params =
    { budgets.Budgets.solver with
      Ds_solver.Design_solver.domains = max 1 budgets.Budgets.domains }
  in
  List.map
    (fun pod_count ->
       let env = Envs.fleet_sites ~pods:pod_count () in
       let apps = Envs.fleet_apps ~pods:pod_count ~apps_per_pod in
       let started = Metrics.now_s () in
       let result = Fleet.solve ~params env apps Likelihood.default in
       let seconds = Metrics.now_s () -. started in
       let apps = List.length apps in
       { apps;
         shards = List.length result.Fleet.shard_results;
         cost = result.Fleet.cost;
         evaluations = result.Fleet.evaluations;
         conflicts = result.Fleet.conflicts;
         unplaced = List.length result.Fleet.unplaced;
         seconds;
         apps_per_sec = rate ~apps ~seconds })
    pods
