(** Iteration budgets for the experiment harness.

    The paper runs every heuristic for thirty minutes of 2006-era CPU; we
    replace wall-clock budgets with deterministic iteration budgets so
    results are reproducible and machine-independent (see DESIGN.md).
    [default] aims at paper-comparable quality; [quick] keeps the full
    benchmark suite fast. *)

type t = {
  solver : Ds_solver.Design_solver.params;
  human_attempts : int;
  random_attempts : int;
  space_samples : int;  (** Random designs for the Figure 2 histogram. *)
  domains : int;
      (** Width of the [Exec] pool the experiment harness schedules its
          work items on (comparison arms, frontier multipliers,
          sensitivity rates, scalability rounds). 1 (the default)
          runs everything on the calling domain. Purely scheduling:
          results are identical at every width (DESIGN.md §10). *)
  restarts : int;
      (** Portfolio restarts per randomized arm (default 1 = no
          portfolio): the design-tool arm becomes a
          {!Ds_search.Search.run} portfolio and the annealing / tabu
          arms rerun best-of-[restarts] from distinct seed streams.
          The random and human arms already do their own multi-start
          ([random_attempts] / [human_attempts]). *)
  race : bool;
      (** Portfolio racing ({!Ds_search.Search.run}'s [race]); winner
          unchanged, raced restarts finish sooner. Default [false]. *)
  portfolio_evaluations : int option;
      (** Portfolio evaluation cap ({!Ds_search.Search.run}'s
          [max_evaluations]); [None] (default) = uncapped. *)
}

val default : t
val quick : t
val with_seed : t -> int -> t

val with_domains : t -> int -> t
(** Sets both the harness pool width ({!field-domains}) and the design
    solver's probe-level [domains] knob. An experiment that schedules
    solver runs on a parallel pool drops the inner knob back to 1
    ({!sequential}) so the two levels do not multiply. *)

val sequential : t -> t
(** [with_domains t 1]: the budgets with all parallelism stripped —
    what experiments hand to work items already running on a pool. *)

val with_portfolio : ?race:bool -> ?max_evaluations:int -> t -> int -> t
(** [with_portfolio t n] gives every randomized arm an [n]-restart
    portfolio budget ([dstool compare --restarts]).
    @raise Invalid_argument when [n < 1]. *)
