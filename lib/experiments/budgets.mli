(** Iteration budgets for the experiment harness.

    The paper runs every heuristic for thirty minutes of 2006-era CPU; we
    replace wall-clock budgets with deterministic iteration budgets so
    results are reproducible and machine-independent (see DESIGN.md).
    [default] aims at paper-comparable quality; [quick] keeps the full
    benchmark suite fast. *)

type t = {
  solver : Ds_solver.Design_solver.params;
  human_attempts : int;
  random_attempts : int;
  space_samples : int;  (** Random designs for the Figure 2 histogram. *)
  domains : int;
      (** Width of the [Exec] pool the experiment harness schedules its
          work items on (comparison arms, frontier multipliers,
          sensitivity rates, scalability rounds). 1 (the default)
          runs everything on the calling domain. Purely scheduling:
          results are identical at every width (DESIGN.md §10). *)
}

val default : t
val quick : t
val with_seed : t -> int -> t

val with_domains : t -> int -> t
(** Sets both the harness pool width ({!field-domains}) and the design
    solver's probe-level [domains] knob. An experiment that schedules
    solver runs on a parallel pool drops the inner knob back to 1
    ({!sequential}) so the two levels do not multiply. *)

val sequential : t -> t
(** [with_domains t 1]: the budgets with all parallelism stripped —
    what experiments hand to work items already running on a pool. *)
