(** Scalability experiment (Figure 4): solution cost of each heuristic as
    applications scale four at a time (one per Table 1 class) in a fixed
    four-site environment. *)

module Money = Ds_units.Money

type point = {
  apps : int;
  design_tool : Money.t option;  (** [None]: no feasible design found. *)
  random : Money.t option;
  human : Money.t option;
}

val run : ?budgets:Budgets.t -> ?rounds:int list -> unit -> point list
(** Default rounds 1..5 (4 to 20 applications). Every heuristic gets the
    same iteration budgets at every scale. Rounds run on an [Exec] pool
    [budgets.domains] wide (identical points at every width, in round
    order); on a parallel pool each round's comparison — arms and
    solvers — runs sequentially. *)
