(** Scalability experiments.

    {!run} is the paper's Figure 4: solution cost of each heuristic as
    applications scale four at a time (one per Table 1 class) in a fixed
    four-site environment — now with per-round wall time and throughput.
    {!run_fleet} extends the axis past 1,000 applications on the sharded
    fleet coordinator ({!Ds_fleet.Fleet}), which Figure 4's single-design
    solver cannot reach. *)

module Money = Ds_units.Money

type point = {
  apps : int;
  design_tool : Money.t option;  (** [None]: no feasible design found. *)
  random : Money.t option;
  human : Money.t option;
  seconds : float;  (** Wall time of the whole round (all three arms). *)
  apps_per_sec : float;  (** [apps / seconds] ([0.] on a zero round). *)
}

val total_of : Compare.entry list -> string -> Money.t option
(** Total cost of the named comparison arm; [None] when that arm found
    no feasible design. A {e missing} arm is a harness bug, not an
    infeasible design — @raise Invalid_argument naming the label and
    the labels actually present (it used to degrade silently to
    [None]). *)

val run : ?budgets:Budgets.t -> ?rounds:int list -> unit -> point list
(** Default rounds 1..5 (4 to 20 applications). Every heuristic gets the
    same iteration budgets at every scale. Rounds run on an [Exec] pool
    [budgets.domains] wide (identical costs at every width, in round
    order; wall times are measurements and vary); on a parallel pool
    each round's comparison — arms and solvers — runs sequentially. *)

type fleet_point = {
  apps : int;
  shards : int;
  cost : Money.t;
  evaluations : int;
  conflicts : int;  (** Merge conflicts + capacity evictions reconciled. *)
  unplaced : int;  (** Apps the reconcile budget could not place. *)
  seconds : float;
  apps_per_sec : float;
}

val run_fleet :
  ?budgets:Budgets.t ->
  ?apps_per_pod:int ->
  ?pods:int list ->
  unit ->
  fleet_point list
(** Cold {!Ds_fleet.Fleet.solve} per pod count (default pods
    [[4; 16; 64]], 8 apps per pod — 32 to 512 apps; [dstool scale
    --fleet-pods 128] reaches 1,024). Shards run [budgets.domains] wide
    inside each point; points run sequentially in list order. Costs are
    identical at every width. *)
