(** The paper's experimental environments (Sections 4.3-4.5). *)

module Env = Ds_resources.Env
module App = Ds_workload.App

val peer_sites : unit -> Env.t
(** Two peer sites, each the secondary for the other (Section 4.3): two
    array bays and one tape library per site, up to 32 high-class link
    units between them, compute for eight applications per site. *)

val peer_apps : unit -> App.t list
(** The eight case-study applications in Table 4 order:
    B, C, W, S, B, C, W, S. *)

val quad_sites : unit -> Env.t
(** Four fully connected sites (Sections 4.4-4.5): two array bays and one
    tape library per site, six inter-site link bundles (every pair), eight
    compute slots per site. *)

val scaled_apps : rounds:int -> App.t list
(** Four applications per round, one from each Table 1 class — the
    Figure 4 scaling unit. *)

val fleet_sites : pods:int -> unit -> Env.t
(** [pods] islands of four fully connected sites (per-site resources as
    {!quad_sites}) with no inter-pod links — each pod is a failure
    domain, the natural fleet shard. Sites are numbered 1..4[pods] in
    pod order. @raise Invalid_argument when [pods < 1]. *)

val fleet_apps : pods:int -> apps_per_pod:int -> App.t list
(** A balanced Table 1 mix of [pods * apps_per_pod] applications with
    ids 1..n — the fleet-scale workload. *)
