(** The outlay / penalty trade-off frontier.

    Architects rarely want a single optimum; they ask "what does buying
    down risk cost?". This experiment sweeps a risk-aversion multiplier
    over the applications' penalty rates, re-solves at each setting, and
    re-prices every resulting design at the {e true} (multiplier 1) rates.
    The result traces how much extra outlay each increment of penalty
    reduction costs — the tool's answer to over- vs under-engineering
    (the failure modes of the ad hoc approach the paper opens with). *)

module Money = Ds_units.Money

type point = {
  aversion : float;  (** Penalty-rate multiplier the solver optimized for. *)
  outlay : Money.t;  (** Annual outlay of the chosen design. *)
  true_penalty : Money.t;  (** Its expected penalties at the real rates. *)
}

val default_multipliers : float list
(** 0.25, 0.5, 1, 2, 4. *)

val run :
  ?budgets:Budgets.t ->
  ?multipliers:float list ->
  Ds_resources.Env.t ->
  Ds_workload.App.t list ->
  Ds_failure.Likelihood.t ->
  point list
(** Infeasible settings are skipped. Multipliers are solved on an [Exec]
    pool [budgets.domains] wide (identical points at every width, in
    multiplier order); on a parallel pool each solve runs
    single-domain. *)

val run_peer : ?budgets:Budgets.t -> unit -> point list

val pp : Format.formatter -> point list -> unit
