module Env = Ds_resources.Env
module Catalog = Ds_resources.Device_catalog
module App = Ds_workload.App
module W = Ds_workload.Workload_catalog

let peer_sites () =
  Env.fully_connected ~name:"peer-sites" ~site_count:2 ~bays_per_site:2
    ~array_models:Catalog.array_models ~tape_models:Catalog.tape_models
    ~link_model:Catalog.link_high ~max_link_units:32 ~compute_slots_per_site:8 ()

let table4_order = [ W.central_banking; W.consumer_banking; W.web_service; W.student_accounts ]

let peer_apps () =
  List.init 8 (fun i ->
      W.instantiate (List.nth table4_order (i mod 4)) ~id:(i + 1))

let quad_sites () =
  Env.fully_connected ~name:"quad-sites" ~site_count:4 ~bays_per_site:2
    ~array_models:Catalog.array_models ~tape_models:Catalog.tape_models
    ~link_model:Catalog.link_high ~max_link_units:16 ~compute_slots_per_site:8 ()

let scaled_apps ~rounds = W.balanced_rounds ~rounds

(* The fleet environment: [pods] islands of four fully connected sites
   with no inter-pod links, so each pod is its own failure domain (the
   natural shard for [Ds_fleet.Fleet]). Per-site resources match
   [quad_sites]; a pod holds roughly 32 apps (8 compute slots x 4
   sites), so ~1,000 apps need ~32 pods and the fleet bench's
   8-apps-per-pod profile uses 128. *)
let fleet_sites ~pods () =
  if pods < 1 then invalid_arg "Envs.fleet_sites: need a pod";
  let site_count = 4 * pods in
  let sites =
    List.init site_count (fun i ->
        Ds_resources.Site.v ~id:(i + 1) ~name:(Printf.sprintf "S%d" (i + 1)) ())
  in
  let links =
    List.concat_map
      (fun pod ->
         let base = (4 * pod) + 1 in
         List.concat_map
           (fun a ->
              List.filter_map
                (fun b ->
                   if a < b then Some (Ds_resources.Slot.Pair.v a b) else None)
                (List.init 4 (fun i -> base + i)))
           (List.init 4 (fun i -> base + i)))
      (List.init pods Fun.id)
  in
  Env.v ~name:(Printf.sprintf "fleet-sites-%dp" pods) ~sites ~bays_per_site:2
    ~array_models:Catalog.array_models ~tape_slots_per_site:1
    ~tape_models:Catalog.tape_models ~link_model:Catalog.link_high
    ~max_link_units:16 ~links ~compute_slots_per_site:8 ()

let fleet_apps ~pods ~apps_per_pod = W.mix ~count:(pods * apps_per_pod)
