type t = {
  data_object_per_year : float;
  array_per_year : float;
  site_per_year : float;
}

let check r =
  if not (Float.is_finite r) || r < 0. then
    invalid_arg "Likelihood: rates must be finite and non-negative";
  r

let v ~data_object_per_year ~array_per_year ~site_per_year =
  { data_object_per_year = check data_object_per_year;
    array_per_year = check array_per_year;
    site_per_year = check site_per_year }

let per_years n =
  if n <= 0. then invalid_arg "Likelihood.per_years: need a positive period";
  1. /. n

let default =
  v ~data_object_per_year:(per_years 3.) ~array_per_year:(per_years 3.)
    ~site_per_year:(per_years 5.)

let sensitivity_base =
  v ~data_object_per_year:2. ~array_per_year:(per_years 5.)
    ~site_per_year:(per_years 20.)

let equal a b =
  Float.equal a.data_object_per_year b.data_object_per_year
  && Float.equal a.array_per_year b.array_per_year
  && Float.equal a.site_per_year b.site_per_year

let fingerprint t =
  Printf.sprintf "l{%h;%h;%h}" t.data_object_per_year t.array_per_year
    t.site_per_year

let pp ppf t =
  Format.fprintf ppf "object %.3g/yr, array %.3g/yr, site %.3g/yr"
    t.data_object_per_year t.array_per_year t.site_per_year
