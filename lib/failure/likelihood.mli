(** Annualized failure likelihoods (Sections 2.4, 4.2 and 4.5).

    Each class of failure is described by its expected frequency per year.
    A "once in three years" likelihood is the rate 1/3. *)

type t = {
  data_object_per_year : float;
      (** Loss/corruption of one application's data due to human or
          software error; strikes each application independently. *)
  array_per_year : float;  (** Hardware failure of one disk array. *)
  site_per_year : float;  (** Disaster taking out a whole site. *)
}

val v :
  data_object_per_year:float -> array_per_year:float -> site_per_year:float -> t
(** @raise Invalid_argument on negative or non-finite rates. *)

val per_years : float -> float
(** [per_years n] is the rate "once in [n] years".
    @raise Invalid_argument when [n <= 0]. *)

val default : t
(** Case-study setting (Section 4.2): data object once in 3 years, disk
    array once in 3 years, site disaster once in 5 years. *)

val sensitivity_base : t
(** Sensitivity-analysis baseline (Section 4.5): data object twice a year,
    disk array once in 5 years, site disaster once in 20 years. *)

val equal : t -> t -> bool

val fingerprint : t -> string
(** Canonical encoding of the three rates (exact [%h] floats): equal
    fingerprints iff {!equal} holds. One of the components of the
    configuration-solver memo-cache key. *)

val pp : Format.formatter -> t -> unit
