module App = Ds_workload.App
module Slot = Ds_resources.Slot
module Site = Ds_resources.Site
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment

type scope =
  | Data_object of App.id
  | Array_failure of Slot.Array_slot.t
  | Site_disaster of Site.id

type t = { scope : scope; annual_rate : float }

type scope_class = Object | Array | Site

let scope_class = function
  | Data_object _ -> Object
  | Array_failure _ -> Array
  | Site_disaster _ -> Site

let all_classes = [ Object; Array; Site ]

let class_name = function
  | Object -> "object"
  | Array -> "array"
  | Site -> "site"

let hits scope (asg : Assignment.t) =
  match scope with
  | Data_object id -> asg.app.App.id = id
  | Array_failure slot -> Slot.Array_slot.equal asg.primary slot
  | Site_disaster site -> asg.primary.Slot.Array_slot.site = site

let affected design scope = List.filter (hits scope) (Design.assignments design)

let unaffected design scope =
  List.filter (fun a -> not (hits scope a)) (Design.assignments design)

let destroys_array scope (slot : Slot.Array_slot.t) =
  match scope with
  | Data_object _ -> false
  | Array_failure failed -> Slot.Array_slot.equal failed slot
  | Site_disaster site -> slot.site = site

let destroys_tape scope (slot : Slot.Tape_slot.t) =
  match scope with
  | Data_object _ | Array_failure _ -> false
  | Site_disaster site -> slot.site = site

let destroys_site scope site =
  match scope with
  | Site_disaster failed -> failed = site
  | Data_object _ | Array_failure _ -> false

let enumerate (lk : Likelihood.t) design =
  let object_scenarios =
    List.map
      (fun (asg : Assignment.t) ->
         { scope = Data_object asg.app.App.id;
           annual_rate = lk.data_object_per_year })
      (Design.assignments design)
  in
  let array_scenarios =
    Design.used_array_slots design
    |> List.filter_map (fun slot ->
        if Design.has_primary_on design slot then
          Some { scope = Array_failure slot; annual_rate = lk.array_per_year }
        else None)
  in
  let site_scenarios =
    Design.used_sites design
    |> List.filter_map (fun site ->
        if Design.has_primary_at_site design site then
          Some { scope = Site_disaster site; annual_rate = lk.site_per_year }
        else None)
  in
  object_scenarios @ array_scenarios @ site_scenarios

let pp_scope ppf = function
  | Data_object id -> Format.fprintf ppf "data-object failure of app %d" id
  | Array_failure slot ->
    Format.fprintf ppf "failure of array %a" Slot.Array_slot.pp slot
  | Site_disaster site -> Format.fprintf ppf "disaster at site s%d" site

let pp ppf t =
  Format.fprintf ppf "%a (%.3g/yr)" pp_scope t.scope t.annual_rate
