(** Failure scenarios: a failure scope plus its annual likelihood
    (Section 2.4).

    Scenarios are enumerated against a concrete design: one data-object
    failure per application, one array failure per populated bay, one
    disaster per used site. Applications are {e affected} by a scenario
    when their primary copy falls inside its scope; unaffected
    applications keep running and keep their resources. *)

module App = Ds_workload.App
module Slot = Ds_resources.Slot
module Site = Ds_resources.Site
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment

type scope =
  | Data_object of App.id
  | Array_failure of Slot.Array_slot.t
  | Site_disaster of Site.id

type t = { scope : scope; annual_rate : float }

type scope_class = Object | Array | Site
(** The three failure-scope families, erased of their instance: every
    scope is a data-object failure, a disk-array failure or a site
    disaster. The rare-event risk engine ({!Ds_risk.Tail_sim})
    stratifies its importance sampling by this classification — one
    stratum tilts the rates of one class — so the strata partition the
    scenario space exactly. *)

val scope_class : scope -> scope_class

val all_classes : scope_class list
(** [[Object; Array; Site]], in that fixed order (strata enumeration
    relies on the order being stable). *)

val class_name : scope_class -> string
(** ["object"], ["array"] or ["site"] — stratum labels and CLI values. *)

val enumerate : Likelihood.t -> Design.t -> t list
(** Scenarios with at least one affected application; array and site
    scenarios cover every bay / site hosting a primary copy. *)

val affected : Design.t -> scope -> Assignment.t list
(** Assignments whose primary copy is hit by the scope. *)

val unaffected : Design.t -> scope -> Assignment.t list

val destroys_array : scope -> Slot.Array_slot.t -> bool
(** Whether the scope physically destroys the given array (and the
    snapshots inside it). *)

val destroys_tape : scope -> Slot.Tape_slot.t -> bool
val destroys_site : scope -> Site.id -> bool
val pp_scope : Format.formatter -> scope -> unit
val pp : Format.formatter -> t -> unit
