type event =
  | Stage of string
  | Incumbent of float
  | Accepted
  | Rejected
  | Portfolio of { restart : int; cost : float }
  | Shard of { shard : int; cost : float }

type entry = {
  evaluations : int;
  event : event;
}

(* The stream is shared across domains when experiment arms run on an
   [Exec] pool (each arm's solver emits its own progress events), so
   every access takes the lock. Event order between concurrent arms is
   whatever the schedule produced; events within one arm stay ordered. *)
type stream = {
  lock : Mutex.t;
  mutable rev_entries : entry list;
  mutable best : float option;
  mutable portfolio_best : float option;
  mutable accepted : int;
  mutable rejected : int;
}

let create () =
  { lock = Mutex.create (); rev_entries = []; best = None;
    portfolio_best = None; accepted = 0; rejected = 0 }

let push s evaluations event =
  s.rev_entries <- { evaluations; event } :: s.rev_entries

let stage s ~evaluations name =
  Mutex.protect s.lock (fun () -> push s evaluations (Stage name))

let incumbent s ~evaluations cost =
  Mutex.protect s.lock @@ fun () ->
  let improves =
    match s.best with None -> true | Some best -> cost < best
  in
  if improves then begin
    s.best <- Some cost;
    push s evaluations (Incumbent cost)
  end

(* Tracked separately from [best]: the solver-level incumbent stream and
   the portfolio-level one can interleave (each restart's solver records
   its own incumbents), and the portfolio line must stay monotone on its
   own axis. *)
let portfolio_incumbent s ~evaluations ~restart cost =
  Mutex.protect s.lock @@ fun () ->
  let improves =
    match s.portfolio_best with None -> true | Some best -> cost < best
  in
  if improves then begin
    s.portfolio_best <- Some cost;
    push s evaluations (Portfolio { restart; cost })
  end

(* Shard completions are reported unconditionally (not incumbent-gated):
   the fleet coordinator emits one per shard in index order after the
   parallel join, and the stream is the record of which shard cost what. *)
let shard_done s ~evaluations ~shard cost =
  Mutex.protect s.lock (fun () -> push s evaluations (Shard { shard; cost }))

let accepted s ~evaluations =
  Mutex.protect s.lock @@ fun () ->
  s.accepted <- s.accepted + 1;
  push s evaluations Accepted

let rejected s ~evaluations =
  Mutex.protect s.lock @@ fun () ->
  s.rejected <- s.rejected + 1;
  push s evaluations Rejected

let entries s = Mutex.protect s.lock (fun () -> List.rev s.rev_entries)
let best s = Mutex.protect s.lock (fun () -> s.best)
let portfolio_best s = Mutex.protect s.lock (fun () -> s.portfolio_best)
let accepted_count s = Mutex.protect s.lock (fun () -> s.accepted)
let rejected_count s = Mutex.protect s.lock (fun () -> s.rejected)

let to_csv s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "evaluations,event,stage,cost\n";
  List.iter
    (fun e ->
       let line =
         match e.event with
         | Stage name -> Printf.sprintf "%d,stage,%s,\n" e.evaluations name
         | Incumbent cost ->
           Printf.sprintf "%d,incumbent,,%.2f\n" e.evaluations cost
         | Accepted -> Printf.sprintf "%d,accept,,\n" e.evaluations
         | Rejected -> Printf.sprintf "%d,reject,,\n" e.evaluations
         | Portfolio { restart; cost } ->
           Printf.sprintf "%d,portfolio,%d,%.2f\n" e.evaluations restart
             cost
         | Shard { shard; cost } ->
           Printf.sprintf "%d,shard,%d,%.2f\n" e.evaluations shard cost
       in
       Buffer.add_string buf line)
    (entries s);
  Buffer.contents buf
