type event =
  | Stage of string
  | Incumbent of float
  | Accepted
  | Rejected
  | Portfolio of { restart : int; cost : float }
  | Shard of { shard : int; cost : float }

type entry = {
  evaluations : int;
  event : event;
}

(* The stream is shared across domains when experiment arms run on an
   [Exec] pool (each arm's solver emits its own progress events), so
   every access takes the lock. Event order between concurrent arms is
   whatever the schedule produced; events within one arm stay ordered. *)
type stream = {
  lock : Mutex.t;
  on_event : (entry -> unit) option;
  mutable rev_entries : entry list;
  mutable best : float option;
  mutable portfolio_best : float option;
  mutable accepted : int;
  mutable rejected : int;
}

let create ?on_event () =
  { lock = Mutex.create (); on_event; rev_entries = []; best = None;
    portfolio_best = None; accepted = 0; rejected = 0 }

let push s evaluations event =
  let e = { evaluations; event } in
  s.rev_entries <- e :: s.rev_entries;
  Some e

(* The hook fires outside the stream lock: a subscriber that blocks (a
   server flushing the event down a socket) must not stall concurrent
   recorders, and a hook that reads the stream back must not deadlock.
   Events recorded by concurrent recorders may therefore reach the hook
   in an order that differs from the recorded one; one recorder's own
   events arrive in order only when its calls do not race. *)
let notify s = function
  | Some e -> (match s.on_event with Some f -> f e | None -> ())
  | None -> ()

let stage s ~evaluations name =
  notify s (Mutex.protect s.lock (fun () -> push s evaluations (Stage name)))

let incumbent s ~evaluations cost =
  notify s
    (Mutex.protect s.lock @@ fun () ->
     let improves =
       match s.best with None -> true | Some best -> cost < best
     in
     if improves then begin
       s.best <- Some cost;
       push s evaluations (Incumbent cost)
     end
     else None)

(* Tracked separately from [best]: the solver-level incumbent stream and
   the portfolio-level one can interleave (each restart's solver records
   its own incumbents), and the portfolio line must stay monotone on its
   own axis. *)
let portfolio_incumbent s ~evaluations ~restart cost =
  notify s
    (Mutex.protect s.lock @@ fun () ->
     let improves =
       match s.portfolio_best with None -> true | Some best -> cost < best
     in
     if improves then begin
       s.portfolio_best <- Some cost;
       push s evaluations (Portfolio { restart; cost })
     end
     else None)

(* Shard completions are reported unconditionally (not incumbent-gated):
   the fleet coordinator emits one per shard in index order after the
   parallel join, and the stream is the record of which shard cost what. *)
let shard_done s ~evaluations ~shard cost =
  notify s
    (Mutex.protect s.lock (fun () ->
         push s evaluations (Shard { shard; cost })))

let accepted s ~evaluations =
  notify s
    (Mutex.protect s.lock @@ fun () ->
     s.accepted <- s.accepted + 1;
     push s evaluations Accepted)

let rejected s ~evaluations =
  notify s
    (Mutex.protect s.lock @@ fun () ->
     s.rejected <- s.rejected + 1;
     push s evaluations Rejected)

let entries s = Mutex.protect s.lock (fun () -> List.rev s.rev_entries)
let best s = Mutex.protect s.lock (fun () -> s.best)
let portfolio_best s = Mutex.protect s.lock (fun () -> s.portfolio_best)
let accepted_count s = Mutex.protect s.lock (fun () -> s.accepted)
let rejected_count s = Mutex.protect s.lock (fun () -> s.rejected)

let csv_header = "evaluations,event,stage,cost\n"

let csv_line e =
  match e.event with
  | Stage name -> Printf.sprintf "%d,stage,%s,\n" e.evaluations name
  | Incumbent cost -> Printf.sprintf "%d,incumbent,,%.2f\n" e.evaluations cost
  | Accepted -> Printf.sprintf "%d,accept,,\n" e.evaluations
  | Rejected -> Printf.sprintf "%d,reject,,\n" e.evaluations
  | Portfolio { restart; cost } ->
    Printf.sprintf "%d,portfolio,%d,%.2f\n" e.evaluations restart cost
  | Shard { shard; cost } ->
    Printf.sprintf "%d,shard,%d,%.2f\n" e.evaluations shard cost

let to_csv s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  List.iter (fun e -> Buffer.add_string buf (csv_line e)) (entries s);
  Buffer.contents buf

(* Streaming writer: [to_csv] materializes the whole trajectory at the
   end of a run, which is useless to a live observer — a server client
   watching a long solve would see nothing until exit. This variant
   writes the header now and one CSV line per event, flushing after
   every write, so the reader side of a pipe or socket sees each event
   before the producer finishes. The channel mutex serializes hooks
   firing from concurrent recorder threads (the hook itself runs outside
   the stream lock). *)
let streaming oc =
  let out_lock = Mutex.create () in
  let write line =
    Mutex.protect out_lock (fun () ->
        output_string oc line;
        flush oc)
  in
  write csv_header;
  create ~on_event:(fun e -> write (csv_line e)) ()
