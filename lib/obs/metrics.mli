(** Explicit-registry metrics: counters, gauges and duration histograms.

    A registry is a flat name -> instrument table. Instruments are
    created on first lookup and shared afterwards, so independent call
    sites that agree on a name accumulate into the same cell. Lookups by
    name hash once; hot paths should hold on to the returned instrument.

    Time comes from the OS monotonic clock (CLOCK_MONOTONIC), never from
    the wall clock, so histograms survive NTP steps.

    Every instrument is domain-safe: counters and gauges are
    Atomic-backed, histogram updates take a per-instrument lock and
    instrument creation is serialized, so hooks may fire concurrently
    from worker domains (the design solver's parallel refit does) without
    losing updates. Renderers ({!pp}, {!to_json}) read through
    {!snapshot}, which copies each instrument under its lock — dumping a
    registry while workers observe into it can never show a torn
    (count, sum, min, max) tuple.

    Histograms bucket their samples into fixed quarter-power-of-two
    ranges spanning ~15 ns to 64 s, giving {!percentile} estimates
    accurate to a bucket width (~19%, tightened by interpolation and by
    clamping into the exact observed [min, max]).

    The registry's own mutexes (instrument creation, per-histogram
    update) are {!Lockstat}-wrapped; {!lock_stats} reports how much the
    instrumentation itself contends. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val counter : registry -> string -> counter
(** Idempotent by name. @raise Invalid_argument if [name] is already
    registered as a different instrument kind. *)

val gauge : registry -> string -> gauge
val histogram : registry -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit

val gauge_max : gauge -> float -> unit
(** Raise the gauge to [v] if [v] exceeds its current value (CAS loop;
    domain-safe running maximum). *)

val value : gauge -> float

val observe : histogram -> float -> unit
(** Record one duration, in seconds. Negative or NaN samples are dropped. *)

val observations : histogram -> int
val total : histogram -> float
val mean : histogram -> float
(** 0 when empty. *)

val hist_min : histogram -> float
val hist_max : histogram -> float
(** 0 when empty. *)

val percentile : histogram -> float -> float
(** [percentile h q] estimates the [q]-quantile ([q] in [0, 1]) of the
    observed samples from the bucket counts: linear interpolation inside
    the covering bucket, clamped into the exact observed [min, max].
    0 when empty. @raise Invalid_argument when [q] is outside [0, 1]. *)

val now_s : unit -> float
(** Monotonic time in seconds since an arbitrary origin. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and {!observe} its monotonic duration, exceptions
    included. *)

(** {1 Snapshots} — consistent point-in-time copies for rendering. *)

type histogram_snapshot = {
  snap_count : int;
  snap_total : float;
  snap_mean : float;
  snap_min : float;
  snap_max : float;
  snap_p50 : float;
  snap_p90 : float;
  snap_p99 : float;
}

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

val snapshot : registry -> (string * value) list
(** Every instrument, sorted by name, each copied under its own lock.
    Safe to call while worker domains observe concurrently. *)

val snapshot_histogram : histogram -> histogram_snapshot

val names : registry -> string list
(** Sorted registered names. *)

val lock_stats : registry -> (string * Lockstat.stats) list
(** Contention of the registry's own mutexes:
    [("metrics.registry", _)] (instrument creation) and
    [("metrics.histograms", _)] (all histogram updates, aggregated). *)

val pp : Format.formatter -> registry -> unit
(** Plain-text rendering, one instrument per line, sorted by name;
    histograms include p50/p90/p99. *)

val to_json : registry -> string
(** JSON object keyed by instrument name; counters render as integers,
    gauges as numbers, histograms as
    [{"count":n,"total_s":t,"mean_s":m,"min_s":a,"max_s":b,
      "p50_s":_,"p90_s":_,"p99_s":_}]. *)

(**/**)

val histogram_snapshot_json : histogram_snapshot -> string
(** The single-histogram JSON object above — shared with {!Prof}'s
    report serializer. *)

val json_escape : string -> string
val json_float : float -> string
