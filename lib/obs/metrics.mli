(** Explicit-registry metrics: counters, gauges and duration histograms.

    A registry is a flat name -> instrument table. Instruments are
    created on first lookup and shared afterwards, so independent call
    sites that agree on a name accumulate into the same cell. Lookups by
    name hash once; hot paths should hold on to the returned instrument.

    Time comes from the OS monotonic clock (CLOCK_MONOTONIC), never from
    the wall clock, so histograms survive NTP steps.

    Every instrument is domain-safe: counters and gauges are
    Atomic-backed, histogram updates take a per-instrument lock and
    instrument creation is serialized, so hooks may fire concurrently
    from worker domains (the design solver's parallel refit does) without
    losing updates. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val counter : registry -> string -> counter
(** Idempotent by name. @raise Invalid_argument if [name] is already
    registered as a different instrument kind. *)

val gauge : registry -> string -> gauge
val histogram : registry -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val value : gauge -> float

val observe : histogram -> float -> unit
(** Record one duration, in seconds. Negative or NaN samples are dropped. *)

val observations : histogram -> int
val total : histogram -> float
val mean : histogram -> float
(** 0 when empty. *)

val hist_min : histogram -> float
val hist_max : histogram -> float
(** 0 when empty. *)

val now_s : unit -> float
(** Monotonic time in seconds since an arbitrary origin. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and {!observe} its monotonic duration, exceptions
    included. *)

val names : registry -> string list
(** Sorted registered names. *)

val pp : Format.formatter -> registry -> unit
(** Plain-text rendering, one instrument per line, sorted by name. *)

val to_json : registry -> string
(** JSON object keyed by instrument name; counters render as integers,
    gauges as numbers, histograms as
    [{"count":n,"total_s":t,"mean_s":m,"min_s":a,"max_s":b}]. *)
