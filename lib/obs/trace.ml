type span = {
  name : string;
  args : (string * string) list;
  start_ns : int64;  (* relative to the collector origin *)
  dur_ns : int64;
  depth : int;
  path : string;  (* "/"-joined ancestor names, self included *)
}

type collector = {
  origin : int64;
  mutable stack : string list;  (* open span names, innermost first *)
  mutable spans : span list;  (* completed, reverse completion order *)
  mutable completed : int;
}

let create () =
  { origin = Monotonic_clock.now (); stack = []; spans = []; completed = 0 }

let rel c now = Int64.sub now c.origin

let with_span c ?(args = []) name f =
  let path =
    match c.stack with
    | [] -> name
    | parent :: _ -> parent ^ "/" ^ name
  in
  let depth = List.length c.stack in
  let start_ns = rel c (Monotonic_clock.now ()) in
  c.stack <- path :: c.stack;
  Fun.protect
    ~finally:(fun () ->
        let dur_ns = Int64.sub (rel c (Monotonic_clock.now ())) start_ns in
        c.stack <- List.tl c.stack;
        c.spans <- { name; args; start_ns; dur_ns; depth; path } :: c.spans;
        c.completed <- c.completed + 1)
    f

let span_count c = c.completed

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | ch when Char.code ch < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
       | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let us ns = Int64.to_float ns /. 1e3

let to_chrome_json c =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i s ->
       if i > 0 then Buffer.add_string buf ",\n";
       Buffer.add_string buf
         (Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"ds\",\"ph\":\"X\",\"ts\":%.3f,\
             \"dur\":%.3f,\"pid\":1,\"tid\":1"
            (escape s.name) (us s.start_ns) (us s.dur_ns));
       (match s.args with
        | [] -> ()
        | args ->
          Buffer.add_string buf ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
               if j > 0 then Buffer.add_char buf ',';
               Buffer.add_string buf
                 (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
            args;
          Buffer.add_char buf '}');
       Buffer.add_char buf '}')
    (List.rev c.spans);
  Buffer.add_char buf ']';
  Buffer.contents buf

(* Aggregate completed spans by path. First-occurrence order (in span
   start order) keeps the tree stable and readable. *)
let pp_tree ppf c =
  let spans =
    List.rev c.spans
    |> List.sort (fun a b -> Int64.compare a.start_ns b.start_ns)
  in
  let table : (string, int * int64) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun s ->
       match Hashtbl.find_opt table s.path with
       | Some (n, total) ->
         Hashtbl.replace table s.path (n + 1, Int64.add total s.dur_ns)
       | None ->
         Hashtbl.add table s.path (1, s.dur_ns);
         order := (s.path, s.name, s.depth) :: !order)
    spans;
  List.iter
    (fun (path, name, depth) ->
       let n, total = Hashtbl.find table path in
       Format.fprintf ppf "%s%-*s x%-6d %10.3f ms@."
         (String.make (2 * depth) ' ')
         (max 1 (36 - (2 * depth)))
         name n
         (Int64.to_float total /. 1e6))
    (List.rev !order)
