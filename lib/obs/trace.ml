type alloc = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type span = {
  name : string;
  args : (string * string) list;
  start_ns : int64;  (* relative to the collector origin *)
  dur_ns : int64;
  depth : int;
  path : string;  (* "/"-joined ancestor names, self included *)
  tid : int;  (* lane: 1 = the creating thread, 2.. = worker lanes *)
  alloc : alloc;  (* Gc.quick_stat deltas across the span, this domain *)
}

(* A collector is single-threaded by construction: spans nest by dynamic
   scope on one thread of control. Worker domains get their own lane
   collectors ({!worker}) sharing the parent's clock origin; completed
   lanes are folded back with {!merge} after the domains join. *)
type collector = {
  origin : int64;
  tid : int;
  base_path : string option;  (* enclosing parent-lane path, if any *)
  mutable stack : string list;  (* open span paths, innermost first *)
  mutable spans : span list;  (* completed, reverse completion order *)
  mutable completed : int;
  (* Last (parent, name, parent ^ "/" ^ name): the hot loops open the
     same span under the same parent thousands of times in a row, so the
     concatenation is recomputed only when either component changes
     (compared physically — literals and open-span paths are stable). *)
  mutable path_cache : (string * string * string) option;
}

let create () =
  { origin = Monotonic_clock.now ();
    tid = 1;
    base_path = None;
    stack = [];
    spans = [];
    completed = 0;
    path_cache = None }

let tid c = c.tid

(* The parent's currently open path (if any) seeds the lane's nesting so
   merged worker spans aggregate under the span that forked them. *)
let worker parent ~tid =
  { origin = parent.origin;
    tid;
    base_path =
      (match parent.stack with
       | path :: _ -> Some path
       | [] -> parent.base_path);
    stack = [];
    spans = [];
    completed = 0;
    path_cache = None }

let merge ~into child =
  into.spans <- child.spans @ into.spans;
  into.completed <- into.completed + child.completed

let rel c now = Int64.sub now c.origin

let alloc_delta (before : Gc.stat) (after : Gc.stat) =
  { minor_words = after.Gc.minor_words -. before.Gc.minor_words;
    major_words = after.Gc.major_words -. before.Gc.major_words;
    minor_collections = after.Gc.minor_collections - before.Gc.minor_collections;
    major_collections = after.Gc.major_collections - before.Gc.major_collections }

let with_span c ?(args = []) name f =
  let parent =
    match c.stack with
    | path :: _ -> Some path
    | [] -> c.base_path
  in
  let path =
    match parent with
    | None -> name
    | Some parent ->
      (match c.path_cache with
       | Some (p, n, path) when p == parent && n == name -> path
       | _ ->
         let path = parent ^ "/" ^ name in
         c.path_cache <- Some (parent, name, path);
         path)
  in
  let depth =
    List.length c.stack + (match c.base_path with None -> 0 | Some _ -> 1)
  in
  let gc0 = Gc.quick_stat () in
  let start_ns = rel c (Monotonic_clock.now ()) in
  c.stack <- path :: c.stack;
  Fun.protect
    ~finally:(fun () ->
        let dur_ns = Int64.sub (rel c (Monotonic_clock.now ())) start_ns in
        let alloc = alloc_delta gc0 (Gc.quick_stat ()) in
        c.stack <- List.tl c.stack;
        c.spans <-
          { name; args; start_ns; dur_ns; depth; path; tid = c.tid; alloc }
          :: c.spans;
        c.completed <- c.completed + 1)
    f

let span_count c = c.completed

let spans c =
  List.rev c.spans
  |> List.sort (fun (a : span) (b : span) ->
      match compare a.tid b.tid with
      | 0 -> Int64.compare a.start_ns b.start_ns
      | n -> n)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | ch when Char.code ch < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
       | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let us ns = Int64.to_float ns /. 1e3

let to_chrome_json c =
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i s ->
       if i > 0 then Buffer.add_string buf ",\n";
       Buffer.add_string buf
         (Printf.sprintf
            "{\"name\":\"%s\",\"cat\":\"ds\",\"ph\":\"X\",\"ts\":%.3f,\
             \"dur\":%.3f,\"pid\":1,\"tid\":%d"
            (escape s.name) (us s.start_ns) (us s.dur_ns) s.tid);
       Buffer.add_string buf ",\"args\":{";
       List.iter
         (fun (k, v) ->
            Buffer.add_string buf
              (Printf.sprintf "\"%s\":\"%s\"," (escape k) (escape v)))
         s.args;
       Buffer.add_string buf
         (Printf.sprintf
            "\"minor_words\":%.0f,\"major_words\":%.0f,\
             \"minor_collections\":%d,\"major_collections\":%d}}"
            s.alloc.minor_words s.alloc.major_words
            s.alloc.minor_collections s.alloc.major_collections))
    (spans c);
  Buffer.add_char buf ']';
  Buffer.contents buf

(* Aggregate completed spans by path. First-occurrence order (in span
   start order, lanes interleaved by time) keeps the tree stable and
   readable; a path seen on several lanes folds into one line. *)
let pp_tree ppf c =
  let spans =
    List.rev c.spans
    |> List.sort (fun a b -> Int64.compare a.start_ns b.start_ns)
  in
  let table : (string, int * int64) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun s ->
       match Hashtbl.find_opt table s.path with
       | Some (n, total) ->
         Hashtbl.replace table s.path (n + 1, Int64.add total s.dur_ns)
       | None ->
         Hashtbl.add table s.path (1, s.dur_ns);
         order := (s.path, s.name, s.depth) :: !order)
    spans;
  List.iter
    (fun (path, name, depth) ->
       let n, total = Hashtbl.find table path in
       Format.fprintf ppf "%s%-*s x%-6d %10.3f ms@."
         (String.make (2 * depth) ' ')
         (max 1 (36 - (2 * depth)))
         name n
         (Int64.to_float total /. 1e6))
    (List.rev !order)
