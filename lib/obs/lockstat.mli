(** Contention-accounting mutex wrapper.

    A [Lockstat.t] is a mutex whose acquisitions are counted and whose
    {e blocking} acquisitions are timed: an uncontended [try_lock]
    succeeds without touching the clock, so the wrapper adds one atomic
    increment to the fast path and measures only real waits. The stats
    live in atomics and can be read from any domain at any time without
    taking the lock being measured.

    One [stats] cell may back several locks (e.g. every histogram lock
    in a {!Metrics.registry} shares one), aggregating their contention
    into a single figure. *)

type stats
(** Shared accounting cell: acquisition / contended counters and the
    accumulated wait. Domain-safe. *)

type t
(** A mutex plus the [stats] cell it reports into. *)

val create_stats : unit -> stats

val create : ?stats:stats -> unit -> t
(** A fresh unlocked mutex. Without [?stats] it gets a private cell;
    pass a shared one to aggregate several locks. *)

val stats : t -> stats

val protect : t -> (unit -> 'a) -> 'a
(** [protect t f] runs [f] holding the lock ([Mutex.protect] semantics:
    unlocks on return or raise), counting the acquisition and timing
    the wait iff the lock was contended. *)

val lock : t -> unit
val unlock : t -> unit
(** Explicit acquire / release for call sites where [protect]'s closure
    would allocate on a hot path. [lock] does the accounting. *)

val set_on_wait : stats -> (float -> unit) option -> unit
(** Install (or clear) a per-wait callback: every {e contended}
    acquisition reports its wait in seconds, e.g. into a
    [*.lock_wait_s] histogram. The callback runs on the acquiring
    domain while the lock is held — it must be domain-safe, cheap, and
    must never try to take the same lock (so never install a callback
    that observes into an instrument guarded by the lock it watches). *)

val acquisitions : stats -> int
(** Total acquisitions, contended or not. *)

val contended : stats -> int
(** Acquisitions that found the lock held and had to block. *)

val wait_s : stats -> float
(** Total seconds spent blocked across all contended acquisitions. *)
