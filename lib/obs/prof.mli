(** Structured profiling reports.

    {!capture} folds a run's observability state — the trace's completed
    span tree (wall time and allocation per stage), the [exec.*] pool
    accounting, lock-wait counters and every histogram — into one
    record; {!pp} renders it for terminals, {!to_json} as the
    ["ds-prof/1"] document that [dstool profile] writes and CI gates on.

    Capture only reads {!Metrics.snapshot} and completed {!Trace} spans:
    it never perturbs the run being profiled and is safe to call while
    worker domains are still observing (though stages from a live trace
    cover only spans closed so far). *)

type stage = {
  path : string;  (** "/"-joined span path, as in {!Trace.span.path} *)
  stage_name : string;
  depth : int;
  calls : int;
  wall_s : float;  (** summed across calls and lanes *)
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type pool = {
  maps : int;  (** instrumented parallel maps run *)
  tasks_submitted : int;
  tasks_completed : int;
  workers_max : int;  (** widest pool seen *)
  busy_s : float;  (** total worker task time, all workers *)
  idle_s : float;  (** total worker wait inside parallel regions *)
  spawn_s : float;  (** domain spawn overhead *)
  join_s : float;  (** join + lane-merge overhead *)
  map_wall_s : float;  (** total parallel-region wall time *)
}

type lock = {
  lock_name : string;
  acquisitions : int;
  contended : int;  (** acquisitions that had to block *)
  wait_s : float;  (** total time blocked *)
}

type t = {
  label : string;
  stages : stage list;  (** first-occurrence order, as {!Trace.pp_tree} *)
  pool : pool option;  (** [None] when no instrumented map ran *)
  locks : lock list;
  counters : (string * int) list;  (** full registry, sorted by name *)
  gauges : (string * float) list;
  histograms : (string * Metrics.histogram_snapshot) list;
}

val capture :
  ?label:string ->
  ?registry:Metrics.registry ->
  ?trace:Trace.collector ->
  unit ->
  t

val utilization : pool -> float
(** [busy / (busy + idle)], 0 on an empty pool. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Single-object ["ds-prof/1"] document: [stages] array, [pool] object
    (or null), [locks] array, then the full [counters]/[gauges]/
    [histograms] maps. *)
