(* Domain-safe instruments: the design solver's parallel refit bumps
   counters from worker domains concurrently, so counters and gauges are
   Atomic-backed, histograms take a per-instrument lock, and instrument
   creation is serialized by a registry lock. *)

type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  lock : Mutex.t;
  mutable observed : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry = {
  tbl : (string, instrument) Hashtbl.t;
  lock : Mutex.t;
}

let create () : registry = { tbl = Hashtbl.create 64; lock = Mutex.create () }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let lookup reg name make select =
  let instr =
    Mutex.protect reg.lock (fun () ->
        match Hashtbl.find_opt reg.tbl name with
        | Some instr -> instr
        | None ->
          let instr = make () in
          Hashtbl.add reg.tbl name instr;
          instr)
  in
  match select instr with
  | Some x -> x
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S is already a %s" name
         (kind_name instr))

let counter reg name =
  lookup reg name
    (fun () -> Counter (Atomic.make 0))
    (function Counter c -> Some c | _ -> None)

let gauge reg name =
  lookup reg name
    (fun () -> Gauge (Atomic.make 0.))
    (function Gauge g -> Some g | _ -> None)

let histogram reg name =
  lookup reg name
    (fun () ->
       Histogram
         { lock = Mutex.create (); observed = 0; sum = 0.; lo = 0.; hi = 0. })
    (function Histogram h -> Some h | _ -> None)

let incr c = Atomic.incr c
let add c k = ignore (Atomic.fetch_and_add c k)
let count c = Atomic.get c

let set g v = Atomic.set g v

let rec gauge_add g dv =
  let v = Atomic.get g in
  if not (Atomic.compare_and_set g v (v +. dv)) then gauge_add g dv

let value g = Atomic.get g

let observe (h : histogram) s =
  if not (Float.is_nan s || s < 0.) then
    Mutex.protect h.lock (fun () ->
        if h.observed = 0 then begin h.lo <- s; h.hi <- s end
        else begin h.lo <- Float.min h.lo s; h.hi <- Float.max h.hi s end;
        h.observed <- h.observed + 1;
        h.sum <- h.sum +. s)

let observations h = h.observed
let total h = h.sum
let mean h = if h.observed = 0 then 0. else h.sum /. float_of_int h.observed
let hist_min h = h.lo
let hist_max h = h.hi

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let time h f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> observe h (now_s () -. t0)) f

let names reg =
  Mutex.protect reg.lock (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) reg.tbl [])
  |> List.sort String.compare

let sorted reg =
  List.map (fun name -> (name, Hashtbl.find reg.tbl name)) (names reg)

let pp ppf reg =
  List.iter
    (fun (name, instr) ->
       match instr with
       | Counter c -> Format.fprintf ppf "%-44s %12d@." name (Atomic.get c)
       | Gauge g -> Format.fprintf ppf "%-44s %12.6g@." name (Atomic.get g)
       | Histogram h ->
         Format.fprintf ppf
           "%-44s n=%d total=%.6fs mean=%.6fs min=%.6fs max=%.6fs@." name
           h.observed h.sum (mean h) h.lo h.hi)
    (sorted reg)

(* JSON string escaping for instrument names. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.9g" x

let to_json reg =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, instr) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape name));
       (match instr with
        | Counter c -> Buffer.add_string buf (string_of_int (Atomic.get c))
        | Gauge g -> Buffer.add_string buf (json_float (Atomic.get g))
        | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"count\":%d,\"total_s\":%s,\"mean_s\":%s,\"min_s\":%s,\"max_s\":%s}"
               h.observed (json_float h.sum) (json_float (mean h))
               (json_float h.lo) (json_float h.hi))))
    (sorted reg);
  Buffer.add_char buf '}';
  Buffer.contents buf
