(* Domain-safe instruments: the design solver's parallel refit bumps
   counters from worker domains concurrently, so counters and gauges are
   Atomic-backed, histograms take a per-instrument lock, and instrument
   creation is serialized by a registry lock. Both mutexes are
   [Lockstat]-wrapped, so the registry can report its own contention.

   Renderers never read mutable instrument state directly: they go
   through {!snapshot}, which copies each instrument under its lock —
   a dump racing concurrent observers sees a consistent (count, sum,
   lo, hi, buckets) tuple, never a torn one. *)

type counter = int Atomic.t

type gauge = float Atomic.t

(* Histogram buckets are quarter-powers-of-two spanning 2^-26 s (~15 ns)
   to 2^6 s (64 s): bucket 0 is the underflow range [0, 2^-26), buckets
   1..128 cover the log-spaced span, bucket 129 is overflow. The ~19%
   bucket width bounds the raw percentile error; linear interpolation
   inside the bucket and clamping into [lo, hi] tighten it further. *)
let min_exponent = -26
let max_exponent = 6
let buckets_per_octave = 4

let log_buckets = (max_exponent - min_exponent) * buckets_per_octave
let bucket_count = log_buckets + 2
let min_edge = 2. ** float_of_int min_exponent
let max_edge = 2. ** float_of_int max_exponent

let bucket_of s =
  if s < min_edge then 0
  else if s >= max_edge then bucket_count - 1
  else
    let raw =
      int_of_float
        (Float.floor
           ((Float.log2 s -. float_of_int min_exponent)
            *. float_of_int buckets_per_octave))
    in
    1 + max 0 (min (log_buckets - 1) raw)

(* Lower edge of bucket [b] for b in [1, log_buckets]; bucket b covers
   [edge b, edge (b + 1)). *)
let edge b =
  2.
  ** (float_of_int min_exponent
      +. (float_of_int (b - 1) /. float_of_int buckets_per_octave))

type histogram = {
  lock : Lockstat.t;
  mutable observed : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  buckets : int array;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry = {
  tbl : (string, instrument) Hashtbl.t;
  lock : Lockstat.t;
  hist_lock_stats : Lockstat.stats;
      (* One shared cell: per-histogram contention aggregated across
         every histogram in the registry. *)
}

let create () : registry =
  { tbl = Hashtbl.create 64;
    lock = Lockstat.create ();
    hist_lock_stats = Lockstat.create_stats () }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let lookup reg name make select =
  let instr =
    Lockstat.protect reg.lock (fun () ->
        match Hashtbl.find_opt reg.tbl name with
        | Some instr -> instr
        | None ->
          let instr = make () in
          Hashtbl.add reg.tbl name instr;
          instr)
  in
  match select instr with
  | Some x -> x
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %S is already a %s" name
         (kind_name instr))

let counter reg name =
  lookup reg name
    (fun () -> Counter (Atomic.make 0))
    (function Counter c -> Some c | _ -> None)

let gauge reg name =
  lookup reg name
    (fun () -> Gauge (Atomic.make 0.))
    (function Gauge g -> Some g | _ -> None)

let histogram reg name =
  lookup reg name
    (fun () ->
       Histogram
         { lock = Lockstat.create ~stats:reg.hist_lock_stats ();
           observed = 0;
           sum = 0.;
           lo = 0.;
           hi = 0.;
           buckets = Array.make bucket_count 0 })
    (function Histogram h -> Some h | _ -> None)

let incr c = Atomic.incr c
let add c k = ignore (Atomic.fetch_and_add c k)
let count c = Atomic.get c

let set g v = Atomic.set g v

let rec gauge_add g dv =
  let v = Atomic.get g in
  if not (Atomic.compare_and_set g v (v +. dv)) then gauge_add g dv

let rec gauge_max g v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then gauge_max g v

let value g = Atomic.get g

let observe (h : histogram) s =
  if not (Float.is_nan s || s < 0.) then
    Lockstat.protect h.lock (fun () ->
        if h.observed = 0 then begin h.lo <- s; h.hi <- s end
        else begin h.lo <- Float.min h.lo s; h.hi <- Float.max h.hi s end;
        h.observed <- h.observed + 1;
        h.sum <- h.sum +. s;
        h.buckets.(bucket_of s) <- h.buckets.(bucket_of s) + 1)

let observations h = h.observed
let total h = h.sum
let mean h = if h.observed = 0 then 0. else h.sum /. float_of_int h.observed
let hist_min h = h.lo
let hist_max h = h.hi

(* Percentile from the bucket counts of a consistent histogram state
   (caller holds the lock or owns a snapshot): find the bucket holding
   the target rank, interpolate linearly between its edges, clamp into
   the exact [lo, hi] envelope. *)
let percentile_of ~observed ~lo ~hi (buckets : int array) q =
  if observed = 0 then 0.
  else begin
    let target = Float.max 1. (Float.round (q *. float_of_int observed)) in
    let b = ref 0 and cum = ref 0 in
    while
      !b < bucket_count - 1
      && float_of_int (!cum + buckets.(!b)) < target
    do
      cum := !cum + buckets.(!b);
      b := !b + 1
    done;
    let b = !b in
    let in_bucket = buckets.(b) in
    let frac =
      if in_bucket = 0 then 1.
      else (target -. float_of_int !cum) /. float_of_int in_bucket
    in
    let b_lo, b_hi =
      if b = 0 then (0., min_edge)
      else if b = bucket_count - 1 then (max_edge, Float.max max_edge hi)
      else (edge b, edge (b + 1))
    in
    let v = b_lo +. (frac *. (b_hi -. b_lo)) in
    Float.min hi (Float.max lo v)
  end

let percentile (h : histogram) q =
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg "Obs.Metrics.percentile: q outside [0, 1]";
  Lockstat.protect h.lock (fun () ->
      percentile_of ~observed:h.observed ~lo:h.lo ~hi:h.hi h.buckets q)

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let time h f =
  let t0 = now_s () in
  Fun.protect ~finally:(fun () -> observe h (now_s () -. t0)) f

(* ------------------------------------------------------------------ *)
(* Consistent snapshots: every read of mutable instrument state for     *)
(* rendering goes through here.                                         *)
(* ------------------------------------------------------------------ *)

type histogram_snapshot = {
  snap_count : int;
  snap_total : float;
  snap_mean : float;
  snap_min : float;
  snap_max : float;
  snap_p50 : float;
  snap_p90 : float;
  snap_p99 : float;
}

type value =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of histogram_snapshot

let snapshot_histogram (h : histogram) =
  Lockstat.protect h.lock (fun () ->
      let pct = percentile_of ~observed:h.observed ~lo:h.lo ~hi:h.hi h.buckets in
      { snap_count = h.observed;
        snap_total = h.sum;
        snap_mean =
          (if h.observed = 0 then 0. else h.sum /. float_of_int h.observed);
        snap_min = h.lo;
        snap_max = h.hi;
        snap_p50 = pct 0.5;
        snap_p90 = pct 0.9;
        snap_p99 = pct 0.99 })

let snapshot reg =
  (* Bindings are copied under the registry lock (names and instrument
     identities never change once created, so reading each instrument's
     state after releasing it is safe — instrument locks take over). *)
  let bindings =
    Lockstat.protect reg.lock (fun () ->
        Hashtbl.fold (fun name instr acc -> (name, instr) :: acc) reg.tbl [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.map
    (fun (name, instr) ->
       let v =
         match instr with
         | Counter c -> Counter_value (Atomic.get c)
         | Gauge g -> Gauge_value (Atomic.get g)
         | Histogram h -> Histogram_value (snapshot_histogram h)
       in
       (name, v))
    bindings

let names reg = List.map fst (snapshot reg)

let lock_stats reg =
  [ ("metrics.registry", Lockstat.stats reg.lock);
    ("metrics.histograms", reg.hist_lock_stats) ]

let pp ppf reg =
  List.iter
    (fun (name, v) ->
       match v with
       | Counter_value c -> Format.fprintf ppf "%-44s %12d@." name c
       | Gauge_value g -> Format.fprintf ppf "%-44s %12.6g@." name g
       | Histogram_value h ->
         Format.fprintf ppf
           "%-44s n=%d total=%.6fs mean=%.6fs min=%.6fs p50=%.6fs \
            p90=%.6fs p99=%.6fs max=%.6fs@."
           name h.snap_count h.snap_total h.snap_mean h.snap_min h.snap_p50
           h.snap_p90 h.snap_p99 h.snap_max)
    (snapshot reg)

(* JSON string escaping for instrument names. *)
let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.9g" x

let histogram_snapshot_json h =
  Printf.sprintf
    "{\"count\":%d,\"total_s\":%s,\"mean_s\":%s,\"min_s\":%s,\"max_s\":%s,\
     \"p50_s\":%s,\"p90_s\":%s,\"p99_s\":%s}"
    h.snap_count (json_float h.snap_total) (json_float h.snap_mean)
    (json_float h.snap_min) (json_float h.snap_max) (json_float h.snap_p50)
    (json_float h.snap_p90) (json_float h.snap_p99)

let json_escape = escape

let to_json reg =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape name));
       match v with
       | Counter_value c -> Buffer.add_string buf (string_of_int c)
       | Gauge_value g -> Buffer.add_string buf (json_float g)
       | Histogram_value h -> Buffer.add_string buf (histogram_snapshot_json h))
    (snapshot reg);
  Buffer.add_char buf '}';
  Buffer.contents buf
