(** Hierarchical span tracing with per-domain lanes.

    A collector records a tree of timed spans ({!with_span} nests by
    dynamic scope) on {e one} thread of control. Parallel regions give
    each worker domain its own lane collector ({!worker}) sharing the
    parent's clock origin and tagged with a distinct [tid]; after the
    domains join, lanes are folded back with {!merge} — Chrome trace
    export then shows one lane (thread row) per domain.

    Every span also carries the [Gc.quick_stat] delta of its own domain
    across its extent (minor/major words allocated, collection counts),
    so the trace attributes allocation as well as wall time.

    Export either as Chrome trace-event JSON — load the file in
    [chrome://tracing] or [ui.perfetto.dev] — or as an aggregated text
    tree (per path: call count and total self+child time).

    Timestamps come from the OS monotonic clock, relative to the
    collector's creation. *)

type alloc = {
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type span = {
  name : string;
  args : (string * string) list;
  start_ns : int64;  (** relative to the collector origin *)
  dur_ns : int64;
  depth : int;
  path : string;  (** "/"-joined ancestor names, self included *)
  tid : int;  (** lane: 1 = the creating thread, 2.. = worker lanes *)
  alloc : alloc;
}

type collector

val create : unit -> collector
(** A fresh root collector, lane [tid = 1], origin = now. *)

val worker : collector -> tid:int -> collector
(** A lane collector for one worker domain: shares [parent]'s clock
    origin, records under its own [tid], and roots its span paths under
    [parent]'s currently open span (so merged worker spans aggregate
    beneath the span that forked them). The lane must only ever be used
    from a single domain; fold it back with {!merge} after joining. *)

val merge : into:collector -> collector -> unit
(** Append a completed lane's spans into [into]. Call after the lane's
    domain has joined, in worker-index order for a deterministic span
    list; the lane must not be used afterwards. *)

val tid : collector -> int

val with_span :
  collector -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. The span closes when the thunk
    returns or raises. [args] become the Chrome event's [args] payload,
    alongside the span's allocation delta. *)

val span_count : collector -> int
(** Completed spans recorded so far (merged lanes included). *)

val spans : collector -> span list
(** Completed spans, sorted by lane then start time. *)

val to_chrome_json : collector -> string
(** The completed spans as a JSON array of complete ("ph":"X") trace
    events, timestamps and durations in microseconds, one [tid] per
    lane, allocation deltas in each event's [args]. *)

val pp_tree : Format.formatter -> collector -> unit
(** Aggregated tree: one line per distinct span path with call count and
    total duration, indented by depth, children sorted by first
    occurrence; the same path on several lanes folds into one line. *)
