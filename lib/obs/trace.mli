(** Hierarchical span tracing.

    A collector records a tree of timed spans ({!with_span} nests by
    dynamic scope). Export either as Chrome trace-event JSON — load the
    file in [chrome://tracing] or [ui.perfetto.dev] — or as an
    aggregated text tree (per path: call count and total self+child
    time).

    Timestamps come from the OS monotonic clock, relative to the
    collector's creation. *)

type collector

val create : unit -> collector

val with_span :
  collector -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span. The span closes when the thunk
    returns or raises. [args] become the Chrome event's [args] payload. *)

val span_count : collector -> int
(** Completed spans recorded so far. *)

val to_chrome_json : collector -> string
(** The completed spans as a JSON array of complete ("ph":"X") trace
    events, timestamps and durations in microseconds. *)

val pp_tree : Format.formatter -> collector -> unit
(** Aggregated tree: one line per distinct span path with call count and
    total duration, indented by depth, children sorted by first
    occurrence. *)
