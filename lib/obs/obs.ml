module Metrics = Metrics
module Trace = Trace
module Progress = Progress
module Lockstat = Lockstat
module Prof = Prof

type t = {
  metrics : Metrics.registry option;
  trace : Trace.collector option;
  progress : Progress.stream option;
}

let noop = { metrics = None; trace = None; progress = None }

let create ?(metrics = false) ?(trace = false) ?(progress = false) () =
  { metrics = (if metrics then Some (Metrics.create ()) else None);
    trace = (if trace then Some (Trace.create ()) else None);
    progress = (if progress then Some (Progress.create ()) else None) }

(* [create] makes fresh sinks; [attach] wraps existing ones. The server
   hands every request the same resident metrics registry but its own
   progress stream, which [create]'s fresh-registry-per-capability shape
   cannot express. *)
let attach ?metrics ?trace ?progress () = { metrics; trace; progress }

let metrics t = t.metrics
let trace t = t.trace
let progress t = t.progress

let without_trace t = if t.trace = None then t else { t with trace = None }

let fork_lane t ~tid =
  match t.trace with
  | None -> (t, None)
  | Some parent ->
    let lane = Trace.worker parent ~tid in
    ({ t with trace = Some lane }, Some lane)

let merge_lane t lane =
  match (t.trace, lane) with
  | Some parent, Some lane -> Trace.merge ~into:parent lane
  | _ -> ()

let metrics_on t = t.metrics <> None

let incr t name =
  match t.metrics with
  | None -> ()
  | Some reg -> Metrics.incr (Metrics.counter reg name)

let add t name k =
  match t.metrics with
  | None -> ()
  | Some reg -> Metrics.add (Metrics.counter reg name) k

let gauge_add t name dv =
  match t.metrics with
  | None -> ()
  | Some reg -> Metrics.gauge_add (Metrics.gauge reg name) dv

let gauge_set t name v =
  match t.metrics with
  | None -> ()
  | Some reg -> Metrics.set (Metrics.gauge reg name) v

let observe t name s =
  match t.metrics with
  | None -> ()
  | Some reg -> Metrics.observe (Metrics.histogram reg name) s

let time t name f =
  match t.metrics with
  | None -> f ()
  | Some reg -> Metrics.time (Metrics.histogram reg name) f

let with_span t ?args name f =
  match t.trace with
  | None -> f ()
  | Some c -> Trace.with_span c ?args name f

let stage t ~evaluations name =
  match t.progress with
  | None -> ()
  | Some s -> Progress.stage s ~evaluations name

let incumbent t ~evaluations cost =
  match t.progress with
  | None -> ()
  | Some s -> Progress.incumbent s ~evaluations cost

let portfolio_incumbent t ~evaluations ~restart cost =
  match t.progress with
  | None -> ()
  | Some s -> Progress.portfolio_incumbent s ~evaluations ~restart cost

let shard_done t ~evaluations ~shard cost =
  match t.progress with
  | None -> ()
  | Some s -> Progress.shard_done s ~evaluations ~shard cost

let refit_accepted t ~evaluations =
  match t.progress with
  | None -> ()
  | Some s -> Progress.accepted s ~evaluations

let refit_rejected t ~evaluations =
  match t.progress with
  | None -> ()
  | Some s -> Progress.rejected s ~evaluations

let write_file path contents =
  try
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc contents);
    Ok ()
  with Sys_error reason ->
    Error
      (Printf.sprintf "cannot write %s: %s"
         (if path = "" then "''" else path) reason)
