(* Structured profiling report: one capture folds the trace's span tree
   (wall + allocation per stage), the Exec pool-accounting metrics, the
   lock-wait counters and the full histogram set into a record that
   renders as text (`dstool profile`) or JSON (the artifact CI uploads
   and the next perf PR is judged against).

   Reads only Metrics snapshots and completed Trace spans — capturing a
   profile never perturbs the run that produced it. *)

type stage = {
  path : string;
  stage_name : string;
  depth : int;
  calls : int;
  wall_s : float;
  minor_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type pool = {
  maps : int;
  tasks_submitted : int;
  tasks_completed : int;
  workers_max : int;
  busy_s : float;
  idle_s : float;
  spawn_s : float;
  join_s : float;
  map_wall_s : float;
}

type lock = {
  lock_name : string;
  acquisitions : int;
  contended : int;
  wait_s : float;
}

type t = {
  label : string;
  stages : stage list;
  pool : pool option;
  locks : lock list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Metrics.histogram_snapshot) list;
}

(* ------------------------------------------------------------------ *)
(* Capture                                                             *)
(* ------------------------------------------------------------------ *)

(* Aggregate completed spans by path, first occurrence (in start order,
   lanes interleaved by time) fixing the display order — the same rule
   as [Trace.pp_tree], with allocation folded in. *)
let stages_of_collector c =
  let spans =
    List.sort
      (fun (a : Trace.span) b -> Int64.compare a.Trace.start_ns b.Trace.start_ns)
      (Trace.spans c)
  in
  let table : (string, stage) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : Trace.span) ->
       let wall = Int64.to_float s.Trace.dur_ns *. 1e-9 in
       let a = s.Trace.alloc in
       match Hashtbl.find_opt table s.Trace.path with
       | Some st ->
         Hashtbl.replace table s.Trace.path
           { st with
             calls = st.calls + 1;
             wall_s = st.wall_s +. wall;
             minor_words = st.minor_words +. a.Trace.minor_words;
             major_words = st.major_words +. a.Trace.major_words;
             minor_collections =
               st.minor_collections + a.Trace.minor_collections;
             major_collections =
               st.major_collections + a.Trace.major_collections }
       | None ->
         Hashtbl.add table s.Trace.path
           { path = s.Trace.path;
             stage_name = s.Trace.name;
             depth = s.Trace.depth;
             calls = 1;
             wall_s = wall;
             minor_words = a.Trace.minor_words;
             major_words = a.Trace.major_words;
             minor_collections = a.Trace.minor_collections;
             major_collections = a.Trace.major_collections };
         order := s.Trace.path :: !order)
    spans;
  List.rev_map (Hashtbl.find table) !order

let assoc_counter counters name =
  match List.assoc_opt name counters with Some n -> n | None -> 0

let assoc_hist_total histograms name =
  match List.assoc_opt name histograms with
  | Some (h : Metrics.histogram_snapshot) -> h.Metrics.snap_total
  | None -> 0.

let pool_of ~counters ~gauges ~histograms =
  let maps = assoc_counter counters "exec.maps" in
  if maps = 0 then None
  else
    Some
      { maps;
        tasks_submitted = assoc_counter counters "exec.tasks";
        tasks_completed = assoc_counter counters "exec.tasks_completed";
        workers_max =
          (match List.assoc_opt "exec.workers_max" gauges with
           | Some w -> int_of_float w
           | None -> 0);
        busy_s = assoc_hist_total histograms "exec.worker_busy_s";
        idle_s = assoc_hist_total histograms "exec.worker_idle_s";
        spawn_s = assoc_hist_total histograms "exec.spawn_s";
        join_s = assoc_hist_total histograms "exec.join_s";
        map_wall_s = assoc_hist_total histograms "exec.map_wall_s" }

let locks_of reg ~counters ~gauges =
  let self =
    List.map
      (fun (name, stats) ->
         { lock_name = name;
           acquisitions = Lockstat.acquisitions stats;
           contended = Lockstat.contended stats;
           wait_s = Lockstat.wait_s stats })
      (Metrics.lock_stats reg)
  in
  (* The solver mirrors its memo-cache lock here (design_solver.ml). *)
  let memo =
    if assoc_counter counters "memo.lock_acquisitions" = 0 then []
    else
      [ { lock_name = "solver.memo";
          acquisitions = assoc_counter counters "memo.lock_acquisitions";
          contended = assoc_counter counters "memo.lock_contended";
          wait_s =
            (match List.assoc_opt "memo.lock_wait_total_s" gauges with
             | Some s -> s
             | None -> 0.) } ]
  in
  memo @ self

let capture ?(label = "profile") ?registry ?trace () =
  let counters, gauges, histograms =
    match registry with
    | None -> ([], [], [])
    | Some reg ->
      List.fold_left
        (fun (cs, gs, hs) (name, v) ->
           match v with
           | Metrics.Counter_value n -> ((name, n) :: cs, gs, hs)
           | Metrics.Gauge_value x -> (cs, (name, x) :: gs, hs)
           | Metrics.Histogram_value h -> (cs, gs, (name, h) :: hs))
        ([], [], []) (List.rev (Metrics.snapshot reg))
  in
  { label;
    stages = (match trace with None -> [] | Some c -> stages_of_collector c);
    pool = pool_of ~counters ~gauges ~histograms;
    locks =
      (match registry with
       | None -> []
       | Some reg -> locks_of reg ~counters ~gauges);
    counters;
    gauges;
    histograms }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let mwords w = w /. 1e6

let pp_stage ppf st =
  Format.fprintf ppf "%s%-*s x%-6d %10.3f s  %10.2f Mw minor  %8.2f Mw \
                      major  %d/%d gc@."
    (String.make (2 * st.depth) ' ')
    (max 1 (34 - (2 * st.depth)))
    st.stage_name st.calls st.wall_s (mwords st.minor_words)
    (mwords st.major_words) st.minor_collections st.major_collections

let utilization p =
  let denom = p.busy_s +. p.idle_s in
  if denom <= 0. then 0. else p.busy_s /. denom

let pp ppf t =
  Format.fprintf ppf "profile: %s@." t.label;
  if t.stages <> [] then begin
    Format.fprintf ppf "@.stages (wall / allocation by span path):@.";
    List.iter (pp_stage ppf) t.stages
  end;
  (match t.pool with
   | None -> ()
   | Some p ->
     Format.fprintf ppf
       "@.pool: %d maps, %d/%d tasks completed, <=%d workers@.  busy \
        %.3fs, idle %.3fs (utilization %.1f%%), spawn %.3fs, join %.3fs, \
        region wall %.3fs@."
       p.maps p.tasks_completed p.tasks_submitted p.workers_max p.busy_s
       p.idle_s
       (100. *. utilization p)
       p.spawn_s p.join_s p.map_wall_s);
  if t.locks <> [] then begin
    Format.fprintf ppf "@.locks:@.";
    List.iter
      (fun l ->
         Format.fprintf ppf
           "  %-24s %9d acquisitions  %7d contended  %10.6fs waited@."
           l.lock_name l.acquisitions l.contended l.wait_s)
      t.locks
  end;
  (match
     List.filter
       (fun (_, (h : Metrics.histogram_snapshot)) -> h.Metrics.snap_count > 0)
       t.histograms
     |> List.sort
          (fun (_, (a : Metrics.histogram_snapshot)) (_, b) ->
             Float.compare b.Metrics.snap_total a.Metrics.snap_total)
   with
   | [] -> ()
   | ranked ->
     Format.fprintf ppf "@.top histograms (by total):@.";
     List.iteri
       (fun i (name, (h : Metrics.histogram_snapshot)) ->
          if i < 12 then
            Format.fprintf ppf
              "  %-34s n=%-8d total=%.4fs p50=%.6fs p90=%.6fs p99=%.6fs \
               max=%.6fs@."
              name h.Metrics.snap_count h.Metrics.snap_total
              h.Metrics.snap_p50 h.Metrics.snap_p90 h.Metrics.snap_p99
              h.Metrics.snap_max)
       ranked)

let to_json t =
  let buf = Buffer.create 4096 in
  let str = Metrics.json_escape in
  let num = Metrics.json_float in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":\"ds-prof/1\",\"label\":\"%s\"," (str t.label));
  Buffer.add_string buf "\"stages\":[";
  List.iteri
    (fun i st ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf
         (Printf.sprintf
            "{\"path\":\"%s\",\"depth\":%d,\"calls\":%d,\"wall_s\":%s,\
             \"minor_words\":%s,\"major_words\":%s,\
             \"minor_collections\":%d,\"major_collections\":%d}"
            (str st.path) st.depth st.calls (num st.wall_s)
            (num st.minor_words) (num st.major_words) st.minor_collections
            st.major_collections))
    t.stages;
  Buffer.add_string buf "],";
  (match t.pool with
   | None -> Buffer.add_string buf "\"pool\":null,"
   | Some p ->
     Buffer.add_string buf
       (Printf.sprintf
          "\"pool\":{\"maps\":%d,\"tasks_submitted\":%d,\
           \"tasks_completed\":%d,\"workers_max\":%d,\"busy_s\":%s,\
           \"idle_s\":%s,\"spawn_s\":%s,\"join_s\":%s,\"map_wall_s\":%s,\
           \"utilization\":%s},"
          p.maps p.tasks_submitted p.tasks_completed p.workers_max
          (num p.busy_s) (num p.idle_s) (num p.spawn_s) (num p.join_s)
          (num p.map_wall_s)
          (num (utilization p))));
  Buffer.add_string buf "\"locks\":[";
  List.iteri
    (fun i l ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf
         (Printf.sprintf
            "{\"name\":\"%s\",\"acquisitions\":%d,\"contended\":%d,\
             \"wait_s\":%s}"
            (str l.lock_name) l.acquisitions l.contended (num l.wait_s)))
    t.locks;
  Buffer.add_string buf "],\"counters\":{";
  List.iteri
    (fun i (name, n) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (str name) n))
    t.counters;
  Buffer.add_string buf "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (str name) (num v)))
    t.gauges;
  Buffer.add_string buf "},\"histograms\":{";
  List.iteri
    (fun i (name, h) ->
       if i > 0 then Buffer.add_char buf ',';
       Buffer.add_string buf
         (Printf.sprintf "\"%s\":%s" (str name)
            (Metrics.histogram_snapshot_json h)))
    t.histograms;
  Buffer.add_string buf "}}";
  Buffer.contents buf
