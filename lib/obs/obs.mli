(** Observability capability.

    Every instrumented entry point in the solver / simulation stack takes
    an [Obs.t], defaulting to {!noop}. The noop value carries no sinks:
    every hook below reduces to a branch on an immutable [None] and
    returns without allocating, so the uninstrumented path costs nothing
    and instrumentation can never change results (hooks only ever read
    solver state, never the RNG).

    Sinks are opt-in per concern: {!Metrics} (counters / gauges /
    duration histograms), {!Trace} (hierarchical spans, Chrome
    trace-event export) and {!Progress} (solver convergence stream). *)

module Metrics = Metrics
module Trace = Trace
module Progress = Progress
module Lockstat = Lockstat
module Prof = Prof

type t

val noop : t
(** The shared do-nothing capability; physically one value, compared
    against with [==] nowhere — hooks just see its [None] sinks. *)

val create : ?metrics:bool -> ?trace:bool -> ?progress:bool -> unit -> t
(** Enable the requested sinks (all default to [false];
    [create ()] is an all-off capability equivalent to {!noop}). *)

val attach :
  ?metrics:Metrics.registry ->
  ?trace:Trace.collector ->
  ?progress:Progress.stream ->
  unit -> t
(** A capability wrapping {e existing} sinks instead of fresh ones — a
    long-running server hands every request the same resident metrics
    registry while giving each its own progress stream, a mix {!create}
    cannot express. Omitted sinks stay off. *)

val metrics : t -> Metrics.registry option
val trace : t -> Trace.collector option
val progress : t -> Progress.stream option

val metrics_on : t -> bool
(** [true] when a metrics registry is attached — guard for hooks that
    would otherwise build instrument names on the hot path. *)

val without_trace : t -> t
(** The same capability with the span collector removed. {!Metrics}
    instruments are domain-safe, but {!Trace} spans nest by dynamic
    scope on a single thread of control — code that runs on worker
    domains (the design solver's parallel refit probes) takes this
    stripped capability so concurrent spans cannot corrupt the
    collector. Metrics and progress sinks are untouched. *)

val fork_lane : t -> tid:int -> t * Trace.collector option
(** A worker-domain capability: same (domain-safe) metrics and progress
    sinks, but its own {!Trace.worker} lane collector tagged [tid] in
    place of the parent's. Without a trace sink this is [(t, None)].
    The lane handle must be folded back with {!merge_lane} after the
    worker's domain joins, in worker-index order. *)

val merge_lane : t -> Trace.collector option -> unit
(** Fold a joined worker lane's spans back into [t]'s collector.
    No-op when either side has no trace. *)

(** {1 Metric hooks} — no-ops without a metrics sink. *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val gauge_add : t -> string -> float -> unit
val gauge_set : t -> string -> float -> unit
val observe : t -> string -> float -> unit
(** Record a duration sample (seconds) into the named histogram. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Time the thunk into the named histogram; with no metrics sink this
    is exactly [f ()]. *)

(** {1 Span hooks} — no-ops without a trace sink. *)

val with_span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** {1 Progress hooks} — no-ops without a progress sink. *)

val stage : t -> evaluations:int -> string -> unit
val incumbent : t -> evaluations:int -> float -> unit

val portfolio_incumbent : t -> evaluations:int -> restart:int -> float -> unit
(** A portfolio restart improved the shared incumbent (tracked
    independently of the per-restart {!incumbent} line). *)

val shard_done : t -> evaluations:int -> shard:int -> float -> unit
(** A fleet shard's solve completed at the given cost (dollars). *)

val refit_accepted : t -> evaluations:int -> unit
val refit_rejected : t -> evaluations:int -> unit

(** {1 Sink export} *)

val write_file : string -> string -> (unit, string) result
(** [write_file path contents] writes a sink export (Chrome trace JSON,
    progress CSV, metrics dump) to [path]. An unwritable path returns
    [Error reason] rather than raising, so callers can both keep the run's
    printed results and exit nonzero — CI must see the failure. *)
