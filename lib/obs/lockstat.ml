(* Contention-accounting mutex wrapper.

   The fast path is a [Mutex.try_lock]: an uncontended acquisition costs
   one atomic bump on top of the bare mutex and never reads the clock.
   Only when the lock is actually held elsewhere do we time the blocking
   [Mutex.lock] and accumulate the wait. Stats cells are atomics so
   worker domains can hammer one lock while another domain reads the
   totals — no lock is ever taken to *report* lock contention.

   Deliberately dependency-free within ds_obs (the clock aside):
   [Metrics] uses it for its own registry and histogram mutexes, so this
   module cannot itself depend on [Metrics]. Sinks that want per-wait
   samples (e.g. a [*.lock_wait_s] histogram) attach a callback with
   {!set_on_wait} instead. *)

type stats = {
  acquisitions : int Atomic.t;
  contended : int Atomic.t;
  wait_ns : int Atomic.t;  (* 2^62 ns is ~146 years: an int cannot wrap *)
  on_wait : (float -> unit) option Atomic.t;
}

type t = {
  mutex : Mutex.t;
  stats : stats;
}

let create_stats () =
  { acquisitions = Atomic.make 0;
    contended = Atomic.make 0;
    wait_ns = Atomic.make 0;
    on_wait = Atomic.make None }

let create ?stats () =
  { mutex = Mutex.create ();
    stats = (match stats with Some s -> s | None -> create_stats ()) }

let stats t = t.stats

let set_on_wait stats f = Atomic.set stats.on_wait f

let now_ns () = Monotonic_clock.now ()

let lock t =
  ignore (Atomic.fetch_and_add t.stats.acquisitions 1);
  if not (Mutex.try_lock t.mutex) then begin
    let t0 = now_ns () in
    Mutex.lock t.mutex;
    let waited = Int64.to_int (Int64.sub (now_ns ()) t0) in
    ignore (Atomic.fetch_and_add t.stats.contended 1);
    ignore (Atomic.fetch_and_add t.stats.wait_ns (max 0 waited));
    match Atomic.get t.stats.on_wait with
    | None -> ()
    | Some f -> f (float_of_int (max 0 waited) *. 1e-9)
  end

let unlock t = Mutex.unlock t.mutex

let protect t f =
  lock t;
  Fun.protect ~finally:(fun () -> unlock t) f

let acquisitions stats = Atomic.get stats.acquisitions
let contended stats = Atomic.get stats.contended
let wait_s stats = float_of_int (Atomic.get stats.wait_ns) *. 1e-9
