(** Solver-convergence telemetry.

    A stream records the design solver's trajectory against its
    evaluation counter: stage transitions (greedy / refit / polish),
    incumbent-cost improvements, and refit acceptance decisions. The CSV
    export is the input for convergence plots; the incumbent column is
    monotonically non-increasing by construction ({!incumbent} drops
    samples that do not improve on the best seen).

    Streams are domain-safe (mutex-guarded): experiment arms running on
    an [Exec] pool may share one. Events from concurrent recorders
    interleave in schedule order; each recorder's own events stay
    ordered. *)

type event =
  | Stage of string  (** Search stage transition. *)
  | Incumbent of float  (** New best total cost, in dollars. *)
  | Accepted  (** A refit round improved the incumbent. *)
  | Rejected  (** A refit round failed to improve. *)
  | Portfolio of { restart : int; cost : float }
      (** A portfolio restart improved the shared incumbent. *)
  | Shard of { shard : int; cost : float }
      (** A fleet shard's solve completed at this cost. *)

type entry = {
  evaluations : int;  (** Configuration-solver calls so far. *)
  event : event;
}

type stream

val create : unit -> stream

val stage : stream -> evaluations:int -> string -> unit
val incumbent : stream -> evaluations:int -> float -> unit
(** Recorded only when strictly below the best recorded so far (the
    first sample always records). *)

val accepted : stream -> evaluations:int -> unit
val rejected : stream -> evaluations:int -> unit

val portfolio_incumbent :
  stream -> evaluations:int -> restart:int -> float -> unit
(** Recorded only when strictly below the best portfolio cost recorded
    so far. The portfolio incumbent line is tracked independently of
    {!incumbent} — restart-local solver incumbents and the shared
    portfolio incumbent interleave in one stream without perturbing each
    other's monotonicity. *)

val shard_done : stream -> evaluations:int -> shard:int -> float -> unit
(** A fleet shard finished solving at the given cost (dollars). Always
    recorded — the fleet coordinator emits one per shard in index order
    after the parallel join, so the stream documents every shard. *)

val entries : stream -> entry list
(** In recording order. *)

val best : stream -> float option
(** Lowest incumbent recorded. *)

val portfolio_best : stream -> float option
(** Lowest portfolio incumbent recorded. *)

val accepted_count : stream -> int
val rejected_count : stream -> int

val to_csv : stream -> string
(** Header [evaluations,event,stage,cost]; [stage] is populated on stage
    rows, [cost] on incumbent rows. Portfolio rows put the restart index
    in the [stage] column and the new best cost in [cost]; shard rows do
    the same with the shard index. *)
