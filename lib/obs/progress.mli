(** Solver-convergence telemetry.

    A stream records the design solver's trajectory against its
    evaluation counter: stage transitions (greedy / refit / polish),
    incumbent-cost improvements, and refit acceptance decisions. The CSV
    export is the input for convergence plots; the incumbent column is
    monotonically non-increasing by construction ({!incumbent} drops
    samples that do not improve on the best seen).

    Streams are domain-safe (mutex-guarded): experiment arms running on
    an [Exec] pool may share one. Events from concurrent recorders
    interleave in schedule order; each recorder's own events stay
    ordered. *)

type event =
  | Stage of string  (** Search stage transition. *)
  | Incumbent of float  (** New best total cost, in dollars. *)
  | Accepted  (** A refit round improved the incumbent. *)
  | Rejected  (** A refit round failed to improve. *)
  | Portfolio of { restart : int; cost : float }
      (** A portfolio restart improved the shared incumbent. *)
  | Shard of { shard : int; cost : float }
      (** A fleet shard's solve completed at this cost. *)

type entry = {
  evaluations : int;  (** Configuration-solver calls so far. *)
  event : event;
}

type stream

val create : ?on_event:(entry -> unit) -> unit -> stream
(** [on_event] fires once per recorded entry (suppressed non-improving
    incumbent samples never reach it), {e outside} the stream's lock: a
    subscriber that blocks — a server flushing the event down a socket —
    does not stall concurrent recorders, and a hook that reads the
    stream back cannot deadlock. Consequently, events pushed by
    {e concurrent} recorders may reach the hook in an order that differs
    from the recorded one; a single recorder's events arrive in order.
    The hook must not raise. *)

val streaming : out_channel -> stream
(** A stream whose events are also written to [oc] as CSV — the
    {!csv_header} immediately, then one {!csv_line} per event — with a
    flush after every write, so the reader side of a pipe or socket sees
    each event before the producer finishes (live progress for server
    clients; [to_csv] only materializes at the end). Writes are
    mutex-serialized across recorder threads. The channel stays open:
    closing it is the caller's job, after the last recorder is done. *)

val stage : stream -> evaluations:int -> string -> unit
val incumbent : stream -> evaluations:int -> float -> unit
(** Recorded only when strictly below the best recorded so far (the
    first sample always records). *)

val accepted : stream -> evaluations:int -> unit
val rejected : stream -> evaluations:int -> unit

val portfolio_incumbent :
  stream -> evaluations:int -> restart:int -> float -> unit
(** Recorded only when strictly below the best portfolio cost recorded
    so far. The portfolio incumbent line is tracked independently of
    {!incumbent} — restart-local solver incumbents and the shared
    portfolio incumbent interleave in one stream without perturbing each
    other's monotonicity. *)

val shard_done : stream -> evaluations:int -> shard:int -> float -> unit
(** A fleet shard finished solving at the given cost (dollars). Always
    recorded — the fleet coordinator emits one per shard in index order
    after the parallel join, so the stream documents every shard. *)

val entries : stream -> entry list
(** In recording order. *)

val best : stream -> float option
(** Lowest incumbent recorded. *)

val portfolio_best : stream -> float option
(** Lowest portfolio incumbent recorded. *)

val accepted_count : stream -> int
val rejected_count : stream -> int

val to_csv : stream -> string
(** Header [evaluations,event,stage,cost]; [stage] is populated on stage
    rows, [cost] on incumbent rows. Portfolio rows put the restart index
    in the [stage] column and the new best cost in [cost]; shard rows do
    the same with the shard index. *)

val csv_header : string
(** The header line {!to_csv} starts with (newline-terminated). *)

val csv_line : entry -> string
(** One {!to_csv} row (newline-terminated) — the per-event unit the
    {!streaming} writer flushes. *)
