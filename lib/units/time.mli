(** Durations.

    All windows, recovery times and data-loss times in the model are
    durations. The representation is seconds in a float; the abstract type
    stops accidental mixing with sizes, rates and dollar amounts. *)

type t

val zero : t
val seconds : float -> t
val minutes : float -> t
val hours : float -> t
val days : float -> t
val weeks : float -> t
val years : float -> t
(** One year is 365 days (8760 hours); the paper quotes annual rates. *)

val infinity : t
(** Used for "never recoverable" sentinel computations. *)

val to_seconds : t -> float
val to_minutes : t -> float
val to_hours : t -> float
val to_days : t -> float
val to_years : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] clamps at {!zero}: durations are never negative. *)

val scale : float -> t -> t
val div : t -> t -> float
(** Ratio of two durations. @raise Division_by_zero on a zero divisor. *)

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val is_finite : t -> bool
val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
(** Human-friendly: picks seconds/minutes/hours/days as appropriate. *)

val to_string : t -> string

val add_fp : Buffer.t -> t -> unit
(** Appends an exact 16-hex-digit fingerprint of the value (its IEEE
    bits) — the allocation-lean building block of the solver cache keys. *)
