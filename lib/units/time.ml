type t = float

let zero = 0.
let seconds s =
  if Float.is_nan s then invalid_arg "Time.seconds: NaN";
  if s < 0. then invalid_arg "Time.seconds: negative duration";
  s
let minutes m = seconds (m *. 60.)
let hours h = seconds (h *. 3600.)
let days d = seconds (d *. 86_400.)
let weeks w = seconds (w *. 7. *. 86_400.)
let years y = seconds (y *. 365. *. 86_400.)
let infinity = Float.infinity

let to_seconds t = t
let to_minutes t = t /. 60.
let to_hours t = t /. 3600.
let to_days t = t /. 86_400.
let to_years t = t /. (365. *. 86_400.)

let add = ( +. )
let sub a b = Float.max 0. (a -. b)
let scale k t =
  if k < 0. then invalid_arg "Time.scale: negative factor";
  k *. t
let div a b = if b = 0. then raise Division_by_zero else a /. b
let min = Float.min
let max = Float.max
let compare = Float.compare
let equal = Float.equal
let ( <= ) a b = Float.compare a b <= 0
let ( < ) a b = Float.compare a b < 0
let is_finite = Float.is_finite
let is_zero t = t = 0.

(* Exact value fingerprint: the IEEE-754 bits, 16 hex digits, written
   without going through a format interpreter. Distinct durations never
   collide, and a cache key built from many of these costs a few buffer
   pushes instead of a [Printf] interpretation per field. *)
let add_fp buf t =
  let bits = Int64.bits_of_float t in
  for nibble = 15 downto 0 do
    let d = Int64.to_int (Int64.shift_right_logical bits (nibble * 4)) land 0xF in
    Buffer.add_char buf "0123456789abcdef".[d]
  done

let pp ppf t =
  if not (Float.is_finite t) then Format.fprintf ppf "forever"
  else if t < 120. then Format.fprintf ppf "%.3gs" t
  else if t < 2. *. 3600. then Format.fprintf ppf "%.3gmin" (to_minutes t)
  else if t < 2. *. 86_400. then Format.fprintf ppf "%.3gh" (to_hours t)
  else Format.fprintf ppf "%.4gd" (to_days t)

let to_string t = Format.asprintf "%a" pp t
