(** Device slots: the places where the design may install a device.

    An environment offers a fixed topology of {e potential} devices — array
    bays, a tape library position per site, bundles of network links
    between site pairs. A candidate design decides which slots to populate,
    with which model; the configuration solver decides how many discrete
    units (disks, drives, cartridges, links) each populated slot gets. *)

module Array_slot : sig
  type t = { site : Site.id; bay : int }

  val v : site:Site.id -> bay:int -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool

  val to_string : t -> string
  (** Same rendering as {!pp}, without the formatter machinery — the
      recovery simulator names metered engine resources on its hot path. *)

  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
  module Set : Set.S with type elt = t
end

module Tape_slot : sig
  type t = { site : Site.id }

  val v : site:Site.id -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
end

module Pair : sig
  type t
  (** An unordered site pair, normalized so [(a, b)] and [(b, a)] are
      equal. *)

  val v : Site.id -> Site.id -> t
  (** @raise Invalid_argument if both endpoints are the same site. *)

  val endpoints : t -> Site.id * Site.id
  (** Smaller id first. *)

  val mem : Site.id -> t -> bool
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  module Map : Map.S with type key = t
end
