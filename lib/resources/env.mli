(** Environments: the resource topology a design must fit into.

    An environment fixes the available sites, how many disk-array bays and
    tape-library positions each site offers, which device models may
    populate them, the link class and the maximum number of link units per
    connected site pair, and per-site compute slots (Section 2.3: "maximum
    number of permitted devices among all sites"). *)

type t = {
  name : string;
  sites : Site.t list;
  bays_per_site : int;
  array_models : Array_model.t list;  (** Models allowed in a bay. *)
  tape_slots_per_site : int;  (** 0 or 1 in the paper's scenarios. *)
  tape_models : Tape_model.t list;
  link_model : Link_model.t;
  max_link_units : int;  (** Per connected pair. *)
  links : Slot.Pair.t list;  (** Connected site pairs. *)
  compute_slots_per_site : int;
  max_sync_distance_km : float option;
      (** Synchronous mirroring adds a round trip to every write, so real
          deployments cap its distance. When set, sync-mirror assignments
          between located sites farther apart than this are rejected
          (asynchronous mirroring is unaffected). [None] = no cap. *)
  catalog_revision : int;
      (** Monotone version of the device catalog's economics (prices,
          outlay splits). A repriced model with an unchanged name changes
          the structural value but not the topology; bumping the revision
          makes the change explicit and cheap to check, so fleet reuse
          logic can count catalog drift without deep-comparing model
          lists. Default 0. *)
}

val v :
  ?max_sync_distance_km:float ->
  ?catalog_revision:int ->
  name:string ->
  sites:Site.t list ->
  bays_per_site:int ->
  array_models:Array_model.t list ->
  tape_slots_per_site:int ->
  tape_models:Tape_model.t list ->
  link_model:Link_model.t ->
  max_link_units:int ->
  links:Slot.Pair.t list ->
  compute_slots_per_site:int ->
  unit ->
  t
(** Checks the environment is self-consistent (at least one site, models
    non-empty when slots exist, link endpoints exist, link units within the
    model's ceiling). @raise Invalid_argument otherwise. *)

val fully_connected :
  ?locations:(float * float) list ->
  ?max_sync_distance_km:float ->
  ?catalog_revision:int ->
  name:string ->
  site_count:int ->
  bays_per_site:int ->
  array_models:Array_model.t list ->
  tape_models:Tape_model.t list ->
  link_model:Link_model.t ->
  max_link_units:int ->
  compute_slots_per_site:int ->
  unit ->
  t
(** All site pairs connected; sites named S1..Sn with ids 1..n. *)

val chain :
  ?locations:(float * float) list ->
  ?max_sync_distance_km:float ->
  ?catalog_revision:int ->
  name:string ->
  site_count:int ->
  bays_per_site:int ->
  array_models:Array_model.t list ->
  tape_models:Tape_model.t list ->
  link_model:Link_model.t ->
  max_link_units:int ->
  compute_slots_per_site:int ->
  unit ->
  t
(** Sites in a line — S1-S2-...-Sn, links only between neighbors. Models
    campus or metro topologies where only adjacent sites have dark fiber;
    mirrors can then only target a neighbor. *)

val with_catalog_revision : t -> int -> t
(** The same environment under a new catalog revision — pair with
    repriced [array_models]/[tape_models] so fleet reuse checks see the
    drift explicitly. *)

val restrict : t -> sites:Site.id list -> t
(** The sub-environment induced by the given sites: those sites, the
    links with both endpoints among them, and everything else (models,
    per-site slot counts, link class) unchanged. The result's name
    appends the sorted kept site ids to the parent's name, so designs
    over different shards never collide in {!Ds_design.Design.equal} or
    the configuration-solver memo key (both identify environments by
    name). @raise Invalid_argument on an empty or unknown site list. *)

val site_ids : t -> Site.id list
val site : t -> Site.id -> Site.t
(** @raise Not_found for an unknown id. *)

val connected : t -> Site.id -> Site.id -> bool
val array_slots : t -> Slot.Array_slot.t list
(** Every bay of every site. *)

val tape_slots : t -> Slot.Tape_slot.t list
val pairs : t -> Slot.Pair.t list
val peers_of : t -> Site.id -> Site.id list
(** Sites connected to the given site. *)

val distance_km : t -> Site.id -> Site.id -> float option
(** Distance between two sites when both are located. *)

val sync_mirror_allowed : t -> Site.id -> Site.id -> bool
(** Whether a synchronous mirror between the sites respects
    [max_sync_distance_km] (always true when no cap or no locations). *)

val pp : Format.formatter -> t -> unit
