type t = {
  name : string;
  sites : Site.t list;
  bays_per_site : int;
  array_models : Array_model.t list;
  tape_slots_per_site : int;
  tape_models : Tape_model.t list;
  link_model : Link_model.t;
  max_link_units : int;
  links : Slot.Pair.t list;
  compute_slots_per_site : int;
  max_sync_distance_km : float option;
  catalog_revision : int;
}

let v ?max_sync_distance_km ?(catalog_revision = 0) ~name ~sites ~bays_per_site
    ~array_models ~tape_slots_per_site ~tape_models ~link_model ~max_link_units
    ~links ~compute_slots_per_site () =
  if sites = [] then invalid_arg "Env.v: no sites";
  if bays_per_site < 0 || tape_slots_per_site < 0 || compute_slots_per_site < 0
  then invalid_arg "Env.v: negative slot count";
  if bays_per_site > 0 && array_models = [] then
    invalid_arg "Env.v: array bays but no array models";
  if tape_slots_per_site > 0 && tape_models = [] then
    invalid_arg "Env.v: tape slots but no tape models";
  if max_link_units > link_model.Link_model.max_units then
    invalid_arg "Env.v: max_link_units exceeds the link model's ceiling";
  let known id = List.exists (fun (s : Site.t) -> s.id = id) sites in
  List.iter (fun pair ->
      let a, b = Slot.Pair.endpoints pair in
      if not (known a && known b) then
        invalid_arg "Env.v: link endpoint is not a site")
    links;
  { name; sites; bays_per_site; array_models; tape_slots_per_site; tape_models;
    link_model; max_link_units; links; compute_slots_per_site;
    max_sync_distance_km; catalog_revision }

(* Repricing helper: bump the revision whenever the device catalog's
   economics change without any structural edit. Structural equality on
   [t] already distinguishes repriced models, but the revision gives
   fleet reuse checks (and their drift counters) an explicit, cheap
   signal that survives past [Design.rebase]'s by-name model
   re-resolution. *)
let with_catalog_revision t catalog_revision = { t with catalog_revision }

let make_sites ?(locations = []) site_count =
  List.init site_count (fun i ->
      Site.v ?location:(List.nth_opt locations i) ~id:(i + 1)
        ~name:(Printf.sprintf "S%d" (i + 1)) ())

let fully_connected ?locations ?max_sync_distance_km ?catalog_revision ~name
    ~site_count ~bays_per_site ~array_models ~tape_models ~link_model
    ~max_link_units ~compute_slots_per_site () =
  if site_count < 1 then invalid_arg "Env.fully_connected: need a site";
  let sites = make_sites ?locations site_count in
  let links =
    List.concat_map (fun (a : Site.t) ->
        List.filter_map (fun (b : Site.t) ->
            if a.id < b.id then Some (Slot.Pair.v a.id b.id) else None)
          sites)
      sites
  in
  v ?max_sync_distance_km ?catalog_revision ~name ~sites ~bays_per_site
    ~array_models ~tape_slots_per_site:1 ~tape_models ~link_model
    ~max_link_units ~links ~compute_slots_per_site ()

let chain ?locations ?max_sync_distance_km ?catalog_revision ~name ~site_count
    ~bays_per_site ~array_models ~tape_models ~link_model ~max_link_units
    ~compute_slots_per_site () =
  if site_count < 1 then invalid_arg "Env.chain: need a site";
  let sites = make_sites ?locations site_count in
  let links =
    List.init (max 0 (site_count - 1)) (fun i -> Slot.Pair.v (i + 1) (i + 2))
  in
  v ?max_sync_distance_km ?catalog_revision ~name ~sites ~bays_per_site
    ~array_models ~tape_slots_per_site:1 ~tape_models ~link_model
    ~max_link_units ~links ~compute_slots_per_site ()

let site_ids t = List.map (fun (s : Site.t) -> s.id) t.sites

(* Sub-environment for sharded solving: the kept sites with every link
   internal to them. The restricted name encodes the kept site ids so
   designs over different shards of the same parent environment never
   share a fingerprint (Design.equal and the config-solver memo key
   both identify environments by name). *)
let restrict t ~sites:kept =
  if kept = [] then invalid_arg "Env.restrict: no sites";
  let keep = List.sort_uniq Int.compare kept in
  let known = site_ids t in
  List.iter
    (fun id ->
       if not (List.mem id known) then
         invalid_arg (Printf.sprintf "Env.restrict: unknown site %d" id))
    keep;
  let sites = List.filter (fun (s : Site.t) -> List.mem s.id keep) t.sites in
  let links =
    List.filter
      (fun pair ->
         let a, b = Slot.Pair.endpoints pair in
         List.mem a keep && List.mem b keep)
      t.links
  in
  let name =
    Printf.sprintf "%s/%s" t.name
      (String.concat "-" (List.map string_of_int keep))
  in
  { t with name; sites; links }

let site t id = List.find (fun (s : Site.t) -> s.id = id) t.sites

let connected t a b =
  a <> b && List.exists (Slot.Pair.equal (Slot.Pair.v a b)) t.links

let array_slots t =
  List.concat_map (fun (s : Site.t) ->
      List.init t.bays_per_site (fun bay -> Slot.Array_slot.v ~site:s.id ~bay))
    t.sites

let tape_slots t =
  if t.tape_slots_per_site = 0 then []
  else List.map (fun (s : Site.t) -> Slot.Tape_slot.v ~site:s.id) t.sites

let pairs t = t.links

let peers_of t id =
  List.filter_map (fun pair ->
      if Slot.Pair.mem id pair then
        let a, b = Slot.Pair.endpoints pair in
        Some (if a = id then b else a)
      else None)
    t.links

let distance_km t a b =
  match
    List.find_opt (fun (s : Site.t) -> s.id = a) t.sites,
    List.find_opt (fun (s : Site.t) -> s.id = b) t.sites
  with
  | Some sa, Some sb -> Site.distance_km sa sb
  | _ -> None

let sync_mirror_allowed t a b =
  match t.max_sync_distance_km, distance_km t a b with
  | Some cap, Some dist -> dist <= cap
  | None, _ | _, None -> true

let pp ppf t =
  Format.fprintf ppf
    "env %s: %d sites, %d bays/site, %d tape slots/site, %d links, %d compute/site"
    t.name (List.length t.sites) t.bays_per_site t.tape_slots_per_site
    (List.length t.links) t.compute_slots_per_site
