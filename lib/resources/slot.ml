module Array_slot = struct
  module T = struct
    type t = { site : Site.id; bay : int }

    let compare a b =
      match Int.compare a.site b.site with
      | 0 -> Int.compare a.bay b.bay
      | c -> c
  end

  include T

  let v ~site ~bay =
    if bay < 0 then invalid_arg "Array_slot.v: negative bay";
    { site; bay }

  let equal a b = compare a b = 0
  let to_string t = Printf.sprintf "s%d/bay%d" t.site t.bay
  let pp ppf t = Format.fprintf ppf "s%d/bay%d" t.site t.bay

  module Map = Map.Make (T)
  module Set = Set.Make (T)
end

module Tape_slot = struct
  module T = struct
    type t = { site : Site.id }

    let compare a b = Int.compare a.site b.site
  end

  include T

  let v ~site = { site }
  let equal a b = compare a b = 0
  let to_string t = Printf.sprintf "s%d/tape" t.site
  let pp ppf t = Format.fprintf ppf "s%d/tape" t.site

  module Map = Map.Make (T)
end

module Pair = struct
  module T = struct
    type t = Site.id * Site.id

    let compare (a1, a2) (b1, b2) =
      match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c
  end

  include T

  let v a b =
    if a = b then invalid_arg "Pair.v: a link needs two distinct sites";
    if a < b then (a, b) else (b, a)

  let endpoints t = t
  let mem site (a, b) = site = a || site = b
  let equal a b = compare a b = 0
  let to_string (a, b) = Printf.sprintf "s%d<->s%d" a b
  let pp ppf (a, b) = Format.fprintf ppf "s%d<->s%d" a b

  module Map = Map.Make (T)
end
