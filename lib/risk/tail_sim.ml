module Money = Ds_units.Money
module Time = Ds_units.Time
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Scenario = Ds_failure.Scenario
module Penalty = Ds_cost.Penalty
module Simulate = Ds_recovery.Simulate
module Outcome = Ds_recovery.Outcome
module Obs = Ds_obs.Obs
module Exec = Ds_exec.Exec

let hours_per_year = 8760.

type strategy = Nominal_only | By_scope

type estimate = {
  value : float;
  std_error : float;
  lower : float;
  upper : float;
  z : float;
}

type year_sample = {
  total : float;
  downtime : float;
  events : int;
  log_weight : float;
}

type stratum = {
  label : string;
  tilted_class : Scenario.scope_class option;
  allocated_years : int;
  share : float;
}

type t = {
  strata : stratum array;
  samples : year_sample array array;
  scenarios : Scenario.t array;
  scenario_events : int array;
  tilt : float;
  years : int;
  z : float;
  ess : float;
  mean_total : estimate;
  mean_downtime : estimate;
  unavailability : estimate;
}

(* Per-scenario event model, computed once from the deterministic
   recovery simulation (like Year_sim): each event of scenario [i]
   charges [cost] dollars of penalty and [down] hours of user-visible
   outage (the worst affected application's recovery time, capped at a
   year — [Money]'s own penalty cap). *)
type event_model = {
  rate : float;
  cls : Scenario.scope_class;
  cost : float;
  down : float;
}

let clamp_estimate ~lo ~hi e =
  { e with
    lower = Float.max lo (Float.min hi e.lower);
    upper = Float.max lo (Float.min hi e.upper) }

let with_z ~lo ~hi z e =
  clamp_estimate ~lo ~hi
    { e with
      z;
      lower = e.value -. (z *. e.std_error);
      upper = e.value +. (z *. e.std_error) }

(* Allocation-weighted combination of per-stratum unbiased estimators
   of E[f(year)] under the nominal rates: each stratum contributes the
   mean of its weighted values [w_j * f(y_j)], and the variance of the
   combination is [sum_s share_s^2 * var_s / n_s] (strata are
   independent). Folds in simulation order, so the float sums — hence
   the printed estimates — are byte-stable at every pool width. *)
let estimate_over ~z ?(lo = Float.neg_infinity) ?(hi = Float.infinity) strata
    samples f =
  let value = ref 0. and variance = ref 0. in
  Array.iteri
    (fun s (chunk : year_sample array) ->
       let n = Array.length chunk in
       if n > 0 then begin
         let sum = ref 0. in
         Array.iter (fun smp -> sum := !sum +. (exp smp.log_weight *. f smp)) chunk;
         let mean = !sum /. float_of_int n in
         let var =
           if n < 2 then 0.
           else begin
             let sq = ref 0. in
             Array.iter
               (fun smp ->
                  let d = (exp smp.log_weight *. f smp) -. mean in
                  sq := !sq +. (d *. d))
               chunk;
             !sq /. float_of_int (n - 1)
           end
         in
         let share = strata.(s).share in
         value := !value +. (share *. mean);
         variance := !variance +. (share *. share *. var /. float_of_int n)
       end)
    samples;
  let std_error = sqrt !variance in
  clamp_estimate ~lo ~hi
    { value = !value;
      std_error;
      lower = !value -. (z *. std_error);
      upper = !value +. (z *. std_error);
      z }

(* ESS is invariant under scaling the weights, so it is computed with
   per-stratum max-shifted logs and never overflows, whatever the
   tilt pushed the likelihood ratios to. *)
let ess_of samples =
  Array.fold_left
    (fun acc (chunk : year_sample array) ->
       if Array.length chunk = 0 then acc
       else begin
         let max_lw =
           Array.fold_left
             (fun m smp -> Float.max m smp.log_weight)
             Float.neg_infinity chunk
         in
         let s1 = ref 0. and s2 = ref 0. in
         Array.iter
           (fun smp ->
              let w = exp (smp.log_weight -. max_lw) in
              s1 := !s1 +. w;
              s2 := !s2 +. (w *. w))
           chunk;
         if !s2 > 0. then acc +. (!s1 *. !s1 /. !s2) else acc
       end)
    0. samples

let chunk_years = 1_024

let default_tilt = 8.
let default_z = 2.576 (* two-sided 99% normal quantile *)

let simulate ?params ?(years = 10_000) ?(tilt = default_tilt)
    ?(strategy = By_scope) ?(z = default_z) ?(obs = Obs.noop)
    ?(pool = Exec.sequential) rng prov likelihood =
  if years <= 0 then invalid_arg "Tail_sim.simulate: years must be positive";
  if (not (Float.is_finite tilt)) || tilt <= 0. then
    invalid_arg "Tail_sim.simulate: tilt must be positive and finite";
  if Float.is_nan z || z <= 0. then
    invalid_arg "Tail_sim.simulate: z must be positive";
  Obs.with_span obs "risk.tail_sim" @@ fun () ->
  let design = prov.Provision.design in
  let scenarios = Array.of_list (Scenario.enumerate likelihood design) in
  let models =
    Array.map
      (fun (scen : Scenario.t) ->
         let outcomes = Simulate.scenario ?params ~obs prov scen in
         let cost =
           List.fold_left
             (fun acc outcome ->
                let o, l = Penalty.of_outcome ~annual_rate:1. outcome in
                acc +. Money.to_dollars o +. Money.to_dollars l)
             0. outcomes
         in
         let down =
           List.fold_left
             (fun acc (outcome : Outcome.t) ->
                let h = Time.to_hours outcome.Outcome.recovery_time in
                let h =
                  if Float.is_finite h then Float.min h hours_per_year
                  else hours_per_year
                in
                Float.max acc h)
             0. outcomes
         in
         { rate = scen.Scenario.annual_rate;
           cls = Scenario.scope_class scen.Scenario.scope;
           cost;
           down })
      scenarios
  in
  let strata_specs =
    let nominal = ("nominal", None) in
    match strategy with
    | Nominal_only -> [ nominal ]
    | By_scope ->
      nominal
      :: List.filter_map
           (fun cls ->
              if
                Array.exists (fun m -> m.cls = cls && m.rate > 0.) models
              then Some (Scenario.class_name cls, Some cls)
              else None)
           Scenario.all_classes
  in
  let stratum_count = List.length strata_specs in
  if years < stratum_count then
    invalid_arg
      (Printf.sprintf
         "Tail_sim.simulate: %d years cannot cover %d strata (one year per \
          stratum minimum)"
         years stratum_count);
  (* Even allocation, earlier strata absorbing the remainder — a fixed
     function of (years, strata), never of the pool. *)
  let strata =
    Array.of_list
      (List.mapi
         (fun i (label, tilted_class) ->
            let base = years / stratum_count in
            let extra = if i < years mod stratum_count then 1 else 0 in
            let allocated_years = base + extra in
            { label;
              tilted_class;
              allocated_years;
              share = float_of_int allocated_years /. float_of_int years })
         strata_specs)
  in
  (* Proposal rates per stratum: the stratum's class is tilted, every
     other scenario keeps its nominal rate (weight term 0). *)
  let proposal =
    Array.map
      (fun st ->
         Array.map
           (fun m ->
              match st.tilted_class with
              | Some cls when m.cls = cls && m.rate > 0. -> m.rate *. tilt
              | _ -> m.rate)
           models)
      strata
  in
  Obs.add obs "risk.tail.years" years;
  (* Balance-heuristic (deterministic-mixture) weighting: a year drawn
     in any stratum is weighted by [p(y) / sum_s share_s * q_s(y)] —
     the mixture of all strata's proposals, not the year's own one.
     This keeps the estimator unbiased (sum_s share_s E_{q_s}[w f] =
     E_p[f]) while bounding every weight by [1 / share_nominal]:
     single-proposal ratios explode as [exp (sum (tilted - rate))]
     when a tilted stratum draws an eventless year, and a handful of
     such weights would swamp the mean and wreck the variance
     estimate. Each stratum's log ratio against the nominal rates is
     a sum of per-scenario {!Sample.poisson_log_weight} terms over
     the scenarios that stratum tilts, grouped here per scope class. *)
  let class_index = function
    | Scenario.Object -> 0
    | Scenario.Array -> 1
    | Scenario.Site -> 2
  in
  let run_year rates counts lr terms rng =
    let total = ref 0. and down = ref 0. in
    let events = ref 0 in
    Array.fill lr 0 (Array.length lr) 0.;
    Array.iteri
      (fun i (m : event_model) ->
         let k = Sample.poisson rng rates.(i) in
         (* log (P_rate(k) / P_tilted(k)) of this scenario's count under
            the class's global tilted rate — the same ratio whichever
            stratum the year was drawn in. *)
         if tilt <> 1. && m.rate > 0. then
           lr.(class_index m.cls) <-
             lr.(class_index m.cls)
             +. Sample.poisson_log_weight ~rate:m.rate
                  ~tilted:(m.rate *. tilt) k;
         if k > 0 then begin
           counts.(i) <- counts.(i) + k;
           events := !events + k;
           total := !total +. (float_of_int k *. m.cost);
           down := !down +. (float_of_int k *. m.down)
         end)
      models;
    (* log w = -log sum_s share_s * q_s/p, via log-sum-exp. A stratum's
       log (q_s/p) is minus its class's accumulated ratio (0 for the
       nominal stratum), so with nominal present the sum is >= share_0
       and w <= 1/share_0. *)
    let max_term = ref Float.neg_infinity in
    Array.iteri
      (fun s st ->
         let r =
           match st.tilted_class with
           | None -> 0.
           | Some cls -> -.lr.(class_index cls)
         in
         let t = log st.share +. r in
         terms.(s) <- t;
         if t > !max_term then max_term := t)
      strata;
    let sum =
      Array.fold_left (fun acc t -> acc +. exp (t -. !max_term)) 0. terms
    in
    let log_weight = -.(!max_term +. log sum) in
    { total = !total;
      downtime = Float.min !down hours_per_year;
      events = !events;
      log_weight }
  in
  (* One task per (stratum, fixed-size chunk), enumerated stratum-major
     in chunk order: the task list — hence the pre-split stream layout —
     depends only on (years, strategy, scenario classes). *)
  let tasks =
    Array.of_list
      (List.concat
         (List.mapi
            (fun s st ->
               let chunks =
                 (st.allocated_years + chunk_years - 1) / chunk_years
               in
               List.init chunks (fun c ->
                   (s, min chunk_years (st.allocated_years - (c * chunk_years)))))
            (Array.to_list strata)))
  in
  let results =
    Exec.map_rng_obs pool ~label:"risk.tail.years" ~obs ~rng
      (fun _wobs rng (s, size) ->
         let counts = Array.make (Array.length models) 0 in
         let rates = proposal.(s) in
         let lr = Array.make 3 0. in
         let terms = Array.make (Array.length strata) 0. in
         let samples =
           Array.init size (fun _ -> run_year rates counts lr terms rng)
         in
         (samples, counts))
      tasks
  in
  (* Index-order merge: concatenate chunk samples per stratum and sum
     the per-scenario event counts (int sums are order-independent, but
     the order is fixed anyway). *)
  let buffers = Array.map (fun _ -> ref []) strata in
  let scenario_events = Array.make (Array.length models) 0 in
  Array.iteri
    (fun i (samples, counts) ->
       let s, _ = tasks.(i) in
       buffers.(s) := samples :: !(buffers.(s));
       Array.iteri
         (fun j k -> scenario_events.(j) <- scenario_events.(j) + k)
         counts)
    results;
  let samples = Array.map (fun b -> Array.concat (List.rev !b)) buffers in
  Obs.add obs "risk.tail.events"
    (Array.fold_left
       (fun acc chunk ->
          Array.fold_left (fun acc smp -> acc + smp.events) acc chunk)
       0 samples);
  let ess = ess_of samples in
  let mean_total = estimate_over ~z ~lo:0. strata samples (fun s -> s.total) in
  let mean_downtime =
    estimate_over ~z ~lo:0. strata samples (fun s -> s.downtime)
  in
  let unavailability =
    estimate_over ~z ~lo:0. ~hi:1. strata samples (fun s ->
        s.downtime /. hours_per_year)
  in
  Obs.gauge_set obs "risk.tail.ess" ess;
  Obs.gauge_set obs "risk.tail.ci_width" (mean_total.upper -. mean_total.lower);
  { strata;
    samples;
    scenarios;
    scenario_events;
    tilt;
    years;
    z;
    ess;
    mean_total;
    mean_downtime;
    unavailability }

let exceedance ?z t x =
  let z = Option.value ~default:t.z z in
  let threshold = Money.to_dollars x in
  estimate_over ~z ~lo:0. ~hi:1. t.strata t.samples (fun s ->
      if s.total >= threshold then 1. else 0.)

let downtime_exceedance ?z t hours =
  let z = Option.value ~default:t.z z in
  estimate_over ~z ~lo:0. ~hi:1. t.strata t.samples (fun s ->
      if s.downtime > hours then 1. else 0.)

let tail_percentile t q =
  if q < 0. || q > 1. then
    invalid_arg "Tail_sim.tail_percentile: q outside [0, 1]";
  let items = ref [] in
  Array.iteri
    (fun s (chunk : year_sample array) ->
       let n = Array.length chunk in
       if n > 0 then begin
         let scale = t.strata.(s).share /. float_of_int n in
         Array.iter
           (fun smp -> items := (smp.total, scale *. exp smp.log_weight) :: !items)
           chunk
       end)
    t.samples;
  let arr = Array.of_list !items in
  if Array.length arr = 0 then Money.zero
  else begin
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) arr;
    let total_weight = Array.fold_left (fun acc (_, w) -> acc +. w) 0. arr in
    if total_weight <= 0. then Money.zero
    else begin
      let value = ref (fst arr.(Array.length arr - 1)) in
      (try
         let cum = ref 0. in
         Array.iter
           (fun (v, w) ->
              cum := !cum +. (w /. total_weight);
              if !cum > q then begin
                value := v;
                raise Exit
              end)
           arr
       with Exit -> ());
      Money.dollars !value
    end
  end

type verdict = Pass | Fail | Inconclusive

type certification = {
  availability : float;
  allowed_unavailability : float;
  downtime_budget : float;
  unavailability : estimate;
  breach_probability : estimate;
  ess : float;
  uncovered : string list;
  verdict : verdict;
  deciding_bound : float;
  reason : string;
}

let verdict_to_string = function
  | Pass -> "PASS"
  | Fail -> "FAIL"
  | Inconclusive -> "INCONCLUSIVE"

let certify ?z t ~availability =
  if
    Float.is_nan availability || availability <= 0. || availability >= 1.
  then invalid_arg "Tail_sim.certify: availability must be in (0, 1)";
  let z = Option.value ~default:t.z z in
  let allowed = 1. -. availability in
  let downtime_budget = allowed *. hours_per_year in
  let unavailability = with_z ~lo:0. ~hi:1. z t.unavailability in
  let breach_probability = downtime_exceedance ~z t downtime_budget in
  let uncovered = ref [] in
  Array.iteri
    (fun i (scen : Scenario.t) ->
       if scen.Scenario.annual_rate > 0. && t.scenario_events.(i) = 0 then
         uncovered := Format.asprintf "%a" Scenario.pp scen :: !uncovered)
    t.scenarios;
  let uncovered = List.rev !uncovered in
  let verdict, deciding_bound, reason =
    if unavailability.lower > allowed then
      ( Fail,
        unavailability.lower,
        Printf.sprintf
          "even the lower confidence bound on unavailability (%.3g) exceeds \
           the allowed %.3g"
          unavailability.lower allowed )
    else if uncovered <> [] then
      ( Inconclusive,
        unavailability.upper,
        Printf.sprintf
          "%d positive-rate scenario(s) were never sampled, so the bound is \
           one-sided; raise the year budget or the tilt"
          (List.length uncovered) )
    else if unavailability.upper <= allowed then
      ( Pass,
        unavailability.upper,
        Printf.sprintf
          "upper confidence bound on unavailability (%.3g) is within the \
           allowed %.3g"
          unavailability.upper allowed )
    else
      ( Inconclusive,
        unavailability.upper,
        Printf.sprintf
          "confidence interval [%.3g, %.3g] straddles the allowed %.3g; \
           more years would tighten it"
          unavailability.lower unavailability.upper allowed )
  in
  { availability;
    allowed_unavailability = allowed;
    downtime_budget;
    unavailability;
    breach_probability;
    ess = t.ess;
    uncovered;
    verdict;
    deciding_bound;
    reason }

let pp_estimate ppf e =
  Format.fprintf ppf "%.6g [%.6g, %.6g]" e.value e.lower e.upper

let pp ppf t =
  Format.fprintf ppf
    "@[<v>rare-event tail over %d years (%d strata, tilt %.3g, z %.3g): \
     ESS %.1f@,\
     expected annual penalty: $%a@,\
     expected annual downtime: %a hours (unavailability %a)@,\
     annual penalty p99: %a, p99.9: %a, p99.99: %a@]"
    t.years (Array.length t.strata) t.tilt t.z t.ess pp_estimate t.mean_total
    pp_estimate t.mean_downtime pp_estimate t.unavailability Money.pp
    (tail_percentile t 0.99) Money.pp
    (tail_percentile t 0.999)
    Money.pp
    (tail_percentile t 0.9999)

let pp_certification ppf c =
  Format.fprintf ppf
    "@[<v>SLA %.11g%% availability (budget %.6g hours/year): %s@,\
     unavailability %a (deciding bound %.3g, allowed %.3g)@,\
     breach probability per year: %a@,\
     effective sample size %.1f@,\
     %s%a@]"
    (100. *. c.availability) c.downtime_budget (verdict_to_string c.verdict)
    pp_estimate c.unavailability c.deciding_bound c.allowed_unavailability
    pp_estimate c.breach_probability c.ess c.reason
    (fun ppf -> function
       | [] -> ()
       | uncovered ->
         Format.fprintf ppf "@,never sampled:@,";
         Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,")
           (fun ppf s -> Format.fprintf ppf "  %s" s)
           ppf uncovered)
    c.uncovered
