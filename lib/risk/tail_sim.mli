(** Rare-event risk engine: variance-reduced tail estimation and SLA
    certification of a provisioned design.

    Production durability/availability targets are quoted with "eleven
    nines" (99.999999999%): an annual downtime budget of fractions of a
    millisecond. Naive Monte Carlo over tens of thousands of simulated
    years ({!Year_sim}) cannot resolve probabilities that deep — a
    breach it never samples looks exactly like a breach that cannot
    happen. This module estimates deep-tail statistics with importance
    sampling over the failure-scenario space:

    - {b Rate tilting.} Failure events still arrive as independent
      Poisson processes per scenario, but under a {e proposal} whose
      rates are inflated by a tilt factor, so rare event combinations
      are actually sampled. Every simulated year is reweighted by an
      exact Poisson likelihood ratio (per-scenario terms from
      {!Ds_prng.Sample.poisson_log_weight}, accumulated in log
      space), making every weighted average an unbiased estimate
      under the {e nominal} rates.
    - {b Stratification by scenario scope.} The scenario space is
      partitioned by {!Ds_failure.Scenario.scope_class} (data-object /
      disk-array / site-disaster). One stratum tilts one class — plus
      an untilted nominal stratum that anchors the body of the
      distribution — and the strata are combined as an
      allocation-weighted sum whose total is unbiased for the nominal
      expectation.
    - {b Mixture (balance-heuristic) weights.} A year's weight is
      [p(y) / sum_s share_s * q_s(y)] — the nominal density over the
      {e mixture} of all strata's proposals, not over the proposal
      that happened to draw it. Single-proposal ratios explode
      ([exp (sum_i (tilted_i - rate_i))] on an eventless year under a
      heavy tilt) and wreck both the mean and its variance estimate;
      mixture weights are bounded by [1 / share_nominal] whenever the
      nominal stratum is present, so the estimator stays unbiased
      {e and} its normal-approximation CI stays trustworthy.
    - {b Confidence intervals.} Every estimate carries a
      normal-approximation CI on the weighted estimator
      ([value +/- z * std_error], stratified variance
      [sum_s share_s^2 * var_s / n_s]) and the run reports its
      effective sample size [ESS = sum_s (sum w)^2 / (sum w^2)] — the
      honest denominator after weighting.
    - {b SLA certification.} {!certify} compares the CI on expected
      unavailability against an availability target and returns
      pass / fail / inconclusive {e with the bound that decided it};
      a run that never sampled a positive-rate scenario cannot pass
      (coverage guard), only fail or come back inconclusive.

    Determinism follows the Exec-chunked discipline (DESIGN.md §10 and
    §14): years are simulated in fixed 1,024-year chunks, one RNG
    stream pre-split per (stratum, chunk) task in task-index order,
    results merged in index order — a fixed seed yields byte-identical
    samples, estimates, CIs and verdicts at every pool width. *)

module Money = Ds_units.Money
module Rng = Ds_prng.Rng
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Scenario = Ds_failure.Scenario

type strategy =
  | Nominal_only
      (** A single untilted stratum: plain Monte Carlo with unit
          weights (useful as a control; tails stay unresolved). *)
  | By_scope
      (** One untilted nominal stratum plus one tilted stratum per
          scope class that has a positive-rate scenario (in
          {!Ds_failure.Scenario.all_classes} order). The default. *)

type estimate = {
  value : float;  (** The weighted point estimate. *)
  std_error : float;  (** Stratified standard error of [value]. *)
  lower : float;  (** [value - z * std_error] (clamped to the domain). *)
  upper : float;  (** [value + z * std_error] (clamped to the domain). *)
  z : float;  (** The normal quantile the bounds were built with. *)
}

type year_sample = {
  total : float;  (** Annual penalty (outage + loss), dollars. *)
  downtime : float;  (** Annual user-visible outage, hours. *)
  events : int;  (** Failure events that struck during the year. *)
  log_weight : float;
      (** Log of the balance-heuristic mixture likelihood ratio
          [p(y) / sum_s share_s * q_s(y)]; at most
          [-log share_nominal] when a nominal stratum is present. *)
}

type stratum = {
  label : string;  (** ["nominal"], ["object"], ["array"] or ["site"]. *)
  tilted_class : Scenario.scope_class option;
  allocated_years : int;
  share : float;  (** [allocated_years / total_years]. *)
}

type t = {
  strata : stratum array;
  samples : year_sample array array;
      (** [samples.(s)] are stratum [s]'s years, in simulation order. *)
  scenarios : Scenario.t array;
  scenario_events : int array;
      (** Sampled event count per scenario, summed across all strata —
          the coverage record behind {!certify}'s guard. *)
  tilt : float;
  years : int;
  z : float;
  ess : float;  (** Effective sample size, summed over strata. *)
  mean_total : estimate;  (** Expected annual penalty, dollars. *)
  mean_downtime : estimate;  (** Expected annual downtime, hours. *)
  unavailability : estimate;
      (** Expected downtime fraction of the year: mean downtime /
          8760 h, the quantity {!certify} bounds. *)
}

val simulate :
  ?params:Ds_recovery.Recovery_params.t ->
  ?years:int ->
  ?tilt:float ->
  ?strategy:strategy ->
  ?z:float ->
  ?obs:Ds_obs.Obs.t ->
  ?pool:Ds_exec.Exec.pool ->
  Rng.t ->
  Provision.t ->
  Likelihood.t ->
  t
(** Default 10,000 total years split evenly across the strata (earlier
    strata absorb the remainder), [tilt] 8.0, [strategy] [By_scope],
    [z] 2.576 (a 99% two-sided normal CI). Like {!Year_sim.simulate},
    the per-scenario recovery simulation runs once per scenario and its
    penalties/downtime are charged per event; [obs] (a [risk.tail_sim]
    span, [risk.tail.years] / [risk.tail.events] counters and the
    [risk.tail.ess] / [risk.tail.ci_width] gauges) never affects the
    drawn sample. The pool only moves wall time (fixed chunks,
    pre-split streams, index-order merge).
    @raise Invalid_argument when [years <= 0] or smaller than the
    stratum count, [tilt <= 0] or not finite, or [z <= 0]. *)

val exceedance : ?z:float -> t -> Money.t -> estimate
(** [exceedance t x] estimates the probability that a year's total
    penalty reaches [x] ([P(total >= x)]), with CI (clamped to
    [[0, 1]]). Unbiased under the nominal rates whatever the tilt. *)

val downtime_exceedance : ?z:float -> t -> float -> estimate
(** [downtime_exceedance t h] is [P(annual downtime > h hours)]. *)

val tail_percentile : t -> float -> Money.t
(** Weighted tail percentile of annual penalty: the smallest sampled
    total whose cumulative normalized weight strictly exceeds [q] —
    the weighted analogue of {!Year_sim.percentile_of_sorted}'s
    conservative nearest-rank (they coincide on unit weights whenever
    [q * n] is integral). Weighted percentiles are self-normalized
    (ratio) estimates, so unlike {!exceedance} they carry no CI here.
    @raise Invalid_argument outside [0, 1]. *)

type verdict = Pass | Fail | Inconclusive

type certification = {
  availability : float;  (** The target, e.g. [0.99999999999]. *)
  allowed_unavailability : float;  (** [1. -. availability]. *)
  downtime_budget : float;  (** Allowed hours per year. *)
  unavailability : estimate;  (** The bound-carrying estimate. *)
  breach_probability : estimate;
      (** [P(annual downtime > downtime_budget)], with CI. *)
  ess : float;
  uncovered : string list;
      (** Positive-rate scenarios never sampled in any stratum; a
          non-empty list blocks [Pass]. *)
  verdict : verdict;
  deciding_bound : float;
      (** The CI bound the verdict rests on: the upper bound for
          [Pass] (it cleared the budget), the lower bound for [Fail]
          (even the optimistic read breaches), the bound that failed
          to clear for [Inconclusive]. *)
  reason : string;  (** One human-readable sentence. *)
}

val certify : ?z:float -> t -> availability:float -> certification
(** Certify the design against an availability SLA: [Pass] when the
    upper confidence bound on expected unavailability is within
    [1 - availability] {e and} every positive-rate scenario was
    sampled at least once; [Fail] when the lower bound already
    breaches it; [Inconclusive] otherwise (CI straddles the target, or
    the bound clears it but coverage is incomplete — more years or a
    higher tilt needed). Deterministic: a fixed seed yields the same
    verdict at every pool width.
    @raise Invalid_argument unless [0 < availability < 1]. *)

val verdict_to_string : verdict -> string
val pp : Format.formatter -> t -> unit
val pp_certification : Format.formatter -> certification -> unit
