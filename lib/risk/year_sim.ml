module Money = Ds_units.Money
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Scenario = Ds_failure.Scenario
module Penalty = Ds_cost.Penalty
module Simulate = Ds_recovery.Simulate
module Obs = Ds_obs.Obs
module Exec = Ds_exec.Exec

type yearly = {
  outage : Money.t;
  loss : Money.t;
  events : int;
}

type t = {
  years : yearly array;
  sorted_totals : float array;
  mean : Money.t;
  p50 : Money.t;
  p90 : Money.t;
  p99 : Money.t;
  worst : Money.t;
  quiet_fraction : float;
}

let sort_totals years =
  let totals =
    Array.map (fun y -> Money.to_dollars (Money.add y.outage y.loss)) years
  in
  Array.sort Float.compare totals;
  totals

(* Conservative nearest-rank: index ceil(q*n) clamped to [0, n-1] — the
   smallest order statistic whose empirical CDF strictly exceeds q.
   Never biased low (the previous floor of q*(n-1) read p99 of 100
   years at index 98), and q = 1 lands on the worst year exactly. *)
let percentile_of_sorted totals q =
  let n = Array.length totals in
  if n = 0 then invalid_arg "Year_sim.percentile_of_sorted: empty";
  let idx = int_of_float (Float.ceil (q *. float_of_int n)) in
  Money.dollars totals.(max 0 (min (n - 1) idx))

(* Years are simulated in fixed-size chunks, each on its own RNG stream
   pre-split (in chunk order) from the caller's generator. The chunk
   size is a constant — never a function of the pool — so the drawn
   sample depends only on the generator state and the year count: the
   domain count is pure scheduling. *)
let chunk_years = 1_024

let simulate ?params ?(years = 10_000) ?(obs = Obs.noop)
    ?(pool = Exec.sequential) rng prov likelihood =
  if years <= 0 then invalid_arg "Year_sim.simulate: years must be positive";
  Obs.with_span obs "risk.year_sim" @@ fun () ->
  Obs.add obs "risk.years" years;
  (* The recovery simulation is deterministic per scenario: run each once
     and reuse its per-event penalty. *)
  let design = prov.Provision.design in
  let per_event =
    Scenario.enumerate likelihood design
    |> List.map (fun (scen : Scenario.t) ->
        let outcomes = Simulate.scenario ?params ~obs prov scen in
        let outage, loss =
          List.fold_left
            (fun (outage, loss) outcome ->
               (* annual_rate = 1: the raw per-event penalty. *)
               let o, l = Penalty.of_outcome ~annual_rate:1. outcome in
               (Money.add outage o, Money.add loss l))
            (Money.zero, Money.zero) outcomes
        in
        (scen.Scenario.annual_rate, outage, loss))
  in
  let run_year rng =
    List.fold_left
      (fun acc (rate, outage, loss) ->
         let k = Sample.poisson rng rate in
         if k = 0 then acc
         else
           { outage = Money.add acc.outage (Money.scale (float_of_int k) outage);
             loss = Money.add acc.loss (Money.scale (float_of_int k) loss);
             events = acc.events + k })
      { outage = Money.zero; loss = Money.zero; events = 0 }
      per_event
  in
  let chunks = (years + chunk_years - 1) / chunk_years in
  let sizes =
    Array.init chunks (fun i -> min chunk_years (years - (i * chunk_years)))
  in
  let years_arr =
    Exec.map_rng_obs pool ~label:"risk.years" ~obs ~rng
      (fun _wobs rng size -> Array.init size (fun _ -> run_year rng))
      sizes
    |> Array.to_list |> Array.concat
  in
  Obs.add obs "risk.events"
    (Array.fold_left (fun acc y -> acc + y.events) 0 years_arr);
  let totals = sort_totals years_arr in
  let sum = Array.fold_left ( +. ) 0. totals in
  let quiet =
    Array.fold_left (fun acc y -> if y.events = 0 then acc + 1 else acc) 0
      years_arr
  in
  { years = years_arr;
    sorted_totals = totals;
    mean = Money.dollars (sum /. float_of_int years);
    p50 = percentile_of_sorted totals 0.5;
    p90 = percentile_of_sorted totals 0.9;
    p99 = percentile_of_sorted totals 0.99;
    worst = Money.dollars totals.(Array.length totals - 1);
    quiet_fraction = float_of_int quiet /. float_of_int years }

let percentile t q =
  if q < 0. || q > 1. then invalid_arg "Year_sim.percentile: q outside [0, 1]";
  percentile_of_sorted t.sorted_totals q

let pp ppf t =
  Format.fprintf ppf
    "annual penalty over %d simulated years: mean %a, median %a, p90 %a, \
     p99 %a, worst %a; %.1f%% quiet years"
    (Array.length t.years) Money.pp t.mean Money.pp t.p50 Money.pp t.p90
    Money.pp t.p99 Money.pp t.worst (100. *. t.quiet_fraction)
