(** Monte Carlo risk analysis of a provisioned design.

    The paper's objective uses {e expected} annual penalties (likelihood-
    weighted sums). Expectations hide tail risk: a design whose expected
    penalty is $2M/yr may still face a 1-in-20 year costing $40M. This
    module simulates many years — failure events arrive as independent
    Poisson processes per scenario, each event charged the penalties from
    the deterministic recovery simulation — and reports the distribution
    of annual penalty cost.

    It doubles as a cross-check of the analytic model: the sample mean
    converges to {!Ds_cost.Penalty.expected_annual}'s total (a property
    the test suite asserts). *)

module Money = Ds_units.Money
module Rng = Ds_prng.Rng
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood

type yearly = {
  outage : Money.t;
  loss : Money.t;
  events : int;  (** Failure events that struck during the year. *)
}

type t = {
  years : yearly array;  (** One entry per simulated year, in order. *)
  sorted_totals : float array;
      (** Annual totals (outage + loss, in dollars) sorted ascending —
          computed once by {!simulate} and reused by {!percentile}. *)
  mean : Money.t;  (** Mean annual penalty (outage + loss). *)
  p50 : Money.t;
  p90 : Money.t;
  p99 : Money.t;
  worst : Money.t;
  quiet_fraction : float;  (** Years with no failure events at all. *)
}

val simulate :
  ?params:Ds_recovery.Recovery_params.t ->
  ?years:int ->
  ?obs:Ds_obs.Obs.t ->
  ?pool:Ds_exec.Exec.pool ->
  Rng.t ->
  Provision.t ->
  Likelihood.t ->
  t
(** Default 10,000 years. The years loop runs in fixed-size chunks
    scheduled across [pool] (default sequential), one RNG stream
    pre-split per chunk in chunk order: the drawn sample is a function
    of the generator state and [years] alone, so a fixed seed yields
    bit-identical results whatever the pool's domain count is. (The
    chunked pre-split changed the stream layout once, at the version
    boundary — fixed-seed samples differ from pre-[pool] releases; see
    DESIGN.md §10.) [obs] (a [risk.year_sim] span, [risk.years] /
    [risk.events] counters, and the per-scenario recovery simulation's
    metrics) never affects the drawn sample.
    @raise Invalid_argument when [years <= 0]. *)

val percentile : t -> float -> Money.t
(** [percentile t 0.95] is the 95th percentile of annual penalty cost,
    read off the stored {!field-sorted_totals} (no re-sort), under the
    convention of {!percentile_of_sorted}.
    @raise Invalid_argument outside [0, 1]. *)

val percentile_of_sorted : float array -> float -> Money.t
(** Conservative nearest-rank percentile of an ascending-sorted array:
    the element at 0-based index [ceil (q * n)], clamped to
    [[0, n-1]]. When [q * n] lands on an integer (the usual
    q = 0.5/0.9/0.99 on round year counts) this is the smallest order
    statistic whose empirical CDF strictly exceeds [q]; otherwise it
    rounds one rank {e up} from the classical nearest-rank. Either
    way it is deliberately never biased low (a risk report must not
    understate a tail): with 100 sorted years, [q = 0.99] reads index
    99, not the floor-truncated 98 of earlier releases. [q = 1.] is
    always the last (worst) element, so [percentile t 1.0] equals
    {!field-worst}; [q = 0.] is the first. {!Ds_risk.Tail_sim}
    applies the weighted analogue of the same convention.
    @raise Invalid_argument on an empty array. *)

val pp : Format.formatter -> t -> unit
