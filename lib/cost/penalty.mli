(** Expected annual penalty costs (Sections 2.4-2.5).

    Every failure scenario is simulated; each affected application's data
    outage and recent-data-loss penalties (hourly rate x duration) are
    weighted by the scenario's annual likelihood and summed. *)

module Money = Ds_units.Money
module App = Ds_workload.App
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Scenario = Ds_failure.Scenario
module Outcome = Ds_recovery.Outcome

type per_app = {
  app : App.t;
  outage : Money.t;  (** Expected annual outage penalty for this app. *)
  loss : Money.t;  (** Expected annual recent-data-loss penalty. *)
}

type t = {
  outage_total : Money.t;
  loss_total : Money.t;
  by_app : per_app list;  (** Sorted by app id; every assigned app listed. *)
  details : (Scenario.t * Outcome.t list) list;  (** Raw simulation log. *)
}

val expected_annual :
  ?params:Ds_recovery.Recovery_params.t ->
  ?obs:Ds_obs.Obs.t ->
  ?scenarios:Scenario.t list ->
  ?batch:Ds_recovery.Simulate.batch ->
  Provision.t ->
  Likelihood.t ->
  t
(** [obs] is handed to the recovery simulator (device contention
    metrics and spans); it never changes the result. [scenarios] and
    [batch] short-circuit enumeration and instrument resolution (see
    {!Ds_recovery.Simulate.all}). *)

val of_outcome : annual_rate:float -> Outcome.t -> Money.t * Money.t
(** [(outage, loss)] contribution of one simulated outcome, weighted. *)
