(** Full evaluation of a candidate design: provision it, simulate every
    failure scenario, and cost the result. This is the objective function
    shared by the design solver, the configuration solver and the baseline
    heuristics. *)

module Money = Ds_units.Money
module Design = Ds_design.Design
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood

type t = {
  provision : Provision.t;
  summary : Summary.t;
  penalty : Penalty.t;
}

val provisioned :
  ?params:Ds_recovery.Recovery_params.t ->
  ?obs:Ds_obs.Obs.t ->
  ?scenarios:Ds_failure.Scenario.t list ->
  ?batch:Ds_recovery.Simulate.batch ->
  Provision.t ->
  Likelihood.t ->
  t
(** Evaluate an already-provisioned design. [obs] counts
    [cost.evaluations] and flows into the recovery simulator; it never
    changes the result. [scenarios] and [batch] short-circuit scenario
    enumeration and metric-instrument resolution (see
    {!Ds_recovery.Simulate.all} for the identity requirements). *)

val design :
  ?params:Ds_recovery.Recovery_params.t ->
  ?obs:Ds_obs.Obs.t ->
  ?scenarios:Ds_failure.Scenario.t list ->
  ?batch:Ds_recovery.Simulate.batch ->
  Design.t ->
  Likelihood.t ->
  (t, Provision.infeasibility) result
(** Evaluate at minimum provisioning. *)

val total : t -> Money.t

val app_burden : t -> Ds_workload.App.id -> Money.t
(** Penalties plus an outlay share attributed to the application — the
    weight used to pick reconfiguration victims ("biased towards
    applications that contribute the most towards the overall cost"). *)

val pp : Format.formatter -> t -> unit
