module Money = Ds_units.Money
module App = Ds_workload.App
module Design = Ds_design.Design
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Scenario = Ds_failure.Scenario
module Outcome = Ds_recovery.Outcome
module Simulate = Ds_recovery.Simulate

type per_app = {
  app : App.t;
  outage : Money.t;
  loss : Money.t;
}

type t = {
  outage_total : Money.t;
  loss_total : Money.t;
  by_app : per_app list;
  details : (Scenario.t * Outcome.t list) list;
}

let of_outcome ~annual_rate (o : Outcome.t) =
  let outage =
    Money.penalty ~rate_per_hour:o.app.App.outage_penalty_rate o.recovery_time
  in
  let loss =
    Money.penalty ~rate_per_hour:o.app.App.loss_penalty_rate o.loss_time
  in
  (Money.scale annual_rate outage, Money.scale annual_rate loss)

(* This runs once per candidate evaluation — the solvers' innermost loop —
   so the accumulation is kept allocation-lean: per-app sums land in two
   unboxed float arrays indexed like the design's (id-sorted) assignment
   list, instead of a hash table of freshly boxed triples per outcome.
   Outcomes always concern assigned apps (the simulator only recovers
   assignments of the same design), so the linear index probe over the
   handful of apps never misses. *)
let expected_annual ?params ?obs ?scenarios ?batch prov likelihood =
  let details = Simulate.all ?params ?obs ?scenarios ?batch prov likelihood in
  let apps =
    Array.of_list
      (List.map
         (fun (a : Ds_design.Assignment.t) -> a.app)
         (Design.assignments prov.Provision.design))
  in
  let n = Array.length apps in
  let outage = Array.make n 0. in
  let loss = Array.make n 0. in
  let index_of id =
    let rec go i = if i >= n || apps.(i).App.id = id then i else go (i + 1) in
    go 0
  in
  (* Same arithmetic as [of_outcome], kept in unboxed floats: each term
     is rate * (rate_per_hour * clamped_hours) in exactly that
     association, so the totals are bit-identical to the boxed path.
     8760 is [Money]'s hours-per-year penalty cap. *)
  let clamp_hours h =
    if Float.is_finite h then Float.min h 8760. else 8760.
  in
  List.iter
    (fun ((scen : Scenario.t), outcomes) ->
       let rate = scen.Scenario.annual_rate in
       List.iter
         (fun (o : Outcome.t) ->
            let i = index_of o.app.App.id in
            if i < n then begin
              let oh = clamp_hours (Ds_units.Time.to_hours o.recovery_time) in
              let lh = clamp_hours (Ds_units.Time.to_hours o.loss_time) in
              outage.(i) <-
                outage.(i)
                +. rate
                   *. (Money.to_dollars o.app.App.outage_penalty_rate *. oh);
              loss.(i) <-
                loss.(i)
                +. rate *. (Money.to_dollars o.app.App.loss_penalty_rate *. lh)
            end)
         outcomes)
    details;
  let outage_total = ref 0. in
  let loss_total = ref 0. in
  for i = 0 to n - 1 do
    outage_total := !outage_total +. outage.(i);
    loss_total := !loss_total +. loss.(i)
  done;
  let by_app =
    List.init n (fun i ->
        { app = apps.(i);
          outage = Money.dollars outage.(i);
          loss = Money.dollars loss.(i) })
  in
  { outage_total = Money.dollars !outage_total;
    loss_total = Money.dollars !loss_total;
    by_app;
    details }
