module Money = Ds_units.Money
module App = Ds_workload.App
module Design = Ds_design.Design
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Scenario = Ds_failure.Scenario
module Outcome = Ds_recovery.Outcome
module Simulate = Ds_recovery.Simulate

type per_app = {
  app : App.t;
  outage : Money.t;
  loss : Money.t;
}

type t = {
  outage_total : Money.t;
  loss_total : Money.t;
  by_app : per_app list;
  details : (Scenario.t * Outcome.t list) list;
}

let of_outcome ~annual_rate (o : Outcome.t) =
  let outage =
    Money.penalty ~rate_per_hour:o.app.App.outage_penalty_rate o.recovery_time
  in
  let loss =
    Money.penalty ~rate_per_hour:o.app.App.loss_penalty_rate o.loss_time
  in
  (Money.scale annual_rate outage, Money.scale annual_rate loss)

let expected_annual ?params ?obs prov likelihood =
  let details = Simulate.all ?params ?obs prov likelihood in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Ds_design.Assignment.t) ->
       Hashtbl.replace tbl a.app.App.id (a.app, Money.zero, Money.zero))
    (Design.assignments prov.Provision.design);
  List.iter
    (fun ((scen : Scenario.t), outcomes) ->
       List.iter
         (fun (o : Outcome.t) ->
            let outage, loss = of_outcome ~annual_rate:scen.annual_rate o in
            match Hashtbl.find_opt tbl o.app.App.id with
            | Some (app, acc_outage, acc_loss) ->
              Hashtbl.replace tbl o.app.App.id
                (app, Money.add acc_outage outage, Money.add acc_loss loss)
            | None -> Hashtbl.replace tbl o.app.App.id (o.app, outage, loss))
         outcomes)
    details;
  let by_app =
    Hashtbl.fold (fun _ (app, outage, loss) acc -> { app; outage; loss } :: acc)
      tbl []
    |> List.sort (fun a b -> App.compare a.app b.app)
  in
  let outage_total = Money.sum (List.map (fun p -> p.outage) by_app) in
  let loss_total = Money.sum (List.map (fun p -> p.loss) by_app) in
  { outage_total; loss_total; by_app; details }
