module Money = Ds_units.Money
module App = Ds_workload.App
module Design = Ds_design.Design
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood

type t = {
  provision : Provision.t;
  summary : Summary.t;
  penalty : Penalty.t;
}

let provisioned ?params ?obs ?scenarios ?batch prov likelihood =
  (match batch with
   | Some b -> Ds_recovery.Simulate.incr_evaluations b
   | None ->
     (match obs with
      | Some obs -> Ds_obs.Obs.incr obs "cost.evaluations"
      | None -> ()));
  let penalty =
    Penalty.expected_annual ?params ?obs ?scenarios ?batch prov likelihood
  in
  let summary =
    Summary.v ~outlay:(Outlay.annual prov) ~outage:penalty.Penalty.outage_total
      ~loss:penalty.Penalty.loss_total
  in
  { provision = prov; summary; penalty }

let design ?params ?obs ?scenarios ?batch design likelihood =
  Result.map
    (fun prov -> provisioned ?params ?obs ?scenarios ?batch prov likelihood)
    (Provision.minimum design)

let total t = Summary.total t.summary

let app_burden t app_id =
  let penalties =
    List.fold_left
      (fun acc (p : Penalty.per_app) ->
         if p.app.App.id = app_id then Money.add acc (Money.add p.outage p.loss)
         else acc)
      Money.zero t.penalty.Penalty.by_app
  in
  Money.add penalties (Outlay.app_share t.provision app_id)

let pp ppf t = Summary.pp ppf t.summary
