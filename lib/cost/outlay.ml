module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money
module App = Ds_workload.App
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Link_model = Ds_resources.Link_model
module Device_catalog = Ds_resources.Device_catalog
module Slot = Ds_resources.Slot
module Site = Ds_resources.Site
module Env = Ds_resources.Env
module Design = Ds_design.Design
module Demand = Ds_design.Demand
module Assignment = Ds_design.Assignment
module Provision = Ds_design.Provision

let sites_cost prov =
  let used = Design.count_used_sites prov.Provision.design in
  Money.scale (float_of_int used) Device_catalog.site_cost

let arrays_cost prov =
  Slot.Array_slot.Map.fold
    (fun slot units acc ->
       match Design.array_model prov.Provision.design slot with
       | Some model -> Money.add acc (Array_model.purchase_cost model ~units)
       | None -> acc)
    prov.Provision.array_units Money.zero

let tapes_cost prov =
  Slot.Tape_slot.Map.fold
    (fun slot drives acc ->
       match Design.tape_model prov.Provision.design slot with
       | Some model ->
         let cartridges =
           Option.value ~default:0
             (Slot.Tape_slot.Map.find_opt slot prov.Provision.tape_cartridges)
         in
         Money.add acc (Tape_model.purchase_cost model ~drives ~cartridges)
       | None -> acc)
    prov.Provision.tape_drives Money.zero

let links_cost prov =
  let model = prov.Provision.design.Design.env.Env.link_model in
  Slot.Pair.Map.fold
    (fun _ units acc -> Money.add acc (Link_model.purchase_cost model ~units))
    prov.Provision.link_units Money.zero

let compute_cost prov =
  Site.Id_map.fold
    (fun _ n acc ->
       Money.add acc (Money.scale (float_of_int n) Device_catalog.compute_cost))
    prov.Provision.compute Money.zero

let purchase prov =
  Money.sum
    [ sites_cost prov; arrays_cost prov; tapes_cost prov; links_cost prov;
      compute_cost prov ]

let annualize price =
  Money.amortize price ~lifetime_years:Device_catalog.device_lifetime_years

let annual prov = annualize (purchase prov)

let breakdown prov =
  [ ("sites", annualize (sites_cost prov));
    ("disk arrays", annualize (arrays_cost prov));
    ("tape libraries", annualize (tapes_cost prov));
    ("network links", annualize (links_cost prov));
    ("compute", annualize (compute_cost prov)) ]

(* Attribution: each device's annual cost is split among the assignments
   using it, in proportion to capacity demand (arrays, tapes) or bandwidth
   demand (links); compute and a per-resident share of site cost go to the
   apps directly. *)
let app_share prov app_id =
  let design = prov.Provision.design in
  match Design.find design app_id with
  | None -> Money.zero
  | Some asg ->
    let demand = prov.Provision.demand in
    let frac num den = if Size.is_zero den then 0. else Size.div num den in
    let array_part slot contribution =
      match Design.array_model design slot,
            Slot.Array_slot.Map.find_opt slot prov.Provision.array_units with
      | Some model, Some units ->
        let total = (Demand.array_use demand slot).Demand.capacity in
        let f = frac contribution.Demand.capacity total in
        Money.scale f (annualize (Array_model.purchase_cost model ~units))
      | _ -> Money.zero
    in
    let primary_share = array_part asg.Assignment.primary (Demand.primary_contribution asg) in
    let mirror_share =
      match asg.Assignment.mirror with
      | Some slot -> array_part slot (Demand.mirror_contribution asg)
      | None -> Money.zero
    in
    let tape_share =
      match asg.Assignment.backup with
      | Some slot ->
        (match Design.tape_model design slot,
               Slot.Tape_slot.Map.find_opt slot prov.Provision.tape_drives with
         | Some model, Some drives ->
           let cartridges =
             Option.value ~default:0
               (Slot.Tape_slot.Map.find_opt slot prov.Provision.tape_cartridges)
           in
           let total = (Demand.tape_use demand slot).Demand.tape_capacity in
           let own =
             match asg.Assignment.technique.Ds_protection.Technique.backup with
             | Some chain -> Ds_protection.Backup.tape_space chain asg.Assignment.app
             | None -> Size.zero
           in
           Money.scale (frac own total)
             (annualize (Tape_model.purchase_cost model ~drives ~cartridges))
         | _ -> Money.zero)
      | None -> Money.zero
    in
    let link_share =
      let model = design.Design.env.Env.link_model in
      let pair_share pair own_rate =
        match Slot.Pair.Map.find_opt pair prov.Provision.link_units with
        | Some units ->
          let total = Demand.link_use demand pair in
          let f =
            if Rate.is_zero total then 0. else Rate.div own_rate total
          in
          Money.scale f (annualize (Link_model.purchase_cost model ~units))
        | None -> Money.zero
      in
      let mirror_link =
        match Assignment.mirror_pair asg, asg.Assignment.technique.Ds_protection.Technique.mirror with
        | Some pair, Some m ->
          pair_share pair (Ds_protection.Mirror.network_demand m asg.Assignment.app)
        | _ -> Money.zero
      in
      let backup_link =
        match Assignment.backup_pair asg, asg.Assignment.technique.Ds_protection.Technique.backup with
        | Some pair, Some chain ->
          pair_share pair (Ds_protection.Backup.tape_bandwidth_demand chain asg.Assignment.app)
        | _ -> Money.zero
      in
      Money.add mirror_link backup_link
    in
    let compute_share =
      let n =
        1 + (if Ds_protection.Technique.needs_standby_compute asg.Assignment.technique then 1 else 0)
      in
      annualize (Money.scale (float_of_int n) Device_catalog.compute_cost)
    in
    Money.sum [ primary_share; mirror_share; tape_share; link_share; compute_share ]
