module Time = Ds_units.Time
module Obs = Ds_obs.Obs
module Metrics = Ds_obs.Obs.Metrics

(* Per-device gauges are resolved at most once per resource — or once per
   simulation batch when the caller shares them via {!resource_with}: the
   solvers run thousands of single-use engines, and looking instruments
   up by freshly concatenated name on every grant dominated the metered
   path's allocation (and the metrics-registry lock traffic). *)
type device_gauges = {
  busy_g : Metrics.gauge option;
  wait_g : Metrics.gauge option;
}

let no_gauges = { busy_g = None; wait_g = None }

let device_gauges obs name =
  match Obs.metrics obs with
  | None -> no_gauges
  | Some reg ->
    { busy_g = Some (Metrics.gauge reg ("sim.busy_s." ^ name));
      wait_g = Some (Metrics.gauge reg ("sim.wait_s." ^ name)) }

type resource = {
  owner : int;
  rname : string;
  mutable busy : bool;
  gauges : device_gauges;
}

(* Engine-wide instruments, likewise resolvable once per batch. *)
type meters = {
  m_runs : Metrics.counter option;
  m_jobs : Metrics.counter option;
  m_events : Metrics.counter option;
  m_queue_wait : Metrics.histogram option;
}

let no_meters =
  { m_runs = None; m_jobs = None; m_events = None; m_queue_wait = None }

let meters_of_obs obs =
  match Obs.metrics obs with
  | None -> no_meters
  | Some reg ->
    { m_runs = Some (Metrics.counter reg "sim.runs");
      m_jobs = Some (Metrics.counter reg "sim.jobs");
      m_events = Some (Metrics.counter reg "sim.events");
      m_queue_wait = Some (Metrics.histogram reg "sim.queue_wait_s") }

type stage =
  | Delay of Time.t
  | Hold of resource list * Time.t

type state = Idle | Sleeping | Holding | Blocked | Done

type job = {
  jid : int;
  jname : string;
  priority : float;
  stages : stage array;
  mutable idx : int;
  mutable wake : float;
  mutable held : resource list;
  mutable state : state;
  mutable completion : float;
  mutable blocked_since : float;
}

type job_id = int

type policy = Priority | Fifo | Smallest_first

type t = {
  eid : int;
  policy : policy;
  obs : Obs.t;
  meters : meters;
  mutable jobs : job list;  (* reverse submission order *)
  mutable next_jid : int;
  mutable ran : bool;
}

(* Engines are created concurrently by the design solver's parallel refit
   probes; the id well is atomic so every engine stays distinct. The ids
   only tag resources with their owner — no result depends on which
   numbers a run hands out. *)
let next_eid = Atomic.make 0

let create_with ?(policy = Priority) ?(obs = Obs.noop) ~meters () =
  let eid = 1 + Atomic.fetch_and_add next_eid 1 in
  { eid; policy; obs; meters; jobs = []; next_jid = 0; ran = false }

let create ?policy ?(obs = Obs.noop) () =
  create_with ?policy ~obs ~meters:(meters_of_obs obs) ()

let resource_with t ~gauges name =
  { owner = t.eid; rname = name; busy = false; gauges }

let resource t name =
  resource_with t ~gauges:(device_gauges t.obs name) name

let check_stage t = function
  | Delay d ->
    if Float.is_nan (Time.to_seconds d) then invalid_arg "Engine: NaN duration"
  | Hold (resources, d) ->
    if Float.is_nan (Time.to_seconds d) then invalid_arg "Engine: NaN duration";
    List.iter (fun r ->
        if r.owner <> t.eid then invalid_arg "Engine: foreign resource")
      resources

(* Distinct resources of a hold set (a device listed twice is held once).
   Hold sets are tiny and almost never contain duplicates, so the common
   path detects that without allocating and returns the list as-is. *)
let rec has_dup = function
  | [] | [ _ ] -> false
  | r :: rest -> List.memq r rest || has_dup rest

let distinct resources =
  if not (has_dup resources) then resources
  else
    List.fold_left
      (fun acc r -> if List.memq r acc then acc else r :: acc)
      [] resources

let submit t ~name ~priority stages =
  if t.ran then invalid_arg "Engine.submit: engine already ran";
  if Float.is_nan priority then invalid_arg "Engine.submit: NaN priority";
  List.iter (check_stage t) stages;
  (* Hold sets are deduplicated once here, not on every grant attempt in
     the scheduler's retry loop. *)
  let stages =
    List.map
      (function
        | Hold (resources, d) as s ->
          let resources' = distinct resources in
          if resources' == resources then s else Hold (resources', d)
        | Delay _ as s -> s)
      stages
  in
  let jid = t.next_jid in
  t.next_jid <- jid + 1;
  let job =
    { jid; jname = name; priority; stages = Array.of_list stages;
      idx = 0; wake = Float.nan; held = []; state = Idle;
      completion = Float.nan; blocked_since = Float.nan }
  in
  t.jobs <- job :: t.jobs;
  jid

let run t =
  if t.ran then ()
  else begin
    t.ran <- true;
    (* Pre-resolved engine-wide instruments (see [meters] above). *)
    let m = t.meters in
    let metered = m.m_runs <> None in
    (match m.m_runs with Some c -> Metrics.incr c | None -> ());
    (match m.m_jobs with
     | Some c -> Metrics.add c (List.length t.jobs)
     | None -> ());
    let total_work job =
      Array.fold_left
        (fun acc -> function
           | Delay d | Hold (_, d) -> acc +. Time.to_seconds d)
        0. job.stages
    in
    let compare_jobs a b =
      let tie = Int.compare a.jid b.jid in
      match t.policy with
      | Priority ->
        (match Float.compare b.priority a.priority with 0 -> tie | c -> c)
      | Fifo -> tie
      | Smallest_first ->
        (match Float.compare (total_work a) (total_work b) with
         | 0 -> tie
         | c -> c)
    in
    let order = List.sort compare_jobs t.jobs in
    let now = ref 0. in
    (* Let every runnable job start its next stage; loop to a fixpoint
       because a zero-length stage finishes immediately and enables the
       next one. Grants scan in priority order. *)
    let settle () =
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun job ->
             match job.state with
             | Sleeping | Holding | Done -> ()
             | Idle | Blocked ->
               if job.idx >= Array.length job.stages then begin
                 job.state <- Done;
                 job.completion <- !now;
                 changed := true
               end
               else begin
                 match job.stages.(job.idx) with
                 | Delay d ->
                   job.wake <- !now +. Time.to_seconds d;
                   job.state <- Sleeping;
                   changed := true
                 | Hold (resources, d) ->
                   if List.for_all (fun r -> not r.busy) resources then begin
                     if metered then begin
                       let dur = Time.to_seconds d in
                       List.iter
                         (fun r ->
                            match r.gauges.busy_g with
                            | Some g -> Metrics.gauge_add g dur
                            | None -> ())
                         resources;
                       if job.state = Blocked
                       && not (Float.is_nan job.blocked_since) then begin
                         let waited = !now -. job.blocked_since in
                         (match m.m_queue_wait with
                          | Some h -> Metrics.observe h waited
                          | None -> ());
                         List.iter
                           (fun r ->
                              match r.gauges.wait_g with
                              | Some g -> Metrics.gauge_add g waited
                              | None -> ())
                           resources
                       end
                     end;
                     List.iter (fun r -> r.busy <- true) resources;
                     job.held <- resources;
                     job.wake <- !now +. Time.to_seconds d;
                     job.state <- Holding;
                     changed := true
                   end
                   else if job.state = Idle then begin
                     job.blocked_since <- !now;
                     job.state <- Blocked;
                     changed := true
                   end
               end)
          order
      done
    in
    let finished () =
      List.for_all (fun job -> job.state = Done) order
    in
    settle ();
    while not (finished ()) do
      let next =
        List.fold_left
          (fun acc job ->
             match job.state with
             | Sleeping | Holding -> Float.min acc job.wake
             | Idle | Blocked | Done -> acc)
          Float.infinity order
      in
      if Float.is_finite next then begin
        now := next;
        List.iter
          (fun job ->
             match job.state with
             | (Sleeping | Holding) when job.wake <= !now ->
               (match m.m_events with Some c -> Metrics.incr c | None -> ());
               List.iter (fun r -> r.busy <- false) job.held;
               job.held <- [];
               job.idx <- job.idx + 1;
               job.state <- Idle
             | _ -> ())
          order;
        settle ()
      end
      else begin
        (* Either a stage has infinite duration, or (impossibly) everyone
           is blocked. Remaining jobs never finish. *)
        List.iter
          (fun job ->
             if job.state <> Done then begin
               job.state <- Done;
               job.completion <- Float.infinity
             end)
          order
      end
    done
  end

let find_job t jid = List.find (fun job -> job.jid = jid) t.jobs

let completion_time t jid =
  run t;
  Time.seconds (find_job t jid).completion

let results t =
  run t;
  List.rev t.jobs
  |> List.map (fun job -> (job.jname, Time.seconds job.completion))
