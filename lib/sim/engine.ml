module Time = Ds_units.Time
module Obs = Ds_obs.Obs

type resource = {
  owner : int;
  rname : string;
  mutable busy : bool;
}

type stage =
  | Delay of Time.t
  | Hold of resource list * Time.t

type state = Idle | Sleeping | Holding | Blocked | Done

type job = {
  jid : int;
  jname : string;
  priority : float;
  stages : stage array;
  mutable idx : int;
  mutable wake : float;
  mutable held : resource list;
  mutable state : state;
  mutable completion : float;
  mutable blocked_since : float;
}

type job_id = int

type policy = Priority | Fifo | Smallest_first

type t = {
  eid : int;
  policy : policy;
  obs : Obs.t;
  mutable jobs : job list;  (* reverse submission order *)
  mutable next_jid : int;
  mutable ran : bool;
}

(* Engines are created concurrently by the design solver's parallel refit
   probes; the id well is atomic so every engine stays distinct. The ids
   only tag resources with their owner — no result depends on which
   numbers a run hands out. *)
let next_eid = Atomic.make 0

let create ?(policy = Priority) ?(obs = Obs.noop) () =
  let eid = 1 + Atomic.fetch_and_add next_eid 1 in
  { eid; policy; obs; jobs = []; next_jid = 0; ran = false }

let resource t name = { owner = t.eid; rname = name; busy = false }

let check_stage t = function
  | Delay d ->
    if Float.is_nan (Time.to_seconds d) then invalid_arg "Engine: NaN duration"
  | Hold (resources, d) ->
    if Float.is_nan (Time.to_seconds d) then invalid_arg "Engine: NaN duration";
    List.iter (fun r ->
        if r.owner <> t.eid then invalid_arg "Engine: foreign resource")
      resources

let submit t ~name ~priority stages =
  if t.ran then invalid_arg "Engine.submit: engine already ran";
  if Float.is_nan priority then invalid_arg "Engine.submit: NaN priority";
  List.iter (check_stage t) stages;
  let jid = t.next_jid in
  t.next_jid <- jid + 1;
  let job =
    { jid; jname = name; priority; stages = Array.of_list stages;
      idx = 0; wake = Float.nan; held = []; state = Idle;
      completion = Float.nan; blocked_since = Float.nan }
  in
  t.jobs <- job :: t.jobs;
  jid

(* Distinct resources of a hold set (a device listed twice is held once). *)
let distinct resources =
  List.fold_left (fun acc r -> if List.memq r acc then acc else r :: acc) [] resources

let run t =
  if t.ran then ()
  else begin
    t.ran <- true;
    let metered = Obs.metrics_on t.obs in
    if metered then begin
      Obs.incr t.obs "sim.runs";
      Obs.add t.obs "sim.jobs" (List.length t.jobs)
    end;
    let total_work job =
      Array.fold_left
        (fun acc -> function
           | Delay d | Hold (_, d) -> acc +. Time.to_seconds d)
        0. job.stages
    in
    let compare_jobs a b =
      let tie = Int.compare a.jid b.jid in
      match t.policy with
      | Priority ->
        (match Float.compare b.priority a.priority with 0 -> tie | c -> c)
      | Fifo -> tie
      | Smallest_first ->
        (match Float.compare (total_work a) (total_work b) with
         | 0 -> tie
         | c -> c)
    in
    let order = List.sort compare_jobs t.jobs in
    let now = ref 0. in
    (* Let every runnable job start its next stage; loop to a fixpoint
       because a zero-length stage finishes immediately and enables the
       next one. Grants scan in priority order. *)
    let settle () =
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun job ->
             match job.state with
             | Sleeping | Holding | Done -> ()
             | Idle | Blocked ->
               if job.idx >= Array.length job.stages then begin
                 job.state <- Done;
                 job.completion <- !now;
                 changed := true
               end
               else begin
                 match job.stages.(job.idx) with
                 | Delay d ->
                   job.wake <- !now +. Time.to_seconds d;
                   job.state <- Sleeping;
                   changed := true
                 | Hold (resources, d) ->
                   let resources = distinct resources in
                   if List.for_all (fun r -> not r.busy) resources then begin
                     if metered then begin
                       let dur = Time.to_seconds d in
                       List.iter
                         (fun r ->
                            Obs.gauge_add t.obs ("sim.busy_s." ^ r.rname) dur)
                         resources;
                       if job.state = Blocked
                       && not (Float.is_nan job.blocked_since) then begin
                         let waited = !now -. job.blocked_since in
                         Obs.observe t.obs "sim.queue_wait_s" waited;
                         List.iter
                           (fun r ->
                              Obs.gauge_add t.obs ("sim.wait_s." ^ r.rname)
                                waited)
                           resources
                       end
                     end;
                     List.iter (fun r -> r.busy <- true) resources;
                     job.held <- resources;
                     job.wake <- !now +. Time.to_seconds d;
                     job.state <- Holding;
                     changed := true
                   end
                   else if job.state = Idle then begin
                     job.blocked_since <- !now;
                     job.state <- Blocked;
                     changed := true
                   end
               end)
          order
      done
    in
    let finished () =
      List.for_all (fun job -> job.state = Done) order
    in
    settle ();
    while not (finished ()) do
      let next =
        List.fold_left
          (fun acc job ->
             match job.state with
             | Sleeping | Holding -> Float.min acc job.wake
             | Idle | Blocked | Done -> acc)
          Float.infinity order
      in
      if Float.is_finite next then begin
        now := next;
        List.iter
          (fun job ->
             match job.state with
             | (Sleeping | Holding) when job.wake <= !now ->
               if metered then Obs.incr t.obs "sim.events";
               List.iter (fun r -> r.busy <- false) job.held;
               job.held <- [];
               job.idx <- job.idx + 1;
               job.state <- Idle
             | _ -> ())
          order;
        settle ()
      end
      else begin
        (* Either a stage has infinite duration, or (impossibly) everyone
           is blocked. Remaining jobs never finish. *)
        List.iter
          (fun job ->
             if job.state <> Done then begin
               job.state <- Done;
               job.completion <- Float.infinity
             end)
          order
      end
    done
  end

let find_job t jid = List.find (fun job -> job.jid = jid) t.jobs

let completion_time t jid =
  run t;
  Time.seconds (find_job t jid).completion

let results t =
  run t;
  List.rev t.jobs
  |> List.map (fun job -> (job.jname, Time.seconds job.completion))
