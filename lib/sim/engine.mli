(** A small deterministic discrete-event engine for recovery scheduling.

    The configuration solver "simulates the recovery process to determine
    the recovery time for each failed application", serializing competing
    recovery operations by priority (Section 3.2.2). This engine models
    exactly that: jobs (one per recovering application) run a fixed
    sequence of stages; a stage is either a plain delay (hardware repair,
    failover, courier) or an exclusive hold of one or more devices for a
    duration (a data restore using a tape library, a link and the target
    array at once).

    Scheduling policy: when a device frees up, the waiting job with the
    highest priority (ties broken by submission order) whose {e whole}
    device set is free starts next. There is no preemption — a started
    restore runs to completion, so a high-priority job can wait for a
    lower-priority one that got there first, exactly like the serialized
    recovery in the paper.

    All jobs are submitted at time zero; the engine is single-shot. *)

module Time = Ds_units.Time
module Obs = Ds_obs.Obs

type t
type resource
type job_id

type policy =
  | Priority  (** Highest priority first — the paper's assumption. *)
  | Fifo  (** Submission order, priorities ignored. *)
  | Smallest_first
      (** Jobs with the least total stage time first (static shortest-job
          scheduling) — minimizes mean completion time, not weighted
          penalty. *)

val create : ?policy:policy -> ?obs:Obs.t -> unit -> t
(** Default scheduling policy: {!Priority}. With a metrics-bearing [obs]
    the run records [sim.runs], [sim.jobs], [sim.events] (stage
    completions), a [sim.queue_wait_s] histogram, and per-resource
    [sim.busy_s.<name>] / [sim.wait_s.<name>] gauges. Observation never
    changes scheduling. *)

type meters
(** Pre-resolved engine-wide instruments ([sim.runs], [sim.jobs],
    [sim.events], [sim.queue_wait_s]). The recovery simulator creates one
    single-shot engine per failure scenario; resolving the instruments by
    name per engine dominated the metered path, so a caller evaluating
    many scenarios against one [obs] resolves them once and hands them to
    every {!create_with}. *)

val meters_of_obs : Obs.t -> meters
(** Resolves against [obs]'s metrics registry (a no-op capability when
    metrics are off). *)

val create_with : ?policy:policy -> ?obs:Obs.t -> meters:meters -> unit -> t
(** Like {!create}, but metering through pre-resolved [meters] (which
    must come from [obs]'s registry). *)

type device_gauges
(** Pre-resolved per-device gauges ([sim.busy_s.<name>] /
    [sim.wait_s.<name>]), shareable across engines that model the same
    physical device in different scenarios. *)

val no_gauges : device_gauges
val device_gauges : Obs.t -> string -> device_gauges

val resource : t -> string -> resource
(** A named exclusive device. Each call creates a fresh resource,
    resolving its gauges from the engine's [obs]. *)

val resource_with : t -> gauges:device_gauges -> string -> resource
(** Like {!resource} with pre-resolved gauges — no registry lookups. *)

type stage =
  | Delay of Time.t  (** Elapses unconditionally (repairs, couriers). *)
  | Hold of resource list * Time.t
      (** Exclusive use of all listed devices for the duration. An empty
          list behaves like {!Delay}. *)

val submit : t -> name:string -> priority:float -> stage list -> job_id
(** Registers a job starting at time zero. Higher [priority] is served
    first. @raise Invalid_argument if the engine already ran, a duration
    is not finite, or a resource belongs to another engine. *)

val run : t -> unit
(** Executes to quiescence. Idempotent. *)

val completion_time : t -> job_id -> Time.t
(** Finish time of the job's last stage; {!run}s the engine if needed. *)

val results : t -> (string * Time.t) list
(** All jobs with completion times, in submission order. *)
