(** Dependable storage design tool.

    An OCaml reproduction of "Designing dependable storage solutions for
    shared application environments" (Gaonkar, Keeton, Merchant, Sanders —
    DSN 2006): an automated design tool that chooses data protection
    techniques, their configuration parameters and the devices supporting
    them for every application in a shared environment, minimizing
    amortized outlays plus expected failure penalties.

    This module is the public facade; each subsystem is also usable as a
    standalone library.

    {1 Quick start}

    {[
      open Dependable_storage

      let env =
        Resources.Env.fully_connected ~name:"two-sites" ~site_count:2
          ~bays_per_site:2 ~array_models:Resources.Device_catalog.array_models
          ~tape_models:Resources.Device_catalog.tape_models
          ~link_model:Resources.Device_catalog.link_high ~max_link_units:32
          ~compute_slots_per_site:8 ()

      let apps = Workload.Workload_catalog.mix ~count:8

      let () =
        match Solver.Design_solver.solve env apps Failure.Likelihood.default with
        | Some outcome ->
          Format.printf "%a@." Solver.Candidate.pp outcome.Solver.Design_solver.best
        | None -> prerr_endline "no feasible design"
    ]} *)

module Units = struct
  module Time = Ds_units.Time
  module Size = Ds_units.Size
  module Rate = Ds_units.Rate
  module Money = Ds_units.Money
end

module Prng = struct
  module Rng = Ds_prng.Rng
  module Sample = Ds_prng.Sample
end

module Workload = struct
  module Category = Ds_workload.Category
  module App = Ds_workload.App
  module Workload_catalog = Ds_workload.Workload_catalog
end

module Protection = struct
  module Recovery_mode = Ds_protection.Recovery_mode
  module Mirror = Ds_protection.Mirror
  module Backup = Ds_protection.Backup
  module Technique = Ds_protection.Technique
  module Technique_catalog = Ds_protection.Technique_catalog
end

module Resources = struct
  module Tier = Ds_resources.Tier
  module Array_model = Ds_resources.Array_model
  module Tape_model = Ds_resources.Tape_model
  module Link_model = Ds_resources.Link_model
  module Device_catalog = Ds_resources.Device_catalog
  module Site = Ds_resources.Site
  module Slot = Ds_resources.Slot
  module Env = Ds_resources.Env
end

module Design = struct
  module Assignment = Ds_design.Assignment
  module Design = Ds_design.Design
  module Demand = Ds_design.Demand
  module Provision = Ds_design.Provision
  module Design_io = Ds_design.Design_io
  module Lint = Ds_design.Lint
end

module Failure = struct
  module Likelihood = Ds_failure.Likelihood
  module Scenario = Ds_failure.Scenario
end

module Sim = struct
  module Engine = Ds_sim.Engine
end

module Recovery = struct
  module Recovery_params = Ds_recovery.Recovery_params
  module Copy_source = Ds_recovery.Copy_source
  module Outcome = Ds_recovery.Outcome
  module Simulate = Ds_recovery.Simulate
end

module Cost = struct
  module Summary = Ds_cost.Summary
  module Outlay = Ds_cost.Outlay
  module Penalty = Ds_cost.Penalty
  module Evaluate = Ds_cost.Evaluate
  module Slo_report = Ds_cost.Slo_report
  module Sla = Ds_cost.Sla
end

module Solver = struct
  module Candidate = Ds_solver.Candidate
  module Memo = Ds_solver.Memo
  module Layout = Ds_solver.Layout
  module Config_solver = Ds_solver.Config_solver
  module Reconfigure = Ds_solver.Reconfigure
  module Design_solver = Ds_solver.Design_solver
  module Exhaustive = Ds_solver.Exhaustive
end

module Fleet = Ds_fleet.Fleet
(** Fleet-scale coordinator: [Fleet.solve env apps likelihood] partitions
    thousands of apps over the environment's failure domains, solves
    shards in parallel on an [Exec] pool and reconciles shared-resource
    contention; [Fleet.resolve ~incumbent] re-solves only the shards a
    workload drift touched, reusing the rest byte-for-byte. Deterministic
    in the domain count; see DESIGN.md §15. *)

module Search = Ds_search.Search
(** Multi-start portfolio meta-solver: [Search.run ~restarts:8 ~pool env
    apps likelihood] races independent design-solver restarts on an
    [Exec] pool and returns the cheapest design (cost ties to the lowest
    restart index). Deterministic in the domain count; see DESIGN.md
    §11. *)

module Heuristics = struct
  module Heuristic_result = Ds_heuristics.Heuristic_result
  module Human = Ds_heuristics.Human
  module Random_search = Ds_heuristics.Random_search
  module Annealing = Ds_heuristics.Annealing
  module Tabu = Ds_heuristics.Tabu
end

module Risk = struct
  module Year_sim = Ds_risk.Year_sim
  module Tail_sim = Ds_risk.Tail_sim
end

module Trace = struct
  module Io_record = Ds_trace.Io_record
  module Trace = Ds_trace.Trace
  module Synth = Ds_trace.Synth
  module Characterize = Ds_trace.Characterize
end

module Exec = Ds_exec.Exec
(** Deterministic domain-pool executor. [Exec.create ~domains:4 ()] gives
    a pool you can hand to [Risk.Year_sim.simulate ~pool] or set on
    experiment budgets via [Experiments.Budgets.with_domains]; every
    consumer's results are identical at any width (DESIGN.md Â§10). *)

module Obs = Ds_obs.Obs
(** Observability capability: metrics, span tracing and solver progress.
    Pass [~obs:(Obs.create ~metrics:true ())] (or any sink combination)
    to [Solver.Design_solver.solve], [Experiments.Compare.run],
    [Risk.Year_sim.simulate], [Sim.Engine.create] and friends; the
    default everywhere is the cost-free noop sink. *)

module Experiments = Ds_experiments

module Server = struct
  module Json = Ds_server.Json
  module Protocol = Ds_server.Protocol
  module Daemon = Ds_server.Daemon
  module Client = Ds_server.Client
end
(** The design tool as a long-running service: [Server.Daemon] serves
    solve / resolve / risk / fleet requests over newline-delimited
    JSON-RPC on TCP with a resident pool and configuration cache;
    [Server.Client] is the matching blocking client ([dstool serve] /
    [dstool client]). See DESIGN.md §16. *)
