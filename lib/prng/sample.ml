let choose_array g arr =
  if Array.length arr = 0 then invalid_arg "Sample.choose_array: empty";
  arr.(Rng.int g (Array.length arr))

let choose g = function
  | [] -> invalid_arg "Sample.choose: empty list"
  | items -> choose_array g (Array.of_list items)

let choose_opt g = function
  | [] -> None
  | items -> Some (choose g items)

let weighted_index g weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sample.weighted_index: empty";
  let total = Array.fold_left (fun acc w ->
      if w < 0. || Float.is_nan w then
        invalid_arg "Sample.weighted_index: negative or NaN weight"
      else acc +. w)
      0. weights
  in
  if total <= 0. then
    (* All weights are exactly zero: uniform fallback (documented). *)
    Rng.int g n
  else begin
    let target = Rng.float g total in
    let rec scan i acc =
      if i = n - 1 then i
      else
        let acc = acc +. weights.(i) in
        if target < acc then i else scan (i + 1) acc
    in
    let i = scan 0 0. in
    (* The [i = n - 1] rounding fallback can land on an index whose
       weight is exactly [0.] (trailing zero weights when float
       accumulation puts [target] past every partial sum). A positive
       total guarantees a positive weight exists; clamp to the last
       one so zero-weight items are never chosen. *)
    if weights.(i) > 0. then i
    else
      let rec back j = if weights.(j) > 0. then j else back (j - 1) in
      back (n - 1)
  end

let weighted g items =
  if items = [] then invalid_arg "Sample.weighted: empty list";
  let arr = Array.of_list items in
  let idx = weighted_index g (Array.map snd arr) in
  fst arr.(idx)

let shuffle g items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let take_distinct g n items =
  if n <= 0 then []
  else
    let shuffled = shuffle g items in
    List.filteri (fun i _ -> i < n) shuffled

let bernoulli g p =
  let p = Float.max 0. (Float.min 1. p) in
  Rng.unit_float g < p
