let choose_array g arr =
  if Array.length arr = 0 then invalid_arg "Sample.choose_array: empty";
  arr.(Rng.int g (Array.length arr))

let choose g = function
  | [] -> invalid_arg "Sample.choose: empty list"
  | items -> choose_array g (Array.of_list items)

let choose_opt g = function
  | [] -> None
  | items -> Some (choose g items)

let weighted_index g weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sample.weighted_index: empty";
  let total = Array.fold_left (fun acc w ->
      if w < 0. || Float.is_nan w then
        invalid_arg "Sample.weighted_index: negative or NaN weight"
      else acc +. w)
      0. weights
  in
  if total <= 0. then
    (* All weights are exactly zero: uniform fallback (documented). *)
    Rng.int g n
  else begin
    let target = Rng.float g total in
    let rec scan i acc =
      if i = n - 1 then i
      else
        let acc = acc +. weights.(i) in
        if target < acc then i else scan (i + 1) acc
    in
    let i = scan 0 0. in
    (* The [i = n - 1] rounding fallback can land on an index whose
       weight is exactly [0.] (trailing zero weights when float
       accumulation puts [target] past every partial sum). A positive
       total guarantees a positive weight exists; clamp to the last
       one so zero-weight items are never chosen. *)
    if weights.(i) > 0. then i
    else
      let rec back j = if weights.(j) > 0. then j else back (j - 1) in
      back (n - 1)
  end

let weighted g items =
  if items = [] then invalid_arg "Sample.weighted: empty list";
  let arr = Array.of_list items in
  let idx = weighted_index g (Array.map snd arr) in
  fst arr.(idx)

let shuffle g items =
  let arr = Array.of_list items in
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let take_distinct g n items =
  if n <= 0 then []
  else
    let shuffled = shuffle g items in
    List.filteri (fun i _ -> i < n) shuffled

let bernoulli g p =
  let p = Float.max 0. (Float.min 1. p) in
  Rng.unit_float g < p

(* Below this rate Knuth's product loop is both exact and cheap; above
   it [exp (-.lambda)] loses precision long before it underflows at
   lambda ~ 745, so the accumulator moves to log space. The value is
   far under any danger zone — at 30, [exp (-30.)] ~ 9.4e-14 is still
   a perfectly representable normal double — it just keeps the common
   small-rate path multiplication-only. *)
let poisson_direct_cutoff = 30.

let poisson g lambda =
  if Float.is_nan lambda || lambda = Float.infinity then
    invalid_arg "Sample.poisson: rate must be finite";
  if lambda <= 0. then 0
  else if lambda < poisson_direct_cutoff then begin
    (* Knuth: count draws until the product of uniforms falls under
       exp(-lambda). *)
    let limit = exp (-.lambda) in
    let rec go k p =
      let p = p *. Rng.unit_float g in
      if p <= limit then k else go (k + 1) p
    in
    go 0 1.
  end
  else begin
    (* The same stopping rule in log space: sum exponential(1) arrivals
       (-log u) until they exceed [lambda]; the count of completed
       arrivals is Poisson(lambda). Never underflows, exact for any
       finite rate; expected cost is O(lambda) draws, fine for the
       tilted rates the risk engine produces (hundreds, not millions).
       [Rng.unit_float] can return 0., whose log is -infinity — that
       single arrival overshoots any rate and just stops the loop. *)
    let rec go k acc =
      let acc = acc -. log (Rng.unit_float g) in
      if acc > lambda then k else go (k + 1) acc
    in
    go 0 0.
  end

let poisson_log_weight ~rate ~tilted k =
  if Float.is_nan rate || rate < 0. || Float.is_nan tilted || tilted < 0. then
    invalid_arg "Sample.poisson_log_weight: rates must be non-negative";
  if k < 0 then invalid_arg "Sample.poisson_log_weight: negative count";
  if rate = tilted then 0.
  else if rate = 0. then
    (* Target assigns probability only to k = 0. *)
    if k = 0 then tilted else Float.neg_infinity
  else if tilted = 0. then
    invalid_arg
      "Sample.poisson_log_weight: tilted rate 0 cannot propose for a \
       positive rate"
  else (tilted -. rate) +. (float_of_int k *. (log rate -. log tilted))
