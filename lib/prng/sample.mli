(** Sampling combinators over {!Rng}.

    These implement the biased random choices used throughout the design
    solver: uniform picks, penalty-weighted application selection,
    cost-biased technique selection and utilization-biased device layout. *)

val choose : Rng.t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on an empty list. *)

val choose_opt : Rng.t -> 'a list -> 'a option
(** Uniform choice; [None] on an empty list. *)

val choose_array : Rng.t -> 'a array -> 'a
(** Uniform choice from an array. @raise Invalid_argument if empty. *)

val weighted : Rng.t -> ('a * float) list -> 'a
(** [weighted g items] picks an element with probability proportional to
    its (non-negative) weight. Zero-weight elements are never chosen unless
    every weight is zero, in which case the choice is uniform.
    @raise Invalid_argument on an empty list or a negative weight. *)

val weighted_index : Rng.t -> float array -> int
(** Index form of {!weighted}. Guarantees an index of positive weight
    whenever any weight is positive — the roulette scan's last-index
    rounding fallback is clamped to the last positive-weight entry.
    When {e every} weight is exactly [0.] the draw falls back to a
    uniform choice over all [n] indices (zero-weight items included);
    callers that must never see such items should guard the all-zero
    case themselves. *)

val shuffle : Rng.t -> 'a list -> 'a list
(** Fisher-Yates shuffle; uniform over permutations. *)

val take_distinct : Rng.t -> int -> 'a list -> 'a list
(** [take_distinct g n items] draws up to [n] distinct elements (by
    position), uniformly without replacement. *)

val bernoulli : Rng.t -> float -> bool
(** [bernoulli g p] is true with probability [p] (clamped to [0,1]). *)

val poisson : Rng.t -> float -> int
(** [poisson g lambda] draws a Poisson([lambda]) count. Exact at every
    finite rate: Knuth's product loop below a small cutoff (identical
    draw sequence to the historical {!Ds_risk.Year_sim} sampler, so
    fixed-seed simulations are unchanged for per-year scenario rates)
    and a log-space arrival accumulator above it — the regime where
    [exp (-.lambda)] underflows to [0.] (lambda ≳ 745) and the product
    loop would degenerate into a wrong-distribution count near 745.
    Rates [<= 0.] return 0. Expected cost is O([lambda]) uniform draws.
    @raise Invalid_argument on a NaN or infinite rate. *)

val poisson_log_weight : rate:float -> tilted:float -> int -> float
(** [poisson_log_weight ~rate ~tilted k] is the log likelihood ratio
    [log (P_rate(k) / P_tilted(k))] of observing [k] events under the
    nominal Poisson([rate]) versus the tilted proposal
    Poisson([tilted]): [(tilted - rate) + k * (log rate - log tilted)].
    This is the per-scenario reweighting term of the rare-event risk
    engine ({!Ds_risk.Tail_sim}): summing it over scenarios and
    exponentiating turns tilted samples back into unbiased estimates
    under the nominal rates. [0.] when the rates are equal (including
    both zero); [-infinity] for [k > 0] under [rate = 0.].
    @raise Invalid_argument on negative/NaN rates, [k < 0], or a zero
    [tilted] rate proposing for a positive [rate]. *)
