(** Sampling combinators over {!Rng}.

    These implement the biased random choices used throughout the design
    solver: uniform picks, penalty-weighted application selection,
    cost-biased technique selection and utilization-biased device layout. *)

val choose : Rng.t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on an empty list. *)

val choose_opt : Rng.t -> 'a list -> 'a option
(** Uniform choice; [None] on an empty list. *)

val choose_array : Rng.t -> 'a array -> 'a
(** Uniform choice from an array. @raise Invalid_argument if empty. *)

val weighted : Rng.t -> ('a * float) list -> 'a
(** [weighted g items] picks an element with probability proportional to
    its (non-negative) weight. Zero-weight elements are never chosen unless
    every weight is zero, in which case the choice is uniform.
    @raise Invalid_argument on an empty list or a negative weight. *)

val weighted_index : Rng.t -> float array -> int
(** Index form of {!weighted}. Guarantees an index of positive weight
    whenever any weight is positive — the roulette scan's last-index
    rounding fallback is clamped to the last positive-weight entry.
    When {e every} weight is exactly [0.] the draw falls back to a
    uniform choice over all [n] indices (zero-weight items included);
    callers that must never see such items should guard the all-zero
    case themselves. *)

val shuffle : Rng.t -> 'a list -> 'a list
(** Fisher-Yates shuffle; uniform over permutations. *)

val take_distinct : Rng.t -> int -> 'a list -> 'a list
(** [take_distinct g n items] draws up to [n] distinct elements (by
    position), uniformly without replacement. *)

val bernoulli : Rng.t -> float -> bool
(** [bernoulli g p] is true with probability [p] (clamped to [0,1]). *)
