module Time = Ds_units.Time
module Money = Ds_units.Money
module App = Ds_workload.App
module Backup = Ds_protection.Backup
module Technique = Ds_protection.Technique
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Scenario = Ds_failure.Scenario
module Simulate = Ds_recovery.Simulate
module Evaluate = Ds_cost.Evaluate
module Obs = Ds_obs.Obs
module Exec = Ds_exec.Exec

type window_scope =
  | All_apps
  | Only of App.id list
  | Skip

type cache = (Candidate.t, Provision.infeasibility) result Memo.t

type options = {
  window_scope : window_scope;
  snapshot_menu : Time.t list;
  tape_menu : Time.t list;
  fulls_menu : int list;
  max_growth_steps : int;
  recovery : Ds_recovery.Recovery_params.t;
  memo : cache option;
}

let default_options =
  { window_scope = All_apps;
    snapshot_menu = [ Time.hours 6.; Time.hours 12.; Time.hours 24. ];
    tape_menu = [ Time.days 1.; Time.days 3.5; Time.days 7.; Time.days 14. ];
    fulls_menu = [ 1; 7 ];
    max_growth_steps = 24;
    recovery = Ds_recovery.Recovery_params.default;
    memo = None }

let search_options =
  { default_options with window_scope = Only []; max_growth_steps = 6 }

let create_cache ?(size = 1024) () : cache = Memo.create ~capacity:size ()

(* ------------------------------------------------------------------ *)
(* Memo-cache keys. The solver is a pure function of (options, design,
   likelihood) — it never touches the RNG — so a canonical fingerprint
   of those three inputs keys its results exactly. Every option field
   that changes the result is encoded; the [memo] field itself is not
   part of the key.                                                     *)
(* ------------------------------------------------------------------ *)

let scope_fingerprint = function
  | All_apps -> "A"
  | Skip -> "S"
  | Only ids ->
    "O" ^ String.concat "," (List.map string_of_int (List.sort Int.compare ids))

let recovery_fingerprint (r : Ds_recovery.Recovery_params.t) =
  Printf.sprintf "r{%h;%h;%h;%h;%h;%h;%h;%h;%h;%s;%s}"
    (Time.to_seconds r.detection) (Time.to_seconds r.failover)
    (Time.to_seconds r.array_repair) (Time.to_seconds r.site_rebuild)
    (Time.to_seconds r.site_reconfig) (Time.to_seconds r.mirror_promote)
    (Time.to_seconds r.vault_fetch) (Time.to_seconds r.manual_rebuild)
    (Time.to_seconds r.loss_horizon)
    (match r.vault_mode with
     | Ds_recovery.Recovery_params.Cycle -> "c"
     | Ds_recovery.Recovery_params.Continuous -> "k")
    (match r.scheduling with
     | Ds_sim.Engine.Priority -> "p"
     | Ds_sim.Engine.Fifo -> "f"
     | Ds_sim.Engine.Smallest_first -> "s")

let time_menu menu =
  String.concat "," (List.map (fun t -> Printf.sprintf "%h" (Time.to_seconds t)) menu)

let options_fingerprint o =
  Printf.sprintf "o{%s|%s|%s|%s|%d|%s}"
    (scope_fingerprint o.window_scope)
    (time_menu o.snapshot_menu) (time_menu o.tape_menu)
    (String.concat "," (List.map string_of_int o.fulls_menu))
    o.max_growth_steps
    (recovery_fingerprint o.recovery)

(* A refit run probes the memo thousands of times with the same options
   and likelihood values; only the design part of the key varies. Both
   small fingerprints are cached under physical equality (an Atomic slot,
   racing solver domains at worst recompute an identical string). *)
let options_fp_slot : (options * string) option Atomic.t = Atomic.make None
let likelihood_fp_slot : (Likelihood.t * string) option Atomic.t =
  Atomic.make None

let cached_fp slot v compute =
  match Atomic.get slot with
  | Some (v', fp) when v' == v -> fp
  | _ ->
    let fp = compute v in
    Atomic.set slot (Some (v, fp));
    fp

let cache_key ~options design likelihood =
  let options_fp = cached_fp options_fp_slot options options_fingerprint in
  let likelihood_fp =
    cached_fp likelihood_fp_slot likelihood Likelihood.fingerprint
  in
  let buf =
    Buffer.create
      (String.length options_fp + String.length likelihood_fp + 256)
  in
  Buffer.add_string buf options_fp;
  Buffer.add_char buf '#';
  Buffer.add_string buf likelihood_fp;
  Buffer.add_char buf '#';
  Design.add_fingerprint buf design;
  Buffer.contents buf

(* Swap one app's backup windows inside a design. Only the backup chain
   changes — placement and models stay put — so the assignment is
   rewritten in place instead of cycling through Design.remove/add. *)
let with_windows design (asg : Assignment.t) ~snapshot_win ~tape_win ~fulls_every =
  match asg.technique.Technique.backup with
  | None -> Ok design
  | Some chain ->
    let chain =
      Backup.with_fulls_every
        (Backup.with_tape_win (Backup.with_snapshot_win chain snapshot_win)
           tape_win)
        fulls_every
    in
    let technique = Technique.with_backup_chain asg.technique chain in
    (match Design.swap_technique design asg.app.App.id technique with
     | Some design -> Ok design
     | None -> Error "app not assigned")

let evaluate ~options ?obs ?scenarios ?batch design likelihood =
  Evaluate.design ~params:options.recovery ?obs ?scenarios ?batch design
    likelihood

(* Coordinate-descent over the window menus, one app at a time in
   descending penalty order; each combination is evaluated against the
   full candidate (Section 3.2: exhaustive search over the discretized
   ranges).

   Each app's combinations are evaluated in parallel on [pool]. That is
   result-transparent because the sequential fold's running best never
   leaks into a later trial: [with_windows] overwrites the app's three
   window fields wholesale and [Design.add] re-sorts assignments
   canonically, so a trial built from the fold's current best design is
   byte-identical to one built from the app-entry design. The fold is
   therefore an argmin over independent trials, taken here in combo-index
   order with the strict-[<] first-wins tie-breaking of the original
   loop. *)
let optimize_windows ~options ~obs ~pool ~scenarios ~batch design likelihood
    current_eval =
  let scope_ids =
    match options.window_scope with
    | All_apps ->
      List.map (fun (a : Assignment.t) -> a.app.App.id) (Design.assignments design)
    | Only ids -> ids
    | Skip -> []
  in
  let candidates =
    Design.assignments design
    |> List.filter (fun (a : Assignment.t) ->
        Technique.has_backup a.technique && List.mem a.app.App.id scope_ids)
    |> List.sort (fun (a : Assignment.t) (b : Assignment.t) ->
        Money.compare (App.penalty_rate_sum b.app) (App.penalty_rate_sum a.app))
  in
  let combos =
    List.concat_map
      (fun snapshot_win ->
         List.concat_map
           (fun tape_win ->
              List.map (fun fulls_every -> (snapshot_win, tape_win, fulls_every))
                options.fulls_menu)
           options.tape_menu)
      options.snapshot_menu
    |> Array.of_list
  in
  (* Resolved once per solve; the per-trial bump must not pay a by-name
     registry lookup. Workers share the registry with [obs]. *)
  let trials_c =
    match Obs.metrics obs with
    | Some reg -> Some (Obs.Metrics.counter reg "config.window_trials")
    | None -> None
  in
  List.fold_left
    (fun (design, eval) (asg : Assignment.t) ->
       let trials =
         Exec.mapi_obs pool ~label:"config.windows" ~obs
           (fun wobs _ (snapshot_win, tape_win, fulls_every) ->
              match
                with_windows design asg ~snapshot_win ~tape_win ~fulls_every
              with
              | Error _ -> None
              | Ok trial ->
                (match trials_c with
                 | Some c -> Obs.Metrics.incr c
                 | None -> ());
                (match
                   evaluate ~options ~obs:wobs ~scenarios ~batch trial likelihood
                 with
                 | Error _ -> None
                 | Ok trial_eval -> Some (trial, trial_eval)))
           combos
       in
       Array.fold_left
         (fun (best_design, best_eval) trial ->
            match trial with
            | None -> (best_design, best_eval)
            | Some (trial, trial_eval) ->
              if Money.compare (Evaluate.total trial_eval)
                   (Evaluate.total best_eval) < 0
              then (trial, trial_eval)
              else (best_design, best_eval))
         (design, eval) trials)
    (design, current_eval) candidates

(* Add one resource unit at a time while it reduces total cost
   (Section 3.2.2: "continues to add resources until it no longer
   produces any cost savings"). Each round's candidate moves are
   independent (all grown from the round-entry provisioning), so they
   evaluate in parallel on [pool]; the winner is picked in move-index
   order with the original strict-[<] first-wins tie-breaking. *)
let grow_resources ~options ~obs ~pool ~scenarios ~batch eval likelihood =
  let recovery = options.recovery in
  let rec loop eval steps =
    if steps >= options.max_growth_steps then eval
    else begin
      let moves =
        Array.of_list (Provision.growth_moves eval.Evaluate.provision)
      in
      let trials =
        Exec.mapi_obs pool ~label:"config.growth" ~obs
          (fun wobs _ move ->
             match Provision.grow eval.Evaluate.provision move with
             | None -> None
             | Some prov ->
               Some (Evaluate.provisioned ~params:recovery ~obs:wobs ~scenarios
                       ~batch prov likelihood))
          moves
      in
      let improved =
        Array.fold_left
          (fun best trial ->
             match trial with
             | None -> best
             | Some trial ->
               let better_than_incumbent =
                 match best with
                 | Some incumbent ->
                   Money.compare (Evaluate.total trial) (Evaluate.total incumbent) < 0
                 | None ->
                   Money.compare (Evaluate.total trial) (Evaluate.total eval) < 0
               in
               if better_than_incumbent then Some trial else best)
          None trials
      in
      match improved with
      | Some better ->
        Obs.incr obs "config.growth_steps";
        loop better (steps + 1)
      | None -> eval
    end
  in
  loop eval 0

let solve_fresh ~options ~obs ~pool design likelihood =
  (* One enumeration serves the whole solve: window trials rewrite backup
     chains and growth trials re-provision, but neither moves an app or a
     slot, so [Scenario.enumerate] is invariant across every trial
     evaluated below. *)
  let scenarios = Scenario.enumerate likelihood design in
  (* Likewise one instrument batch: worker [obs] values only differ from
     [obs] by their trace lane; the metrics registry is shared. *)
  let batch = Simulate.batch obs in
  match evaluate ~options ~obs ~scenarios ~batch design likelihood with
  | Error _ as e -> e
  | Ok eval ->
    let design, eval =
      optimize_windows ~options ~obs ~pool ~scenarios ~batch design likelihood
        eval
    in
    let eval =
      grow_resources ~options ~obs ~pool ~scenarios ~batch eval likelihood
    in
    Ok (Candidate.v design eval)

let solve ?(options = default_options) ?(obs = Obs.noop)
    ?(pool = Exec.sequential) design likelihood =
  Obs.with_span obs "config.solve" @@ fun () ->
  Obs.incr obs "config.solves";
  match options.memo with
  | None -> solve_fresh ~options ~obs ~pool design likelihood
  | Some memo ->
    let key = cache_key ~options design likelihood in
    (match Memo.find memo key with
     | Some result ->
       Obs.incr obs "config.cache_hits";
       result
     | None ->
       Obs.incr obs "config.cache_misses";
       let result = solve_fresh ~options ~obs ~pool design likelihood in
       if Memo.add memo key result then Obs.incr obs "config.cache_evictions";
       result)
