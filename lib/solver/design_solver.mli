(** The design solver (Section 3.1, Algorithm 1).

    Stage 1 — greedy best-fit: starting from an empty design, repeatedly
    pick an unassigned application (probability weighted by its penalty
    rates, favoring stringent apps), try every eligible data protection
    technique for it and keep the cheapest. Restart when the remaining
    apps cannot be placed.

    Stage 2 — refit: randomized local search around the greedy design.
    Each round explores [breadth] neighbors; from each neighbor a
    depth-first walk of [depth] levels evaluates [breadth] random
    reconfigurations per level and descends into the best. The best node
    seen replaces the incumbent; rounds without improvement count toward a
    patience limit, after which the search stops (local optimum). The
    whole search can be restarted; randomization makes every restart
    explore differently, which is how the heuristic escapes local minima. *)

module App = Ds_workload.App
module Env = Ds_resources.Env
module Likelihood = Ds_failure.Likelihood

type params = {
  breadth : int;  (** [b] in Algorithm 1; the paper uses 3. *)
  depth : int;  (** [d] in Algorithm 1; the paper uses 5. *)
  refit_rounds : int;  (** Max refit iterations ([rfgCnt] limit). *)
  patience : int;  (** Stop after this many rounds without improvement. *)
  stage1_restarts : int;  (** Greedy restarts when placement gets stuck. *)
  seed : int;
  options : Config_solver.options;
  polish : Config_solver.options option;
      (** Configuration options for the final pass over the winning
          design; [None] skips the polish (used by ablations and by tests
          comparing against ground truth at matched strength). *)
  config_cache_size : int;
      (** LRU bound of the per-solve configuration-solver memo cache.
          The refit stage re-evaluates near-identical designs; the cache
          returns the recorded result for (design, likelihood, options)
          keys already solved. One cache is created per [solve] and
          shared by the greedy, refit and polish stages. [0] disables
          caching ([dstool --no-config-cache]). Result-transparent
          either way: a fixed seed yields a byte-identical design. *)
  domains : int;
      (** Number of OCaml domains running each refit round's [breadth]
          probe walks ([dstool --domains]). [1] (the default) runs them
          in order on the calling domain. The probes are scheduled by
          {!Ds_exec.Exec}, whose pre-split/index-order-merge contract
          makes the domain count pure scheduling: every probe's RNG
          stream is pre-split from the round's generator in probe-index
          order before any probe runs, each probe works on a fork of
          the search state, and forks are merged back (cost ties broken
          toward the lowest probe index) in probe-index order. A fixed
          seed therefore yields a byte-identical design and the same
          evaluation count whatever [domains] is. Values [< 1] behave
          like [1]. *)
}

val default_params : params
(** b = 3, d = 5, 12 refit rounds, patience 3, 5 restarts, seed 42,
    search-grade configuration options, full-strength final polish,
    1024-entry configuration-solver cache, 1 domain (sequential). *)

type outcome = {
  best : Candidate.t;
  evaluations : int;
      (** Configuration-solver invocations performed — {e every} call
          issued on behalf of the search: per-placement calls, the
          complete-design re-evaluations of each stage-1 restart, refit
          moves, and the final polish. Matches the [solver.evaluations]
          metric when observability is on. *)
  refit_rounds_run : int;
  improved_by_refit : bool;  (** Whether stage 2 beat the greedy design. *)
  greedy_cost : Ds_units.Money.t;
      (** Total cost of the stage-1 design the refit started from. The
          portfolio meta-solver uses [greedy_cost - cost best] as an
          observed refit-improvement sample for its racing bound. *)
  raced_off : bool;
      (** Whether the [abandon] hook cut the refit rounds short. Always
          [false] without the hook. *)
}

val greedy : Reconfigure.state -> params -> Env.t -> App.t list -> Candidate.t option
(** Stage 1 only (exposed for tests and ablations). *)

val refit : Reconfigure.state -> params -> Candidate.t -> Candidate.t * int
(** Stage 2 only: returns the refined candidate and rounds run. *)

val solve :
  ?params:params ->
  ?obs:Ds_obs.Obs.t ->
  ?rng:Ds_prng.Rng.t ->
  ?abandon:(float -> bool) ->
  ?memo:Config_solver.cache ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  outcome option
(** The full design tool. [None] when no feasible complete design was
    found within the restart budget.

    [memo] shares a caller-held configuration cache across solves (the
    server keeps one resident for its whole lifetime); by default each
    solve gets a fresh cache of [params.config_cache_size] entries (none
    when that is 0). The cache is result-transparent, so sharing cannot
    change the design — only the hit/miss split. An explicit [memo] wins
    over [params.config_cache_size], including over 0.

    [rng] overrides the generator (default [Rng.of_int params.seed]) —
    the portfolio meta-solver hands each restart a pre-split stream.
    [abandon], probed with the incumbent's cost in dollars at the top of
    every refit round, lets a caller cut the remaining rounds short
    (racing); the run still polishes and returns a complete outcome with
    [raced_off = true]. [abandon] must not consult the RNG: the rounds a
    raced run does execute are byte-identical to the unraced run's
    prefix.

    [obs] (default: the noop sink) records [solver.*] spans and counters,
    the incumbent-cost-vs-evaluation progress stream, the
    [config.cache_hits] / [config.cache_misses] / [config.cache_evictions]
    memo-cache counters, and flows down through the configuration solver
    into the recovery simulator. Instrumentation never touches the RNG: a
    fixed seed returns the identical design with observability on or off,
    and with the configuration cache on or off. *)

val resolve :
  ?params:params ->
  ?obs:Ds_obs.Obs.t ->
  ?rng:Ds_prng.Rng.t ->
  ?memo:Config_solver.cache ->
  incumbent:Ds_design.Design.t ->
  dirty:App.id list ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  outcome option
(** Warm-start re-solve from [incumbent] after the inputs drifted.

    The incumbent is rebased onto the current [env]/[apps]
    ({!Ds_design.Design.rebase}): assignments carry over by app id with
    device models re-resolved by name, so a re-priced catalog entry
    takes effect without moving anything. The effective dirty set is
    [dirty] (ids absent from [apps] are ignored) plus any assignment
    rebase could not carry plus any app with nothing to carry (new
    arrivals). Only dirty apps are stripped and greedy-re-placed
    (penalty-weighted, with stage-1 restarts), only they are eligible
    refit victims, and the final polish re-opens windows for the dirty
    set alone — untouched assignments are never rewritten, and the
    evaluation bill scales with the dirty set, not the fleet size.

    {b Anytime floor}: when the rebased incumbent still covers every
    app, it is re-costed once under the current inputs (windows and
    placement kept) and the result is never costlier than that floor —
    on a cost tie the incumbent's bytes win, so an unimproved re-solve
    (in particular one with an empty effective dirty set) returns a
    byte-identical design. With new apps present the incumbent is
    incomplete, not a candidate, and no floor applies. [None] only when
    there is no floor and the dirty apps cannot be placed.

    [outcome.greedy_cost] is the re-placement seed's cost (the floor's
    when re-placement fell back to it); [raced_off] is always [false].

    [memo] shares a configuration-solver cache across re-solves (the
    fleet coordinator passes one per reconcile sequence); by default a
    fresh cache of [params.config_cache_size] entries is used. Same
    determinism contract as {!solve}: fixed seed, byte-identical at
    every [params.domains]. *)
