(** The reconfiguration step (Section 3.1.3): one edge of the design
    graph.

    Reconfiguring picks a victim application (biased toward the ones
    contributing most to overall cost), strips it from the design, and
    gives it a fresh technique and layout. The technique is drawn from the
    app's class or better, with probability biased toward inexpensive
    options: technique [dpt] is chosen with probability proportional to
    [1 - cost dpt / sum of costs] over the eligible techniques, each cost
    measured as the incremental cost in the context of the full candidate
    solution. *)

module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng

type state = {
  rng : Rng.t;
  history : Layout.History.t;
  likelihood : Likelihood.t;
  options : Config_solver.options;
      (** Search-grade configuration options. When the design solver
          installed a memo cache ([options.memo]), every reconfiguration
          step's configuration solve flows through it — including the
          per-app scoped-window variants, which key separately because
          the option fingerprint is part of the cache key. *)
  obs : Ds_obs.Obs.t;
  mutable evaluations : int;  (** Config-solver invocations, for reporting. *)
}

val state :
  ?options:Config_solver.options ->
  ?obs:Ds_obs.Obs.t ->
  rng:Rng.t ->
  Likelihood.t ->
  state

val fork : ?obs:Ds_obs.Obs.t -> state -> rng:Rng.t -> state
(** A probe-local state for the parallel refit: its own RNG stream, a
    {!Layout.History.fork} of the parent's layout history, and a zeroed
    evaluation counter. The likelihood and configuration options
    (including the shared, mutex-guarded memo cache) are shared with the
    parent. [obs] overrides the observability capability — worker
    domains pass a trace-stripped one ({!Ds_obs.Obs.without_trace})
    because the span collector is not domain-safe. *)

val merge : into:state -> state -> unit
(** Fold a fork's results back into its parent: add its evaluation
    count and absorb its layout-history records. Called by the
    coordinator in probe-index order after the round's domains join, so
    the merged state is identical however probes were scheduled. *)

val count_evaluation : state -> unit
(** Bump the configuration-solver call counter (and the
    [solver.evaluations] metric). Every [Config_solver.solve] performed
    on behalf of the design search must pass through this, wherever it
    is issued, so [Design_solver.outcome.evaluations] counts all the
    work done. *)

val eligible_techniques : App.t -> Technique.t list
(** The app's class or better, from the Table 2 catalog. *)

val place_with_technique :
  state -> Design.t -> App.t -> Technique.t -> Candidate.t option
(** Lay the app out under the given technique (biased layout) and complete
    the design with the configuration solver. [None] when no placement is
    feasible. *)

val assign_best :
  ?pool:Ds_exec.Exec.pool -> state -> Design.t -> App.t -> Candidate.t option
(** Greedy best-fit step (stage 1): try {e every} eligible technique and
    keep the cheapest completed candidate (ties to the lowest technique
    index). Layout draws — the only RNG consumer — run on the calling
    domain in technique order, exactly the sequential scan's sequence;
    the expensive configuration solves then run in parallel on [pool]
    (default sequential). Byte-identical at every pool width, and to
    the historical sequential implementation. *)

val reconfigure :
  ?victims:(App.id -> bool) -> state -> Candidate.t -> Candidate.t option
(** One design-graph edge: re-protect a burden-biased victim app with a
    cost-biased technique and a fresh biased layout. [None] when the move
    fails to produce a feasible candidate (or no app passes the filter).

    [victims] restricts the victim draw to the apps it accepts — the
    warm-start path confines refit to the dirty set, leaving untouched
    assignments untouched. Omitted (every assigned app eligible), the
    RNG stream and results are byte-identical to the historical
    unfiltered behavior. *)
