(** Biased random layout selection (Section 3.1.3).

    Given a partial design and an application with a chosen technique,
    picks the devices its copies will live on. Selection probability of a
    device is proportional to

    [alpha * (1 - util) + (1 - alpha) * (1 - usage)]

    where [util] is the device's current utilization (encouraging load
    balance) and [usage] is the fraction of past layouts of this app that
    used the device (encouraging diversity across reconfigurations).
    [alpha] is close to one, as in the paper. Already-used devices are
    preferred over opening new ones unless none fit. *)

module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Slot = Ds_resources.Slot
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment
module Rng = Ds_prng.Rng

module History : sig
  type t
  (** Mutable record of which devices each application has been laid out
      on across the search, for the diversity bias. *)

  val create : unit -> t
  val record : t -> App.id -> Slot.Array_slot.t -> unit
  val usage : t -> App.id -> Slot.Array_slot.t -> float
  (** Fraction of this app's past layouts using the slot; 0 before any. *)

  val fork : t -> t
  (** A local overlay over the parent: {!usage} reads through to the
      parent's counts, {!record} writes stay in the overlay. The
      parallel refit gives each probe its own fork so worker domains
      never write the shared base (which they all read). *)

  val absorb : into:t -> t -> unit
  (** Fold a fork's local records back into its parent. Addition is
      commutative, so absorbing the round's forks in probe-index order
      is deterministic regardless of which domain ran which probe.
      @raise Invalid_argument when [src] is not a fork of [into]. *)
end

type choice = {
  assignment : Assignment.t;
  primary_model : Array_model.t;
  mirror_model : Array_model.t option;
  tape_model : Tape_model.t option;
}

val apply : Design.t -> choice -> (Design.t, string) result
(** Add the chosen assignment (and models) to the design. *)

val choose :
  ?alpha:float ->
  Rng.t ->
  History.t ->
  Design.t ->
  App.t ->
  Technique.t ->
  choice option
(** Biased layout for the app under the technique; [None] when no
    placement fits (e.g. no connected site has room for a mirror). Records
    the primary choice in the history. *)

val choose_uniform : Rng.t -> Design.t -> App.t -> Technique.t -> choice option
(** Uniform layout over all structurally valid placements — the random
    heuristic's generator (no fit pre-filtering beyond structure). *)

val enumerate_primaries :
  Design.t -> App.t -> (Slot.Array_slot.t * Array_model.t) list
(** Every (slot, model) that could host the app's primary copy with room
    to spare: populated slots keep their installed model; empty bays are
    offered once per allowed model. *)
