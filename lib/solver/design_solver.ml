module Money = Ds_units.Money
module App = Ds_workload.App
module Env = Ds_resources.Env
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Obs = Ds_obs.Obs
module Exec = Ds_exec.Exec

type params = {
  breadth : int;
  depth : int;
  refit_rounds : int;
  patience : int;
  stage1_restarts : int;
  seed : int;
  options : Config_solver.options;
  polish : Config_solver.options option;
  config_cache_size : int;
  domains : int;
}

let default_params =
  { breadth = 3;
    depth = 5;
    refit_rounds = 12;
    patience = 3;
    stage1_restarts = 5;
    seed = 42;
    options = Config_solver.search_options;
    polish = Some Config_solver.default_options;
    config_cache_size = 1024;
    domains = 1 }

type outcome = {
  best : Candidate.t;
  evaluations : int;
  refit_rounds_run : int;
  improved_by_refit : bool;
  greedy_cost : Money.t;
  raced_off : bool;
}

let cost_dollars c = Money.to_dollars (Candidate.cost c)
(* Solver pools auto-size: the greedy/window/growth stages mix wide maps
   (probes, window menus) with tiny ones (a few growth moves), and the
   tiny ones must not pay domain spawn/join. Width stays pure
   scheduling, so this cannot change any solver result. *)
let pool_of params =
  Exec.auto_width (Exec.create ~domains:(max 1 params.domains) ())

(* Stage 1. Applications with stringent requirements are placed first —
   the draw is weighted by the sum of penalty rates. [start] is the
   design placement begins from: empty for a cold solve, the stripped
   incumbent for a warm re-solve (every restart re-starts from it). *)
let greedy_from ~pool state params start apps =
  Obs.with_span state.Reconfigure.obs "solver.greedy" @@ fun () ->
  let obs = state.Reconfigure.obs in
  let rec attempt restart =
    if restart > params.stage1_restarts then None
    else begin
      if restart > 0 then Obs.incr obs "solver.stage1_restarts";
      let rec place design = function
        | [] -> Some design
        | unassigned ->
          let weights =
            List.map
              (fun app -> (app, Money.to_dollars (App.penalty_rate_sum app)))
              unassigned
          in
          let app = Sample.weighted state.Reconfigure.rng weights in
          (match Reconfigure.assign_best ~pool state design app with
           | Some candidate ->
             place candidate.Candidate.design
               (List.filter (fun a -> a.App.id <> app.App.id) unassigned)
           | None -> None)
      in
      match place start apps with
      | Some design ->
        (* The per-step candidates were evaluated against partial designs;
           re-evaluate the complete one. This is search work like any
           other config-solver call, so it counts as an evaluation. *)
        Reconfigure.count_evaluation state;
        (match
           Config_solver.solve ~options:state.Reconfigure.options ~obs ~pool
             design state.Reconfigure.likelihood
         with
         | Ok candidate -> Some candidate
         | Error _ -> attempt (restart + 1))
      | None -> attempt (restart + 1)
    end
  in
  attempt 0

let greedy_stage ~pool state params env apps =
  greedy_from ~pool state params (Design.empty env) apps

let greedy state params env apps =
  greedy_stage ~pool:(pool_of params) state params env apps

(* One depth-first probe from a neighbor (the inner while-loop of
   Algorithm 1): at each level evaluate [breadth] reconfigurations, step
   to the best when it improves, and remember the best node seen. *)
let probe ?victims state params start =
  let obs = state.Reconfigure.obs in
  Obs.incr obs "solver.probes";
  let rec descend current best level =
    if level >= params.depth then best
    else begin
      Obs.incr obs "solver.probe_steps";
      let children =
        List.init params.breadth
          (fun _ -> Reconfigure.reconfigure ?victims state current)
        |> List.filter_map Fun.id
      in
      match Candidate.best_of children with
      | None -> best
      | Some child ->
        let next =
          if Money.compare (Candidate.cost child) (Candidate.cost current) < 0
          then child
          else current
        in
        descend next (Candidate.better best next) (level + 1)
    end
  in
  let final = descend start start 0 in
  if Money.compare (Candidate.cost final) (Candidate.cost start) < 0 then
    Obs.incr obs "solver.probe_improved";
  final

(* One refit round: [breadth] probe walks, each on its own pre-split RNG
   stream and its own fork of the master state, scheduled across
   [params.domains] domains by {!Exec}. The executor owns the
   determinism machinery (index-order RNG pre-split, index-order result
   merge, per-domain trace lanes merged in worker-index order) and the
   pool accounting ([exec.*] metrics); this function only states what a
   probe is and how forks fold back. Forks are merged
   in probe-index order, and [Candidate.better] keeps its first argument
   on cost ties, so ties break toward the lowest probe index — the
   domain count is pure scheduling. *)
let run_probes ?victims ~pool state params current =
  let outcomes =
    Exec.map_rng_obs pool ~label:"solver.probes" ~obs:state.Reconfigure.obs
      ~rng:state.Reconfigure.rng
      (fun wobs rng () ->
         let local = Reconfigure.fork ~obs:wobs state ~rng in
         let result =
           match Reconfigure.reconfigure ?victims local current with
           | Some neighbor -> Some (probe ?victims local params neighbor)
           | None -> None
         in
         (local, result))
      (Array.make params.breadth ())
  in
  Array.iter (fun (local, _) -> Reconfigure.merge ~into:state local) outcomes;
  Array.fold_left
    (fun best (_, result) ->
       match best, result with
       | None, r -> r
       | b, None -> b
       | Some b, Some r -> Some (Candidate.better b r))
    None outcomes

(* The refit loop proper. [abandon] is the portfolio racing hook: probed
   at the top of every round with the incumbent's cost, a [true] cuts
   the remaining rounds short (the caller learns it raced off via the
   third component). [abandon] must never consult the RNG; the rounds it
   does run are byte-identical to an unraced run's prefix. *)
let refit_loop ?victims ~pool ?abandon state params start =
  Obs.with_span state.Reconfigure.obs "solver.refit" @@ fun () ->
  let obs = state.Reconfigure.obs in
  let abandoned best =
    match abandon with None -> false | Some f -> f (cost_dollars best)
  in
  let rec rounds current best round without_improvement =
    if round >= params.refit_rounds || without_improvement >= params.patience
    then (best, round, false)
    else if abandoned best then (best, round, true)
    else begin
      let branch_best = run_probes ?victims ~pool state params current in
      let evaluations = state.Reconfigure.evaluations in
      match branch_best with
      | None ->
        (* A round where every probe failed is a round without
           improvement, not the end of the search: later rounds draw
           fresh randomness and can still find feasible moves. (This
           used to return, silently abandoning the remaining rounds.) *)
        Obs.refit_rejected obs ~evaluations;
        rounds best best (round + 1) (without_improvement + 1)
      | Some candidate ->
        if Money.compare (Candidate.cost candidate) (Candidate.cost best) < 0
        then begin
          Obs.refit_accepted obs ~evaluations;
          Obs.incumbent obs ~evaluations (cost_dollars candidate);
          rounds candidate candidate (round + 1) 0
        end
        else begin
          Obs.refit_rejected obs ~evaluations;
          rounds best best (round + 1) (without_improvement + 1)
        end
    end
  in
  rounds start start 0 0

let refit state params start =
  let best, rounds, _raced = refit_loop ~pool:(pool_of params) state params start in
  (best, rounds)

(* One evaluation cache for a whole solve (or re-solve): greedy, refit
   and polish all hit the same entries. The cache is result-transparent
   (the configuration solver is RNG-free), so this changes wall time
   only. [memo] lets a caller — the fleet coordinator's repeated warm
   re-solves — share one cache across solver invocations; fingerprint
   keys cover options, design and likelihood, so sharing is safe.

   Contention accounting for the shared cache: a per-wait histogram fed
   from the lock's own hook, and the lifetime counters mirrored after
   the solve. The hook's histogram lock carries no hook itself, so
   observing a wait can never re-enter the memo lock. *)
let install_memo ?memo params obs =
  let memo =
    match memo with
    | Some _ as shared -> shared
    | None ->
      if params.config_cache_size > 0 then
        Some (Config_solver.create_cache ~size:params.config_cache_size ())
      else None
  in
  (match (memo, Obs.metrics obs) with
   | Some cache, Some reg ->
     let wait_h = Obs.Metrics.histogram reg "memo.lock_wait_s" in
     Obs.Lockstat.set_on_wait (Memo.lock_stats cache)
       (Some (fun s -> Obs.Metrics.observe wait_h s))
   | _ -> ());
  let mirror_memo_stats () =
    match memo with
    | None -> ()
    | Some cache when Obs.metrics_on obs ->
      let stats = Memo.lock_stats cache in
      Obs.add obs "memo.lock_acquisitions" (Obs.Lockstat.acquisitions stats);
      Obs.add obs "memo.lock_contended" (Obs.Lockstat.contended stats);
      Obs.gauge_add obs "memo.lock_wait_total_s" (Obs.Lockstat.wait_s stats)
    | Some _ -> ()
  in
  (memo, mirror_memo_stats)

let solve ?(params = default_params) ?(obs = Obs.noop) ?rng ?abandon ?memo env
    apps likelihood =
  Obs.with_span obs "solver.solve" @@ fun () ->
  let rng =
    match rng with Some rng -> rng | None -> Rng.of_int params.seed
  in
  (* One pool for the whole solve: refit probes, the greedy re-evaluation
     and the polish pass all schedule onto it. *)
  let pool = pool_of params in
  let memo, mirror_memo_stats = install_memo ?memo params obs in
  let options = { params.options with Config_solver.memo } in
  let state = Reconfigure.state ~options ~obs ~rng likelihood in
  Obs.stage obs ~evaluations:0 "greedy";
  match greedy_stage ~pool state params env apps with
  | None ->
    mirror_memo_stats ();
    None
  | Some greedy_best ->
    Obs.incumbent obs ~evaluations:state.Reconfigure.evaluations
      (cost_dollars greedy_best);
    Obs.stage obs ~evaluations:state.Reconfigure.evaluations "refit";
    let refined, rounds_run, raced_off =
      refit_loop ~pool ?abandon state params greedy_best
    in
    let best = Candidate.better refined greedy_best in
    (* Final polish: the search ran with cheap configuration options; give
       the winning design the full window search and growth budget. The
       window trials and growth moves spread across [pool] (pure
       scheduling — the parallel argmin keeps the sequential loop's
       tie-breaking). Raced-off runs are polished too: the portfolio
       compares finished candidates only. *)
    let best =
      match params.polish with
      | None -> best
      | Some polish_options ->
        Obs.stage obs ~evaluations:state.Reconfigure.evaluations "polish";
        Reconfigure.count_evaluation state;
        let options = { polish_options with Config_solver.memo } in
        (match
           Obs.with_span obs "solver.polish" (fun () ->
               Config_solver.solve ~options ~obs ~pool best.Candidate.design
                 state.Reconfigure.likelihood)
         with
         | Ok polished -> Candidate.better polished best
         | Error _ -> best)
    in
    Obs.incumbent obs ~evaluations:state.Reconfigure.evaluations
      (cost_dollars best);
    mirror_memo_stats ();
    Some
      { best;
        evaluations = state.Reconfigure.evaluations;
        refit_rounds_run = rounds_run;
        improved_by_refit =
          Money.compare (Candidate.cost refined) (Candidate.cost greedy_best) < 0;
        greedy_cost = Candidate.cost greedy_best;
        raced_off }

module Int_set = Set.Make (Int)

let ids_of apps = List.map (fun (a : App.t) -> a.App.id) apps

(* Warm-start re-solve. The incumbent is first rebased onto the current
   inputs (Design.rebase): assignments carry over by app id with models
   re-resolved by name, so price drift lands without moving anything,
   and assignments that can no longer be carried join the dirty set.
   The complete rebased design — when it is complete — is re-evaluated
   once with windows kept (Skip scope) and becomes the {e floor}: the
   final answer is [Candidate.better floor refined], and since [better]
   keeps its first argument on ties, an unimproved search returns the
   incumbent's bytes unchanged. Only dirty apps are stripped,
   greedy-re-placed and eligible as refit victims; the polish runs with
   windows scoped to the dirty set. Untouched assignments are therefore
   never rewritten, and the evaluation bill scales with the dirty set,
   not the fleet. *)
let resolve ?(params = default_params) ?(obs = Obs.noop) ?rng ?memo ~incumbent
    ~dirty env apps likelihood =
  Obs.with_span obs "solver.resolve" @@ fun () ->
  let rng =
    match rng with Some rng -> rng | None -> Rng.of_int params.seed
  in
  let pool = pool_of params in
  let memo, mirror_memo_stats = install_memo ?memo params obs in
  let options = { params.options with Config_solver.memo } in
  let state = Reconfigure.state ~options ~obs ~rng likelihood in
  let rebased, forced = Design.rebase ~env ~apps incumbent in
  let present = Int_set.of_list (ids_of apps) in
  let carried = Int_set.of_list (ids_of (Design.apps rebased)) in
  (* Dirty = caller-declared (current apps only; stale ids are dropped)
     + assignments rebase could not carry + apps with no assignment to
     carry (new arrivals). *)
  let dirty_set =
    Int_set.union
      (Int_set.of_list (List.filter (fun id -> Int_set.mem id present) dirty))
      (Int_set.union (Int_set.of_list forced) (Int_set.diff present carried))
  in
  Obs.add obs "solver.resolve_dirty" (Int_set.cardinal dirty_set);
  Obs.add obs "solver.resolve_forced" (List.length forced);
  (* The anytime floor: the rebased incumbent re-costed under the
     current inputs, windows and placement kept (Skip leaves the design
     bytes alone; provisioning still grows from scratch, which is where
     workload drift shows up in its cost). Only a complete rebase can
     floor the search — with new apps present the incumbent is not a
     candidate at all. *)
  let floor =
    if Int_set.subset present carried then begin
      Reconfigure.count_evaluation state;
      let floor_options =
        { (Option.value params.polish ~default:params.options) with
          Config_solver.window_scope = Config_solver.Skip; memo }
      in
      match Config_solver.solve ~options:floor_options ~obs ~pool rebased
              likelihood with
      | Ok floor -> Some floor
      | Error _ -> None
    end
    else None
  in
  let finish ~refit_cost ~seed_cost ~rounds best =
    Obs.incumbent obs ~evaluations:state.Reconfigure.evaluations
      (cost_dollars best);
    Some
      { best;
        evaluations = state.Reconfigure.evaluations;
        refit_rounds_run = rounds;
        improved_by_refit = Money.compare refit_cost seed_cost < 0;
        greedy_cost = seed_cost;
        raced_off = false }
  in
  let outcome =
  if Int_set.is_empty dirty_set then
    (* Nothing changed (or only prices did): the floor is the answer. *)
    Option.bind floor (fun best ->
        finish ~refit_cost:(Candidate.cost best)
          ~seed_cost:(Candidate.cost best) ~rounds:0 best)
  else begin
    Obs.stage obs ~evaluations:state.Reconfigure.evaluations "re-place";
    let stripped =
      Int_set.fold (fun id design -> Design.remove design id) dirty_set rebased
    in
    let dirty_apps =
      List.filter (fun (a : App.t) -> Int_set.mem a.App.id dirty_set) apps
    in
    match greedy_from ~pool state params stripped dirty_apps with
    | None ->
      (* Could not re-place the dirty apps: fall back to the floor
         (incumbent unchanged) rather than failing the fleet. *)
      Option.bind floor (fun best ->
          finish ~refit_cost:(Candidate.cost best)
            ~seed_cost:(Candidate.cost best) ~rounds:0 best)
    | Some seeded ->
      Obs.incumbent obs ~evaluations:state.Reconfigure.evaluations
        (cost_dollars seeded);
      Obs.stage obs ~evaluations:state.Reconfigure.evaluations "refit";
      let victims id = Int_set.mem id dirty_set in
      let refined, rounds_run, _raced =
        refit_loop ~victims ~pool state params seeded
      in
      let best = Candidate.better refined seeded in
      let best =
        match params.polish with
        | None -> best
        | Some polish_options ->
          Obs.stage obs ~evaluations:state.Reconfigure.evaluations "polish";
          Reconfigure.count_evaluation state;
          let options =
            { polish_options with
              Config_solver.window_scope =
                Config_solver.Only (Int_set.elements dirty_set);
              memo }
          in
          (match
             Obs.with_span obs "solver.polish" (fun () ->
                 Config_solver.solve ~options ~obs ~pool best.Candidate.design
                   likelihood)
           with
           | Ok polished -> Candidate.better polished best
           | Error _ -> best)
      in
      (* The floor argument comes first: on a cost tie the incumbent's
         bytes win, so an unimproved re-solve is churn-free. *)
      let best = match floor with Some f -> Candidate.better f best | None -> best in
      finish ~refit_cost:(Candidate.cost refined)
        ~seed_cost:(Candidate.cost seeded) ~rounds:rounds_run best
  end
  in
  mirror_memo_stats ();
  outcome
