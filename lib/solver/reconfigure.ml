module Money = Ds_units.Money
module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Technique_catalog = Ds_protection.Technique_catalog
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Evaluate = Ds_cost.Evaluate
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Obs = Ds_obs.Obs
module Exec = Ds_exec.Exec

type state = {
  rng : Rng.t;
  history : Layout.History.t;
  likelihood : Likelihood.t;
  options : Config_solver.options;
  obs : Obs.t;
  mutable evaluations : int;
}

let state ?(options = Config_solver.search_options) ?(obs = Obs.noop) ~rng
    likelihood =
  { rng; history = Layout.History.create (); likelihood; options; obs;
    evaluations = 0 }

let fork ?obs state ~rng =
  { rng;
    history = Layout.History.fork state.history;
    likelihood = state.likelihood;
    options = state.options;  (* shares the memo cache, which is mutexed *)
    obs = Option.value ~default:state.obs obs;
    evaluations = 0 }

let merge ~into probe =
  into.evaluations <- into.evaluations + probe.evaluations;
  Layout.History.absorb ~into:into.history probe.history

let count_evaluation state =
  state.evaluations <- state.evaluations + 1;
  Obs.incr state.obs "solver.evaluations"

let eligible_techniques app =
  Technique_catalog.eligible_for (App.category app)

let scoped_options state (app : App.t) =
  match state.options.Config_solver.window_scope with
  | Config_solver.Only _ ->
    { state.options with Config_solver.window_scope = Config_solver.Only [ app.App.id ] }
  | Config_solver.All_apps | Config_solver.Skip -> state.options

let place_with_technique state design app technique =
  match Layout.choose state.rng state.history design app technique with
  | None -> None
  | Some choice ->
    (match Layout.apply design choice with
     | Error _ -> None
     | Ok design ->
       count_evaluation state;
       (match
          Config_solver.solve ~options:(scoped_options state app)
            ~obs:state.obs design state.likelihood
        with
        | Ok candidate -> Some candidate
        | Error _ -> None))

(* Stage-1 greedy step, parallel over the technique menu — split so the
   pool cannot perturb the search. Phase 1 runs on the calling domain,
   in technique order: layout draws (the only RNG consumer) and history
   records happen in exactly the historical sequential scan's sequence,
   so a fixed seed walks the same designs at every pool width — and
   with the sequential default. Phase 2 fans the surviving designs out:
   the configuration solver is a pure function of (options, design,
   likelihood) — it draws no RNG and touches no history — so only wall
   time moves. Ties still break toward the lowest technique index
   ({!Candidate.better} keeps its first argument). *)
let assign_best ?(pool = Exec.sequential) state design app =
  let attempts =
    List.filter_map
      (fun technique ->
         match Layout.choose state.rng state.history design app technique with
         | None -> None
         | Some choice ->
           (match Layout.apply design choice with
            | Error _ -> None
            | Ok design ->
              count_evaluation state;
              Some design))
      (eligible_techniques app)
    |> Array.of_list
  in
  if Array.length attempts = 0 then None
  else begin
    let options = scoped_options state app in
    let results =
      Exec.mapi_obs pool ~label:"solver.assign" ~obs:state.obs
        (fun wobs _ design ->
           match Config_solver.solve ~options ~obs:wobs design state.likelihood with
           | Ok candidate -> Some candidate
           | Error _ -> None)
        attempts
    in
    Array.fold_left
      (fun best result ->
         match best, result with
         | None, r -> r
         | b, None -> b
         | Some b, Some r -> Some (Candidate.better b r))
      None results
  end

(* Victim selection: weight each assigned app by its burden (penalties +
   outlay share), so expensive apps are reconfigured more often.
   [victims] restricts the draw to a subset of apps — the warm-start
   path confines refit moves to the dirty set so untouched assignments
   are never rewritten. Without the filter (or with an all-true one
   over an unchanged design) the draw consumes the identical RNG
   stream, so existing callers are byte-identical. *)
let pick_victim ?victims state (candidate : Candidate.t) =
  let eligible =
    match victims with
    | None -> Design.apps candidate.Candidate.design
    | Some keep ->
      List.filter (fun (app : App.t) -> keep app.App.id)
        (Design.apps candidate.Candidate.design)
  in
  let weights =
    List.map
      (fun app ->
         (app,
          Money.to_dollars (Evaluate.app_burden candidate.Candidate.eval app.App.id)))
      eligible
  in
  match weights with
  | [] -> None
  | _ -> Some (Sample.weighted state.rng weights)

let reconfigure ?victims state (candidate : Candidate.t) =
  match pick_victim ?victims state candidate with
  | None -> None
  | Some app ->
    let stripped = Design.remove candidate.Candidate.design app.App.id in
    let attempts =
      eligible_techniques app
      |> List.filter_map (fun technique ->
          Option.map (fun c -> (technique, c))
            (place_with_technique state stripped app technique))
    in
    (match attempts with
     | [] -> None
     | attempts ->
       (* Bias toward inexpensive techniques: p(dpt) proportional to
          1 - cost/sum (degenerates to uniform for a single option). *)
       let costs = List.map (fun (_, c) -> Candidate.cost c) attempts in
       let total = Money.sum costs in
       let weights =
         List.map
           (fun (_, c) ->
              let share =
                if Money.is_zero total then 0.
                else Money.div (Candidate.cost c) total
              in
              (c, Float.max 0.01 (1. -. share)))
           attempts
       in
       Some (Sample.weighted state.rng weights))
