(* Bounded LRU memo table, string-keyed.

   Hashtbl for lookup plus an intrusive doubly-linked list for recency:
   find and add are O(1), eviction pops the list tail. Keys are the
   canonical fingerprints produced by Design/Likelihood/Config_solver, so
   a hit is guaranteed to carry the value computed for semantically
   identical inputs.

   A single mutex serializes every operation: the design solver shares
   one cache across the worker domains of its parallel refit stage, and
   the linked list cannot tolerate interleaved rewiring. The critical
   sections are pointer surgery only — values are computed outside.

   The mutex is a [Lockstat]-wrapped lock, so the cache can report how
   often — and for how long — the refit workers contend on it; the
   design solver mirrors {!lock_stats} into the memo.* metrics. *)

module Lockstat = Ds_obs.Lockstat

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  mutable capacity : int;
  lock : Lockstat.t;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* eviction candidate *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Memo.create: capacity must be positive";
  { capacity;
    lock = Lockstat.create ();
    tbl = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0 }

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

(* Eviction shared by [add] and [resize]: pop the list tail. Must run
   under the lock. *)
let evict_lru t =
  match t.tail with
  | Some lru ->
    unlink t lru;
    Hashtbl.remove t.tbl lru.key;
    t.evictions <- t.evictions + 1
  | None -> ()

let find t key =
  Lockstat.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

let add t key value =
  Lockstat.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | Some node ->
    node.value <- value;
    unlink t node;
    push_front t node;
    false
  | None ->
    let node = { key; value; prev = None; next = None } in
    Hashtbl.replace t.tbl key node;
    push_front t node;
    if Hashtbl.length t.tbl > t.capacity then begin
      evict_lru t;
      true
    end
    else false

let resize t capacity =
  if capacity < 1 then invalid_arg "Memo.resize: capacity must be positive";
  Lockstat.protect t.lock @@ fun () ->
  t.capacity <- capacity;
  (* Shrinking below the current population evicts immediately, oldest
     first — the same LRU order [add] uses — so a resident cache resized
     by an admin RPC converges to the new bound right away instead of
     only as new keys arrive. *)
  while Hashtbl.length t.tbl > t.capacity do
    evict_lru t
  done

let length t = Lockstat.protect t.lock (fun () -> Hashtbl.length t.tbl)
let lock_stats t = Lockstat.stats t.lock
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let clear t =
  Lockstat.protect t.lock @@ fun () ->
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None;
  (* A reset cache has no history: stale hit/miss/eviction counts would
     otherwise leak into the config.cache_* metrics of the next run. *)
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
