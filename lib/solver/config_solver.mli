(** The configuration solver (Section 3.2).

    Completes a design chosen by the design solver: searches the
    discretized configuration-parameter space (snapshot and backup
    frequencies, in policy-sized increments) and sizes the discrete
    resources, starting from the minimum feasible provisioning and adding
    units (links, tape drives, disks) as long as the shorter recovery
    times they buy save more in penalties than they cost in outlay. *)

module Time = Ds_units.Time
module App = Ds_workload.App
module Design = Ds_design.Design
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood

type window_scope =
  | All_apps  (** Re-optimize windows of every backup-bearing app. *)
  | Only of App.id list  (** Just these (the apps a search step touched). *)
  | Skip  (** Keep current windows. *)

type cache = (Candidate.t, Provision.infeasibility) result Memo.t
(** Evaluation memo cache. [solve] is a pure function of its inputs (it
    never draws from the RNG), so results are cached under a canonical
    fingerprint of (options, design, likelihood): a hit returns the exact
    value a fresh solve would compute, making the cache result-transparent
    — a fixed seed yields a byte-identical design with it on or off. *)

type options = {
  window_scope : window_scope;
  snapshot_menu : Time.t list;  (** Candidate snapshot windows. *)
  tape_menu : Time.t list;  (** Candidate backup intervals. *)
  fulls_menu : int list;
      (** Candidate backup schedules: every n-th backup is a full
          (1 = fulls only; 7 = weekly full + daily incrementals when
          paired with a 1-day interval). *)
  max_growth_steps : int;  (** Resource-addition iterations. *)
  recovery : Ds_recovery.Recovery_params.t;
  memo : cache option;
      (** Share previously computed results. The design solver installs
          one cache per solve, shared by the greedy, refit and polish
          stages; [None] (the default) recomputes every call. Option
          fields are part of the key, so callers with different menus or
          scopes can safely share one cache. *)
}

val create_cache : ?size:int -> unit -> cache
(** A fresh bounded LRU cache (default bound: 1024 entries). *)

val options_fingerprint : options -> string
(** Canonical encoding of every result-affecting option field (the [memo]
    field is excluded). Exposed for tests. *)

val default_options : options
(** Windows for all apps from menus {6 h, 12 h, 24 h} x {1 d, 3.5 d, 7 d,
    14 d} x fulls-every {1, 7}; up to 24 growth steps; default recovery
    parameters. *)

val search_options : options
(** Cheaper setting for use inside the design solver's inner loop:
    windows only for touched apps, 6 growth steps. *)

val solve :
  ?options:options ->
  ?obs:Ds_obs.Obs.t ->
  ?pool:Ds_exec.Exec.pool ->
  Design.t ->
  Likelihood.t ->
  (Candidate.t, Provision.infeasibility) result
(** Optimize configuration parameters and provisioning for the design;
    returns the completed candidate or the constraint that makes the
    design infeasible. [obs] records a [config.solve] span plus
    [config.solves], [config.window_trials] and [config.growth_steps]
    counters, and flows into the cost evaluator and recovery simulator;
    it never changes the result.

    [pool] (default sequential) spreads the window-trial and
    growth-move evaluations across domains. The pool is pure
    scheduling: trials are independent within a coordinate-descent /
    growth round and winners are folded in task-index order with the
    sequential loop's tie-breaking, so results are byte-identical at
    every domain count (spans are stripped on worker domains, as in the
    parallel refit). Since the pool cannot change results, memoized
    entries remain valid across pools.

    With [options.memo] set, results are memoized on the canonical
    (options, design, likelihood) fingerprint: hits return the cached
    candidate and skip the window search, growth loop and recovery
    simulations entirely. [config.cache_hits], [config.cache_misses] and
    [config.cache_evictions] counters record the cache's behavior
    ([cache_hits + cache_misses = config.solves] when the cache is on). *)
