(** The configuration solver (Section 3.2).

    Completes a design chosen by the design solver: searches the
    discretized configuration-parameter space (snapshot and backup
    frequencies, in policy-sized increments) and sizes the discrete
    resources, starting from the minimum feasible provisioning and adding
    units (links, tape drives, disks) as long as the shorter recovery
    times they buy save more in penalties than they cost in outlay. *)

module Time = Ds_units.Time
module App = Ds_workload.App
module Design = Ds_design.Design
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood

type window_scope =
  | All_apps  (** Re-optimize windows of every backup-bearing app. *)
  | Only of App.id list  (** Just these (the apps a search step touched). *)
  | Skip  (** Keep current windows. *)

type options = {
  window_scope : window_scope;
  snapshot_menu : Time.t list;  (** Candidate snapshot windows. *)
  tape_menu : Time.t list;  (** Candidate backup intervals. *)
  fulls_menu : int list;
      (** Candidate backup schedules: every n-th backup is a full
          (1 = fulls only; 7 = weekly full + daily incrementals when
          paired with a 1-day interval). *)
  max_growth_steps : int;  (** Resource-addition iterations. *)
  recovery : Ds_recovery.Recovery_params.t;
}

val default_options : options
(** Windows for all apps from menus {6 h, 12 h, 24 h} x {1 d, 3.5 d, 7 d,
    14 d} x fulls-every {1, 7}; up to 24 growth steps; default recovery
    parameters. *)

val search_options : options
(** Cheaper setting for use inside the design solver's inner loop:
    windows only for touched apps, 6 growth steps. *)

val solve :
  ?options:options ->
  ?obs:Ds_obs.Obs.t ->
  Design.t ->
  Likelihood.t ->
  (Candidate.t, Provision.infeasibility) result
(** Optimize configuration parameters and provisioning for the design;
    returns the completed candidate or the constraint that makes the
    design infeasible. [obs] records a [config.solve] span plus
    [config.solves], [config.window_trials] and [config.growth_steps]
    counters, and flows into the cost evaluator and recovery simulator;
    it never changes the result. *)
