(** Bounded LRU memoization table for solver evaluation results.

    String-keyed (keys are the canonical fingerprints of the inputs —
    see [Ds_design.Design.fingerprint]), with O(1) find/add and
    least-recently-used eviction once the capacity is exceeded. The
    design solver creates one per solve and shares it across the greedy,
    refit and polish stages through [Config_solver.options].

    Domain-safe: a single internal mutex serializes find/add/clear, so
    the worker domains of the parallel refit stage can share one cache.
    Values for a given key are identical by construction (the
    configuration solver is a pure function of the fingerprinted
    inputs), so concurrent fills are result-transparent — only the
    hit/miss split depends on scheduling. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** A fresh empty cache holding at most [capacity] (default 1024)
    entries. @raise Invalid_argument when [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Lookup; refreshes the entry's recency and counts a hit or a miss. *)

val add : 'a t -> string -> 'a -> bool
(** Insert (or refresh) a binding; evicts the least-recently-used entry
    when the capacity is exceeded. Returns [true] iff an eviction
    happened. *)

val resize : 'a t -> int -> unit
(** Change the capacity in place. Shrinking below the current population
    evicts immediately in LRU order (oldest first), counting into
    {!evictions}, so a resident cache — the server's, resized by an
    admin RPC — converges to the new bound right away. Growing never
    drops entries. @raise Invalid_argument when the new capacity
    is [< 1]. *)

val length : 'a t -> int
val capacity : 'a t -> int

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int
(** Lifetime counters, mirrored into the [config.cache_*] metrics by the
    configuration solver when observability is on. *)

val lock_stats : 'a t -> Ds_obs.Lockstat.stats
(** Contention stats of the cache's internal mutex (acquisitions,
    contended acquisitions, total blocked time). The design solver
    mirrors these into the [memo.lock_*] metrics and hooks a per-wait
    [memo.lock_wait_s] histogram via {!Ds_obs.Lockstat.set_on_wait}. *)

val clear : 'a t -> unit
(** Drop every entry and zero the hit/miss/eviction counters: a reset
    cache has no history, and keeping the old counts would report stale
    [config.cache_*] figures for whatever runs after the reset. *)
