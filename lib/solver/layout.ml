module Size = Ds_units.Size
module Rate = Ds_units.Rate
module App = Ds_workload.App
module Mirror = Ds_protection.Mirror
module Technique = Ds_protection.Technique
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Env = Ds_resources.Env
module Slot = Ds_resources.Slot
module Design = Ds_design.Design
module Demand = Ds_design.Demand
module Assignment = Ds_design.Assignment
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample

module History = struct
  (* A history is a local overlay over an optional parent: reads sum
     down the chain, writes stay local. The parallel refit forks one
     overlay per probe off the round's base history — the base is only
     read while probes run (each domain writes its own overlay), and
     the coordinator absorbs the overlays back in probe-index order
     once the round joins. *)
  type t = {
    counts : (App.id * Slot.Array_slot.t, int) Hashtbl.t;
    trials : (App.id, int) Hashtbl.t;
    parent : t option;
  }

  let create () =
    { counts = Hashtbl.create 64; trials = Hashtbl.create 16; parent = None }

  let fork parent =
    { counts = Hashtbl.create 16; trials = Hashtbl.create 8;
      parent = Some parent }

  let record t app_id slot =
    let key = (app_id, slot) in
    Hashtbl.replace t.counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key));
    Hashtbl.replace t.trials app_id
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.trials app_id))

  let rec slot_count t key =
    Option.value ~default:0 (Hashtbl.find_opt t.counts key)
    + (match t.parent with None -> 0 | Some p -> slot_count p key)

  let rec trial_count t app_id =
    Option.value ~default:0 (Hashtbl.find_opt t.trials app_id)
    + (match t.parent with None -> 0 | Some p -> trial_count p app_id)

  let usage t app_id slot =
    match trial_count t app_id with
    | 0 -> 0.
    | trials ->
      float_of_int (slot_count t (app_id, slot)) /. float_of_int trials

  let absorb ~into src =
    (match src.parent with
     | Some p when p == into -> ()
     | _ -> invalid_arg "Layout.History.absorb: [src] is not a fork of [into]");
    let bump tbl key n =
      Hashtbl.replace tbl key
        (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))
    in
    Hashtbl.iter (fun key n -> bump into.counts key n) src.counts;
    Hashtbl.iter (fun app n -> bump into.trials app n) src.trials
end

type choice = {
  assignment : Assignment.t;
  primary_model : Array_model.t;
  mirror_model : Array_model.t option;
  tape_model : Tape_model.t option;
}

let apply design choice =
  Design.add design choice.assignment ~primary_model:choice.primary_model
    ?mirror_model:choice.mirror_model ?tape_model:choice.tape_model ()

(* Fraction of the array's capacity/bandwidth already spoken for. *)
let array_util design demand slot (model : Array_model.t) =
  ignore design;
  let use = Demand.array_use demand slot in
  let cap_util = Size.div use.Demand.capacity (Array_model.total_capacity model) in
  let bw_util = Rate.div use.Demand.bandwidth model.Array_model.max_bw in
  Float.min 1. (Float.max cap_util bw_util)

let array_fits demand slot (model : Array_model.t) ~capacity ~bandwidth =
  let use = Demand.array_use demand slot in
  let cap_left = Size.sub (Array_model.total_capacity model) use.Demand.capacity in
  let bw_left = Rate.sub model.Array_model.max_bw use.Demand.bandwidth in
  Size.(capacity <= cap_left) && Rate.(bandwidth <= bw_left)

(* Candidate (slot, model) pairs for an array copy: a populated bay offers
   its installed model; an empty bay offers every allowed model. *)
let array_candidates design =
  let env = design.Design.env in
  List.concat_map
    (fun slot ->
       match Design.array_model design slot with
       | Some model -> [ (slot, model) ]
       | None -> List.map (fun model -> (slot, model)) env.Env.array_models)
    (Env.array_slots env)

let enumerate_primaries design (app : App.t) =
  let demand = Demand.of_design design in
  List.filter
    (fun (slot, model) ->
       array_fits demand slot model ~capacity:app.App.data_size
         ~bandwidth:app.App.avg_access_rate)
    (array_candidates design)

let weight_of ~alpha history design demand app_id (slot, model) =
  let util = array_util design demand slot model in
  let usage = History.usage history app_id slot in
  (* Keep every candidate reachable: floor the weight just above zero. *)
  Float.max 0.01 ((alpha *. (1. -. util)) +. ((1. -. alpha) *. (1. -. usage)))

(* Prefer devices already opened in the design ("currently unused
   resources are excluded, unless the resource list is empty"). *)
let prefer_populated design candidates =
  let populated =
    List.filter (fun (slot, _) -> Design.array_model design slot <> None)
      candidates
  in
  if populated = [] then candidates else populated

let tape_candidates design ~primary_site =
  let env = design.Design.env in
  let reachable site =
    site = primary_site || Env.connected env primary_site site
  in
  List.concat_map
    (fun (slot : Slot.Tape_slot.t) ->
       if not (reachable slot.site) then []
       else
         match Design.tape_model design slot with
         | Some model -> [ (slot, model) ]
         | None -> List.map (fun model -> (slot, model)) env.Env.tape_models)
    (Env.tape_slots env)

(* Compute slots left at a site under the current demand. *)
let compute_left design demand site =
  design.Design.env.Env.compute_slots_per_site - Demand.compute_use demand site

let tape_fits design demand (slot : Slot.Tape_slot.t) (model : Tape_model.t)
    ~capacity ~bandwidth =
  ignore design;
  let use = Demand.tape_use demand slot in
  let cap_left =
    Size.sub (Tape_model.total_capacity model) use.Demand.tape_capacity
  in
  let bw_left =
    Rate.sub
      (Tape_model.bw_of_drives model model.Tape_model.max_drives)
      use.Demand.tape_bandwidth
  in
  Size.(capacity <= cap_left) && Rate.(bandwidth <= bw_left)

let choose ?(alpha = 0.9) rng history design (app : App.t) technique =
  let demand = Demand.of_design design in
  let primaries =
    enumerate_primaries design app
    |> List.filter (fun ((slot : Slot.Array_slot.t), _) ->
        compute_left design demand slot.site >= 1)
  in
  let primaries = prefer_populated design primaries in
  if primaries = [] then None
  else begin
    let weights =
      List.map
        (fun cand ->
           (cand, weight_of ~alpha history design demand app.App.id cand))
        primaries
    in
    let (primary_slot, primary_model) = Sample.weighted rng weights in
    History.record history app.App.id primary_slot;
    let mirror =
      if not (Technique.has_mirror technique) then Some None
      else begin
        let mirror_bw =
          match technique.Technique.mirror with
          | Some m -> Mirror.network_demand m app
          | None -> Rate.zero
        in
        let needs_standby = Technique.needs_standby_compute technique in
        let is_sync =
          match technique.Technique.mirror with
          | Some { Mirror.sync = Mirror.Synchronous; _ } -> true
          | _ -> false
        in
        let eligible =
          array_candidates design
          |> List.filter (fun ((slot : Slot.Array_slot.t), model) ->
              slot.site <> primary_slot.Slot.Array_slot.site
              && Env.connected design.Design.env primary_slot.Slot.Array_slot.site
                   slot.site
              && ((not is_sync)
                  || Env.sync_mirror_allowed design.Design.env
                       primary_slot.Slot.Array_slot.site slot.site)
              && array_fits demand slot model ~capacity:app.App.data_size
                   ~bandwidth:mirror_bw
              && ((not needs_standby) || compute_left design demand slot.site >= 1))
          |> prefer_populated design
        in
        if eligible = [] then None
        else
          let weights =
            List.map
              (fun cand ->
                 (cand, weight_of ~alpha history design demand app.App.id cand))
              eligible
          in
          Some (Some (Sample.weighted rng weights))
      end
    in
    let tape =
      if not (Technique.has_backup technique) then Some None
      else begin
        let chain = Option.get technique.Technique.backup in
        let capacity = Ds_protection.Backup.tape_space chain app in
        let bandwidth = Ds_protection.Backup.tape_bandwidth_demand chain app in
        let eligible =
          tape_candidates design
            ~primary_site:primary_slot.Slot.Array_slot.site
          |> List.filter (fun (slot, model) ->
              tape_fits design demand slot model ~capacity ~bandwidth)
        in
        (* Local libraries avoid burning link bandwidth on backups; weight
           them up strongly but keep remote ones reachable. *)
        let weights =
          List.map
            (fun ((slot : Slot.Tape_slot.t), model) ->
               let local =
                 slot.site = primary_slot.Slot.Array_slot.site
               in
               (((slot, model) : Slot.Tape_slot.t * Tape_model.t),
                if local then 4. else 1.))
            eligible
        in
        if weights = [] then None else Some (Some (Sample.weighted rng weights))
      end
    in
    match mirror, tape with
    | None, _ | _, None -> None
    | Some mirror, Some tape ->
      let assignment =
        Assignment.v ~app ~technique ~primary:primary_slot
          ?mirror:(Option.map fst mirror)
          ?backup:(Option.map fst tape) ()
      in
      Some
        { assignment;
          primary_model;
          mirror_model = Option.map snd mirror;
          tape_model = Option.map snd tape }
  end

let choose_uniform rng design (app : App.t) technique =
  let primaries = array_candidates design in
  if primaries = [] then None
  else begin
    let (primary_slot, primary_model) = Sample.choose rng primaries in
    let mirror =
      if not (Technique.has_mirror technique) then Some None
      else
        let eligible =
          array_candidates design
          |> List.filter (fun ((slot : Slot.Array_slot.t), _) ->
              slot.site <> primary_slot.Slot.Array_slot.site
              && Env.connected design.Design.env
                   primary_slot.Slot.Array_slot.site slot.site)
        in
        if eligible = [] then None else Some (Some (Sample.choose rng eligible))
    in
    let tape =
      if not (Technique.has_backup technique) then Some None
      else
        let eligible =
          tape_candidates design
            ~primary_site:primary_slot.Slot.Array_slot.site
        in
        if eligible = [] then None else Some (Some (Sample.choose rng eligible))
    in
    match mirror, tape with
    | None, _ | _, None -> None
    | Some mirror, Some tape ->
      let assignment =
        Assignment.v ~app ~technique ~primary:primary_slot
          ?mirror:(Option.map fst mirror)
          ?backup:(Option.map fst tape) ()
      in
      Some
        { assignment;
          primary_model;
          mirror_model = Option.map snd mirror;
          tape_model = Option.map snd tape }
  end
