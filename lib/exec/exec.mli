(** Deterministic domain-pool executor.

    Every parallel layer in this tree (the design solver's refit probes,
    the Monte Carlo year simulation, the experiment sweeps) has the same
    shape: a fixed array of independent tasks whose results must not
    depend on how they are scheduled. This module owns that contract
    once, instead of each layer re-deriving it by hand:

    - {b RNG pre-splitting.} {!map_rng} splits one generator per task
      off the caller's stream {e in task-index order, before any task
      runs}, so every task's randomness is fixed independent of which
      domain executes it or in what order tasks finish.
    - {b Index-order merge.} Results come back as an array indexed like
      the input: position [i] holds task [i]'s result, whatever the
      schedule. Callers that fold results do so in task-index order,
      making tie-breaking schedule-independent.
    - {b Trace-stripped observability.} {!worker_obs} strips the span
      collector (which assumes single-threaded nesting) from a
      capability exactly when the pool will actually run tasks off the
      calling domain; metrics and progress sinks are domain-safe and
      stay on.
    - {b Exception capture.} A task that raises does not tear down a
      worker domain mid-pool: exceptions are caught where they occur
      and re-raised on the calling domain after every domain joins —
      the lowest-index failure wins, with its original backtrace.
      Which {e other} tasks ran by then is unspecified (a sequential
      pool stops at the failure; a parallel pool has already started
      later tasks).

    The contract, identical to the parallel refit's (DESIGN.md §10):
    {b the domain count is pure scheduling — a fixed seed yields
    bit-identical results whatever [domains] is.} *)

module Rng = Ds_prng.Rng
module Obs = Ds_obs.Obs

type pool
(** A scheduling handle: how many OCaml domains a [map] may use.
    Pools are cheap immutable values, reusable across any number of
    calls; domains are spawned per call (and only when both the pool
    and the task count allow more than one worker). *)

val create : ?domains:int -> unit -> pool
(** [create ~domains ()] makes a pool of at most [domains] workers
    (default [1]). [domains = 1] degrades every map below to a plain
    sequential loop with zero [Domain.spawn].
    @raise Invalid_argument when [domains < 1]. *)

val sequential : pool
(** [create ~domains:1 ()]. *)

val auto_width : ?threshold_s:float -> pool -> pool
(** [auto_width pool] turns on stage-aware width auto-sizing for the
    {e observed} maps ({!mapi_obs}, {!map_rng_obs}): per map [label],
    the pool remembers the observed per-task cost (an EWMA of busy
    seconds per task) and sizes the next map of that label so each
    worker's projected share is around [threshold_s] seconds (default
    [1e-3], about 10x a domain spawn/join round trip). A label's first
    map runs at full width and learns; later maps whose projected
    serial time falls under the threshold clamp to one worker and pay
    zero spawn/join. Unlabeled/plain maps ({!map}, {!mapi},
    {!map_rng}) always run at full width.

    Width is pure scheduling — the strided schedule, pre-split RNG and
    index-order merges make every width byte-identical — so the
    (timing-dependent) width choice cannot steer results; it only
    moves wall time. Returns a new pool; the receiver is unchanged.
    The cost table is shared by everything mapping through the
    returned pool and is domain-safe.
    @raise Invalid_argument when [threshold_s <= 0]. *)

val width_for : pool -> label:string -> tasks:int -> int
(** The width the pool would give an observed map of [tasks] tasks
    under [label] right now: [workers pool ~tasks] for non-auto pools
    or unknown labels, else the learned clamp (1 when the projected
    serial time is under the threshold). Exposed for tests; the
    estimate moves as maps run. *)

val domains : pool -> int

val workers : pool -> tasks:int -> int
(** The number of domains a map over [tasks] tasks will actually use:
    [max 1 (min (domains pool) tasks)] — never more domains than
    tasks. *)

val worker_obs : pool -> tasks:int -> Obs.t -> Obs.t
(** The observability capability tasks should run under: [obs]
    unchanged when [workers pool ~tasks = 1] (single-threaded, spans
    nest fine), {!Ds_obs.Obs.without_trace} otherwise. Instrumentation
    never draws RNG, so this cannot steer results. *)

val map : pool -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f tasks] is [Array.map f tasks], scheduled across
    [workers pool ~tasks] domains. [(map pool f tasks).(i) = f tasks.(i)]
    for every [i]; tasks must not share mutable state unless that state
    is domain-safe. *)

val mapi : pool -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_rng : pool -> rng:Rng.t -> (Rng.t -> 'a -> 'b) -> 'a array -> 'b array
(** [map_rng pool ~rng f tasks] first advances [rng] by splitting one
    independent stream per task (in task-index order, on the calling
    domain), then maps [f stream.(i) tasks.(i)] like {!map}. The
    per-task draws are therefore a function of [rng]'s state and the
    task count alone — never of the domain count. *)

val map_list : pool -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

(** {1 Observed maps}

    The same deterministic schedule, plus pool accounting and
    per-domain trace lanes. With an all-off capability these delegate
    to the plain maps above (zero overhead); with sinks attached they
    additionally record, per map, into [obs]'s registry:

    - counters [exec.maps], [exec.tasks] (submitted),
      [exec.tasks_completed], [exec.minor_collections],
      [exec.major_collections];
    - gauges [exec.workers_max] (running maximum pool width),
      [exec.minor_words] / [exec.major_words] (accumulated Gc deltas
      across workers);
    - histograms [exec.map_wall_s] (whole parallel region),
      [exec.spawn_s] / [exec.join_s] (domain fork/join overhead, only
      when more than one worker ran), [exec.worker_busy_s] /
      [exec.worker_idle_s] (one sample per worker per map; idle is
      region wall minus that worker's busy time),
      [exec.busy_imbalance_s] and [exec.task_imbalance] (max − min
      across workers; the strided schedule bounds the latter by 1).

    With a trace sink, the region is a span named [label] wrapping one
    ["worker"] span per worker and one ["task"] span per task; worker
    domains record into per-lane collectors ({!Ds_obs.Obs.fork_lane},
    one [tid] per domain) that are merged back in worker-index order
    after every domain joins, so Chrome export shows one lane per
    domain and the merge order — hence the exported span list — is
    deterministic.

    Accounting is collected into per-worker slots (disjoint, like the
    result array) and emitted from the calling domain after the join,
    and it never draws RNG: the fixed-seed result contract is exactly
    that of the plain maps. *)

val mapi_obs :
  pool ->
  ?label:string ->
  obs:Obs.t ->
  (Obs.t -> int -> 'a -> 'b) ->
  'a array ->
  'b array
(** [mapi_obs pool ~obs f tasks] is {!mapi} where task [i] runs as
    [f wobs i tasks.(i)] under its worker's capability [wobs] — the
    caller's [obs] on the coordinator, a trace-lane fork of it on
    spawned domains (metrics and progress sinks are shared; they are
    domain-safe). [label] names the region span (default
    ["exec.map"]). *)

val map_rng_obs :
  pool ->
  ?label:string ->
  obs:Obs.t ->
  rng:Rng.t ->
  (Obs.t -> Rng.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** {!map_rng} with the same worker-capability plumbing as
    {!mapi_obs}: streams are pre-split in task-index order before
    anything runs, and the accounting never draws from them. *)
