module Rng = Ds_prng.Rng
module Obs = Ds_obs.Obs

(* Stage-aware width policy: per map label, remember the observed
   per-task cost (an EWMA of busy seconds per task) and size the next
   map of that label from its projected serial time [tasks x cost].
   Small stages — a handful of growth moves, a short window menu —
   clamp to one worker and never pay domain spawn/join; only stages
   whose projected time can amortize the spawn cost fan out.

   The table is an atomic assoc list updated from whichever domain ran
   the map; a racing insert can at worst drop a peer's fresh estimate,
   which the next map of that label simply re-learns. Width is pure
   scheduling (the strided schedule and index-order merges make every
   width byte-identical), so the policy cannot steer results. *)
type cost_model = {
  threshold_s : float;  (* target serial seconds per worker *)
  costs : (string * float Atomic.t) list Atomic.t;
}

type pool = { domains : int; auto : cost_model option }

let create ?(domains = 1) () =
  if domains < 1 then invalid_arg "Exec.create: domains must be >= 1";
  { domains; auto = None }

let sequential = { domains = 1; auto = None }

(* Default threshold: a domain spawn/join round trip costs on the order
   of 100 us; below ~1 ms of projected serial work the fan-out cannot
   amortize it. *)
let auto_width ?(threshold_s = 1e-3) pool =
  if threshold_s <= 0. then invalid_arg "Exec.auto_width: threshold must be > 0";
  { pool with auto = Some { threshold_s; costs = Atomic.make [] } }

let domains pool = pool.domains

let workers pool ~tasks = max 1 (min pool.domains tasks)

let observed_cost cm label =
  match List.assoc_opt label (Atomic.get cm.costs) with
  | Some slot -> Some (Atomic.get slot)
  | None -> None

let note_cost cm label per_task_s =
  if Float.is_finite per_task_s && per_task_s >= 0. then begin
    let entries = Atomic.get cm.costs in
    match List.assoc_opt label entries with
    | Some slot ->
      (* EWMA smooths one-off stalls; plain set — a lost race loses one
         observation, not correctness. *)
      Atomic.set slot ((0.7 *. Atomic.get slot) +. (0.3 *. per_task_s))
    | None ->
      Atomic.set cm.costs ((label, Atomic.make per_task_s) :: entries)
  end

(* The width an auto-sizing pool gives a map: full width while the label
   is unknown (first map learns), then the smallest width that keeps
   each worker's projected share around [threshold_s]. *)
let width_for pool ~label ~tasks =
  let full = workers pool ~tasks in
  match pool.auto with
  | None -> full
  | Some cm ->
    if full <= 1 then full
    else begin
      match observed_cost cm label with
      | None -> full
      | Some per_task ->
        let projected = per_task *. float_of_int tasks in
        if projected < cm.threshold_s then 1
        else min full (max 1 (int_of_float (projected /. cm.threshold_s)))
    end

let worker_obs pool ~tasks obs =
  if workers pool ~tasks > 1 then Obs.without_trace obs else obs

(* [mapi] at an explicit width [w] (<= workers pool ~tasks). The width
   is pure scheduling: results land by task index whatever [w] is. *)
let mapi_w w f tasks =
  let n = Array.length tasks in
  if w = 1 then Array.mapi f tasks
  else begin
    (* Slot [i] belongs to task [i] alone: the strided schedule below
       assigns disjoint index sets to the domains, so the two arrays
       are written race-free without locks. *)
    let results = Array.make n None in
    let failures = Array.make n None in
    let run_one i =
      match f i tasks.(i) with
      | v -> results.(i) <- Some v
      | exception e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    (* Strided assignment: domain [k] runs tasks [k], [k + w], ... The
       coordinator takes stride 0. Which domain runs which task is
       irrelevant to the output — results land by task index. *)
    let stride k =
      let i = ref k in
      while !i < n do
        run_one !i;
        i := !i + w
      done
    in
    let spawned =
      List.init (w - 1) (fun j -> Domain.spawn (fun () -> stride (j + 1)))
    in
    stride 0;
    List.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, backtrace) -> Printexc.raise_with_backtrace e backtrace
        | None -> ())
      failures;
    Array.map Option.get results
  end

let mapi pool f tasks = mapi_w (workers pool ~tasks:(Array.length tasks)) f tasks

let map pool f tasks = mapi pool (fun _ x -> f x) tasks

let map_rng pool ~rng f tasks =
  let n = Array.length tasks in
  (* Pre-split in index order on the calling domain: every task's
     stream is fixed here, before any task runs anywhere. *)
  let rngs = Array.make n rng in
  for i = 0 to n - 1 do
    rngs.(i) <- Rng.split rng
  done;
  mapi pool (fun i x -> f rngs.(i) x) tasks

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Observed maps: the same schedule, plus pool accounting and          *)
(* per-domain trace lanes.                                             *)
(* ------------------------------------------------------------------ *)

let instrumented obs = Obs.metrics_on obs || Obs.trace obs <> None

module Metrics = Obs.Metrics

let now_s = Metrics.now_s

(* Pool-accounting instruments, pre-resolved once per metrics registry:
   the solvers run thousands of instrumented maps per second, and
   re-resolving a dozen fixed names through the registry lock on every
   map dominated the accounting's own allocation. One-slot cache with a
   benign race: a concurrent refill re-resolves the same names and the
   registry hands back the same instruments, so totals are unchanged. *)
type acct_instruments = {
  ai_reg : Metrics.registry;
  maps_c : Metrics.counter;
  tasks_c : Metrics.counter;
  workers_max_g : Metrics.gauge;
  map_wall_h : Metrics.histogram;
  spawn_h : Metrics.histogram;
  join_h : Metrics.histogram;
  worker_busy_h : Metrics.histogram;
  worker_idle_h : Metrics.histogram;
  tasks_completed_c : Metrics.counter;
  busy_imbalance_h : Metrics.histogram;
  task_imbalance_h : Metrics.histogram;
  minor_words_g : Metrics.gauge;
  major_words_g : Metrics.gauge;
  minor_col_c : Metrics.counter;
  major_col_c : Metrics.counter;
}

let acct_slot : acct_instruments option Atomic.t = Atomic.make None

let acct_instruments reg =
  match Atomic.get acct_slot with
  | Some ai when ai.ai_reg == reg -> ai
  | _ ->
    let ai =
      { ai_reg = reg;
        maps_c = Metrics.counter reg "exec.maps";
        tasks_c = Metrics.counter reg "exec.tasks";
        workers_max_g = Metrics.gauge reg "exec.workers_max";
        map_wall_h = Metrics.histogram reg "exec.map_wall_s";
        spawn_h = Metrics.histogram reg "exec.spawn_s";
        join_h = Metrics.histogram reg "exec.join_s";
        worker_busy_h = Metrics.histogram reg "exec.worker_busy_s";
        worker_idle_h = Metrics.histogram reg "exec.worker_idle_s";
        tasks_completed_c = Metrics.counter reg "exec.tasks_completed";
        busy_imbalance_h = Metrics.histogram reg "exec.busy_imbalance_s";
        task_imbalance_h = Metrics.histogram reg "exec.task_imbalance";
        minor_words_g = Metrics.gauge reg "exec.minor_words";
        major_words_g = Metrics.gauge reg "exec.major_words";
        minor_col_c = Metrics.counter reg "exec.minor_collections";
        major_col_c = Metrics.counter reg "exec.major_collections" }
    in
    Atomic.set acct_slot (Some ai);
    ai

(* Everything the caller-side accounting needs about one finished map.
   Collected into plain per-worker arrays (disjoint slots, like the
   result array) and emitted from the calling domain only after every
   worker has joined — observers never race, and the emission order is
   deterministic. *)
type acct = {
  busy : float array;  (* per worker: summed task run time *)
  tasks_run : int array;
  minor : float array;  (* per worker: Gc.quick_stat deltas *)
  major : float array;
  minor_col : int array;
  major_col : int array;
}

let emit_acct ai a ~w ~wall ~spawn_s ~join_s =
  Metrics.observe ai.map_wall_h wall;
  (match spawn_s with Some s -> Metrics.observe ai.spawn_h s | None -> ());
  (match join_s with Some s -> Metrics.observe ai.join_h s | None -> ());
  let busy_lo = ref Float.infinity and busy_hi = ref 0. in
  let run_lo = ref max_int and run_hi = ref 0 in
  let completed = ref 0 in
  let minor = ref 0. and major = ref 0. in
  let minor_col = ref 0 and major_col = ref 0 in
  for k = 0 to w - 1 do
    Metrics.observe ai.worker_busy_h a.busy.(k);
    Metrics.observe ai.worker_idle_h (Float.max 0. (wall -. a.busy.(k)));
    busy_lo := Float.min !busy_lo a.busy.(k);
    busy_hi := Float.max !busy_hi a.busy.(k);
    run_lo := min !run_lo a.tasks_run.(k);
    run_hi := max !run_hi a.tasks_run.(k);
    completed := !completed + a.tasks_run.(k);
    minor := !minor +. a.minor.(k);
    major := !major +. a.major.(k);
    minor_col := !minor_col + a.minor_col.(k);
    major_col := !major_col + a.major_col.(k)
  done;
  Metrics.add ai.tasks_completed_c !completed;
  Metrics.observe ai.busy_imbalance_h (!busy_hi -. !busy_lo);
  Metrics.observe ai.task_imbalance_h (float_of_int (!run_hi - !run_lo));
  Metrics.gauge_add ai.minor_words_g !minor;
  Metrics.gauge_add ai.major_words_g !major;
  Metrics.add ai.minor_col_c !minor_col;
  Metrics.add ai.major_col_c !major_col

let mapi_obs pool ?(label = "exec.map") ~obs f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if not (instrumented obs) then begin
    match pool.auto with
    | None -> mapi pool (fun i x -> f obs i x) tasks
    | Some cm ->
      (* No instruments to learn from, so time the map itself: total
         busy is roughly [wall x width] on a balanced strided schedule,
         which is what the bench path (noop observers) runs on. *)
      let w = width_for pool ~label ~tasks:n in
      let t0 = now_s () in
      let r = mapi_w w (fun i x -> f obs i x) tasks in
      note_cost cm label
        ((now_s () -. t0) *. float_of_int w /. float_of_int n);
      r
  end
  else begin
    let w = width_for pool ~label ~tasks:n in
    let ai =
      match Obs.metrics obs with
      | Some reg -> Some (acct_instruments reg)
      | None -> None
    in
    (match ai with
     | Some ai ->
       Metrics.incr ai.maps_c;
       Metrics.add ai.tasks_c n;
       Metrics.gauge_max ai.workers_max_g (float_of_int w)
     | None -> ());
    Obs.with_span obs
      ~args:[ ("tasks", string_of_int n); ("workers", string_of_int w) ]
      label
      (fun () ->
         let results = Array.make n None in
         let failures = Array.make n None in
         let a =
           { busy = Array.make w 0.;
             tasks_run = Array.make w 0;
             minor = Array.make w 0.;
             major = Array.make w 0.;
             minor_col = Array.make w 0;
             major_col = Array.make w 0 }
         in
         (* Runs on worker [k]'s own domain under that worker's lane
            capability; busy time and Gc deltas land in slot [k]. *)
         let run_one wobs k i =
           let t0 = now_s () in
           (match
              Obs.with_span wobs
                ~args:[ ("task", string_of_int i) ]
                "task"
                (fun () -> f wobs i tasks.(i))
            with
            | v -> results.(i) <- Some v
            | exception e ->
              failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
           a.busy.(k) <- a.busy.(k) +. (now_s () -. t0);
           a.tasks_run.(k) <- a.tasks_run.(k) + 1
         in
         let stride wobs k =
           let gc0 = Gc.quick_stat () in
           Obs.with_span wobs
             ~args:[ ("worker", string_of_int k) ]
             "worker"
             (fun () ->
                let i = ref k in
                while !i < n do
                  run_one wobs k !i;
                  i := !i + w
                done);
           let gc1 = Gc.quick_stat () in
           a.minor.(k) <- gc1.Gc.minor_words -. gc0.Gc.minor_words;
           a.major.(k) <- gc1.Gc.major_words -. gc0.Gc.major_words;
           a.minor_col.(k) <-
             gc1.Gc.minor_collections - gc0.Gc.minor_collections;
           a.major_col.(k) <-
             gc1.Gc.major_collections - gc0.Gc.major_collections
         in
         let t_region = now_s () in
         let emit ~wall ~spawn_s ~join_s =
           match ai with
           | Some ai -> emit_acct ai a ~w ~wall ~spawn_s ~join_s
           | None -> ()
         in
         if w = 1 then begin
           stride obs 0;
           emit ~wall:(now_s () -. t_region) ~spawn_s:None ~join_s:None
         end
         else begin
           (* Lanes are created here, while [label]'s span is open, so
              worker spans root under it; the coordinator (worker 0)
              records straight into the caller's collector, same
              thread. Merging runs after every join, in worker-index
              order — deterministic span list, no concurrent access. *)
           let lanes =
             Array.init w (fun k ->
                 if k = 0 then (obs, None) else Obs.fork_lane obs ~tid:(k + 1))
           in
           let t_spawn = now_s () in
           let spawned =
             List.init (w - 1) (fun j ->
                 let wobs, _ = lanes.(j + 1) in
                 Domain.spawn (fun () -> stride wobs (j + 1)))
           in
           let spawn_s = now_s () -. t_spawn in
           stride obs 0;
           let t_join = now_s () in
           List.iter Domain.join spawned;
           for k = 1 to w - 1 do
             Obs.merge_lane obs (snd lanes.(k))
           done;
           let t_end = now_s () in
           emit ~wall:(t_end -. t_region) ~spawn_s:(Some spawn_s)
             ~join_s:(Some (t_end -. t_join))
         end;
         (match pool.auto with
          | Some cm ->
            (* Busy time is the exact per-task cost signal — idle and
               spawn/join overhead are deliberately excluded so the
               estimate stays width-independent. *)
            note_cost cm label
              (Array.fold_left ( +. ) 0. a.busy /. float_of_int n)
          | None -> ());
         Array.iter
           (function
             | Some (e, backtrace) ->
               Printexc.raise_with_backtrace e backtrace
             | None -> ())
           failures;
         Array.map Option.get results)
  end

let map_rng_obs pool ?label ~obs ~rng f tasks =
  let n = Array.length tasks in
  (* Same pre-split contract as {!map_rng}: streams are fixed in
     task-index order before anything runs, and the accounting above
     never draws from them — instrumentation cannot steer results. *)
  let rngs = Array.make n rng in
  for i = 0 to n - 1 do
    rngs.(i) <- Rng.split rng
  done;
  mapi_obs pool ?label ~obs (fun wobs i x -> f wobs rngs.(i) x) tasks
