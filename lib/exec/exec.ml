module Rng = Ds_prng.Rng
module Obs = Ds_obs.Obs

type pool = { domains : int }

let create ?(domains = 1) () =
  if domains < 1 then invalid_arg "Exec.create: domains must be >= 1";
  { domains }

let sequential = { domains = 1 }

let domains pool = pool.domains

let workers pool ~tasks = max 1 (min pool.domains tasks)

let worker_obs pool ~tasks obs =
  if workers pool ~tasks > 1 then Obs.without_trace obs else obs

let mapi pool f tasks =
  let n = Array.length tasks in
  let w = workers pool ~tasks:n in
  if w = 1 then Array.mapi f tasks
  else begin
    (* Slot [i] belongs to task [i] alone: the strided schedule below
       assigns disjoint index sets to the domains, so the two arrays
       are written race-free without locks. *)
    let results = Array.make n None in
    let failures = Array.make n None in
    let run_one i =
      match f i tasks.(i) with
      | v -> results.(i) <- Some v
      | exception e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    (* Strided assignment: domain [k] runs tasks [k], [k + w], ... The
       coordinator takes stride 0. Which domain runs which task is
       irrelevant to the output — results land by task index. *)
    let stride k =
      let i = ref k in
      while !i < n do
        run_one !i;
        i := !i + w
      done
    in
    let spawned =
      List.init (w - 1) (fun j -> Domain.spawn (fun () -> stride (j + 1)))
    in
    stride 0;
    List.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, backtrace) -> Printexc.raise_with_backtrace e backtrace
        | None -> ())
      failures;
    Array.map Option.get results
  end

let map pool f tasks = mapi pool (fun _ x -> f x) tasks

let map_rng pool ~rng f tasks =
  let n = Array.length tasks in
  (* Pre-split in index order on the calling domain: every task's
     stream is fixed here, before any task runs anywhere. *)
  let rngs = Array.make n rng in
  for i = 0 to n - 1 do
    rngs.(i) <- Rng.split rng
  done;
  mapi pool (fun i x -> f rngs.(i) x) tasks

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))
