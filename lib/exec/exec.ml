module Rng = Ds_prng.Rng
module Obs = Ds_obs.Obs

type pool = { domains : int }

let create ?(domains = 1) () =
  if domains < 1 then invalid_arg "Exec.create: domains must be >= 1";
  { domains }

let sequential = { domains = 1 }

let domains pool = pool.domains

let workers pool ~tasks = max 1 (min pool.domains tasks)

let worker_obs pool ~tasks obs =
  if workers pool ~tasks > 1 then Obs.without_trace obs else obs

let mapi pool f tasks =
  let n = Array.length tasks in
  let w = workers pool ~tasks:n in
  if w = 1 then Array.mapi f tasks
  else begin
    (* Slot [i] belongs to task [i] alone: the strided schedule below
       assigns disjoint index sets to the domains, so the two arrays
       are written race-free without locks. *)
    let results = Array.make n None in
    let failures = Array.make n None in
    let run_one i =
      match f i tasks.(i) with
      | v -> results.(i) <- Some v
      | exception e -> failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    (* Strided assignment: domain [k] runs tasks [k], [k + w], ... The
       coordinator takes stride 0. Which domain runs which task is
       irrelevant to the output — results land by task index. *)
    let stride k =
      let i = ref k in
      while !i < n do
        run_one !i;
        i := !i + w
      done
    in
    let spawned =
      List.init (w - 1) (fun j -> Domain.spawn (fun () -> stride (j + 1)))
    in
    stride 0;
    List.iter Domain.join spawned;
    Array.iter
      (function
        | Some (e, backtrace) -> Printexc.raise_with_backtrace e backtrace
        | None -> ())
      failures;
    Array.map Option.get results
  end

let map pool f tasks = mapi pool (fun _ x -> f x) tasks

let map_rng pool ~rng f tasks =
  let n = Array.length tasks in
  (* Pre-split in index order on the calling domain: every task's
     stream is fixed here, before any task runs anywhere. *)
  let rngs = Array.make n rng in
  for i = 0 to n - 1 do
    rngs.(i) <- Rng.split rng
  done;
  mapi pool (fun i x -> f rngs.(i) x) tasks

let map_list pool f xs = Array.to_list (map pool f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Observed maps: the same schedule, plus pool accounting and          *)
(* per-domain trace lanes.                                             *)
(* ------------------------------------------------------------------ *)

let instrumented obs = Obs.metrics_on obs || Obs.trace obs <> None

let now_s = Obs.Metrics.now_s

(* Everything the caller-side accounting needs about one finished map.
   Collected into plain per-worker arrays (disjoint slots, like the
   result array) and emitted from the calling domain only after every
   worker has joined — observers never race, and the emission order is
   deterministic. *)
type acct = {
  busy : float array;  (* per worker: summed task run time *)
  tasks_run : int array;
  minor : float array;  (* per worker: Gc.quick_stat deltas *)
  major : float array;
  minor_col : int array;
  major_col : int array;
}

let emit_acct obs a ~w ~wall ~spawn_s ~join_s =
  Obs.observe obs "exec.map_wall_s" wall;
  (match spawn_s with Some s -> Obs.observe obs "exec.spawn_s" s | None -> ());
  (match join_s with Some s -> Obs.observe obs "exec.join_s" s | None -> ());
  let busy_lo = ref Float.infinity and busy_hi = ref 0. in
  let run_lo = ref max_int and run_hi = ref 0 in
  let completed = ref 0 in
  let minor = ref 0. and major = ref 0. in
  let minor_col = ref 0 and major_col = ref 0 in
  for k = 0 to w - 1 do
    Obs.observe obs "exec.worker_busy_s" a.busy.(k);
    Obs.observe obs "exec.worker_idle_s" (Float.max 0. (wall -. a.busy.(k)));
    busy_lo := Float.min !busy_lo a.busy.(k);
    busy_hi := Float.max !busy_hi a.busy.(k);
    run_lo := min !run_lo a.tasks_run.(k);
    run_hi := max !run_hi a.tasks_run.(k);
    completed := !completed + a.tasks_run.(k);
    minor := !minor +. a.minor.(k);
    major := !major +. a.major.(k);
    minor_col := !minor_col + a.minor_col.(k);
    major_col := !major_col + a.major_col.(k)
  done;
  Obs.add obs "exec.tasks_completed" !completed;
  Obs.observe obs "exec.busy_imbalance_s" (!busy_hi -. !busy_lo);
  Obs.observe obs "exec.task_imbalance" (float_of_int (!run_hi - !run_lo));
  Obs.gauge_add obs "exec.minor_words" !minor;
  Obs.gauge_add obs "exec.major_words" !major;
  Obs.add obs "exec.minor_collections" !minor_col;
  Obs.add obs "exec.major_collections" !major_col

let mapi_obs pool ?(label = "exec.map") ~obs f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else if not (instrumented obs) then mapi pool (fun i x -> f obs i x) tasks
  else begin
    let w = workers pool ~tasks:n in
    Obs.incr obs "exec.maps";
    Obs.add obs "exec.tasks" n;
    (match Obs.metrics obs with
     | None -> ()
     | Some reg ->
       Obs.Metrics.gauge_max
         (Obs.Metrics.gauge reg "exec.workers_max")
         (float_of_int w));
    Obs.with_span obs
      ~args:[ ("tasks", string_of_int n); ("workers", string_of_int w) ]
      label
      (fun () ->
         let results = Array.make n None in
         let failures = Array.make n None in
         let a =
           { busy = Array.make w 0.;
             tasks_run = Array.make w 0;
             minor = Array.make w 0.;
             major = Array.make w 0.;
             minor_col = Array.make w 0;
             major_col = Array.make w 0 }
         in
         (* Runs on worker [k]'s own domain under that worker's lane
            capability; busy time and Gc deltas land in slot [k]. *)
         let run_one wobs k i =
           let t0 = now_s () in
           (match
              Obs.with_span wobs
                ~args:[ ("task", string_of_int i) ]
                "task"
                (fun () -> f wobs i tasks.(i))
            with
            | v -> results.(i) <- Some v
            | exception e ->
              failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
           a.busy.(k) <- a.busy.(k) +. (now_s () -. t0);
           a.tasks_run.(k) <- a.tasks_run.(k) + 1
         in
         let stride wobs k =
           let gc0 = Gc.quick_stat () in
           Obs.with_span wobs
             ~args:[ ("worker", string_of_int k) ]
             "worker"
             (fun () ->
                let i = ref k in
                while !i < n do
                  run_one wobs k !i;
                  i := !i + w
                done);
           let gc1 = Gc.quick_stat () in
           a.minor.(k) <- gc1.Gc.minor_words -. gc0.Gc.minor_words;
           a.major.(k) <- gc1.Gc.major_words -. gc0.Gc.major_words;
           a.minor_col.(k) <-
             gc1.Gc.minor_collections - gc0.Gc.minor_collections;
           a.major_col.(k) <-
             gc1.Gc.major_collections - gc0.Gc.major_collections
         in
         let t_region = now_s () in
         if w = 1 then begin
           stride obs 0;
           emit_acct obs a ~w ~wall:(now_s () -. t_region) ~spawn_s:None
             ~join_s:None
         end
         else begin
           (* Lanes are created here, while [label]'s span is open, so
              worker spans root under it; the coordinator (worker 0)
              records straight into the caller's collector, same
              thread. Merging runs after every join, in worker-index
              order — deterministic span list, no concurrent access. *)
           let lanes =
             Array.init w (fun k ->
                 if k = 0 then (obs, None) else Obs.fork_lane obs ~tid:(k + 1))
           in
           let t_spawn = now_s () in
           let spawned =
             List.init (w - 1) (fun j ->
                 let wobs, _ = lanes.(j + 1) in
                 Domain.spawn (fun () -> stride wobs (j + 1)))
           in
           let spawn_s = now_s () -. t_spawn in
           stride obs 0;
           let t_join = now_s () in
           List.iter Domain.join spawned;
           for k = 1 to w - 1 do
             Obs.merge_lane obs (snd lanes.(k))
           done;
           let t_end = now_s () in
           emit_acct obs a ~w ~wall:(t_end -. t_region)
             ~spawn_s:(Some spawn_s)
             ~join_s:(Some (t_end -. t_join))
         end;
         Array.iter
           (function
             | Some (e, backtrace) ->
               Printexc.raise_with_backtrace e backtrace
             | None -> ())
           failures;
         Array.map Option.get results)
  end

let map_rng_obs pool ?label ~obs ~rng f tasks =
  let n = Array.length tasks in
  (* Same pre-split contract as {!map_rng}: streams are fixed in
     task-index order before anything runs, and the accounting above
     never draws from them — instrumentation cannot steer results. *)
  let rngs = Array.make n rng in
  for i = 0 to n - 1 do
    rngs.(i) <- Rng.split rng
  done;
  mapi_obs pool ?label ~obs (fun wobs i x -> f wobs rngs.(i) x) tasks
