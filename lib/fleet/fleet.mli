(** Fleet-scale solving: shard by failure domain, solve shards on the
    {!Ds_exec.Exec} pool, reconcile shared-resource contention at the
    coordinator.

    The paper's solver designs protection for a handful of applications;
    a shared environment serving thousands needs two things it cannot
    give: horizontal scale (the penalty simulation is superlinear in the
    apps per design, so one thousand-app solve is far costlier than many
    small ones) and incremental re-solve under drift. This coordinator
    provides both. {!solve} partitions the fleet into shards — apps
    spread round-robin by id over the environment's failure domains
    (link-graph connected components) — solves every shard independently
    in parallel, merges the shard designs in index order, and repairs
    anything the merge broke with a bounded fix-up pass built on the
    warm-start path ({!Ds_solver.Design_solver.resolve}). {!resolve}
    re-solves a previous fleet result after workload drift, re-solving
    only the shards that contain dirty apps and reusing the rest
    byte-for-byte.

    {b Determinism} (the DESIGN.md §10 discipline): shard solves run
    through [Exec.map_rng_obs] — RNG streams pre-split in shard-index
    order before any shard runs, results merged in shard index order —
    with each inner solver single-domain; everything after the parallel
    join (merge, eviction, fix-up) is sequential on the calling domain.
    The pool width is pure scheduling: a fixed seed yields a
    byte-identical fleet design at every domain count. *)

module App = Ds_workload.App
module Env = Ds_resources.Env
module Site = Ds_resources.Site
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Money = Ds_units.Money
module Design_solver = Ds_solver.Design_solver

type shard = {
  index : int;
  sites : Site.id list;  (** Failure domain this shard solves within. *)
  env : Env.t;  (** {!Env.restrict} of the fleet env to [sites]. *)
  apps : App.t list;  (** In fleet order (ascending id within a shard). *)
}

type shard_result = {
  shard : shard;
  outcome : Design_solver.outcome option;
      (** [None]: no feasible design inside the shard's sub-environment
          (its apps become fix-up work at the coordinator). *)
  reused : bool;
      (** Warm path only: the previous result carried over without any
          solver call (shard untouched by the dirty set). *)
}

type t = {
  design : Design.t;  (** The merged fleet design, over the fleet env. *)
  cost : Money.t;
      (** Total cost: the fix-up candidate's evaluation when a fix-up
          ran, the sum of shard costs when shard site-sets are pairwise
          disjoint and the merge was clean (the objective separates
          over disconnected failure domains), one global evaluation
          otherwise. *)
  evaluations : int;
      (** Configuration-solver calls across shard solves (reused shards
          contribute zero) and the fix-up passes. *)
  shard_results : shard_result list;  (** In shard-index order. *)
  conflicts : int;
      (** Merge-time casualties: assignments rejected by [Design.add]
          (model clash on a shared slot) plus capacity evictions. *)
  reconcile_passes : int;  (** Fix-up resolves actually run. *)
  unplaced : App.id list;
      (** Apps no fix-up pass could place (empty on healthy runs). *)
  apps : App.t list;  (** The input fleet, kept for {!dirty_between}. *)
}

val failure_domains : Env.t -> Site.id list list
(** Connected components of the environment's link graph, each sorted
    ascending, ordered by smallest member. Sites with no links are
    singleton domains. *)

val partition : ?shards:int -> Env.t -> App.t list -> shard list
(** Cut the fleet into [shards] shards (default: one per failure
    domain). Shard [i] gets failure domain [i mod domains] and the apps
    with [id mod shards = i] — a stable mapping, so adding or removing
    an app never reshuffles the others (warm-start reuse depends on
    this). With [shards] above the domain count, several shards share a
    domain's sites and the reconcile pass arbitrates the contention.
    @raise Invalid_argument when [shards < 1]. *)

val dirty_between : previous:App.t list -> App.t list -> App.id list
(** Ids in the current list that are new or differ structurally
    ({!App.same}) from their previous revision — the default dirty set
    for {!resolve}. Retired ids are not reported (rebase drops them). *)

val solve :
  ?params:Design_solver.params ->
  ?shards:int ->
  ?max_reconcile_passes:int ->
  ?obs:Ds_obs.Obs.t ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  t
(** Cold fleet solve. [params.domains] sizes the shard-level pool; each
    shard's inner solver runs single-domain ([params] otherwise applies
    to every shard solve unchanged, seed included — streams are
    pre-split per shard, so shards explore independently).

    Merge conflicts and capacity evictions (a merged design
    over-subscribing a shared site or slot is evicted deterministically:
    the highest app id using the infeasible resource leaves first) feed
    at most [max_reconcile_passes] (default 2) warm-start fix-up
    resolves over the full environment; apps still unplaced after the
    budget are reported in [unplaced], never silently dropped.

    [obs] records [fleet.*] metrics (shards, apps, conflicts,
    evictions, reuses, reconcile passes, unplaced, cost), a
    [fleet.solve] span with per-shard [fleet.shard] regions, and one
    shard-completion progress event per shard in index order. *)

val resolve :
  ?params:Design_solver.params ->
  ?max_reconcile_passes:int ->
  ?obs:Ds_obs.Obs.t ->
  ?dirty:App.id list ->
  incumbent:t ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  t
(** Warm fleet re-solve after drift. [dirty] defaults to
    [dirty_between ~previous:incumbent.apps apps]. The partition is
    recomputed (same shard count as the incumbent — a changed shard
    count falls back to {!solve}); a shard whose sub-environment, app
    set and app revisions are all untouched reuses its previous result
    with zero solver calls; every other shard re-solves warm from its
    previous design ({!Design_solver.resolve} — so a price-only change
    re-costs placements without moving them), or cold if it previously
    failed. Reconciliation then proceeds as in {!solve}. Never costlier
    than re-solving the dirty shards alone can make it: each shard's
    own warm-start floor applies. *)
