module App = Ds_workload.App
module Env = Ds_resources.Env
module Site = Ds_resources.Site
module Slot = Ds_resources.Slot
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment
module Provision = Ds_design.Provision
module Likelihood = Ds_failure.Likelihood
module Evaluate = Ds_cost.Evaluate
module Money = Ds_units.Money
module Rng = Ds_prng.Rng
module Obs = Ds_obs.Obs
module Exec = Ds_exec.Exec
module Design_solver = Ds_solver.Design_solver
module Config_solver = Ds_solver.Config_solver
module Candidate = Ds_solver.Candidate
module Int_set = Set.Make (Int)

type shard = {
  index : int;
  sites : Site.id list;
  env : Env.t;
  apps : App.t list;
}

type shard_result = {
  shard : shard;
  outcome : Design_solver.outcome option;
  reused : bool;
}

type t = {
  design : Design.t;
  cost : Money.t;
  evaluations : int;
  shard_results : shard_result list;
  conflicts : int;
  reconcile_passes : int;
  unplaced : App.id list;
  apps : App.t list;
}

(* Connected components of the link graph, by union-find over site ids.
   Components are returned sorted ascending and ordered by smallest
   member, so the domain list is a pure function of the environment. *)
let failure_domains env =
  let ids = Env.site_ids env in
  let parent = Hashtbl.create (List.length ids) in
  List.iter (fun id -> Hashtbl.replace parent id id) ids;
  let rec root id =
    let p = Hashtbl.find parent id in
    if p = id then id
    else begin
      let r = root p in
      Hashtbl.replace parent id r;
      r
    end
  in
  let union a b =
    let ra = root a and rb = root b in
    if ra <> rb then Hashtbl.replace parent (max ra rb) (min ra rb)
  in
  List.iter
    (fun pair ->
       let a, b = Slot.Pair.endpoints pair in
       union a b)
    (Env.pairs env);
  let components = Hashtbl.create 8 in
  List.iter
    (fun id ->
       let r = root id in
       let members = Option.value ~default:[] (Hashtbl.find_opt components r) in
       Hashtbl.replace components r (id :: members))
    ids;
  Hashtbl.fold (fun _ members acc -> List.sort Int.compare members :: acc)
    components []
  |> List.sort (fun a b -> Int.compare (List.hd a) (List.hd b))

(* Apps map to shards by [id mod shards] — stable under fleet growth
   and churn: adding or retiring one app never moves another app to a
   different shard, which is what lets the warm path reuse untouched
   shards byte-for-byte. *)
let partition ?shards env apps =
  let domains = failure_domains env in
  let domain_count = List.length domains in
  let shards = Option.value ~default:domain_count shards in
  if shards < 1 then invalid_arg "Fleet.partition: shards must be >= 1";
  let domains = Array.of_list domains in
  List.init shards (fun index ->
      let sites = domains.(index mod domain_count) in
      let apps =
        List.filter (fun (a : App.t) ->
            ((a.App.id mod shards) + shards) mod shards = index)
          apps
      in
      { index; sites; env = Env.restrict env ~sites; apps })

let dirty_between ~previous apps =
  List.filter_map
    (fun (a : App.t) ->
       match List.find_opt (fun (p : App.t) -> p.App.id = a.App.id) previous with
       | Some p when App.same p a -> None
       | Some _ | None -> Some a.App.id)
    apps

let ids_of apps = List.map (fun (a : App.t) -> a.App.id) apps

(* ---- Reconciliation ---------------------------------------------- *)

(* Index-order merge of the shard designs onto the fleet environment.
   [Design.add] re-validates every placement in the full env (always
   satisfiable when shard site-sets are disjoint: shard links are a
   subset of fleet links); an assignment it rejects — a model clash on
   a slot two shards both populated — is a conflict for the fix-up
   pass. *)
let merge_shards env results =
  let carry_assignment shard_design (design, conflicted) (asg : Assignment.t) =
    let primary_model = Design.array_model shard_design asg.primary in
    let mirror_model = Option.bind asg.mirror (Design.array_model shard_design) in
    let tape_model = Option.bind asg.backup (Design.tape_model shard_design) in
    match primary_model with
    | None -> (design, asg.app.App.id :: conflicted)
    | Some primary_model ->
      (match Design.add design asg ~primary_model ?mirror_model ?tape_model () with
       | Ok design -> (design, conflicted)
       | Error _ -> (design, asg.app.App.id :: conflicted))
  in
  let design, conflicted =
    List.fold_left
      (fun acc result ->
         match result.outcome with
         | None ->
           (* The whole shard failed in its sub-environment; its apps go
              to the fix-up pass, which works in the full environment. *)
           let design, conflicted = acc in
           (design, List.rev_append (ids_of result.shard.apps) conflicted)
         | Some (o : Design_solver.outcome) ->
           List.fold_left
             (carry_assignment o.Design_solver.best.Candidate.design)
             acc
             (Design.assignments o.Design_solver.best.Candidate.design))
      (Design.empty env, [])
      results
  in
  (design, List.sort Int.compare conflicted)

(* When shards shared sites, the merged design can over-subscribe a
   resource even though every shard was feasible alone. Evict until
   minimally provisionable: the highest app id among the users of the
   infeasible resource leaves first (deterministic, and biased toward
   the later arrivals the earlier shards never saw). *)
let users_of_infeasibility design = function
  | Provision.Array_capacity slot | Provision.Array_bandwidth slot ->
    Design.residents design slot
  | Provision.Tape_capacity slot | Provision.Tape_bandwidth slot ->
    List.filter
      (fun (a : Assignment.t) ->
         match a.backup with
         | Some b -> Slot.Tape_slot.equal b slot
         | None -> false)
      (Design.assignments design)
  | Provision.Link_bandwidth pair ->
    List.filter
      (fun (a : Assignment.t) ->
         let on p = match p with Some p -> Slot.Pair.equal p pair | None -> false in
         on (Assignment.mirror_pair a) || on (Assignment.backup_pair a))
      (Design.assignments design)
  | Provision.Compute_slots site ->
    List.filter
      (fun (a : Assignment.t) ->
         a.primary.Slot.Array_slot.site = site
         || (match a.mirror with
             | Some m -> m.Slot.Array_slot.site = site
             | None -> false))
      (Design.assignments design)
  | Provision.Missing_model _ -> []

let evict_until_feasible design =
  let rec go design evicted =
    if Design.size design = 0 then (design, evicted)
    else
      match Provision.minimum design with
      | Ok _ -> (design, evicted)
      | Error infeasibility ->
        (match users_of_infeasibility design infeasibility with
         | [] -> (design, evicted)  (* unattributable; leave it to the fix-up *)
         | users ->
           let victim =
             List.fold_left
               (fun worst (a : Assignment.t) -> max worst a.app.App.id)
               min_int users
           in
           go (Design.remove design victim) (victim :: evicted))
  in
  let design, evicted = go design [] in
  (design, List.sort Int.compare evicted)

(* Bounded fix-up: re-place the conflicted apps in the {e full}
   environment via the warm-start path (the merged design is the
   incumbent; the conflicted apps are exactly its missing ones). A pass
   that fails retires the highest dirty id to [unplaced] and tries
   again with the rest, so the budget is spent placing what can be
   placed instead of failing everything. *)
let fixup ~params ~max_reconcile_passes ~obs ~rng ?memo env apps likelihood
    design dirty =
  let rec go design dirty unplaced passes extra_evals =
    match dirty with
    | [] -> (design, None, unplaced, passes, extra_evals)
    | _ when passes >= max_reconcile_passes ->
      (design, None, List.sort Int.compare (dirty @ unplaced), passes,
       extra_evals)
    | _ ->
      let keep = Int_set.of_list (ids_of apps) in
      let keep = List.fold_left (fun s id -> Int_set.remove id s) keep unplaced in
      let live_apps =
        List.filter (fun (a : App.t) -> Int_set.mem a.App.id keep) apps
      in
      (match
         Design_solver.resolve ~params ~obs ~rng:(Rng.split rng) ?memo
           ~incumbent:design ~dirty env live_apps likelihood
       with
       | Some (o : Design_solver.outcome) ->
         (o.Design_solver.best.Candidate.design, Some o, unplaced, passes + 1,
          extra_evals + o.Design_solver.evaluations)
       | None ->
         let worst = List.fold_left max min_int dirty in
         let dirty = List.filter (fun id -> id <> worst) dirty in
         go design dirty (worst :: unplaced) (passes + 1) extra_evals)
  in
  go design dirty [] 0 0

let disjoint_sites results =
  let rec go seen = function
    | [] -> true
    | r :: rest ->
      if r.shard.apps = [] then go seen rest
      else
        let sites = Int_set.of_list r.shard.sites in
        Int_set.disjoint seen sites && go (Int_set.union seen sites) rest
  in
  go Int_set.empty results

let shard_cost results =
  Money.sum
    (List.filter_map
       (fun r ->
          Option.map
            (fun (o : Design_solver.outcome) ->
               Candidate.cost o.Design_solver.best)
            r.outcome)
       results)

(* Everything downstream of the parallel shard map: merge, evict,
   fix-up, cost. Shared verbatim by the cold and warm entry points so
   their reconciliation behavior cannot drift apart. *)
let reconcile ~params ~max_reconcile_passes ~obs ~rng env apps likelihood
    results =
  Obs.with_span obs "fleet.reconcile" @@ fun () ->
  let merged, conflicted = merge_shards env results in
  let merged, evicted = evict_until_feasible merged in
  let conflicts = List.length conflicted + List.length evicted in
  Obs.add obs "fleet.conflicts" (List.length conflicted);
  Obs.add obs "fleet.evictions" (List.length evicted);
  let dirty = List.sort_uniq Int.compare (conflicted @ evicted) in
  let memo =
    if params.Design_solver.config_cache_size > 0 then
      Some
        (Config_solver.create_cache
           ~size:params.Design_solver.config_cache_size ())
    else None
  in
  let design, fix_outcome, unplaced, passes, fix_evals =
    fixup ~params ~max_reconcile_passes ~obs ~rng ?memo env apps likelihood
      merged dirty
  in
  Obs.add obs "fleet.reconcile_passes" passes;
  Obs.add obs "fleet.unplaced" (List.length unplaced);
  let shard_evals =
    List.fold_left
      (fun acc r ->
         match r.outcome with
         | Some (o : Design_solver.outcome) when not r.reused ->
           acc + o.Design_solver.evaluations
         | _ -> acc)
      0 results
  in
  let cost =
    match fix_outcome with
    | Some (o : Design_solver.outcome) -> Candidate.cost o.Design_solver.best
    | None ->
      if Design.size design = 0 then Money.zero
      else if conflicts = 0 && unplaced = [] && disjoint_sites results then
        (* Disconnected failure domains: no shared site, link or slot,
           so the objective separates and the shard sum is exact. *)
        shard_cost results
      else
        (match Evaluate.design ~obs design likelihood with
         | Ok eval -> Evaluate.total eval
         | Error _ -> shard_cost results)
  in
  Obs.gauge_set obs "fleet.cost_dollars" (Money.to_dollars cost);
  { design; cost; evaluations = shard_evals + fix_evals;
    shard_results = results; conflicts; reconcile_passes = passes; unplaced;
    apps }

let shard_pool params =
  Exec.auto_width
    (Exec.create ~domains:(max 1 params.Design_solver.domains) ())

let inner_params params = { params with Design_solver.domains = 1 }

let announce_shards obs results =
  List.iter
    (fun r ->
       match r.outcome with
       | Some (o : Design_solver.outcome) ->
         Obs.shard_done obs ~evaluations:o.Design_solver.evaluations
           ~shard:r.shard.index
           (Money.to_dollars (Candidate.cost o.Design_solver.best))
       | None -> ())
    results

let solve ?(params = Design_solver.default_params) ?shards
    ?(max_reconcile_passes = 2) ?(obs = Obs.noop) env apps likelihood =
  Obs.with_span obs "fleet.solve" @@ fun () ->
  let shard_list = partition ?shards env apps in
  Obs.gauge_set obs "fleet.shards" (float_of_int (List.length shard_list));
  Obs.add obs "fleet.apps" (List.length apps);
  let pool = shard_pool params in
  let inner = inner_params params in
  let rng = Rng.of_int params.Design_solver.seed in
  let outcomes =
    Exec.map_rng_obs pool ~label:"fleet.shard" ~obs ~rng
      (fun wobs srng shard ->
         Design_solver.solve ~params:inner ~obs:wobs ~rng:srng shard.env
           shard.apps likelihood)
      (Array.of_list shard_list)
  in
  let results =
    List.mapi (fun i shard -> { shard; outcome = outcomes.(i); reused = false })
      shard_list
  in
  announce_shards obs results;
  reconcile ~params ~max_reconcile_passes ~obs ~rng:(Rng.split rng) env apps
    likelihood results

let resolve ?(params = Design_solver.default_params)
    ?(max_reconcile_passes = 2) ?(obs = Obs.noop) ?dirty ~incumbent env apps
    likelihood =
  Obs.with_span obs "fleet.resolve" @@ fun () ->
  let shards = List.length incumbent.shard_results in
  if shards = 0 then
    solve ~params ~max_reconcile_passes ~obs env apps likelihood
  else begin
    let shard_list = partition ~shards env apps in
    let dirty =
      match dirty with
      | Some dirty -> dirty
      | None -> dirty_between ~previous:incumbent.apps apps
    in
    let dirty_set = Int_set.of_list dirty in
    Obs.gauge_set obs "fleet.shards" (float_of_int shards);
    Obs.add obs "fleet.apps" (List.length apps);
    Obs.add obs "fleet.dirty" (Int_set.cardinal dirty_set);
    let previous = Array.of_list incumbent.shard_results in
    let pool = shard_pool params in
    let inner = inner_params params in
    let rng = Rng.of_int params.Design_solver.seed in
    let outcomes =
      Exec.map_rng_obs pool ~label:"fleet.shard" ~obs ~rng
        (fun wobs srng shard ->
           let prev = previous.(shard.index) in
           let shard_dirty =
             List.filter (fun id -> Int_set.mem id dirty_set)
               (ids_of shard.apps)
           in
           (* Catalog drift is checked before the (deep) structural env
              comparison: a repriced model with an unchanged name is a
              structural difference too, but the explicit revision gives
              an O(1) answer plus a dedicated counter, so operators can
              tell "shards re-solved because pricing moved" apart from
              topology edits. *)
           let catalog_drift =
             shard.env.Env.catalog_revision
             <> prev.shard.env.Env.catalog_revision
           in
           if catalog_drift then Obs.incr obs "fleet.catalog_drift";
           let untouched =
             shard_dirty = []
             && (not catalog_drift)
             && List.equal Int.equal (ids_of shard.apps)
                  (ids_of prev.shard.apps)
             && shard.env = prev.shard.env
           in
           match prev.outcome with
           | Some _ when untouched -> (prev.outcome, true)
           | Some (o : Design_solver.outcome) ->
             ( Design_solver.resolve ~params:inner ~obs:wobs ~rng:srng
                 ~incumbent:o.Design_solver.best.Candidate.design
                 ~dirty:shard_dirty shard.env shard.apps likelihood,
               false )
           | None ->
             ( Design_solver.solve ~params:inner ~obs:wobs ~rng:srng shard.env
                 shard.apps likelihood,
               false ))
        (Array.of_list shard_list)
    in
    let results =
      List.mapi
        (fun i shard ->
           let outcome, reused = outcomes.(i) in
           if reused then Obs.incr obs "fleet.shards_reused";
           { shard; outcome; reused })
        shard_list
    in
    announce_shards obs results;
    reconcile ~params ~max_reconcile_passes ~obs ~rng:(Rng.split rng) env apps
      likelihood results
  end
