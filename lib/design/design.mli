(** A (possibly partial) candidate design: which applications are placed
    where, with which techniques, and which device model populates each
    used slot.

    Nodes of the design solver's search graph are values of this type
    (Section 3.1). A design is {e partial} while some applications are
    still unassigned; the configuration solver only runs on designs, and
    costing runs on full designs. *)

module App = Ds_workload.App
module Slot = Ds_resources.Slot
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Env = Ds_resources.Env

type t = private {
  env : Env.t;
  array_models : Array_model.t Slot.Array_slot.Map.t;
  (** The model installed in each populated bay. All apps on a bay share
      its model. *)
  tape_models : Tape_model.t Slot.Tape_slot.Map.t;
  assignments : Assignment.t list;  (** Sorted by application id. *)
}

val empty : Env.t -> t

val add :
  t ->
  Assignment.t ->
  primary_model:Array_model.t ->
  ?mirror_model:Array_model.t ->
  ?tape_model:Tape_model.t ->
  unit ->
  (t, string) result
(** Adds an application's assignment, installing models into any slot not
    yet populated. Errors (as [Error reason]) when: the app is already
    assigned; a slot is outside the environment; mirror sites are not
    connected to the primary site; or a supplied model conflicts with the
    model already installed in a shared slot (the installed model wins —
    callers pass the same model to agree, or get an error). *)

val remove : t -> App.id -> t
(** Removes the app's assignment (no-op if absent) and uninstalls models
    from slots no longer referenced by anyone. *)

val swap_technique : t -> App.id -> Ds_protection.Technique.t -> t option
(** Rewrites one assignment's technique in place — for searches that
    reconfigure a technique (e.g. swap backup windows) without moving the
    app. Placement and models are untouched, so none of [add]'s slot
    validation can change; the technique/slot shape is still re-checked
    (raises [Invalid_argument] on a mismatch, like {!Assignment.v}).
    [None] if the app is not assigned. *)

val find : t -> App.id -> Assignment.t option
val apps : t -> App.t list
val assignments : t -> Assignment.t list
val size : t -> int

val array_model : t -> Slot.Array_slot.t -> Array_model.t option
val tape_model : t -> Slot.Tape_slot.t -> Tape_model.t option

val used_array_slots : t -> Slot.Array_slot.t list
(** Slots referenced by at least one assignment (primary or mirror). *)

val used_tape_slots : t -> Slot.Tape_slot.t list
val used_pairs : t -> Slot.Pair.t list
(** Site pairs carrying mirror or backup traffic. *)

val used_sites : t -> Ds_resources.Site.id list

val count_used_sites : t -> int
(** [List.length (used_sites t)] without materializing the list — the
    cost model only needs the count. *)

val residents : t -> Slot.Array_slot.t -> Assignment.t list
(** Assignments whose primary or mirror lives on the slot. *)

val primaries_on : t -> Slot.Array_slot.t -> Assignment.t list
val primaries_at_site : t -> Ds_resources.Site.id -> Assignment.t list

val has_primary_on : t -> Slot.Array_slot.t -> bool
(** [primaries_on t slot <> []] without building the list — the scenario
    enumerator probes every used slot on every evaluation. *)

val has_primary_at_site : t -> Ds_resources.Site.id -> bool

val rebase : env:Env.t -> apps:App.t list -> t -> t * App.id list
(** Re-anchor the design onto refreshed inputs: every assignment is
    carried by app id onto an empty design over [env], substituting the
    current [App.t] from [apps] and re-resolving device models by name
    against [env]'s catalogs (so a re-priced catalog entry takes effect
    without moving anything). Returns the carried design plus the ids
    that could {e not} be carried — model name gone, slot outside
    [env], connectivity or technique-shape validation failure — which
    the warm-start path must re-place. Apps absent from [apps] are
    dropped silently (retired); apps in [apps] with no assignment are
    simply not in the result. With unchanged inputs the rebased design
    is byte-identical to the original. *)

val equal : t -> t -> bool
(** Structural equality over everything that determines a design's
    evaluation: environment (by name), installed models (by name per
    slot) and assignments ({!Assignment.equal}, including the full
    backup-chain configuration). Insensitive to construction order —
    semantically identical designs produced by different refit walks
    compare equal. *)

val add_fingerprint : Buffer.t -> t -> unit
(** Appends {!fingerprint}'s encoding to [buf] — lets key builders
    compose fingerprints without intermediate strings. *)

val fingerprint : t -> string
(** Canonical string encoding of the design: [fingerprint a =
    fingerprint b] iff [equal a b]. Used (with the likelihood and
    configuration-option fingerprints) as the configuration-solver
    memo-cache key, so collisions would silently corrupt search results —
    the encoding is a full injective serialization, not a hash. *)

val pp : Format.formatter -> t -> unit
