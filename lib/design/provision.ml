module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Link_model = Ds_resources.Link_model
module Env = Ds_resources.Env
module Slot = Ds_resources.Slot
module Site = Ds_resources.Site

type t = {
  design : Design.t;
  demand : Demand.t;
  array_units : int Slot.Array_slot.Map.t;
  tape_drives : int Slot.Tape_slot.Map.t;
  tape_cartridges : int Slot.Tape_slot.Map.t;
  link_units : int Slot.Pair.Map.t;
  compute : int Site.Id_map.t;
}

type infeasibility =
  | Array_capacity of Slot.Array_slot.t
  | Array_bandwidth of Slot.Array_slot.t
  | Tape_capacity of Slot.Tape_slot.t
  | Tape_bandwidth of Slot.Tape_slot.t
  | Link_bandwidth of Slot.Pair.t
  | Compute_slots of Site.id
  | Missing_model of string

let pp_infeasibility ppf = function
  | Array_capacity s ->
    Format.fprintf ppf "array %a out of capacity" Slot.Array_slot.pp s
  | Array_bandwidth s ->
    Format.fprintf ppf "array %a out of bandwidth" Slot.Array_slot.pp s
  | Tape_capacity s ->
    Format.fprintf ppf "tape %a out of cartridge slots" Slot.Tape_slot.pp s
  | Tape_bandwidth s ->
    Format.fprintf ppf "tape %a out of drive bays" Slot.Tape_slot.pp s
  | Link_bandwidth p ->
    Format.fprintf ppf "link %a out of units" Slot.Pair.pp p
  | Compute_slots s -> Format.fprintf ppf "site s%d out of compute slots" s
  | Missing_model what -> Format.fprintf ppf "missing model for %s" what

(* Runs once per candidate evaluation. Plain loops with an exceptional
   early exit keep the per-call allocation to the result maps themselves
   — no [Ok]-wrapped intermediate accumulators. *)
exception Infeasible of infeasibility

let minimum design =
  let env = design.Design.env in
  let demand = Demand.of_design design in
  try
    let array_units =
      List.fold_left
        (fun acc slot ->
           match Design.array_model design slot with
           | None ->
             raise_notrace
               (Infeasible
                  (Missing_model (Format.asprintf "%a" Slot.Array_slot.pp slot)))
           | Some model ->
             let use = Demand.array_use demand slot in
             if Rate.(model.Array_model.max_bw < use.Demand.bandwidth) then
               raise_notrace (Infeasible (Array_bandwidth slot));
             let n_cap = Array_model.units_for_capacity model use.Demand.capacity in
             let n_bw = Array_model.units_for_bw model use.Demand.bandwidth in
             let units = max n_cap n_bw in
             if units > model.Array_model.max_units then
               raise_notrace (Infeasible (Array_capacity slot));
             Slot.Array_slot.Map.add slot units acc)
        Slot.Array_slot.Map.empty
        (Design.used_array_slots design)
    in
    let tape_drives, tape_cartridges =
      List.fold_left
        (fun (drives_map, carts_map) slot ->
           match Design.tape_model design slot with
           | None ->
             raise_notrace
               (Infeasible
                  (Missing_model (Format.asprintf "%a" Slot.Tape_slot.pp slot)))
           | Some model ->
             let use = Demand.tape_use demand slot in
             let drives = Tape_model.drives_for_bw model use.Demand.tape_bandwidth in
             if drives > model.Tape_model.max_drives then
               raise_notrace (Infeasible (Tape_bandwidth slot));
             let carts =
               Tape_model.cartridges_for_capacity model use.Demand.tape_capacity
             in
             if carts > model.Tape_model.max_cartridges then
               raise_notrace (Infeasible (Tape_capacity slot));
             (Slot.Tape_slot.Map.add slot (max 1 drives) drives_map,
              Slot.Tape_slot.Map.add slot carts carts_map))
        (Slot.Tape_slot.Map.empty, Slot.Tape_slot.Map.empty)
        (Design.used_tape_slots design)
    in
    let link_units =
      List.fold_left
        (fun acc pair ->
           let model = env.Env.link_model in
           let rate = Demand.link_use demand pair in
           let units = Link_model.units_for_bw model rate in
           let units = max 1 units in
           if units > env.Env.max_link_units then
             raise_notrace (Infeasible (Link_bandwidth pair));
           Slot.Pair.Map.add pair units acc)
        Slot.Pair.Map.empty
        (Design.used_pairs design)
    in
    let compute =
      List.fold_left
        (fun acc site ->
           let n = Demand.compute_use demand site in
           if n > env.Env.compute_slots_per_site then
             raise_notrace (Infeasible (Compute_slots site));
           if n = 0 then acc else Site.Id_map.add site n acc)
        Site.Id_map.empty
        (Env.site_ids env)
    in
    Ok { design; demand; array_units; tape_drives; tape_cartridges;
         link_units; compute }
  with Infeasible why -> Error why

let array_bw t slot =
  match Design.array_model t.design slot,
        Slot.Array_slot.Map.find_opt slot t.array_units with
  | Some model, Some units -> Array_model.bw_of_units model units
  | _ -> Rate.zero

let tape_bw t slot =
  match Design.tape_model t.design slot,
        Slot.Tape_slot.Map.find_opt slot t.tape_drives with
  | Some model, Some drives -> Tape_model.bw_of_drives model drives
  | _ -> Rate.zero

let link_bw t pair =
  match Slot.Pair.Map.find_opt pair t.link_units with
  | Some units -> Link_model.bw_of_units t.design.Design.env.Env.link_model units
  | None -> Rate.zero

type growth =
  | Grow_array of Slot.Array_slot.t
  | Grow_tape_drive of Slot.Tape_slot.t
  | Grow_link of Slot.Pair.t

let pp_growth ppf = function
  | Grow_array s -> Format.fprintf ppf "+1 disk @@ %a" Slot.Array_slot.pp s
  | Grow_tape_drive s -> Format.fprintf ppf "+1 drive @@ %a" Slot.Tape_slot.pp s
  | Grow_link p -> Format.fprintf ppf "+1 link @@ %a" Slot.Pair.pp p

let grow t = function
  | Grow_array slot ->
    (match Design.array_model t.design slot,
           Slot.Array_slot.Map.find_opt slot t.array_units with
     | Some model, Some units ->
       (* Adding disks beyond the controller ceiling adds no bandwidth. *)
       if units >= model.Array_model.max_units
       || Rate.equal (Array_model.bw_of_units model units) model.Array_model.max_bw
       then None
       else
         Some { t with array_units = Slot.Array_slot.Map.add slot (units + 1) t.array_units }
     | _ -> None)
  | Grow_tape_drive slot ->
    (match Design.tape_model t.design slot,
           Slot.Tape_slot.Map.find_opt slot t.tape_drives with
     | Some model, Some drives ->
       if drives >= model.Tape_model.max_drives then None
       else
         Some { t with tape_drives = Slot.Tape_slot.Map.add slot (drives + 1) t.tape_drives }
     | _ -> None)
  | Grow_link pair ->
    (match Slot.Pair.Map.find_opt pair t.link_units with
     | Some units ->
       if units >= t.design.Design.env.Env.max_link_units then None
       else Some { t with link_units = Slot.Pair.Map.add pair (units + 1) t.link_units }
     | None -> None)

let growth_moves t =
  let arrays =
    Slot.Array_slot.Map.bindings t.array_units
    |> List.filter_map (fun (slot, _) ->
        match grow t (Grow_array slot) with
        | Some _ -> Some (Grow_array slot)
        | None -> None)
  in
  let drives =
    Slot.Tape_slot.Map.bindings t.tape_drives
    |> List.filter_map (fun (slot, _) ->
        match grow t (Grow_tape_drive slot) with
        | Some _ -> Some (Grow_tape_drive slot)
        | None -> None)
  in
  let links =
    Slot.Pair.Map.bindings t.link_units
    |> List.filter_map (fun (pair, _) ->
        match grow t (Grow_link pair) with
        | Some _ -> Some (Grow_link pair)
        | None -> None)
  in
  arrays @ drives @ links

let pp ppf t =
  Slot.Array_slot.Map.iter (fun slot units ->
      Format.fprintf ppf "  %a: %d disks@," Slot.Array_slot.pp slot units)
    t.array_units;
  Slot.Tape_slot.Map.iter (fun slot drives ->
      let carts =
        Option.value ~default:0 (Slot.Tape_slot.Map.find_opt slot t.tape_cartridges)
      in
      Format.fprintf ppf "  %a: %d drives, %d cartridges@," Slot.Tape_slot.pp slot
        drives carts)
    t.tape_drives;
  Slot.Pair.Map.iter (fun pair units ->
      Format.fprintf ppf "  %a: %d links@," Slot.Pair.pp pair units)
    t.link_units;
  Site.Id_map.iter (fun site n ->
      Format.fprintf ppf "  s%d: %d compute@," site n)
    t.compute
