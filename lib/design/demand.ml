module Size = Ds_units.Size
module Rate = Ds_units.Rate
module App = Ds_workload.App
module Mirror = Ds_protection.Mirror
module Backup = Ds_protection.Backup
module Technique = Ds_protection.Technique
module Slot = Ds_resources.Slot
module Site = Ds_resources.Site

type array_use = { capacity : Size.t; bandwidth : Rate.t }
type tape_use = { tape_capacity : Size.t; tape_bandwidth : Rate.t }

type t = {
  arrays : array_use Slot.Array_slot.Map.t;
  tapes : tape_use Slot.Tape_slot.Map.t;
  links : Rate.t Slot.Pair.Map.t;
  compute : int Site.Id_map.t;
}

let zero_array = { capacity = Size.zero; bandwidth = Rate.zero }
let zero_tape = { tape_capacity = Size.zero; tape_bandwidth = Rate.zero }

let add_array m slot use =
  let prev = Option.value ~default:zero_array (Slot.Array_slot.Map.find_opt slot m) in
  Slot.Array_slot.Map.add slot
    { capacity = Size.add prev.capacity use.capacity;
      bandwidth = Rate.add prev.bandwidth use.bandwidth }
    m

let add_tape m slot use =
  let prev = Option.value ~default:zero_tape (Slot.Tape_slot.Map.find_opt slot m) in
  Slot.Tape_slot.Map.add slot
    { tape_capacity = Size.add prev.tape_capacity use.tape_capacity;
      tape_bandwidth = Rate.add prev.tape_bandwidth use.tape_bandwidth }
    m

let add_link m pair rate =
  let prev = Option.value ~default:Rate.zero (Slot.Pair.Map.find_opt pair m) in
  Slot.Pair.Map.add pair (Rate.add prev rate) m

let add_compute m site n =
  let prev = Option.value ~default:0 (Site.Id_map.find_opt site m) in
  Site.Id_map.add site (prev + n) m

let primary_contribution (asg : Assignment.t) =
  let app = asg.app in
  let snapshot_space =
    match asg.technique.Technique.backup with
    | Some chain -> Backup.snapshot_space chain app
    | None -> Size.zero
  in
  { capacity = Size.add app.App.data_size snapshot_space;
    bandwidth = app.App.avg_access_rate }

let mirror_contribution (asg : Assignment.t) =
  match asg.technique.Technique.mirror with
  | None -> zero_array
  | Some m ->
    { capacity = asg.app.App.data_size;
      bandwidth = Mirror.network_demand m asg.app }

let tape_contribution (asg : Assignment.t) =
  match asg.technique.Technique.backup with
  | None -> zero_tape
  | Some chain ->
    { tape_capacity = Backup.tape_space chain asg.app;
      tape_bandwidth = Backup.tape_bandwidth_demand chain asg.app }

let backup_link_rate (asg : Assignment.t) =
  match asg.technique.Technique.backup with
  | None -> Rate.zero
  | Some chain -> Backup.tape_bandwidth_demand chain asg.app

(* Runs once per candidate provisioning — the maps are functional (the
   result is shared and long-lived) but the running components live in
   local refs, not per-step record copies. *)
let of_assignments _design assignments =
  let arrays = ref Slot.Array_slot.Map.empty in
  let tapes = ref Slot.Tape_slot.Map.empty in
  let links = ref Slot.Pair.Map.empty in
  let compute = ref Site.Id_map.empty in
  List.iter
    (fun (asg : Assignment.t) ->
       arrays := add_array !arrays asg.primary (primary_contribution asg);
       (match asg.mirror with
        | None -> ()
        | Some slot ->
          arrays := add_array !arrays slot (mirror_contribution asg);
          (match Assignment.mirror_pair asg with
           | Some pair ->
             let rate =
               match asg.technique.Technique.mirror with
               | Some m -> Mirror.network_demand m asg.app
               | None -> Rate.zero
             in
             links := add_link !links pair rate
           | None -> ()));
       (match asg.backup with
        | None -> ()
        | Some slot ->
          tapes := add_tape !tapes slot (tape_contribution asg);
          (match Assignment.backup_pair asg with
           | Some pair -> links := add_link !links pair (backup_link_rate asg)
           | None -> ()));
       compute := add_compute !compute asg.primary.Slot.Array_slot.site 1;
       if Technique.needs_standby_compute asg.technique then
         match asg.mirror with
         | Some m ->
           compute := add_compute !compute m.Slot.Array_slot.site 1
         | None -> ())
    assignments;
  { arrays = !arrays; tapes = !tapes; links = !links; compute = !compute }

(* Per-assignment bandwidth shares, for computing recovery-time residual
   load as [total demand - affected shares] instead of re-folding the
   unaffected assignments into fresh maps on every scenario. Each share
   mirrors exactly one bandwidth term of {!fold_assignment}. *)

let mirror_rate (asg : Assignment.t) =
  match asg.technique.Technique.mirror with
  | Some m -> Mirror.network_demand m asg.app
  | None -> Rate.zero

let array_bw_share (asg : Assignment.t) slot =
  let primary =
    if Slot.Array_slot.equal asg.primary slot then asg.app.App.avg_access_rate
    else Rate.zero
  in
  match asg.mirror with
  | Some m when Slot.Array_slot.equal m slot -> Rate.add primary (mirror_rate asg)
  | _ -> primary

let tape_bw_share (asg : Assignment.t) slot =
  match asg.backup with
  | Some b when Slot.Tape_slot.equal b slot ->
    (match asg.technique.Technique.backup with
     | Some chain -> Backup.tape_bandwidth_demand chain asg.app
     | None -> Rate.zero)
  | _ -> Rate.zero

let link_share (asg : Assignment.t) pair =
  let mirror =
    match Assignment.mirror_pair asg with
    | Some p when Slot.Pair.equal p pair -> mirror_rate asg
    | _ -> Rate.zero
  in
  match Assignment.backup_pair asg with
  | Some p when Slot.Pair.equal p pair -> Rate.add mirror (backup_link_rate asg)
  | _ -> mirror

let of_design design = of_assignments design (Design.assignments design)

let array_use t slot =
  Option.value ~default:zero_array (Slot.Array_slot.Map.find_opt slot t.arrays)

let tape_use t slot =
  Option.value ~default:zero_tape (Slot.Tape_slot.Map.find_opt slot t.tapes)

let link_use t pair =
  Option.value ~default:Rate.zero (Slot.Pair.Map.find_opt pair t.links)

let compute_use t site = Option.value ~default:0 (Site.Id_map.find_opt site t.compute)

let pp ppf t =
  Slot.Array_slot.Map.iter (fun slot use ->
      Format.fprintf ppf "  %a: %a cap, %a bw@," Slot.Array_slot.pp slot
        Size.pp use.capacity Rate.pp use.bandwidth)
    t.arrays;
  Slot.Tape_slot.Map.iter (fun slot use ->
      Format.fprintf ppf "  %a: %a cap, %a bw@," Slot.Tape_slot.pp slot
        Size.pp use.tape_capacity Rate.pp use.tape_bandwidth)
    t.tapes;
  Slot.Pair.Map.iter (fun pair rate ->
      Format.fprintf ppf "  %a: %a@," Slot.Pair.pp pair Rate.pp rate)
    t.links;
  Site.Id_map.iter (fun site n -> Format.fprintf ppf "  s%d: %d compute@," site n)
    t.compute
