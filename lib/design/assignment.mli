(** One application's protection assignment: the technique protecting it
    and the slots its copies live on.

    The primary copy lives on a disk array bay; a mirror (when the
    technique has one) lives on a bay at a different, connected site; the
    backup chain (when present) uses a tape library slot — normally at the
    primary site, but remote backup is allowed and simply routes backup
    and restore traffic over the inter-site link. *)

module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Slot = Ds_resources.Slot

type t = {
  app : App.t;
  technique : Technique.t;
  primary : Slot.Array_slot.t;
  mirror : Slot.Array_slot.t option;
  backup : Slot.Tape_slot.t option;
}

val v :
  app:App.t ->
  technique:Technique.t ->
  primary:Slot.Array_slot.t ->
  ?mirror:Slot.Array_slot.t ->
  ?backup:Slot.Tape_slot.t ->
  unit ->
  t
(** Checks structural consistency: a mirror slot is given iff the
    technique mirrors, at a site different from the primary's; a backup
    slot is given iff the technique has a backup chain.
    @raise Invalid_argument otherwise. *)

val mirror_pair : t -> Slot.Pair.t option
(** The site pair carrying mirror traffic, when the mirror is remote. *)

val backup_pair : t -> Slot.Pair.t option
(** The site pair carrying backup traffic, when the tape library is not at
    the primary site. *)

val sites_used : t -> Ds_resources.Site.id list
(** Deduplicated sites touched by this assignment. *)

val equal : t -> t -> bool
(** Structural equality: same app (by id), technique configuration
    (id, mirror, recovery mode {e and} backup chain) and slots. *)

val add_fingerprint : Buffer.t -> t -> unit
val fingerprint : t -> string
(** Canonical encoding; equal fingerprints iff {!equal} holds. *)

val with_technique : t -> Technique.t -> t
(** Swap technique; slots must already be consistent with the new
    technique's needs. @raise Invalid_argument if not. *)

val pp : Format.formatter -> t -> unit
