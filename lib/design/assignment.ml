module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Slot = Ds_resources.Slot

type t = {
  app : App.t;
  technique : Technique.t;
  primary : Slot.Array_slot.t;
  mirror : Slot.Array_slot.t option;
  backup : Slot.Tape_slot.t option;
}

let check ~technique ~primary ~mirror ~backup =
  (match Technique.has_mirror technique, mirror with
   | true, None -> invalid_arg "Assignment.v: mirroring technique needs a mirror slot"
   | false, Some _ -> invalid_arg "Assignment.v: mirror slot without a mirroring technique"
   | true, Some (m : Slot.Array_slot.t) ->
     if m.site = primary.Slot.Array_slot.site then
       invalid_arg "Assignment.v: mirror must be at a different site"
   | false, None -> ());
  match Technique.has_backup technique, backup with
  | true, None -> invalid_arg "Assignment.v: backup technique needs a tape slot"
  | false, Some _ -> invalid_arg "Assignment.v: tape slot without a backup technique"
  | _ -> ()

let v ~app ~technique ~primary ?mirror ?backup () =
  check ~technique ~primary ~mirror ~backup;
  { app; technique; primary; mirror; backup }

let mirror_pair t =
  Option.map
    (fun (m : Slot.Array_slot.t) ->
       Slot.Pair.v t.primary.Slot.Array_slot.site m.site)
    t.mirror

let backup_pair t =
  match t.backup with
  | Some (b : Slot.Tape_slot.t) when b.site <> t.primary.Slot.Array_slot.site ->
    Some (Slot.Pair.v t.primary.Slot.Array_slot.site b.site)
  | _ -> None

let sites_used t =
  let sites =
    t.primary.Slot.Array_slot.site
    :: (match t.mirror with Some m -> [ m.Slot.Array_slot.site ] | None -> [])
    @ (match t.backup with Some b -> [ b.Slot.Tape_slot.site ] | None -> [])
  in
  List.sort_uniq Int.compare sites

let equal a b =
  App.equal a.app b.app
  && Technique.equal_config a.technique b.technique
  && Slot.Array_slot.equal a.primary b.primary
  && Option.equal Slot.Array_slot.equal a.mirror b.mirror
  && Option.equal Slot.Tape_slot.equal a.backup b.backup

let add_fingerprint buf t =
  let add_int i = Buffer.add_string buf (string_of_int i) in
  Buffer.add_char buf 'a';
  add_int t.app.App.id;
  Buffer.add_string buf "<-";
  Technique.add_fingerprint buf t.technique;
  Buffer.add_char buf '@';
  add_int t.primary.Slot.Array_slot.site;
  Buffer.add_char buf '.';
  add_int t.primary.Slot.Array_slot.bay;
  (match t.mirror with
   | Some (m : Slot.Array_slot.t) ->
     Buffer.add_string buf "|m";
     add_int m.site;
     Buffer.add_char buf '.';
     add_int m.bay
   | None -> ());
  match t.backup with
  | Some (b : Slot.Tape_slot.t) ->
    Buffer.add_string buf "|t";
    add_int b.site
  | None -> ()

let fingerprint t =
  let buf = Buffer.create 128 in
  add_fingerprint buf t;
  Buffer.contents buf

let with_technique t technique =
  check ~technique ~primary:t.primary ~mirror:t.mirror ~backup:t.backup;
  { t with technique }

let pp ppf t =
  Format.fprintf ppf "%a <- %a @@ %a%a%a"
    App.pp t.app Technique.pp t.technique Slot.Array_slot.pp t.primary
    (fun ppf -> function
       | Some m -> Format.fprintf ppf " mirror:%a" Slot.Array_slot.pp m
       | None -> ())
    t.mirror
    (fun ppf -> function
       | Some b -> Format.fprintf ppf " tape:%a" Slot.Tape_slot.pp b
       | None -> ())
    t.backup
