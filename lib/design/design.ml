module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Slot = Ds_resources.Slot
module Array_model = Ds_resources.Array_model
module Tape_model = Ds_resources.Tape_model
module Env = Ds_resources.Env

type t = {
  env : Env.t;
  array_models : Array_model.t Slot.Array_slot.Map.t;
  tape_models : Tape_model.t Slot.Tape_slot.Map.t;
  assignments : Assignment.t list;
}

let empty env =
  { env;
    array_models = Slot.Array_slot.Map.empty;
    tape_models = Slot.Tape_slot.Map.empty;
    assignments = [] }

let find t app_id =
  List.find_opt (fun (a : Assignment.t) -> a.app.App.id = app_id) t.assignments

let in_env t (slot : Slot.Array_slot.t) =
  slot.bay >= 0 && slot.bay < t.env.Env.bays_per_site
  && List.mem slot.site (Env.site_ids t.env)

let tape_in_env t (slot : Slot.Tape_slot.t) =
  t.env.Env.tape_slots_per_site > 0 && List.mem slot.site (Env.site_ids t.env)

let install_array_model models slot model =
  match Slot.Array_slot.Map.find_opt slot models with
  | None -> Ok (Slot.Array_slot.Map.add slot model models)
  | Some installed ->
    if Array_model.equal installed model then Ok models
    else Error (Printf.sprintf "slot %s already runs model %s"
                  (Format.asprintf "%a" Slot.Array_slot.pp slot)
                  installed.Array_model.name)

let install_tape_model models slot model =
  match Slot.Tape_slot.Map.find_opt slot models with
  | None -> Ok (Slot.Tape_slot.Map.add slot model models)
  | Some installed ->
    if Tape_model.equal installed model then Ok models
    else Error (Printf.sprintf "tape slot %s already runs model %s"
                  (Format.asprintf "%a" Slot.Tape_slot.pp slot)
                  installed.Tape_model.name)

let ( let* ) = Result.bind

let add t (asg : Assignment.t) ~primary_model ?mirror_model ?tape_model () =
  let* () =
    if Option.is_some (find t asg.app.App.id) then
      Error (Printf.sprintf "app %d already assigned" asg.app.App.id)
    else Ok ()
  in
  let* () =
    if in_env t asg.primary then Ok ()
    else Error "primary slot outside the environment"
  in
  let* () =
    match asg.mirror with
    | None -> Ok ()
    | Some m ->
      if not (in_env t m) then Error "mirror slot outside the environment"
      else if not (Env.connected t.env asg.primary.Slot.Array_slot.site
                     m.Slot.Array_slot.site)
      then Error "mirror site not connected to the primary site"
      else begin
        (* Synchronous mirroring is distance-bounded when the environment
           caps it (writes pay a round trip per update). *)
        let is_sync =
          match asg.technique.Ds_protection.Technique.mirror with
          | Some { Ds_protection.Mirror.sync = Ds_protection.Mirror.Synchronous; _ } ->
            true
          | _ -> false
        in
        if is_sync
        && not (Env.sync_mirror_allowed t.env asg.primary.Slot.Array_slot.site
                  m.Slot.Array_slot.site)
        then Error "sync mirror exceeds the environment's distance cap"
        else Ok ()
      end
  in
  let* () =
    match asg.backup with
    | None -> Ok ()
    | Some b ->
      if not (tape_in_env t b) then Error "tape slot outside the environment"
      else if b.Slot.Tape_slot.site <> asg.primary.Slot.Array_slot.site
              && not (Env.connected t.env asg.primary.Slot.Array_slot.site
                        b.Slot.Tape_slot.site)
      then Error "remote tape site not connected to the primary site"
      else Ok ()
  in
  let* array_models = install_array_model t.array_models asg.primary primary_model in
  let* array_models =
    match asg.mirror, mirror_model with
    | None, _ -> Ok array_models
    | Some m, Some model -> install_array_model array_models m model
    | Some m, None ->
      if Slot.Array_slot.Map.mem m array_models then Ok array_models
      else Error "mirror slot needs a model"
  in
  let* tape_models =
    match asg.backup, tape_model with
    | None, _ -> Ok t.tape_models
    | Some b, Some model -> install_tape_model t.tape_models b model
    | Some b, None ->
      if Slot.Tape_slot.Map.mem b t.tape_models then Ok t.tape_models
      else Error "tape slot needs a model"
  in
  let assignments =
    List.sort
      (fun (a : Assignment.t) (b : Assignment.t) -> App.compare a.app b.app)
      (asg :: t.assignments)
  in
  Ok { t with array_models; tape_models; assignments }

let array_slot_referenced assignments slot =
  List.exists (fun (a : Assignment.t) ->
      Slot.Array_slot.equal a.primary slot
      || (match a.mirror with
          | Some m -> Slot.Array_slot.equal m slot
          | None -> false))
    assignments

let tape_slot_referenced assignments slot =
  List.exists (fun (a : Assignment.t) ->
      match a.backup with
      | Some b -> Slot.Tape_slot.equal b slot
      | None -> false)
    assignments

let remove t app_id =
  let assignments =
    List.filter (fun (a : Assignment.t) -> a.app.App.id <> app_id) t.assignments
  in
  let array_models =
    Slot.Array_slot.Map.filter
      (fun slot _ -> array_slot_referenced assignments slot)
      t.array_models
  in
  let tape_models =
    Slot.Tape_slot.Map.filter
      (fun slot _ -> tape_slot_referenced assignments slot)
      t.tape_models
  in
  { t with assignments; array_models; tape_models }

(* Fast path for the window search, which swaps backup chains inside a
   technique without moving the app: slots and installed models are
   untouched, so all of [add]'s placement validation still holds and only
   the one assignment needs rewriting. [Assignment.with_technique]
   re-checks the technique/slot shape; the assignment order (by app id)
   is unchanged, so no re-sort is needed. *)
let swap_technique t app_id technique =
  let rec go = function
    | [] -> None
    | (a : Assignment.t) :: rest when a.app.App.id = app_id ->
      Some (Assignment.with_technique a technique :: rest)
    | a :: rest -> Option.map (fun r -> a :: r) (go rest)
  in
  match go t.assignments with
  | Some assignments -> Some { t with assignments }
  | None -> None

let apps t = List.map (fun (a : Assignment.t) -> a.app) t.assignments
let assignments t = t.assignments
let size t = List.length t.assignments

let array_model t slot = Slot.Array_slot.Map.find_opt slot t.array_models
let tape_model t slot = Slot.Tape_slot.Map.find_opt slot t.tape_models

(* These run once per candidate evaluation (via [Provision.minimum] and
   the cost model), so they build their result list in a single fold
   instead of bindings/map/filter chains. [Map.fold] visits keys in
   ascending order; consing and reversing preserves it. *)
let used_array_slots t =
  List.rev
    (Slot.Array_slot.Map.fold
       (fun slot _ acc ->
          if array_slot_referenced t.assignments slot then slot :: acc else acc)
       t.array_models [])

let used_tape_slots t =
  List.rev
    (Slot.Tape_slot.Map.fold
       (fun slot _ acc ->
          if tape_slot_referenced t.assignments slot then slot :: acc else acc)
       t.tape_models [])

let used_pairs t =
  List.concat_map (fun (a : Assignment.t) ->
      List.filter_map Fun.id [ Assignment.mirror_pair a; Assignment.backup_pair a ])
    t.assignments
  |> List.sort_uniq Slot.Pair.compare

let used_sites t =
  List.concat_map Assignment.sites_used t.assignments
  |> List.sort_uniq Int.compare

(* Distinct-site count without materializing the list: site ids are
   catalog indexes, far below the word size, so a bitmask suffices.
   Any out-of-range id falls back to the list-building path. *)
let count_used_sites t =
  let exception Wide in
  let bit acc site =
    if site < 0 || site > 61 then raise Wide else acc lor (1 lsl site)
  in
  match
    List.fold_left
      (fun acc (a : Assignment.t) ->
         let acc = bit acc a.primary.Slot.Array_slot.site in
         let acc =
           match a.mirror with
           | Some (m : Slot.Array_slot.t) -> bit acc m.site
           | None -> acc
         in
         match a.backup with
         | Some (b : Slot.Tape_slot.t) -> bit acc b.site
         | None -> acc)
      0 t.assignments
  with
  | mask ->
    let rec pop acc m =
      if m = 0 then acc else pop (acc + (m land 1)) (m lsr 1)
    in
    pop 0 mask
  | exception Wide -> List.length (used_sites t)

let residents t slot =
  List.filter (fun (a : Assignment.t) ->
      Slot.Array_slot.equal a.primary slot
      || (match a.mirror with
          | Some m -> Slot.Array_slot.equal m slot
          | None -> false))
    t.assignments

let primaries_on t slot =
  List.filter (fun (a : Assignment.t) -> Slot.Array_slot.equal a.primary slot)
    t.assignments

let primaries_at_site t site =
  List.filter (fun (a : Assignment.t) -> a.primary.Slot.Array_slot.site = site)
    t.assignments

(* Allocation-free emptiness probes for the scenario enumerator, which
   only needs to know whether a slot or site hosts any primary. *)
let has_primary_on t slot =
  List.exists (fun (a : Assignment.t) -> Slot.Array_slot.equal a.primary slot)
    t.assignments

let has_primary_at_site t site =
  List.exists (fun (a : Assignment.t) -> a.primary.Slot.Array_slot.site = site)
    t.assignments

(* Re-anchor a design onto refreshed inputs (warm-start, fleet merge).
   Assignments are carried by app id in sorted order onto an empty
   design over [env]; device models are matched by name against [env]'s
   catalogs so a re-priced catalog entry is picked up without touching
   the placement. Apps that vanished from [apps] are dropped silently
   (there is nothing to re-place); an assignment that can no longer be
   carried — model name gone from the catalog, slot outside [env],
   connectivity or technique-shape validation failure — is dropped and
   its id reported as forced-dirty for the warm-start path to re-place.
   With unchanged inputs the rebased design is byte-identical. *)
let rebase ~env ~apps t =
  let fresh_app id =
    List.find_opt (fun (a : App.t) -> a.App.id = id) apps
  in
  let array_model_named name =
    List.find_opt (fun (m : Array_model.t) -> String.equal m.Array_model.name name)
      env.Env.array_models
  in
  let tape_model_named name =
    List.find_opt (fun (m : Tape_model.t) -> String.equal m.Tape_model.name name)
      env.Env.tape_models
  in
  let carry (design, forced) (asg : Assignment.t) =
    let id = asg.app.App.id in
    match fresh_app id with
    | None -> (design, forced)
    | Some app ->
      let slot_model slot =
        Option.bind
          (Slot.Array_slot.Map.find_opt slot t.array_models)
          (fun (m : Array_model.t) -> array_model_named m.Array_model.name)
      in
      let carried =
        match slot_model asg.primary with
        | None -> None
        | Some primary_model ->
          let mirror_model = Option.bind asg.mirror slot_model in
          let tape_model =
            Option.bind asg.backup (fun b ->
                Option.bind
                  (Slot.Tape_slot.Map.find_opt b t.tape_models)
                  (fun (m : Tape_model.t) -> tape_model_named m.Tape_model.name))
          in
          if (asg.mirror <> None && mirror_model = None)
          || (asg.backup <> None && tape_model = None)
          then None
          else
            match
              Assignment.v ~app ~technique:asg.technique ~primary:asg.primary
                ?mirror:asg.mirror ?backup:asg.backup ()
            with
            | exception Invalid_argument _ -> None
            | asg ->
              (match add design asg ~primary_model ?mirror_model ?tape_model () with
               | Ok design -> Some design
               | Error _ -> None)
      in
      (match carried with
       | Some design -> (design, forced)
       | None -> (design, id :: forced))
  in
  let design, forced = List.fold_left carry (empty env, []) t.assignments in
  (design, List.rev forced)

(* Structural equality over everything the configuration solver reads:
   the environment (by name; environments are fixed within a run), the
   installed models, and the assignments with their full technique
   configuration. Assignments are kept sorted by app id, so plain list
   equality is order-insensitive with respect to insertion history. *)
let equal a b =
  String.equal a.env.Env.name b.env.Env.name
  && Slot.Array_slot.Map.equal Array_model.equal a.array_models b.array_models
  && Slot.Tape_slot.Map.equal Tape_model.equal a.tape_models b.tape_models
  && List.equal Assignment.equal a.assignments b.assignments

let add_fingerprint buf t =
  Buffer.add_string buf "d{";
  Buffer.add_string buf t.env.Env.name;
  Buffer.add_string buf "|";
  Slot.Array_slot.Map.iter
    (fun (slot : Slot.Array_slot.t) (model : Array_model.t) ->
       Buffer.add_string buf (string_of_int slot.site);
       Buffer.add_char buf '.';
       Buffer.add_string buf (string_of_int slot.bay);
       Buffer.add_char buf '=';
       Buffer.add_string buf model.Array_model.name;
       Buffer.add_char buf ';')
    t.array_models;
  Buffer.add_string buf "|";
  Slot.Tape_slot.Map.iter
    (fun (slot : Slot.Tape_slot.t) (model : Tape_model.t) ->
       Buffer.add_string buf (string_of_int slot.site);
       Buffer.add_char buf '=';
       Buffer.add_string buf model.Tape_model.name;
       Buffer.add_char buf ';')
    t.tape_models;
  Buffer.add_string buf "|";
  List.iter
    (fun asg ->
       Assignment.add_fingerprint buf asg;
       Buffer.add_char buf ';')
    t.assignments;
  Buffer.add_char buf '}'

let fingerprint t =
  let buf = Buffer.create 256 in
  add_fingerprint buf t;
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "design(%s, %d apps)@," t.env.Env.name (size t);
  List.iter (fun a -> Format.fprintf ppf "  %a@," Assignment.pp a) t.assignments
