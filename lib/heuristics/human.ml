module Money = Ds_units.Money
module App = Ds_workload.App
module Category = Ds_workload.Category
module Technique = Ds_protection.Technique
module Technique_catalog = Ds_protection.Technique_catalog
module Array_model = Ds_resources.Array_model
module Tier = Ds_resources.Tier
module Env = Ds_resources.Env
module Slot = Ds_resources.Slot
module Design = Ds_design.Design
module Assignment = Ds_design.Assignment
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Config_solver = Ds_solver.Config_solver
module Obs = Ds_obs.Obs

let class_tier = function
  | Category.Gold -> Tier.High
  | Category.Silver -> Tier.Med
  | Category.Bronze -> Tier.Low

let class_array_model env category =
  let wanted = class_tier category in
  let models = env.Env.array_models in
  let exact =
    List.find_opt (fun (m : Array_model.t) -> Tier.equal m.tier wanted) models
  in
  match exact with
  | Some m -> m
  | None ->
    (* Nearest tier: prefer better (lower rank), else the best available. *)
    (match
       List.sort
         (fun (a : Array_model.t) (b : Array_model.t) ->
            Int.compare
              (abs (Tier.rank a.tier - Tier.rank wanted))
              (abs (Tier.rank b.tier - Tier.rank wanted)))
         models
     with
     | m :: _ -> m
     | [] -> invalid_arg "Human.class_array_model: no array models")

(* Techniques of exactly the app's class. Architects treat the bronze
   baseline (tape backup) as part of every class's standard protection —
   mirrors do not protect against fat-fingered deletions — so the
   uniform choice runs over the class's backup-bearing variants (gold:
   sync/async mirror with failover and backup; silver: the reconstruct
   counterparts; bronze: tape backup). See DESIGN.md. *)
let class_techniques category =
  let all = Technique_catalog.in_class category in
  match List.filter Technique.has_backup all with
  | [] -> all
  | with_backup -> with_backup

(* Randomized priority order: repeatedly draw without replacement with
   probability proportional to penalty rates. *)
let priority_order rng apps =
  let rec draw acc = function
    | [] -> List.rev acc
    | remaining ->
      let weights =
        List.map (fun app -> (app, Money.to_dollars (App.penalty_rate_sum app)))
          remaining
      in
      let chosen = Sample.weighted rng weights in
      draw (chosen :: acc)
        (List.filter (fun a -> a.App.id <> chosen.App.id) remaining)
  in
  draw [] apps

(* Find a bay at the site for the wanted model. Preference order: a bay
   already running that model, an empty bay, a bay running a better-tier
   model (consolidating up is acceptable to an architect), and finally any
   bay at all — class purity yields to feasibility, as it would in
   practice when a site offers fewer bays than there are classes. The
   returned model is whatever the chosen bay runs. *)
let bay_for design site (model : Array_model.t) =
  let env = design.Design.env in
  let bays =
    List.init env.Env.bays_per_site (fun bay ->
        let slot = Slot.Array_slot.v ~site ~bay in
        (slot, Design.array_model design slot))
  in
  let exact =
    List.find_opt
      (fun (_, installed) ->
         match installed with
         | Some i -> Array_model.equal i model
         | None -> false)
      bays
  in
  let empty = List.find_opt (fun (_, installed) -> installed = None) bays in
  let better =
    List.find_opt
      (fun (_, installed) ->
         match installed with
         | Some (i : Array_model.t) -> Tier.rank i.tier < Tier.rank model.tier
         | None -> false)
      bays
  in
  let any = match bays with b :: _ -> Some b | [] -> None in
  let pick = function
    | Some (slot, Some installed) -> Some (slot, installed)
    | Some (slot, None) -> Some (slot, model)
    | None -> None
  in
  match exact, empty, better, any with
  | (Some _ as hit), _, _, _
  | None, (Some _ as hit), _, _
  | None, None, (Some _ as hit), _
  | None, None, None, hit -> pick hit

let build_design rng env apps =
  let sites = Array.of_list (Env.site_ids env) in
  let n_sites = Array.length sites in
  let ordered = priority_order rng apps in
  let rec place design idx = function
    | [] -> Some design
    | app :: rest ->
      let category = App.category app in
      let technique = Sample.choose rng (class_techniques category) in
      let model = class_array_model env category in
      (* Spread primaries uniformly over the sites. *)
      let primary_site = sites.(idx mod n_sites) in
      let mirror_site =
        if Technique.has_mirror technique then
          Sample.choose_opt rng (Env.peers_of env primary_site)
        else None
      in
      let needs_mirror = Technique.has_mirror technique in
      let mirror =
        if not needs_mirror then Some None
        else
          match mirror_site with
          | None -> None
          | Some site ->
            (match bay_for design site model with
             | Some slot_and_model -> Some (Some slot_and_model)
             | None -> None)
      in
      match bay_for design primary_site model, mirror with
      | None, _ | _, None -> None
      | Some (primary, primary_model), Some mirror ->
        begin
          let backup =
            if Technique.has_backup technique then
              Some (Slot.Tape_slot.v ~site:primary_site)
            else None
          in
          let tape_model =
            match backup with
            | Some slot ->
              (* A site has one library; whoever got there first fixed the
                 model. Otherwise tier-match: gold/silver on the high-end
                 library, bronze on the mid-range one (when offered). *)
              (match Design.tape_model design slot with
               | Some installed -> Some installed
               | None ->
                 let wanted =
                   match category with
                   | Category.Gold | Category.Silver -> Tier.High
                   | Category.Bronze -> Tier.Med
                 in
                 let models = env.Env.tape_models in
                 (match
                    List.find_opt
                      (fun (m : Ds_resources.Tape_model.t) ->
                         Tier.equal m.tier wanted)
                      models
                  with
                  | Some m -> Some m
                  | None -> (match models with m :: _ -> Some m | [] -> None)))
            | None -> None
          in
          let assignment =
            Assignment.v ~app ~technique ~primary
              ?mirror:(Option.map fst mirror) ?backup ()
          in
          let mirror_model = Option.map snd mirror in
          match
            Design.add design assignment ~primary_model ?mirror_model
              ?tape_model ()
          with
          | Ok design -> place design (idx + 1) rest
          | Error _ -> None
        end
  in
  place (Design.empty env) 0 ordered

let design_once rng env apps = build_design rng env apps

let run ?(options = Config_solver.default_options) ?(attempts = 30)
    ?(obs = Obs.noop) ~seed env apps likelihood =
  Obs.with_span obs "heuristic.human" @@ fun () ->
  let rng = Rng.of_int seed in
  let rec loop result remaining =
    if remaining = 0 then result
    else begin
      Obs.incr obs "heuristic.human.attempts";
      let outcome =
        match build_design rng env apps with
        | None -> None
        | Some design ->
          (match Config_solver.solve ~options ~obs design likelihood with
           | Ok candidate ->
             Obs.incr obs "heuristic.human.feasible";
             Some candidate
           | Error _ -> None)
      in
      loop (Heuristic_result.consider result outcome) (remaining - 1)
    end
  in
  loop Heuristic_result.empty attempts
