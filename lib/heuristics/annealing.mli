(** A simulated-annealing baseline.

    The paper's related-work section argues that classic local-search
    metaheuristics (simulated annealing, tabu search) are hampered by the
    design space's lack of structure, which motivates its wider
    breadth-times-depth exploration. This baseline makes that comparison
    concrete: uniform random single-application reconfigurations, accepted
    when cheaper or with probability [exp (-delta / temperature)], under a
    geometric cooling schedule. The incumbent never leaves the feasible
    region; the best design seen is returned. *)

module App = Ds_workload.App
module Env = Ds_resources.Env
module Likelihood = Ds_failure.Likelihood

type params = {
  iterations : int;  (** Accept/reject steps after the initial design. *)
  initial_temperature : float;
      (** In dollars: a cost increase of this size is accepted with
          probability 1/e at the start. *)
  cooling : float;  (** Geometric factor per step, in (0, 1). *)
}

val default_params : params
(** 400 iterations, $20M initial temperature, 0.99 cooling. *)

val run :
  ?options:Ds_solver.Config_solver.options ->
  ?params:params ->
  ?obs:Ds_obs.Obs.t ->
  seed:int ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  Heuristic_result.t
(** Starts from the first feasible uniform-random design (counted in
    [attempts]); returns the best design encountered. *)
