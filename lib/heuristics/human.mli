(** The "human heuristic" (Section 4.1): an emulated storage architect.

    The architect buckets applications, techniques and devices into gold /
    silver / bronze, gives each application a technique drawn uniformly
    from its own class, places applications spread uniformly across sites
    (round-robin in randomized priority order), matches device tiers to
    application classes (gold on the high-end array, and so on), and then
    lets the configuration solver fill in the parameters. Infeasible
    layouts cause a restart; after a bounded number of attempts the
    cheapest feasible solution is returned. *)

module App = Ds_workload.App
module Env = Ds_resources.Env
module Likelihood = Ds_failure.Likelihood

val class_array_model :
  Env.t -> Ds_workload.Category.t -> Ds_resources.Array_model.t
(** The tier-matched array model for an application class, falling back to
    the nearest tier the environment offers. *)

val design_once :
  Ds_prng.Rng.t -> Env.t -> App.t list -> Ds_design.Design.t option
(** One architect-style design (before the configuration solver); exposed
    for tests and diagnostics. *)

val run :
  ?options:Ds_solver.Config_solver.options ->
  ?attempts:int ->
  ?obs:Ds_obs.Obs.t ->
  seed:int ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  Heuristic_result.t
(** [attempts] complete designs (default 30), best kept. [obs] records a
    [heuristic.human] span and attempt/feasible counters. *)
