module App = Ds_workload.App
module Money = Ds_units.Money
module Technique_catalog = Ds_protection.Technique_catalog
module Env = Ds_resources.Env
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Candidate = Ds_solver.Candidate
module Config_solver = Ds_solver.Config_solver
module Layout = Ds_solver.Layout
module Obs = Ds_obs.Obs

type params = {
  iterations : int;
  neighbors : int;
  tenure : int;
}

let default_params = { iterations = 120; neighbors = 4; tenure = 3 }

let check params =
  if params.iterations < 0 then invalid_arg "Tabu: negative iterations";
  if params.neighbors < 1 then invalid_arg "Tabu: need at least one neighbor";
  if params.tenure < 0 then invalid_arg "Tabu: negative tenure"

(* (app id -> iteration until which it is tabu) *)
let is_tabu tabu_until iteration app_id =
  match Hashtbl.find_opt tabu_until app_id with
  | Some until -> iteration < until
  | None -> false

let neighbor rng options likelihood (candidate : Candidate.t) app =
  let stripped = Design.remove candidate.Candidate.design app.App.id in
  let technique =
    Sample.choose rng (Technique_catalog.eligible_for (App.category app))
  in
  match Layout.choose_uniform rng stripped app technique with
  | None -> None
  | Some choice ->
    (match Layout.apply stripped choice with
     | Error _ -> None
     | Ok design ->
       (match Config_solver.solve ~options design likelihood with
        | Ok next -> Some next
        | Error _ -> None))

let run ?(options = Config_solver.search_options) ?(params = default_params)
    ?(obs = Obs.noop) ~seed env apps likelihood =
  check params;
  Obs.with_span obs "heuristic.tabu" @@ fun () ->
  let rng = Rng.of_int seed in
  let rec initial tries =
    if tries >= 50 then (None, tries)
    else
      match Random_search.sample_design rng env apps with
      | None -> initial (tries + 1)
      | Some design ->
        (match Config_solver.solve ~options design likelihood with
         | Ok candidate -> (Some candidate, tries + 1)
         | Error _ -> initial (tries + 1))
  in
  let start, start_attempts = initial 0 in
  match start with
  | None ->
    { Heuristic_result.best = None; attempts = start_attempts; feasible = 0 }
  | Some start ->
    let tabu_until : (App.id, int) Hashtbl.t = Hashtbl.create 16 in
    let current = ref start in
    let best = ref start in
    let feasible = ref 1 in
    for iteration = 1 to params.iterations do
      Obs.incr obs "heuristic.tabu.attempts";
      let candidates_apps = Design.apps !current.Candidate.design in
      let moves =
        List.init params.neighbors (fun _ ->
            let app = Sample.choose rng candidates_apps in
            match neighbor rng options likelihood !current app with
            | Some next -> Some (app, next)
            | None -> None)
        |> List.filter_map Fun.id
      in
      let admissible =
        List.filter
          (fun (app, next) ->
             (not (is_tabu tabu_until iteration app.App.id))
             (* Aspiration: a tabu move that beats the best is allowed. *)
             || Money.compare (Candidate.cost next) (Candidate.cost !best) < 0)
          moves
      in
      (match admissible with
       | [] -> ()
       | moves ->
         feasible := !feasible + List.length moves;
         let app, next =
           List.fold_left
             (fun (ba, bn) (a, n) ->
                if Money.compare (Candidate.cost n) (Candidate.cost bn) < 0
                then (a, n)
                else (ba, bn))
             (List.hd moves) (List.tl moves)
         in
         (* Move unconditionally — tabu search explores through worse
            states — and freeze the touched application. *)
         current := next;
         Hashtbl.replace tabu_until app.App.id (iteration + params.tenure);
         best := Candidate.better !best next)
    done;
    { Heuristic_result.best = Some !best;
      attempts = start_attempts + params.iterations;
      feasible = !feasible }
