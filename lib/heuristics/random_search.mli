(** The random heuristic (Section 4): uniform random complete designs,
    keep the cheapest feasible one.

    Each attempt draws, for every application, a technique uniformly from
    the full Table 2 catalog and a uniformly random structurally-valid
    layout, then runs the configuration solver. Random designs are quick
    to test for feasibility, which is why this baseline still finds
    feasible solutions at scales where the guided searches get stuck
    (Section 4.4). *)

module App = Ds_workload.App
module Env = Ds_resources.Env
module Likelihood = Ds_failure.Likelihood

val sample_design :
  Ds_prng.Rng.t -> Env.t -> App.t list -> Ds_design.Design.t option
(** One uniform random complete design ([None] when some app has no
    structurally valid placement, e.g. a mirror in a one-site world). *)

val run :
  ?options:Ds_solver.Config_solver.options ->
  ?attempts:int ->
  ?obs:Ds_obs.Obs.t ->
  seed:int ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  Heuristic_result.t
(** [attempts] random designs (default 100), best kept. [obs] records a
    [heuristic.random] span and attempt/feasible counters. *)
