module App = Ds_workload.App
module Technique_catalog = Ds_protection.Technique_catalog
module Env = Ds_resources.Env
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Layout = Ds_solver.Layout
module Config_solver = Ds_solver.Config_solver
module Obs = Ds_obs.Obs

let sample_design rng env apps =
  let rec place design = function
    | [] -> Some design
    | app :: rest ->
      let technique = Sample.choose rng Technique_catalog.all in
      (match Layout.choose_uniform rng design app technique with
       | None -> None
       | Some choice ->
         (match Layout.apply design choice with
          | Ok design -> place design rest
          | Error _ -> None))
  in
  place (Design.empty env) apps

let run ?(options = Config_solver.default_options) ?(attempts = 100)
    ?(obs = Obs.noop) ~seed env apps likelihood =
  Obs.with_span obs "heuristic.random" @@ fun () ->
  let rng = Rng.of_int seed in
  let rec loop result remaining =
    if remaining = 0 then result
    else begin
      Obs.incr obs "heuristic.random.attempts";
      let outcome =
        match sample_design rng env apps with
        | None -> None
        | Some design ->
          (match Config_solver.solve ~options ~obs design likelihood with
           | Ok candidate ->
             Obs.incr obs "heuristic.random.feasible";
             Some candidate
           | Error _ -> None)
      in
      loop (Heuristic_result.consider result outcome) (remaining - 1)
    end
  in
  loop Heuristic_result.empty attempts
