(** A tabu-search baseline (Glover), the other classic local-search
    metaheuristic the paper's related work discusses.

    Each iteration evaluates a set of neighbors (uniform random
    reconfigurations of non-tabu applications), moves to the best one
    even when it is worse than the incumbent — that is what lets tabu
    search climb out of local minima — and marks the reconfigured
    application tabu for [tenure] iterations. An aspiration rule admits a
    tabu move that beats the best design seen so far. *)

module App = Ds_workload.App
module Env = Ds_resources.Env
module Likelihood = Ds_failure.Likelihood

type params = {
  iterations : int;
  neighbors : int;  (** Candidate moves evaluated per iteration. *)
  tenure : int;  (** Iterations an application stays tabu. *)
}

val default_params : params
(** 120 iterations, 4 neighbors, tenure 3. *)

val run :
  ?options:Ds_solver.Config_solver.options ->
  ?params:params ->
  ?obs:Ds_obs.Obs.t ->
  seed:int ->
  Env.t ->
  App.t list ->
  Likelihood.t ->
  Heuristic_result.t
