module App = Ds_workload.App
module Money = Ds_units.Money
module Technique_catalog = Ds_protection.Technique_catalog
module Env = Ds_resources.Env
module Design = Ds_design.Design
module Likelihood = Ds_failure.Likelihood
module Rng = Ds_prng.Rng
module Sample = Ds_prng.Sample
module Candidate = Ds_solver.Candidate
module Config_solver = Ds_solver.Config_solver
module Layout = Ds_solver.Layout
module Obs = Ds_obs.Obs

type params = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
}

let default_params =
  { iterations = 400; initial_temperature = 20e6; cooling = 0.99 }

let check params =
  if params.iterations < 0 then invalid_arg "Annealing: negative iterations";
  if params.initial_temperature <= 0. then
    invalid_arg "Annealing: temperature must be positive";
  if params.cooling <= 0. || params.cooling >= 1. then
    invalid_arg "Annealing: cooling must be in (0, 1)"

(* A uniform neighbor: strip one random application and re-place it with a
   uniformly drawn eligible technique and layout. *)
let neighbor rng options likelihood (candidate : Candidate.t) =
  match Design.apps candidate.Candidate.design with
  | [] -> None
  | apps ->
    let app = Sample.choose rng apps in
    let stripped = Design.remove candidate.Candidate.design app.App.id in
    let technique =
      Sample.choose rng (Technique_catalog.eligible_for (App.category app))
    in
    (match Layout.choose_uniform rng stripped app technique with
     | None -> None
     | Some choice ->
       (match Layout.apply stripped choice with
        | Error _ -> None
        | Ok design ->
          (match Config_solver.solve ~options design likelihood with
           | Ok next -> Some next
           | Error _ -> None)))

let initial rng options env apps likelihood ~max_tries =
  let rec go tries =
    if tries >= max_tries then (None, tries)
    else
      match Random_search.sample_design rng env apps with
      | None -> go (tries + 1)
      | Some design ->
        (match Config_solver.solve ~options design likelihood with
         | Ok candidate -> (Some candidate, tries + 1)
         | Error _ -> go (tries + 1))
  in
  go 0

let run ?(options = Config_solver.search_options) ?(params = default_params)
    ?(obs = Obs.noop) ~seed env apps likelihood =
  check params;
  Obs.with_span obs "heuristic.annealing" @@ fun () ->
  let rng = Rng.of_int seed in
  let start, start_attempts =
    initial rng options env apps likelihood ~max_tries:50
  in
  match start with
  | None ->
    { Heuristic_result.best = None; attempts = start_attempts; feasible = 0 }
  | Some start ->
    let current = ref start in
    let best = ref start in
    let temperature = ref params.initial_temperature in
    let feasible = ref 1 in
    for _ = 1 to params.iterations do
      Obs.incr obs "heuristic.annealing.attempts";
      (match neighbor rng options likelihood !current with
       | None -> ()
       | Some next ->
         incr feasible;
         Obs.incr obs "heuristic.annealing.feasible";
         let delta =
           Money.to_dollars (Candidate.cost next)
           -. Money.to_dollars (Candidate.cost !current)
         in
         let accept =
           delta <= 0.
           || Sample.bernoulli rng (exp (-.delta /. !temperature))
         in
         if accept then current := next;
         best := Candidate.better !best next);
      temperature := !temperature *. params.cooling
    done;
    { Heuristic_result.best = Some !best;
      attempts = start_attempts + params.iterations;
      feasible = !feasible }
