module Time = Ds_units.Time
module Rate = Ds_units.Rate
module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Slot = Ds_resources.Slot
module Assignment = Ds_design.Assignment
module Design = Ds_design.Design
module Demand = Ds_design.Demand
module Provision = Ds_design.Provision
module Scenario = Ds_failure.Scenario
module Likelihood = Ds_failure.Likelihood
module Engine = Ds_sim.Engine
module Obs = Ds_obs.Obs

let tape_propagation prov (asg : Assignment.t) =
  match asg.backup with
  | None -> Time.zero
  | Some tape_slot ->
    Rate.transfer_time asg.app.App.data_size (Provision.tape_bw prov tape_slot)

(* Exclusive-device handles, one per physical device touched by recovery. *)
type devices = {
  engine : Engine.t;
  mutable arrays : (Slot.Array_slot.t * Engine.resource) list;
  mutable tapes : (Slot.Tape_slot.t * Engine.resource) list;
  mutable links : (Slot.Pair.t * Engine.resource) list;
}

let array_device d slot =
  match List.find_opt (fun (s, _) -> Slot.Array_slot.equal s slot) d.arrays with
  | Some (_, r) -> r
  | None ->
    let r = Engine.resource d.engine (Format.asprintf "%a" Slot.Array_slot.pp slot) in
    d.arrays <- (slot, r) :: d.arrays;
    r

let tape_device d slot =
  match List.find_opt (fun (s, _) -> Slot.Tape_slot.equal s slot) d.tapes with
  | Some (_, r) -> r
  | None ->
    let r = Engine.resource d.engine (Format.asprintf "%a" Slot.Tape_slot.pp slot) in
    d.tapes <- (slot, r) :: d.tapes;
    r

let link_device d pair =
  match List.find_opt (fun (p, _) -> Slot.Pair.equal p pair) d.links with
  | Some (_, r) -> r
  | None ->
    let r = Engine.resource d.engine (Format.asprintf "%a" Slot.Pair.pp pair) in
    d.links <- (pair, r) :: d.links;
    r

let scenario ?(params = Recovery_params.default) ?(obs = Obs.noop) prov
    (scen : Scenario.t) =
  let design = prov.Provision.design in
  let scope = scen.Scenario.scope in
  let affected = Scenario.affected design scope in
  if affected = [] then []
  else Obs.with_span obs "recovery.scenario" @@ fun () -> begin
    Obs.incr obs "recovery.scenarios";
    Obs.add obs "recovery.affected" (List.length affected);
    let unaffected = Scenario.unaffected design scope in
    let residual = Demand.of_assignments design unaffected in
    let avail_array slot =
      Rate.sub (Provision.array_bw prov slot)
        (Demand.array_use residual slot).Demand.bandwidth
    in
    let avail_tape slot =
      Rate.sub (Provision.tape_bw prov slot)
        (Demand.tape_use residual slot).Demand.tape_bandwidth
    in
    let avail_link pair =
      Rate.sub (Provision.link_bw prov pair) (Demand.link_use residual pair)
    in
    let devices =
      { engine = Engine.create ~policy:params.Recovery_params.scheduling ~obs ();
        arrays = []; tapes = []; links = [] }
    in
    let repair_delay =
      match scope with
      | Scenario.Data_object _ -> Time.zero
      | Scenario.Array_failure _ -> params.Recovery_params.array_repair
      | Scenario.Site_disaster _ -> params.Recovery_params.site_rebuild
    in
    (* Decide each app's recovery plan, then submit all jobs and run once,
       so competing restores contend in the shared engine. *)
    let plans =
      List.map
        (fun (asg : Assignment.t) ->
           let copies =
             Copy_source.surviving ~params
               ~tape_propagation:(tape_propagation prov asg) asg scope
           in
           let best = Copy_source.best copies in
           let detection = Engine.Delay params.Recovery_params.detection in
           let plan =
             match best with
             | None ->
               let stages =
                 [ detection; Engine.Delay repair_delay;
                   Engine.Delay params.Recovery_params.manual_rebuild ]
               in
               (asg, Outcome.Unrecoverable, params.Recovery_params.loss_horizon,
                stages)
             | Some copy ->
               let loss = copy.Copy_source.staleness in
               (match copy.Copy_source.kind with
                | Copy_source.Mirror
                  when Technique.needs_standby_compute asg.technique ->
                  (asg, Outcome.Failed_over, loss,
                   [ detection; Engine.Delay params.Recovery_params.failover ])
                | Copy_source.Mirror ->
                  let mirror_slot = Option.get asg.mirror in
                  (match scope with
                   | Scenario.Site_disaster _ ->
                     (* Reconstruction at the secondary site: procure and
                        reconfigure compute there, promote the mirror to
                        primary. No bulk copy — the data is already on the
                        surviving array. Fail-back runs in the background
                        once the site is rebuilt. *)
                     (asg, Outcome.Restored copy.Copy_source.kind, loss,
                      [ detection;
                        Engine.Delay params.Recovery_params.site_reconfig;
                        Engine.Hold ([ array_device devices mirror_slot ],
                                     params.Recovery_params.mirror_promote) ])
                   | Scenario.Data_object _ | Scenario.Array_failure _ ->
                     (* Repair the array, then copy the dataset back over
                        the inter-site link. *)
                     let pair = Option.get (Assignment.mirror_pair asg) in
                     let bw =
                       Rate.min (avail_array mirror_slot)
                         (Rate.min (avail_link pair) (avail_array asg.primary))
                     in
                     let duration = Rate.transfer_time asg.app.App.data_size bw in
                     let held =
                       [ array_device devices mirror_slot;
                         link_device devices pair;
                         array_device devices asg.primary ]
                     in
                     (asg, Outcome.Restored copy.Copy_source.kind, loss,
                      [ detection; Engine.Delay repair_delay;
                        Engine.Hold (held, duration) ]))
                | Copy_source.Snapshot ->
                  let bw = avail_array asg.primary in
                  let duration = Rate.transfer_time asg.app.App.data_size bw in
                  (asg, Outcome.Restored copy.Copy_source.kind, loss,
                   [ detection; Engine.Delay repair_delay;
                     Engine.Hold ([ array_device devices asg.primary ], duration) ])
                | Copy_source.Tape | Copy_source.Vault ->
                  let tape_slot = Option.get asg.backup in
                  let link = Assignment.backup_pair asg in
                  let bw =
                    let base =
                      Rate.min (avail_tape tape_slot) (avail_array asg.primary)
                    in
                    match link with
                    | Some pair -> Rate.min base (avail_link pair)
                    | None -> base
                  in
                  (* Incremental schedules replay the full plus half a
                     cycle of incrementals on average. *)
                  let volume =
                    match asg.technique.Technique.backup with
                    | Some chain ->
                      Ds_protection.Backup.restore_volume chain asg.app
                    | None -> asg.app.App.data_size
                  in
                  let duration = Rate.transfer_time volume bw in
                  let held =
                    (tape_device devices tape_slot
                     :: array_device devices asg.primary
                     :: (match link with
                         | Some pair -> [ link_device devices pair ]
                         | None -> []))
                  in
                  let fetch =
                    match copy.Copy_source.kind with
                    | Copy_source.Vault ->
                      [ Engine.Delay params.Recovery_params.vault_fetch ]
                    | _ -> []
                  in
                  (asg, Outcome.Restored copy.Copy_source.kind, loss,
                   ([ detection; Engine.Delay repair_delay ]
                    @ fetch @ [ Engine.Hold (held, duration) ])))
           in
           plan)
        affected
    in
    let jobs =
      List.map
        (fun (asg, mode, loss, stages) ->
           let priority =
             Ds_units.Money.to_dollars (App.penalty_rate_sum asg.Assignment.app)
           in
           let id =
             Engine.submit devices.engine
               ~name:(Format.asprintf "%a" App.pp asg.Assignment.app)
               ~priority stages
           in
           (asg, mode, loss, id))
        plans
    in
    Engine.run devices.engine;
    List.map
      (fun ((asg : Assignment.t), mode, loss, id) ->
         (match mode with
          | Outcome.Unrecoverable -> Obs.incr obs "recovery.unrecoverable"
          | _ -> ());
         { Outcome.app = asg.app;
           mode;
           recovery_time = Engine.completion_time devices.engine id;
           loss_time = loss })
      jobs
  end

let all ?(params = Recovery_params.default) ?(obs = Obs.noop) prov likelihood =
  let design = prov.Provision.design in
  Scenario.enumerate likelihood design
  |> List.map (fun scen -> (scen, scenario ~params ~obs prov scen))
