module Time = Ds_units.Time
module Rate = Ds_units.Rate
module App = Ds_workload.App
module Technique = Ds_protection.Technique
module Slot = Ds_resources.Slot
module Assignment = Ds_design.Assignment
module Design = Ds_design.Design
module Demand = Ds_design.Demand
module Provision = Ds_design.Provision
module Scenario = Ds_failure.Scenario
module Likelihood = Ds_failure.Likelihood
module Engine = Ds_sim.Engine
module Obs = Ds_obs.Obs
module Metrics = Ds_obs.Obs.Metrics

let tape_propagation prov (asg : Assignment.t) =
  match asg.backup with
  | None -> Time.zero
  | Some tape_slot ->
    Rate.transfer_time asg.app.App.data_size (Provision.tape_bw prov tape_slot)

(* Device and job names only feed the engine's per-resource metrics
   ([sim.busy_s.<name>], [sim.wait_s.<name>]) and diagnostic output; on
   the unmetered hot path (every candidate evaluation of the solvers)
   rendering them through [Format.asprintf] dominated the per-scenario
   allocation, so they are built only when a metrics sink is attached.

   A [batch] carries every instrument resolvable once per simulation
   batch: the engine meters, the recovery counters, and — keyed by slot —
   the device names and gauges. The configuration solver shares one batch
   across every trial evaluation of a solve (the slots are stable there),
   so the registry is probed a handful of times per thousands of
   scenarios. The id caches are atomics: when parallel trial workers
   share a batch, a racing insert can at worst drop a peer's entry and
   re-resolve later — the registry hands back the same instruments for
   the same names, so metric totals and simulation results are unchanged. *)
type batch = {
  b_obs : Obs.t;  (* instrument resolution only; spans use the call-site obs *)
  named : bool;
  meters : Engine.meters;
  scenarios_c : Metrics.counter option;
  affected_c : Metrics.counter option;
  unrecoverable_c : Metrics.counter option;
  (* Owned by the cost layer (Evaluate), carried here so the per-trial
     evaluation counter rides the same pre-resolved instrument cache. *)
  evaluations_c : Metrics.counter option;
  array_ids :
    (Slot.Array_slot.t * (string * Engine.device_gauges)) list Atomic.t;
  tape_ids : (Slot.Tape_slot.t * (string * Engine.device_gauges)) list Atomic.t;
  link_ids : (Slot.Pair.t * (string * Engine.device_gauges)) list Atomic.t;
}

let batch obs =
  let counter name =
    match Obs.metrics obs with
    | Some reg -> Some (Metrics.counter reg name)
    | None -> None
  in
  { b_obs = obs;
    named = Obs.metrics_on obs;
    meters = Engine.meters_of_obs obs;
    scenarios_c = counter "recovery.scenarios";
    affected_c = counter "recovery.affected";
    unrecoverable_c = counter "recovery.unrecoverable";
    evaluations_c = counter "cost.evaluations";
    array_ids = Atomic.make [];
    tape_ids = Atomic.make [];
    link_ids = Atomic.make [] }

let array_id b slot =
  let ids = Atomic.get b.array_ids in
  match List.find_opt (fun (s, _) -> Slot.Array_slot.equal s slot) ids with
  | Some (_, e) -> e
  | None ->
    let name = if b.named then Slot.Array_slot.to_string slot else "" in
    let gauges =
      if b.named then Engine.device_gauges b.b_obs name else Engine.no_gauges
    in
    let e = (name, gauges) in
    Atomic.set b.array_ids ((slot, e) :: ids);
    e

let tape_id b slot =
  let ids = Atomic.get b.tape_ids in
  match List.find_opt (fun (s, _) -> Slot.Tape_slot.equal s slot) ids with
  | Some (_, e) -> e
  | None ->
    let name = if b.named then Slot.Tape_slot.to_string slot else "" in
    let gauges =
      if b.named then Engine.device_gauges b.b_obs name else Engine.no_gauges
    in
    let e = (name, gauges) in
    Atomic.set b.tape_ids ((slot, e) :: ids);
    e

let link_id b pair =
  let ids = Atomic.get b.link_ids in
  match List.find_opt (fun (p, _) -> Slot.Pair.equal p pair) ids with
  | Some (_, e) -> e
  | None ->
    let name = if b.named then Slot.Pair.to_string pair else "" in
    let gauges =
      if b.named then Engine.device_gauges b.b_obs name else Engine.no_gauges
    in
    let e = (name, gauges) in
    Atomic.set b.link_ids ((pair, e) :: ids);
    e

(* Exclusive-device handles, one per physical device touched by recovery.
   Resources are per-engine (hence per-scenario); their names and gauges
   come from the batch cache. *)
type devices = {
  engine : Engine.t;
  mutable arrays : (Slot.Array_slot.t * Engine.resource) list;
  mutable tapes : (Slot.Tape_slot.t * Engine.resource) list;
  mutable links : (Slot.Pair.t * Engine.resource) list;
}

let array_device b d slot =
  match List.find_opt (fun (s, _) -> Slot.Array_slot.equal s slot) d.arrays with
  | Some (_, r) -> r
  | None ->
    let name, gauges = array_id b slot in
    let r = Engine.resource_with d.engine ~gauges name in
    d.arrays <- (slot, r) :: d.arrays;
    r

let tape_device b d slot =
  match List.find_opt (fun (s, _) -> Slot.Tape_slot.equal s slot) d.tapes with
  | Some (_, r) -> r
  | None ->
    let name, gauges = tape_id b slot in
    let r = Engine.resource_with d.engine ~gauges name in
    d.tapes <- (slot, r) :: d.tapes;
    r

let link_device b d pair =
  match List.find_opt (fun (p, _) -> Slot.Pair.equal p pair) d.links with
  | Some (_, r) -> r
  | None ->
    let name, gauges = link_id b pair in
    let r = Engine.resource_with d.engine ~gauges name in
    d.links <- (pair, r) :: d.links;
    r

let incr_opt = function Some c -> Metrics.incr c | None -> ()
let add_opt c n = match c with Some c -> Metrics.add c n | None -> ()

let incr_evaluations b = incr_opt b.evaluations_c

(* Residual load = total demand minus the affected apps' shares — the
   affected set is a handful of assignments, so this replaces a
   per-scenario demand-map rebuild over the unaffected majority with a
   short fold per device lookup. Top-level recursive folds (rather than
   closures inside the scenario body) keep the per-scenario allocation
   down to the folds' own float results. *)
let rec freed_array_bw affected slot acc =
  match affected with
  | [] -> acc
  | a :: rest ->
    freed_array_bw rest slot (Rate.add acc (Demand.array_bw_share a slot))

let avail_array prov affected slot =
  let total = prov.Provision.demand in
  Rate.sub (Provision.array_bw prov slot)
    (Rate.sub (Demand.array_use total slot).Demand.bandwidth
       (freed_array_bw affected slot Rate.zero))

let rec freed_tape_bw affected slot acc =
  match affected with
  | [] -> acc
  | a :: rest ->
    freed_tape_bw rest slot (Rate.add acc (Demand.tape_bw_share a slot))

let avail_tape prov affected slot =
  let total = prov.Provision.demand in
  Rate.sub (Provision.tape_bw prov slot)
    (Rate.sub (Demand.tape_use total slot).Demand.tape_bandwidth
       (freed_tape_bw affected slot Rate.zero))

let rec freed_link_bw affected pair acc =
  match affected with
  | [] -> acc
  | a :: rest ->
    freed_link_bw rest pair (Rate.add acc (Demand.link_share a pair))

let avail_link prov affected pair =
  let total = prov.Provision.demand in
  Rate.sub (Provision.link_bw prov pair)
    (Rate.sub (Demand.link_use total pair)
       (freed_link_bw affected pair Rate.zero))

let scenario_in ~params ~obs b prov (scen : Scenario.t) =
  let design = prov.Provision.design in
  let scope = scen.Scenario.scope in
  let affected = Scenario.affected design scope in
  if affected = [] then []
  else Obs.with_span obs "recovery.scenario" @@ fun () -> begin
    incr_opt b.scenarios_c;
    add_opt b.affected_c (List.length affected);
    let devices =
      { engine =
          Engine.create_with ~policy:params.Recovery_params.scheduling ~obs
            ~meters:b.meters ();
        arrays = []; tapes = []; links = [] }
    in
    let repair_delay =
      match scope with
      | Scenario.Data_object _ -> Time.zero
      | Scenario.Array_failure _ -> params.Recovery_params.array_repair
      | Scenario.Site_disaster _ -> params.Recovery_params.site_rebuild
    in
    (* Decide each app's recovery plan and submit its job immediately —
       all jobs land before the single [Engine.run], so competing restores
       still contend in the shared engine. *)
    let jobs =
      List.map
        (fun (asg : Assignment.t) ->
           let best =
             Copy_source.best_surviving ~params
               ~tape_propagation:(tape_propagation prov asg) asg scope
           in
           let detection = Engine.Delay params.Recovery_params.detection in
           let plan =
             match best with
             | None ->
               let stages =
                 [ detection; Engine.Delay repair_delay;
                   Engine.Delay params.Recovery_params.manual_rebuild ]
               in
               (asg, Outcome.Unrecoverable, params.Recovery_params.loss_horizon,
                stages)
             | Some copy ->
               let loss = copy.Copy_source.staleness in
               (match copy.Copy_source.kind with
                | Copy_source.Mirror
                  when Technique.needs_standby_compute asg.technique ->
                  (asg, Outcome.Failed_over, loss,
                   [ detection; Engine.Delay params.Recovery_params.failover ])
                | Copy_source.Mirror ->
                  let mirror_slot = Option.get asg.mirror in
                  (match scope with
                   | Scenario.Site_disaster _ ->
                     (* Reconstruction at the secondary site: procure and
                        reconfigure compute there, promote the mirror to
                        primary. No bulk copy — the data is already on the
                        surviving array. Fail-back runs in the background
                        once the site is rebuilt. *)
                     (asg, Outcome.Restored copy.Copy_source.kind, loss,
                      [ detection;
                        Engine.Delay params.Recovery_params.site_reconfig;
                        Engine.Hold ([ array_device b devices mirror_slot ],
                                     params.Recovery_params.mirror_promote) ])
                   | Scenario.Data_object _ | Scenario.Array_failure _ ->
                     (* Repair the array, then copy the dataset back over
                        the inter-site link. *)
                     let pair = Option.get (Assignment.mirror_pair asg) in
                     let bw =
                       Rate.min (avail_array prov affected mirror_slot)
                         (Rate.min (avail_link prov affected pair)
                            (avail_array prov affected asg.primary))
                     in
                     let duration = Rate.transfer_time asg.app.App.data_size bw in
                     let held =
                       [ array_device b devices mirror_slot;
                         link_device b devices pair;
                         array_device b devices asg.primary ]
                     in
                     (asg, Outcome.Restored copy.Copy_source.kind, loss,
                      [ detection; Engine.Delay repair_delay;
                        Engine.Hold (held, duration) ]))
                | Copy_source.Snapshot ->
                  let bw = avail_array prov affected asg.primary in
                  let duration = Rate.transfer_time asg.app.App.data_size bw in
                  (asg, Outcome.Restored copy.Copy_source.kind, loss,
                   [ detection; Engine.Delay repair_delay;
                     Engine.Hold ([ array_device b devices asg.primary ], duration) ])
                | Copy_source.Tape | Copy_source.Vault ->
                  let tape_slot = Option.get asg.backup in
                  let link = Assignment.backup_pair asg in
                  let bw =
                    let base =
                      Rate.min (avail_tape prov affected tape_slot)
                        (avail_array prov affected asg.primary)
                    in
                    match link with
                    | Some pair -> Rate.min base (avail_link prov affected pair)
                    | None -> base
                  in
                  (* Incremental schedules replay the full plus half a
                     cycle of incrementals on average. *)
                  let volume =
                    match asg.technique.Technique.backup with
                    | Some chain ->
                      Ds_protection.Backup.restore_volume chain asg.app
                    | None -> asg.app.App.data_size
                  in
                  let duration = Rate.transfer_time volume bw in
                  let held =
                    (tape_device b devices tape_slot
                     :: array_device b devices asg.primary
                     :: (match link with
                         | Some pair -> [ link_device b devices pair ]
                         | None -> []))
                  in
                  let fetch =
                    match copy.Copy_source.kind with
                    | Copy_source.Vault ->
                      [ Engine.Delay params.Recovery_params.vault_fetch ]
                    | _ -> []
                  in
                  (asg, Outcome.Restored copy.Copy_source.kind, loss,
                   ([ detection; Engine.Delay repair_delay ]
                    @ fetch @ [ Engine.Hold (held, duration) ])))
           in
           let asg, mode, loss, stages = plan in
           let priority =
             Ds_units.Money.to_dollars (App.penalty_rate_sum asg.Assignment.app)
           in
           let name =
             if b.named then App.to_string asg.Assignment.app else ""
           in
           let id = Engine.submit devices.engine ~name ~priority stages in
           (asg, mode, loss, id))
        affected
    in
    Engine.run devices.engine;
    List.map
      (fun ((asg : Assignment.t), mode, loss, id) ->
         (match mode with
          | Outcome.Unrecoverable -> incr_opt b.unrecoverable_c
          | _ -> ());
         { Outcome.app = asg.app;
           mode;
           recovery_time = Engine.completion_time devices.engine id;
           loss_time = loss })
      jobs
  end

let scenario ?(params = Recovery_params.default) ?(obs = Obs.noop) prov scen =
  scenario_in ~params ~obs (batch obs) prov scen

let all ?(params = Recovery_params.default) ?(obs = Obs.noop) ?scenarios ?batch:b
    prov likelihood =
  let design = prov.Provision.design in
  let b = match b with Some b -> b | None -> batch obs in
  let scens =
    match scenarios with
    | Some scens -> scens
    | None -> Scenario.enumerate likelihood design
  in
  List.map (fun scen -> (scen, scenario_in ~params ~obs b prov scen)) scens
