(** The multi-application recovery simulator (Section 3.2.2).

    Given a provisioned design and a failure scenario, determines — for
    every affected application — how it recovers, how long its data is
    unavailable and how much recent data it loses. Applications unaffected
    by the failure keep running with their normal resource demands; only
    the {e leftover} bandwidth of each device is available to recovery.
    Competing recovery operations serialize on shared devices in priority
    order, where an application's priority is the sum of its penalty rates
    — exactly the paper's scheduling assumption.

    Recovery paths, by surviving copy:
    - mirror + failover technique: restart at the mirror site
      (detection + failover delay; fail-back runs in the background and is
      not charged);
    - mirror + reconstruction: repair/rebuild the failed hardware, then
      copy the dataset back over the inter-site link;
    - snapshot: roll back within the primary array;
    - tape: repair hardware, then restore from the library (crossing the
      link when the library is remote);
    - vault: additionally wait for the courier to return cartridges;
    - nothing survived: manual reconstruction, a full loss horizon. *)

module Time = Ds_units.Time
module Obs = Ds_obs.Obs
module Provision = Ds_design.Provision
module Scenario = Ds_failure.Scenario
module Likelihood = Ds_failure.Likelihood

val tape_propagation : Provision.t -> Ds_design.Assignment.t -> Time.t
(** Time a full backup takes with the provisioned drives (used both for
    tape staleness and vault cut-off). Zero for backup-less techniques. *)

val scenario :
  ?params:Recovery_params.t ->
  ?obs:Obs.t ->
  Provision.t ->
  Scenario.t ->
  Outcome.t list
(** Outcomes for every application affected by the scenario (empty when
    none are). [obs] feeds the shared engine's device metrics plus
    [recovery.scenarios] / [recovery.affected] / [recovery.unrecoverable]
    counters and a [recovery.scenario] span. *)

type batch
(** Pre-resolved metric instruments (engine meters, device gauges,
    recovery counters) shared across the simulations of a batch. *)

val batch : Obs.t -> batch
(** Resolves every instrument against [obs]'s metrics registry. The
    batch may be reused by any later call whose [obs] carries the same
    registry (trace lanes may differ); sharing it across parallel
    workers is safe — see the implementation note. *)

val incr_evaluations : batch -> unit
(** Bumps the [cost.evaluations] counter carried by the batch (no-op
    without a metrics registry). The cost layer calls this once per
    candidate evaluation instead of a by-name registry lookup. *)

val all :
  ?params:Recovery_params.t ->
  ?obs:Obs.t ->
  ?scenarios:Scenario.t list ->
  ?batch:batch ->
  Provision.t ->
  Likelihood.t ->
  (Scenario.t * Outcome.t list) list
(** Every scenario enumerated for the design, simulated. Metric
    instruments are resolved once for the whole batch — or not at all
    when [batch] supplies them pre-resolved (the configuration solver
    shares one batch across all trial evaluations of a solve).
    [scenarios] supplies a pre-enumerated list — it must equal
    [Scenario.enumerate likelihood design]; the solvers pass it because
    window and growth trials never change the slots or apps, so the
    enumeration is identical across hundreds of trial evaluations. *)
