(** Which secondary copies survive a failure, and how stale each is.

    The recovery hierarchy keeps up to four secondary copies of an
    application's data: the remote mirror, array-internal snapshots, tape
    fulls in a library, and vaulted cartridges offsite. A failure scope
    destroys some of them:

    - a {e data object failure} (human/software error) corrupts the
      primary {e and} its mirror — corruption replicates — leaving only
      point-in-time copies (snapshot, tape, vault);
    - an {e array failure} destroys the primary array and the snapshots
      inside it, leaving mirror, tape and vault;
    - a {e site disaster} destroys everything at the primary site —
      snapshots, and the tape library if it is local — leaving the remote
      mirror, a remote tape library if the design used one, and the vault.

    Staleness is the worst-case age of the copy (Section 3.2.1: the
    configuration determines "an upper bound on the staleness"). *)

module Time = Ds_units.Time
module Assignment = Ds_design.Assignment
module Scenario = Ds_failure.Scenario

type kind = Mirror | Snapshot | Tape | Vault

type t = { kind : kind; staleness : Time.t }

val surviving :
  params:Recovery_params.t ->
  tape_propagation:Time.t ->
  Assignment.t ->
  Scenario.scope ->
  t list
(** All copies of the assignment that remain usable under the scope.
    [tape_propagation] is the time a full backup takes to land on tape
    with the provisioned drives (bounds tape staleness). *)

val best : t list -> t option
(** The minimum-staleness copy — the one the configuration solver recovers
    from (ties prefer the faster-restoring kind, in declaration order). *)

val best_surviving :
  params:Recovery_params.t ->
  tape_propagation:Time.t ->
  Assignment.t ->
  Scenario.scope ->
  t option
(** [best (surviving ~params ~tape_propagation asg scope)] without
    building the intermediate lists — the simulator's per-app hot path. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
