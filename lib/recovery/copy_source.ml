module Time = Ds_units.Time
module Mirror_t = Ds_protection.Mirror
module Backup = Ds_protection.Backup
module Technique = Ds_protection.Technique
module Assignment = Ds_design.Assignment
module Scenario = Ds_failure.Scenario

type kind = Mirror | Snapshot | Tape | Vault

type t = { kind : kind; staleness : Time.t }

let kind_rank = function Mirror -> 0 | Snapshot -> 1 | Tape -> 2 | Vault -> 3

let vault_staleness (params : Recovery_params.t) chain ~propagation =
  match params.vault_mode with
  | Recovery_params.Cycle -> Backup.vault_staleness chain ~propagation
  | Recovery_params.Continuous ->
    Time.add (Backup.tape_staleness chain ~propagation)
      chain.Backup.vault_prop

let surviving ~params ~tape_propagation (asg : Assignment.t) scope =
  let technique = asg.technique in
  let mirror_copies =
    match technique.Technique.mirror, scope with
    (* Corruption replicates through the mirror. *)
    | Some _, Scenario.Data_object _ -> []
    | Some m, (Scenario.Array_failure _ | Scenario.Site_disaster _) ->
      (* The mirror is at a different site by construction, so an array or
         primary-site failure never destroys it. *)
      [ { kind = Mirror; staleness = Mirror_t.staleness m } ]
    | None, _ -> []
  in
  let backup_copies =
    match technique.Technique.backup, asg.backup with
    | None, _ | _, None -> []
    | Some chain, Some tape_slot ->
      let snapshot =
        if Scenario.destroys_array scope asg.primary then []
        else [ { kind = Snapshot; staleness = Backup.snapshot_staleness chain } ]
      in
      let tape =
        if Scenario.destroys_tape scope tape_slot then []
        else
          [ { kind = Tape;
              staleness = Backup.tape_staleness chain ~propagation:tape_propagation } ]
      in
      let vault =
        [ { kind = Vault;
            staleness = vault_staleness params chain ~propagation:tape_propagation } ]
      in
      snapshot @ tape @ vault
  in
  mirror_copies @ backup_copies

(* [best (surviving ...)] without materializing the candidate lists —
   the simulator asks this once per affected app per scenario, which is
   the solvers' innermost loop. Candidates are considered in the same
   order as [surviving] lists them (mirror, snapshot, tape, vault) with
   the same strict-improvement rule, so the result is identical. *)
let best_surviving ~params ~tape_propagation (asg : Assignment.t) scope =
  let consider acc kind staleness =
    match acc with
    | None -> Some { kind; staleness }
    | Some incumbent ->
      let c = Time.compare staleness incumbent.staleness in
      if c < 0 || (c = 0 && kind_rank kind < kind_rank incumbent.kind)
      then Some { kind; staleness }
      else acc
  in
  let technique = asg.technique in
  let acc =
    match technique.Technique.mirror, scope with
    | Some _, Scenario.Data_object _ -> None
    | Some m, (Scenario.Array_failure _ | Scenario.Site_disaster _) ->
      Some { kind = Mirror; staleness = Mirror_t.staleness m }
    | None, _ -> None
  in
  match technique.Technique.backup, asg.backup with
  | None, _ | _, None -> acc
  | Some chain, Some tape_slot ->
    let acc =
      if Scenario.destroys_array scope asg.primary then acc
      else consider acc Snapshot (Backup.snapshot_staleness chain)
    in
    let acc =
      if Scenario.destroys_tape scope tape_slot then acc
      else
        consider acc Tape
          (Backup.tape_staleness chain ~propagation:tape_propagation)
    in
    consider acc Vault
      (vault_staleness params chain ~propagation:tape_propagation)

let best copies =
  List.fold_left
    (fun acc copy ->
       match acc with
       | None -> Some copy
       | Some incumbent ->
         let c = Time.compare copy.staleness incumbent.staleness in
         if c < 0 || (c = 0 && kind_rank copy.kind < kind_rank incumbent.kind)
         then Some copy
         else acc)
    None copies

let kind_to_string = function
  | Mirror -> "mirror"
  | Snapshot -> "snapshot"
  | Tape -> "tape"
  | Vault -> "vault"

let pp ppf t =
  Format.fprintf ppf "%s (stale %a)" (kind_to_string t.kind) Time.pp t.staleness
