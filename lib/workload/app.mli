(** Application workloads (Table 1).

    An application is described by its business requirements — hourly
    penalty rates for data outage and for recent data loss — and by its
    data access characteristics: dataset size, average and peak
    (non-unique) update rates, and average access (read + write) rate.
    These drive the capacity and bandwidth demands of each data protection
    technique (Section 2.2). *)

module Time = Ds_units.Time
module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money

type id = int

type t = {
  id : id;
  name : string;
  class_tag : string;  (** Workload class mnemonic from the paper: B, W, C or S. *)
  outage_penalty_rate : Money.t;  (** $/hr of data unavailability. *)
  loss_penalty_rate : Money.t;  (** $/hr of recent updates lost. *)
  data_size : Size.t;
  avg_update_rate : Rate.t;  (** Average non-unique update rate. *)
  peak_update_rate : Rate.t;  (** Peak non-unique update rate. *)
  unique_update_rate : Rate.t;
      (** Rate at which {e distinct} data is dirtied — what periodic
          copies (snapshots, incremental backups) must capture
          (Section 2.2). At most the average update rate; equal to it
          when no better estimate exists (Table 1 does not list it). *)
  avg_access_rate : Rate.t;  (** Average read + write rate. *)
}

val v :
  id:id ->
  name:string ->
  class_tag:string ->
  outage_per_hour:Money.t ->
  loss_per_hour:Money.t ->
  data_size:Size.t ->
  avg_update:Rate.t ->
  peak_update:Rate.t ->
  ?unique_update:Rate.t ->
  avg_access:Rate.t ->
  unit ->
  t
(** Smart constructor; checks that peak update rate >= average update
    rate >= unique update rate (defaulted to the average) and that the
    dataset is non-empty. @raise Invalid_argument otherwise. *)

val penalty_rate_sum : t -> Money.t
(** Outage + loss rate: the app's priority for recovery scheduling and its
    weight for the solver's randomized selection. *)

val category : t -> Category.t
(** Service class derived from {!penalty_rate_sum}
    via {!Category.classify_penalty}. *)

val compare : t -> t -> int
(** By id. *)

val equal : t -> t -> bool
(** By id — two revisions of the same app compare equal. Use {!same} to
    detect workload drift. *)

val same : t -> t -> bool
(** Structural equality over every field (id, names, penalty rates,
    size, all traffic rates). [same a b] implies the solver and cost
    model cannot distinguish [a] from [b]; the fleet coordinator uses
    the negation as its dirty test between re-solves. *)

val drift : ?factor:float -> t -> t
(** The same app with penalty and traffic rates scaled by [factor]
    (default [2.]) — a workload-intensity change that keeps the
    constructor's rate invariants by construction. Identity at
    [factor = 1.]. @raise Invalid_argument when [factor <= 0]. *)

val to_string : t -> string
(** Same rendering as {!pp}, without the formatter machinery — used for
    recovery-job names on the simulator's metered hot path. *)

val pp : Format.formatter -> t -> unit
val pp_row : Format.formatter -> t -> unit
(** One Table 1-style row. *)
