module Time = Ds_units.Time
module Size = Ds_units.Size
module Rate = Ds_units.Rate
module Money = Ds_units.Money

type id = int

type t = {
  id : id;
  name : string;
  class_tag : string;
  outage_penalty_rate : Money.t;
  loss_penalty_rate : Money.t;
  data_size : Size.t;
  avg_update_rate : Rate.t;
  peak_update_rate : Rate.t;
  unique_update_rate : Rate.t;
  avg_access_rate : Rate.t;
}

let v ~id ~name ~class_tag ~outage_per_hour ~loss_per_hour ~data_size ~avg_update
    ~peak_update ?unique_update ~avg_access () =
  if Size.is_zero data_size then invalid_arg "App.v: empty dataset";
  if Rate.(peak_update < avg_update) then
    invalid_arg "App.v: peak update rate below average update rate";
  let unique_update = Option.value ~default:avg_update unique_update in
  if Rate.(avg_update < unique_update) then
    invalid_arg "App.v: unique update rate above average update rate";
  { id; name; class_tag;
    outage_penalty_rate = outage_per_hour;
    loss_penalty_rate = loss_per_hour;
    data_size;
    avg_update_rate = avg_update;
    peak_update_rate = peak_update;
    unique_update_rate = unique_update;
    avg_access_rate = avg_access }

let penalty_rate_sum t = Money.add t.outage_penalty_rate t.loss_penalty_rate

let category t = Category.classify_penalty (penalty_rate_sum t)

let compare a b = Int.compare a.id b.id

let equal a b = a.id = b.id

(* Structural equality for drift detection: every field the solver or
   cost model reads. [equal] stays id-only (assignment bookkeeping);
   this is what the fleet coordinator uses to decide whether an app's
   entry actually changed between re-solves. All the numeric fields are
   plain floats underneath, so (=) on the record would work too — this
   spells the fields out so a new field is a visible decision here. *)
let same a b =
  a.id = b.id && String.equal a.name b.name
  && String.equal a.class_tag b.class_tag
  && Money.equal a.outage_penalty_rate b.outage_penalty_rate
  && Money.equal a.loss_penalty_rate b.loss_penalty_rate
  && Size.equal a.data_size b.data_size
  && Rate.equal a.avg_update_rate b.avg_update_rate
  && Rate.equal a.peak_update_rate b.peak_update_rate
  && Rate.equal a.unique_update_rate b.unique_update_rate
  && Rate.equal a.avg_access_rate b.avg_access_rate

(* Workload drift: intensity scaled by a positive factor. Penalty rates
   and all four traffic rates scale together, so the constructor's
   peak >= avg >= unique invariants are preserved by construction. *)
let drift ?(factor = 2.) t =
  if factor <= 0. then invalid_arg "App.drift: factor must be positive";
  { t with
    outage_penalty_rate = Money.scale factor t.outage_penalty_rate;
    loss_penalty_rate = Money.scale factor t.loss_penalty_rate;
    avg_update_rate = Rate.scale factor t.avg_update_rate;
    peak_update_rate = Rate.scale factor t.peak_update_rate;
    unique_update_rate = Rate.scale factor t.unique_update_rate;
    avg_access_rate = Rate.scale factor t.avg_access_rate }

let to_string t = Printf.sprintf "app#%d(%s:%s)" t.id t.class_tag t.name

let pp ppf t =
  Format.fprintf ppf "app#%d(%s:%s)" t.id t.class_tag t.name

let pp_row ppf t =
  Format.fprintf ppf "%-3d %-22s %-2s %10s %10s %8s %9s %9s %9s %s"
    t.id t.name t.class_tag
    (Money.to_string t.outage_penalty_rate)
    (Money.to_string t.loss_penalty_rate)
    (Size.to_string t.data_size)
    (Rate.to_string t.avg_update_rate)
    (Rate.to_string t.peak_update_rate)
    (Rate.to_string t.avg_access_rate)
    (Category.to_string (category t))
