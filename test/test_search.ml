(* Tests for ds_search: the deterministic multi-start portfolio
   meta-solver. Stream-splitting discipline, determinism across pool
   widths, racing transparency and the anytime budgets. *)

open Dependable_storage
open Dependable_storage.Units
module Rng = Prng.Rng
module Candidate = Solver.Candidate
module Config_solver = Solver.Config_solver
module Design_solver = Solver.Design_solver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let likelihood = Failure.Likelihood.default
let peer_apps () = Ds_experiments.Envs.peer_apps ()

(* Cheap settings, as in the solver tests: the portfolio multiplies
   whatever its restarts cost. *)
let fast_options =
  { Config_solver.search_options with
    Config_solver.max_growth_steps = 2;
    window_scope = Config_solver.Skip }

let fast_params =
  { Design_solver.default_params with
    Design_solver.breadth = 2; depth = 2; refit_rounds = 2; patience = 1;
    stage1_restarts = 2; options = fast_options; domains = 1 }

let design_text (c : Candidate.t) =
  Design.Design_io.to_string c.Candidate.design

let cost_dollars (c : Candidate.t) = Money.to_dollars (Candidate.cost c)

let run ?restarts ?race ?max_evaluations ?patience ?(seed = 9) ?(domains = 1)
    () =
  Search.run ?restarts ?race ?max_evaluations ?patience
    ~params:{ fast_params with Design_solver.seed }
    ~pool:(Exec.create ~domains ())
    (Fixtures.peer_env ()) (peer_apps ()) likelihood

let single ?(seed = 9) () =
  Design_solver.solve ~params:{ fast_params with Design_solver.seed }
    (Fixtures.peer_env ()) (peer_apps ()) likelihood

let stream_tests =
  [ Alcotest.test_case "restart streams are pairwise distinct" `Quick
      (fun () ->
         let streams = Search.restart_streams ~seed:42 ~restarts:8 in
         let draws rng = List.init 8 (fun _ -> Rng.int rng 1_000_000) in
         let seqs = Array.map draws streams in
         Array.iteri
           (fun i si ->
              Array.iteri
                (fun j sj ->
                   if i < j && si = sj then
                     Alcotest.failf "streams %d and %d coincide" i j)
                seqs)
           seqs);
    Alcotest.test_case "stream 0 replays the master seed" `Quick (fun () ->
        (* Restart 0 must be exactly the single-solve run: its stream is
           a copy of the master taken before any split. *)
        let streams = Search.restart_streams ~seed:42 ~restarts:4 in
        let fresh = Rng.of_int 42 in
        for _ = 1 to 16 do
          check_int "same draw" (Rng.int fresh 1_000_000)
            (Rng.int streams.(0) 1_000_000)
        done);
    Alcotest.test_case "restarts below one are rejected" `Quick (fun () ->
        Alcotest.check_raises "streams"
          (Invalid_argument "Search.restart_streams: restarts must be >= 1")
          (fun () -> ignore (Search.restart_streams ~seed:1 ~restarts:0));
        Alcotest.check_raises "run"
          (Invalid_argument "Search.run: restarts must be >= 1") (fun () ->
            ignore (run ~restarts:0 ()))) ]

let portfolio_tests =
  [ Alcotest.test_case "restarts:1 matches the single fixed-seed solve" `Slow
      (fun () ->
         match run ~restarts:1 (), single () with
         | Some r, Some o ->
           check_int "winner is restart 0" 0 r.Search.winner;
           check_int "restarts run" 1 r.Search.restarts_run;
           Alcotest.(check string) "same design text"
             (design_text o.Design_solver.best)
             (design_text r.Search.best);
           check_int "same evaluation count" o.Design_solver.evaluations
             r.Search.total_evaluations
         | _ -> Alcotest.fail "no feasible design");
    Alcotest.test_case "the winner never costs more than the single run"
      `Slow (fun () ->
          match run ~restarts:6 (), single () with
          | Some r, Some o ->
            check_bool "portfolio at least as cheap" true
              Money.(Candidate.cost r.Search.best
                     <= Candidate.cost o.Design_solver.best)
          | _ -> Alcotest.fail "no feasible design");
    Alcotest.test_case "byte-identical at 1 and 4 domains" `Slow (fun () ->
        (* race:false is fully deterministic: designs, winner and the
           per-restart statistics are all width-invariant. *)
        let go domains =
          match run ~restarts:4 ~domains () with
          | Some r ->
            (design_text r.Search.best, r.Search.winner,
             r.Search.total_evaluations, r.Search.restarts_run)
          | None -> Alcotest.fail "no feasible design"
        in
        Alcotest.(check (pair (pair string int) (pair int int)))
          "same design, winner and statistics"
          (let a, b, c, d = go 1 in ((a, b), (c, d)))
          (let a, b, c, d = go 4 in ((a, b), (c, d))));
    Alcotest.test_case "racing winner is byte-identical at 1 and 4 domains"
      `Slow (fun () ->
          (* With racing only the winner is pinned (which restarts race
             off may vary with scheduling on a real pool). *)
          let go domains =
            match run ~restarts:4 ~race:true ~domains () with
            | Some r -> (design_text r.Search.best, r.Search.winner)
            | None -> Alcotest.fail "no feasible design"
          in
          Alcotest.(check (pair string int)) "same design and winner" (go 1)
            (go 4));
    QCheck_alcotest.to_alcotest
      (* Winner preservation is conditional on the observed-gain
         hypothesis (DESIGN.md §11): a restart is only raced off when
         the largest improvement any restart has shown cannot close its
         gap to the incumbent, which presumes no later restart improves
         more than that. The hypothesis holds for ~90% of seeds under
         these cheap parameters (54 of seeds 1..60); the menu below is
         drawn from the verified ones, so a failure here means a racing
         regression, not a false positive. *)
      (QCheck2.Test.make ~name:"racing preserves the winner (verified seeds)"
         ~count:4
         QCheck2.Gen.(oneofl [ 3; 9; 21; 42 ])
         (fun seed ->
            let go race =
              match run ~restarts:4 ~race ~seed () with
              | Some r -> (design_text r.Search.best, r.Search.winner)
              | None -> QCheck2.Test.fail_report "no feasible design"
            in
            go false = go true));
    Alcotest.test_case "an exhausted evaluation budget returns the incumbent"
      `Slow (fun () ->
          (* Restart 0 is always admitted; a one-evaluation cap rejects
             everything after it, so the portfolio degrades to the
             single fixed-seed solve instead of failing. *)
          match run ~restarts:6 ~max_evaluations:1 (), single () with
          | Some r, Some o ->
            check_int "only restart 0 committed" 1 r.Search.restarts_run;
            check_int "winner is restart 0" 0 r.Search.winner;
            Alcotest.(check string) "incumbent is the single-solve design"
              (design_text o.Design_solver.best)
              (design_text r.Search.best)
          | _ -> Alcotest.fail "no feasible design");
    Alcotest.test_case "patience stops the portfolio but keeps the incumbent"
      `Slow (fun () ->
          match run ~restarts:6 ~patience:1 () with
          | None -> Alcotest.fail "no feasible design"
          | Some r ->
            check_bool "a prefix of the restarts ran" true
              (r.Search.restarts_run >= 1 && r.Search.restarts_run <= 6);
            (* The returned best really is the cheapest committed
               restart; ties go to the lowest index. *)
            List.iter
              (fun (rep : Search.report) ->
                 match rep.Search.cost with
                 | Some c ->
                   check_bool "no committed restart beats the winner" true
                     (c >= cost_dollars r.Search.best
                      || rep.Search.index = r.Search.winner)
                 | None -> ())
              r.Search.reports) ]

let suites =
  [ ("search.streams", stream_tests);
    ("search.portfolio", portfolio_tests) ]
